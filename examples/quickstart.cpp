// Quickstart: the smallest end-to-end GLOVE run, on the Engine API.
//
//   1. synthesize a small CDR dataset (stand-in for an operator trace),
//   2. check that nobody in it is 2-anonymous (the paper's Fig. 3 problem),
//   3. anonymize through glove::Engine (pick a variant with --strategy),
//   4. verify k-anonymity and report the accuracy that survived.
//
// Build & run:  ./build/examples/example_quickstart [--users=N] [--k=K]
//               [--strategy=full|chunked|pruned-kgap|...]

#include <iostream>

#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/stats/table.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  const Engine engine;
  util::Flags flags{"quickstart: synthesize -> diagnose -> GLOVE -> verify"};
  api::define_synth_flags(flags, /*default_users=*/120);
  api::define_run_flags(flags, engine);
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  // 1. Synthesize movement micro-data at the paper's original granularity
  //    (100 m grid cells, 1 min timestamps).
  const cdr::FingerprintDataset data = api::synth_dataset_from_flags(flags);
  std::cout << "dataset: " << data.size() << " users, "
            << data.total_samples() << " spatiotemporal samples\n";

  // 2. Diagnose anonymizability: the k-gap of every user (Sec. 4).
  const api::RunConfig config = api::run_config_from_flags(flags);
  const std::vector<double> gaps = core::k_gap_values(data, config.k);
  std::size_t unique_users = 0;
  for (const double g : gaps) {
    if (g > 0.0) ++unique_users;
  }
  std::cout << "uniqueness: " << unique_users << "/" << data.size()
            << " users are NOT yet " << config.k << "-anonymous\n";

  // 3. Anonymize through the Engine (specialized generalization, Alg. 1).
  const RunReport report = api::run_or_exit(engine, data, config);

  // 4. Verify and report.
  if (!core::is_k_anonymous(report.anonymized, config.k)) {
    std::cerr << "ERROR: output is not " << config.k << "-anonymous\n";
    return 1;
  }
  const std::uint64_t uncovered =
      core::count_uncovered_samples(data, report.anonymized);
  const auto summary =
      core::summarize_accuracy(core::measure_accuracy(report.anonymized));
  std::cout << "GLOVE (" << report.strategy << "): " << report.counters.merges
            << " merges -> " << report.anonymized.size()
            << " groups, every user hidden among " << config.k << "+ others\n"
            << "truthfulness: " << uncovered
            << " original samples left uncovered (must be 0)\n"
            << "accuracy kept: median position "
            << stats::fmt(summary.median_position_m / 1'000.0, 2)
            << " km, median time " << stats::fmt(summary.median_time_min, 1)
            << " min (originals: 0.1 km, 1 min)\n";
  api::maybe_write_report(flags, report, std::cout);
  return uncovered == 0 ? 0 : 1;
}
