// Quickstart: the smallest end-to-end GLOVE run.
//
//   1. synthesize a small CDR dataset (stand-in for an operator trace),
//   2. check that nobody in it is 2-anonymous (the paper's Fig. 3 problem),
//   3. anonymize with GLOVE,
//   4. verify k-anonymity and report the accuracy that survived.
//
// Build & run:  ./build/examples/quickstart [--users=N] [--k=K]

#include <iostream>

#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"
#include "glove/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  util::Flags flags{"quickstart: synthesize -> diagnose -> GLOVE -> verify"};
  flags.define("users", "120", "synthetic population size");
  flags.define("days", "7", "trace timespan in days");
  flags.define("k", "2", "anonymity level");
  flags.define("seed", "42", "generator seed");
  try {
    flags.parse(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }

  // 1. Synthesize movement micro-data at the paper's original granularity
  //    (100 m grid cells, 1 min timestamps).
  synth::SynthConfig config = synth::civ_like(
      static_cast<std::size_t>(flags.get_int("users")),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  config.days = flags.get_double("days");
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  std::cout << "dataset: " << data.size() << " users, "
            << data.total_samples() << " spatiotemporal samples\n";

  // 2. Diagnose anonymizability: the k-gap of every user (Sec. 4).
  const auto k = static_cast<std::uint32_t>(flags.get_int("k"));
  const std::vector<double> gaps = core::k_gap_values(data, k);
  std::size_t unique_users = 0;
  for (const double g : gaps) {
    if (g > 0.0) ++unique_users;
  }
  std::cout << "uniqueness: " << unique_users << "/" << data.size()
            << " users are NOT yet " << k << "-anonymous\n";

  // 3. Anonymize with GLOVE (specialized generalization, Alg. 1).
  core::GloveConfig glove_config;
  glove_config.k = k;
  const core::GloveResult result = core::anonymize(data, glove_config);

  // 4. Verify and report.
  if (!core::is_k_anonymous(result.anonymized, k)) {
    std::cerr << "ERROR: output is not " << k << "-anonymous\n";
    return 1;
  }
  const std::uint64_t uncovered =
      core::count_uncovered_samples(data, result.anonymized);
  const auto summary =
      core::summarize_accuracy(core::measure_accuracy(result.anonymized));
  std::cout << "GLOVE: " << result.stats.merges << " merges -> "
            << result.anonymized.size() << " groups, every user hidden among "
            << k << "+ others\n"
            << "truthfulness: " << uncovered
            << " original samples left uncovered (must be 0)\n"
            << "accuracy kept: median position "
            << stats::fmt(summary.median_position_m / 1'000.0, 2)
            << " km, median time " << stats::fmt(summary.median_time_min, 1)
            << " min (originals: 0.1 km, 1 min)\n";
  return uncovered == 0 ? 0 : 1;
}
