// anonymizability_report: the Sec. 4-5 diagnosis, as a tool.
//
// Given a dataset (a raw CDR csv or a generated one), reports:
//   * the k-gap distribution (how far each user is from k-anonymity),
//   * the spatial/temporal decomposition of the stretch efforts,
//   * Tail Weight Index statistics — i.e., *why* the dataset is hard to
//     anonymize (heavy-tailed time diversity).
//
//   ./build/examples/example_anonymizability_report [input.csv] [--k=2]

#include <iostream>

#include "glove/analysis/anonymizability.hpp"
#include "glove/analysis/descriptors.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/kgap.hpp"
#include "glove/util/flags.hpp"
#include "glove/stats/stats.hpp"
#include "glove/stats/table.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  util::Flags flags{
      "anonymizability_report: k-gap and tail diagnosis of a CDR dataset\n"
      "usage: anonymizability_report [input.csv] [flags]"};
  // Diagnosis only — no Engine run, so no run flags beyond k itself.
  flags.define("k", "2", "anonymity level to evaluate");
  api::define_input_flags(flags);
  api::define_synth_flags(flags, /*default_users=*/150, /*default_days=*/7.0,
                          /*default_seed=*/23);
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  try {
    const cdr::FingerprintDataset data =
        flags.positional().empty()
            ? api::synth_dataset_from_flags(flags)
            : api::load_dataset(flags.positional()[0], flags);

    const analysis::DatasetDescriptor d = analysis::describe(data);
    std::cout << "dataset '" << data.name() << "': " << d.fingerprints
              << " users, " << d.samples << " samples, "
              << stats::fmt(d.samples_per_user_per_day, 2)
              << " samples/user/day, median radius of gyration "
              << stats::fmt(d.median_radius_of_gyration_m / 1'000.0, 2)
              << " km\n";

    const auto k = static_cast<std::uint32_t>(flags.get_int("k"));
    const auto kgaps = core::k_gaps(data, k);
    std::vector<double> gaps;
    gaps.reserve(kgaps.size());
    for (const auto& e : kgaps) gaps.push_back(e.gap);
    const stats::Summary gap_summary = stats::summarize(gaps);
    std::size_t anonymous = 0;
    for (const double g : gaps) {
      if (g == 0.0) ++anonymous;
    }
    std::cout << "\nk-gap (k=" << k << "): median "
              << stats::fmt(gap_summary.median, 3) << ", mean "
              << stats::fmt(gap_summary.mean, 3) << ", p75 "
              << stats::fmt(gap_summary.q75, 3) << "; already anonymous: "
              << anonymous << "/" << gaps.size() << " users\n";

    const auto tails =
        analysis::analyze_tails(analysis::stretch_profiles(data, kgaps));
    const stats::EmpiricalCdf share_cdf{tails.temporal_share};
    const stats::EmpiricalCdf twi_s{tails.twi_spatial};
    const stats::EmpiricalCdf twi_t{tails.twi_temporal};
    std::cout << "\nwhy (Sec. 5.3 diagnosis):\n"
              << "  temporal stretch dominates in "
              << stats::fmt_pct(1.0 - share_cdf.at(0.5))
              << " of fingerprints\n"
              << "  heavy temporal tails (TWI >= 1.5): "
              << stats::fmt_pct(1.0 - twi_t.at(1.5)) << " of users\n"
              << "  heavy spatial tails  (TWI >= 1.5): "
              << stats::fmt_pct(1.0 - twi_s.at(1.5)) << " of users\n"
              << "\ninterpretation: where a user generates traffic is easy "
                 "to hide;\nwhen he does is the expensive dimension — "
                 "uniform generalization\nwill fail here, specialized "
                 "(per-sample) generalization will not.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
