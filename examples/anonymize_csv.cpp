// anonymize_csv: the file-to-file pipeline a data-publishing operator would
// run — read a raw CDR trace (user,time_min,lat,lon), build fingerprints,
// k-anonymize with GLOVE and write the publishable dataset.
//
//   ./build/examples/anonymize_csv input.csv output.csv --k=2
//       [--origin-lat=6.82 --origin-lon=-5.28] [--suppress-km=15]
//       [--suppress-hours=6]
//
// Holders of the actual D4D challenge files can run the paper's exact
// pipeline with:
//
//   ./build/examples/anonymize_csv SET2_trace.csv out.csv
//       --format=d4d --antennas=SITE_ARR_LONLAT.CSV
//
// Without an input file the example writes a demo trace first (so it is
// runnable out of the box) and anonymizes that.

#include <iostream>
#include <limits>

#include "glove/cdr/builder.hpp"
#include "glove/cdr/d4d.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"
#include "glove/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  util::Flags flags{
      "anonymize_csv: raw CDR csv -> GLOVE -> anonymized dataset csv\n"
      "usage: anonymize_csv [input.csv [output.csv]] [flags]"};
  flags.define("k", "2", "anonymity level");
  flags.define("origin-lat", "6.82", "projection origin latitude");
  flags.define("origin-lon", "-5.28", "projection origin longitude");
  flags.define("suppress-km", "0",
               "spatial suppression threshold in km (0 = off)");
  flags.define("suppress-hours", "0",
               "temporal suppression threshold in hours (0 = off)");
  flags.define("demo-users", "80", "users in the generated demo trace");
  flags.define("format", "flat",
               "input trace format: 'flat' (user,time_min,lat,lon) or "
               "'d4d' (user,timestamp,antenna_id; needs --antennas)");
  flags.define("antennas", "",
               "D4D antenna file (antenna_id,lat,lon); required with "
               "--format=d4d");
  try {
    flags.parse(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }

  std::string input = flags.positional().size() > 0 ? flags.positional()[0]
                                                    : "demo_cdr.csv";
  const std::string output = flags.positional().size() > 1
                                 ? flags.positional()[1]
                                 : "demo_anonymized.csv";

  try {
    // Generate a demo trace when no input exists.
    if (flags.positional().empty()) {
      synth::SynthConfig config = synth::civ_like(
          static_cast<std::size_t>(flags.get_int("demo-users")), 7);
      config.days = 5.0;
      const auto events =
          synth::to_latlon_events(synth::generate_events(config), config);
      cdr::write_cdr_file(input, events);
      std::cout << "wrote demo CDR trace: " << input << " ("
                << events.size() << " events)\n";
    }

    // 1. Read and project the trace (Sec. 3 pipeline).
    std::vector<cdr::CdrEvent> events;
    if (flags.get("format") == "d4d") {
      const std::string antenna_path = flags.get("antennas");
      if (antenna_path.empty()) {
        std::cerr << "--format=d4d requires --antennas=FILE\n";
        return 1;
      }
      const cdr::AntennaTable antennas =
          cdr::read_d4d_antennas_file(antenna_path);
      cdr::D4DTrace trace = cdr::read_d4d_trace_file(input, antennas);
      std::cout << "D4D trace: " << trace.users << " users, "
                << trace.events.size() << " events\n";
      events = std::move(trace.events);
    } else {
      events = cdr::read_cdr_file(input);
    }
    cdr::BuilderConfig builder;
    builder.projection_origin =
        geo::LatLon{flags.get_double("origin-lat"),
                    flags.get_double("origin-lon")};
    const cdr::FingerprintDataset data =
        cdr::build_fingerprints(events, builder);
    std::cout << "read " << events.size() << " events -> " << data.size()
              << " fingerprints, " << data.total_samples() << " samples\n";

    // 2. Anonymize.
    core::GloveConfig config;
    config.k = static_cast<std::uint32_t>(flags.get_int("k"));
    const double suppress_km = flags.get_double("suppress-km");
    const double suppress_hours = flags.get_double("suppress-hours");
    if (suppress_km > 0.0 || suppress_hours > 0.0) {
      config.suppression = core::SuppressionThresholds{
          suppress_km > 0.0 ? suppress_km * 1'000.0
                            : std::numeric_limits<double>::infinity(),
          suppress_hours > 0.0 ? suppress_hours * 60.0
                               : std::numeric_limits<double>::infinity()};
    }
    const core::GloveResult result = core::anonymize(data, config);

    // 3. Verify and write.
    if (!core::is_k_anonymous(result.anonymized, config.k)) {
      std::cerr << "ERROR: output is not k-anonymous\n";
      return 1;
    }
    cdr::write_dataset_file(output, result.anonymized);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(result.anonymized));
    std::cout << "wrote " << output << ": " << result.anonymized.size()
              << " groups (k=" << config.k << "), "
              << result.anonymized.total_samples() << " samples; deleted "
              << result.stats.deleted_samples
              << " samples via suppression\n"
              << "median accuracy: "
              << stats::fmt(summary.median_position_m / 1'000.0, 2)
              << " km / " << stats::fmt(summary.median_time_min, 1)
              << " min\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
