// anonymize_csv: the file-to-file pipeline a data-publishing operator would
// run — read a raw CDR trace (user,time_min,lat,lon), build fingerprints,
// k-anonymize through glove::Engine and write the publishable dataset.
//
//   ./build/examples/example_anonymize_csv input.csv output.csv --k=2
//       [--strategy=full|chunked|pruned-kgap|sharded|incremental|w4m-baseline]
//       [--origin-lat=6.82 --origin-lon=-5.28] [--suppress-km=15]
//       [--suppress-hours=6] [--report=run.json]
//       [--trace-out=trace.json] [--verbose]
//       [--tile-km=0 --shard-users=2000 --shard-workers=0
//        --halo-km=1 --border=halo]     (sharded strategy knobs)
//
// Streaming mode — for fingerprint-dataset CSVs larger than RAM.  The
// Engine pulls from a CsvFileSource and pushes finalized groups to a
// CsvFileSink; with --strategy=sharded peak memory stays O(largest shard
// batch) instead of O(dataset):
//
//   ./build/examples/example_anonymize_csv --input=dataset.csv
//       --output=anonymized.csv --strategy=sharded
//
// The streaming --input is sniffed by magic bytes, so it may be a CSV or a
// glovebin file (cdr/binio.hpp); --output picks its format by extension
// (".glovebin" vs CSV) or explicitly via --format=csv|glovebin.  Glovebin
// inputs serve the sharded strategy's planning pass from the footer index
// and rewound passes map only the blocks they need.
//
// Generate a synthetic fingerprint dataset to stream (then exit):
//
//   ./build/examples/example_anonymize_csv --synth-dataset=dataset.csv
//       --users=50000 --days=2 --seed=7
//
// Convert a dataset between the CSV and glovebin formats (then exit):
//
//   ./build/examples/example_anonymize_csv --convert --input=dataset.csv
//       --output=dataset.glovebin
//
// Holders of the actual D4D challenge files can run the paper's exact
// pipeline with:
//
//   ./build/examples/example_anonymize_csv SET2_trace.csv out.csv
//       --format=d4d --antennas=SITE_ARR_LONLAT.CSV
//
// Without an input file the example writes a demo trace first (so it is
// runnable out of the box) and anonymizes that.

#include <filesystem>
#include <iostream>
#include <system_error>

#include "glove/api/cli.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"

namespace {

/// Streams the published file once more and verifies every group hides at
/// least k users — the safety check of the in-memory path, kept O(1 group)
/// so it works on outputs larger than RAM.
bool streamed_output_is_k_anonymous(const std::string& path,
                                    std::uint32_t k) {
  const auto check = glove::api::open_dataset_source(path);
  glove::cdr::Fingerprint fp;
  while (check->next(fp)) {
    if (fp.group_size() < k) return false;
  }
  return true;
}

/// "csv"/"glovebin" when --format forces the dataset format, "" when the
/// flag still holds a raw-trace format (the sink then picks by extension).
std::string_view sink_format(const glove::util::Flags& flags) {
  const std::string& format = flags.get("format");
  if (format == "csv" || format == "glovebin") return format;
  return {};
}

int run_streaming(const glove::Engine& engine,
                  const glove::util::Flags& flags) {
  using namespace glove;
  const std::string input = flags.get("input");
  const std::string output = flags.get("output").empty()
                                 ? "anonymized.csv"
                                 : flags.get("output");
  // The sink truncates its path on construction — writing onto the input
  // would destroy the dataset before the first read.
  std::error_code ec;
  if (input == output ||
      std::filesystem::equivalent(input, output, ec)) {
    std::cerr << "error: --output must not be the input file (" << input
              << ")\n";
    return 1;
  }
  if (flags.get_bool("convert")) {
    const api::ConvertStats stats =
        api::convert_dataset_file(input, output, sink_format(flags));
    std::cout << "converted " << input << " -> " << output << " ("
              << stats.fingerprints << " fingerprints, " << stats.samples
              << " samples)\n";
    return 0;
  }
  const api::RunConfig config = api::run_config_from_flags(flags);

  const auto source = api::open_dataset_source(input);
  const auto sink = api::make_dataset_sink(output, sink_format(flags));
  const RunReport report =
      api::run_streaming_or_exit(engine, *source, *sink, config);

  if (!streamed_output_is_k_anonymous(output, config.k)) {
    std::cerr << "ERROR: output is not k-anonymous\n";
    return 1;
  }
  std::cout << "streamed " << input << " -> " << output << ": "
            << api::summarize_report(report) << "\npasses over the source:";
  for (const std::uint64_t count : report.pass_fingerprints) {
    std::cout << ' ' << count;
  }
  std::cout << " fingerprints";
  if (report.file_blocks > 0) {
    std::cout << "; blocks read " << report.blocks_read << " (file holds "
              << report.file_blocks << ")";
  }
  std::cout << "; peak rss "
            << report.peak_rss_bytes / (1024 * 1024) << " MiB\n";
  api::maybe_write_report(flags, report, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glove;
  const Engine engine;
  util::Flags flags{
      "anonymize_csv: raw CDR csv -> glove::Engine -> anonymized dataset csv\n"
      "usage: anonymize_csv [input.csv [output.csv]] [flags]\n"
      "       anonymize_csv --input=dataset.csv --output=anon.csv  "
      "(streaming)"};
  api::define_run_flags(flags, engine);
  api::define_observability_flags(flags);
  api::define_input_flags(flags);
  api::define_synth_flags(flags, /*default_users=*/1'000);
  flags.define("demo-users", "80", "users in the generated demo trace");
  flags.define("input", "",
               "stream an existing fingerprint-dataset CSV through the "
               "Source/Sink Engine boundary (file-to-file; skips the "
               "trace-building stage)");
  flags.define("output", "",
               "streaming output path (default anonymized.csv; only with "
               "--input)");
  flags.define("synth-dataset", "",
               "write a synthetic fingerprint dataset (sized by "
               "--users/--days/--seed/--preset; format by extension or "
               "--format) to this path and exit");
  flags.define("convert", "false",
               "convert --input to --output between the csv and glovebin "
               "dataset formats (no anonymization; --format=csv|glovebin "
               "forces the output format, default by extension)");
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  try {
    api::start_observability(flags);
    if (!flags.get("synth-dataset").empty()) {
      const std::string path = flags.get("synth-dataset");
      const cdr::FingerprintDataset data = api::synth_dataset_from_flags(flags);
      const auto sink = api::make_dataset_sink(path, sink_format(flags));
      sink->begin(data.name());
      for (const cdr::Fingerprint& fp : data.fingerprints()) sink->write(fp);
      sink->finish();
      std::cout << "wrote synthetic dataset: " << path << " (" << data.size()
                << " fingerprints, " << data.total_samples()
                << " samples)\n";
      api::finish_observability(flags, std::cout);
      return 0;
    }
    if (!flags.get("input").empty()) {
      const int code = run_streaming(engine, flags);
      api::finish_observability(flags, std::cout);
      return code;
    }

    const std::string input = flags.positional().size() > 0
                                  ? flags.positional()[0]
                                  : "demo_cdr.csv";
    const std::string output = flags.positional().size() > 1
                                   ? flags.positional()[1]
                                   : "demo_anonymized.csv";

    // Generate a demo trace when no input exists.
    if (flags.positional().empty()) {
      synth::SynthConfig config = synth::civ_like(
          static_cast<std::size_t>(flags.get_int("demo-users")), 7);
      config.days = 5.0;
      const auto events =
          synth::to_latlon_events(synth::generate_events(config), config);
      cdr::write_cdr_file(input, events);
      std::cout << "wrote demo CDR trace: " << input << " ("
                << events.size() << " events)\n";
    }

    // 1. Read and project the trace (Sec. 3 pipeline).
    const cdr::FingerprintDataset data = api::load_dataset(input, flags);
    std::cout << "read " << input << " -> " << data.size()
              << " fingerprints, " << data.total_samples() << " samples\n";

    // 2. Anonymize through the Engine with the flag-selected strategy.
    const api::RunConfig config = api::run_config_from_flags(flags);
    const RunReport report = api::run_or_exit(engine, data, config);

    // 3. Verify and write.
    if (!core::is_k_anonymous(report.anonymized, config.k)) {
      std::cerr << "ERROR: output is not k-anonymous\n";
      return 1;
    }
    cdr::write_dataset_file(output, report.anonymized);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(report.anonymized));
    std::cout << "wrote " << output << ": " << api::summarize_report(report)
              << "\nmedian accuracy: "
              << stats::fmt(summary.median_position_m / 1'000.0, 2)
              << " km / " << stats::fmt(summary.median_time_min, 1)
              << " min\n";
    api::maybe_write_report(flags, report, std::cout);
    api::finish_observability(flags, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
