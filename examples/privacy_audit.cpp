// privacy_audit: measure — don't assume — the privacy of a dataset before
// and after anonymization, with the record-linkage attacks the paper
// defends against (Sec. 2.3), plus a utility check on what anonymization
// preserved.  This is the due-diligence step a data-protection officer
// would run before approving a release.
//
//   ./build/examples/privacy_audit [--users=120] [--k=2]

#include <iostream>

#include "glove/analysis/utility.hpp"
#include "glove/attack/linkage.hpp"
#include "glove/core/glove.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"
#include "glove/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  util::Flags flags{"privacy_audit: attack-based privacy measurement"};
  flags.define("users", "120", "synthetic population size");
  flags.define("days", "7", "trace timespan in days");
  flags.define("k", "2", "anonymity level");
  flags.define("seed", "8", "generator seed");
  try {
    flags.parse(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }

  synth::SynthConfig config = synth::civ_like(
      static_cast<std::size_t>(flags.get_int("users")),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  config.days = flags.get_double("days");
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const auto k = static_cast<std::uint32_t>(flags.get_int("k"));

  core::GloveConfig glove_config;
  glove_config.k = k;
  const core::GloveResult glove = core::anonymize(data, glove_config);

  stats::TextTable table{"Privacy audit: attacks before/after GLOVE (k=" +
                         std::to_string(k) + ")"};
  table.header({"attack", "unique (before)", "unique (after)",
                "min anonymity set (after)"});

  const auto audit = [&](const std::string& name, const auto& attack_model) {
    const attack::AttackReport before = attack_model.run(data, data);
    const attack::AttackReport after = attack_model.run(data, glove.anonymized);
    // Smallest candidate set after anonymization (k-anonymity floor).
    double min_set = 1e18;
    bool any_below = false;
    for (std::size_t i = 2; i <= 5; ++i) {
      if (after.below_k[i - 2] > 0 && i <= k) any_below = true;
    }
    min_set = after.mean_candidates;  // reported alongside the check
    table.row({name, stats::fmt_pct(before.uniqueness()),
               stats::fmt_pct(after.uniqueness()),
               (any_below ? std::string{"VIOLATION"}
                          : ">= " + std::to_string(k)) +
                   " (mean " + stats::fmt(min_set, 1) + ")"});
    return !any_below;
  };

  bool ok = true;
  ok &= audit("top-3 locations", attack::TopLocationsAttack{.top_n = 3});
  ok &= audit("4 random points", attack::PointsAttack{.points = 4});
  ok &= audit("10 random points", attack::PointsAttack{.points = 10});
  table.print(std::cout);

  const analysis::HomeUtilityReport homes =
      analysis::compare_homes(data, glove.anonymized);
  const double density = analysis::density_distance(
      analysis::population_density(data, 10'000.0),
      analysis::population_density(glove.anonymized, 10'000.0));
  std::cout << "\nutility preserved: homes unchanged for "
            << stats::fmt_pct(homes.same_tile_fraction)
            << " of users (median shift "
            << stats::fmt(homes.median_displacement_m / 1'000.0, 2)
            << " km); population-distribution TV distance "
            << stats::fmt(density, 3) << " (0 = identical)\n"
            << (ok ? "AUDIT PASSED: no record-linkage attack beats k-"
                     "anonymity.\n"
                   : "AUDIT FAILED: see violations above.\n");
  return ok ? 0 : 1;
}
