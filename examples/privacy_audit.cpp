// privacy_audit: measure — don't assume — the privacy of a dataset before
// and after anonymization, with the record-linkage attacks the paper
// defends against (Sec. 2.3), plus a utility check on what anonymization
// preserved.  This is the due-diligence step a data-protection officer
// would run before approving a release.  Anonymization runs through
// glove::Engine, so any --strategy can be audited.
//
//   ./build/examples/example_privacy_audit [--users=120] [--k=2]

#include <iostream>

#include "glove/analysis/utility.hpp"
#include "glove/api/cli.hpp"
#include "glove/attack/linkage.hpp"
#include "glove/stats/table.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  const Engine engine;
  util::Flags flags{"privacy_audit: attack-based privacy measurement"};
  api::define_synth_flags(flags, /*default_users=*/120, /*default_days=*/7.0,
                          /*default_seed=*/8);
  api::define_run_flags(flags, engine);
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  const cdr::FingerprintDataset data = api::synth_dataset_from_flags(flags);
  const api::RunConfig config = api::run_config_from_flags(flags);
  const std::uint32_t k = config.k;
  const RunReport glove = api::run_or_exit(engine, data, config);

  stats::TextTable table{"Privacy audit: attacks before/after GLOVE (k=" +
                         std::to_string(k) + ")"};
  table.header({"attack", "unique (before)", "unique (after)",
                "min anonymity set (after)"});

  const auto audit = [&](const std::string& name, const auto& attack_model) {
    const attack::AttackReport before = attack_model.run(data, data);
    const attack::AttackReport after =
        attack_model.run(data, glove.anonymized);
    // Smallest candidate set after anonymization (k-anonymity floor).
    double min_set = 1e18;
    bool any_below = false;
    for (std::size_t i = 2; i <= 5; ++i) {
      if (after.below_k[i - 2] > 0 && i <= k) any_below = true;
    }
    min_set = after.mean_candidates;  // reported alongside the check
    table.row({name, stats::fmt_pct(before.uniqueness()),
               stats::fmt_pct(after.uniqueness()),
               (any_below ? std::string{"VIOLATION"}
                          : ">= " + std::to_string(k)) +
                   " (mean " + stats::fmt(min_set, 1) + ")"});
    return !any_below;
  };

  bool ok = true;
  ok &= audit("top-3 locations", attack::TopLocationsAttack{.top_n = 3});
  ok &= audit("4 random points", attack::PointsAttack{.points = 4});
  ok &= audit("10 random points", attack::PointsAttack{.points = 10});
  table.print(std::cout);

  const analysis::HomeUtilityReport homes =
      analysis::compare_homes(data, glove.anonymized);
  const double density = analysis::density_distance(
      analysis::population_density(data, 10'000.0),
      analysis::population_density(glove.anonymized, 10'000.0));
  std::cout << "\nutility preserved: homes unchanged for "
            << stats::fmt_pct(homes.same_tile_fraction)
            << " of users (median shift "
            << stats::fmt(homes.median_displacement_m / 1'000.0, 2)
            << " km); population-distribution TV distance "
            << stats::fmt(density, 3) << " (0 = identical)\n"
            << (ok ? "AUDIT PASSED: no record-linkage attack beats k-"
                     "anonymity.\n"
                   : "AUDIT FAILED: see violations above.\n");
  api::maybe_write_report(flags, glove, std::cout);
  return ok ? 0 : 1;
}
