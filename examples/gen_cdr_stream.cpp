// gen_cdr_stream: write a synthetic raw CDR event stream in *time order* —
// the file a network probe would append to, and the input glove-serve
// tails.  The synthesizer emits events sorted by user then time (the batch
// layout); a live stream interleaves users chronologically, so this tool
// re-sorts by timestamp before writing.
//
//   ./build/examples/example_gen_cdr_stream --output=events.csv
//       [--users=120 --days=3 --seed=11 --preset=civ|sen]
//
// The output is the cdr::CdrEventReader CSV format
// (user,time_min,lat,lon), deterministic in --seed, so CI can split it at
// arbitrary byte offsets to simulate a growing live tail.

#include <algorithm>
#include <iostream>
#include <vector>

#include "glove/api/cli.hpp"
#include "glove/cdr/io.hpp"
#include "glove/synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  util::Flags flags{
      "gen_cdr_stream: synthetic CDR events in time order (a live tail)\n"
      "usage: gen_cdr_stream --output=events.csv [flags]"};
  api::define_synth_flags(flags, /*default_users=*/120,
                          /*default_days=*/3.0, /*default_seed=*/11);
  flags.define("output", "events.csv", "CDR stream output path");
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  try {
    synth::SynthConfig config =
        flags.get("preset") == "sen"
            ? synth::sen_like(
                  static_cast<std::size_t>(flags.get_int("users")))
            : synth::civ_like(
                  static_cast<std::size_t>(flags.get_int("users")));
    config.days = flags.get_double("days");
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

    std::vector<cdr::PlanarEvent> planar = synth::generate_events(config);
    // Stable sort: events in the same minute keep the generator's
    // user-then-time order, so the stream is deterministic in the seed.
    std::stable_sort(planar.begin(), planar.end(),
                     [](const cdr::PlanarEvent& a, const cdr::PlanarEvent& b) {
                       return a.time_min < b.time_min;
                     });
    const std::vector<cdr::CdrEvent> events =
        synth::to_latlon_events(planar, config);

    const std::string output = flags.get("output");
    cdr::write_cdr_file(output, events);
    double span_min = 0.0;
    if (!events.empty()) {
      span_min = events.back().time_min - events.front().time_min;
    }
    std::cout << "wrote " << output << ": " << events.size()
              << " events over " << span_min / 60.0 << " hours\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
