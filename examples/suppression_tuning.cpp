// suppression_tuning: explore the Sec. 7.1 accuracy/completeness trade-off
// to pick suppression thresholds for a concrete dataset — the knob a data
// owner turns before publishing.
//
//   ./build/examples/suppression_tuning [--users=120] [--k=2]

#include <iostream>
#include <limits>

#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"
#include "glove/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  util::Flags flags{"suppression_tuning: sweep GLOVE suppression thresholds"};
  flags.define("users", "120", "synthetic population size");
  flags.define("days", "7", "trace timespan in days");
  flags.define("k", "2", "anonymity level");
  flags.define("seed", "17", "generator seed");
  try {
    flags.parse(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }

  synth::SynthConfig config = synth::civ_like(
      static_cast<std::size_t>(flags.get_int("users")),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  config.days = flags.get_double("days");
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const auto k = static_cast<std::uint32_t>(flags.get_int("k"));

  stats::TextTable table{"Suppression threshold sweep (k=" +
                         std::to_string(k) + ", " + data.name() + ")"};
  table.header({"spatial", "temporal", "discarded", "pos mean", "pos median",
                "time mean", "time median"});

  struct Setting {
    std::string space_label;
    std::string time_label;
    double space_m;
    double time_min;
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<Setting> settings{
      {"off", "off", kInf, kInf},     {"40km", "8h", 40'000.0, 480.0},
      {"20km", "6h", 20'000.0, 360.0}, {"15km", "6h", 15'000.0, 360.0},
      {"10km", "4h", 10'000.0, 240.0}, {"5km", "2h", 5'000.0, 120.0},
      {"2km", "1h", 2'000.0, 60.0},
  };

  for (const Setting& setting : settings) {
    core::GloveConfig glove_config;
    glove_config.k = k;
    if (setting.space_m != kInf || setting.time_min != kInf) {
      glove_config.suppression =
          core::SuppressionThresholds{setting.space_m, setting.time_min};
    }
    const core::GloveResult result = core::anonymize(data, glove_config);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(result.anonymized));
    const double discarded =
        static_cast<double>(result.stats.deleted_samples) /
        static_cast<double>(result.stats.input_samples);
    table.row({setting.space_label, setting.time_label,
               stats::fmt_pct(discarded),
               stats::fmt(summary.mean_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.mean_time_min, 1) + "min",
               stats::fmt(summary.median_time_min, 1) + "min"});
  }
  table.print(std::cout);
  std::cout << "\nguidance (Sec. 7.1): pick the mildest thresholds whose "
               "mean accuracy meets your\nanalysis needs — the first few "
               "percent of suppressed outliers buy most of the gain.\n";
  return 0;
}
