// suppression_tuning: explore the Sec. 7.1 accuracy/completeness trade-off
// to pick suppression thresholds for a concrete dataset — the knob a data
// owner turns before publishing.  Every sweep point is one Engine run with
// a different suppression section.
//
//   ./build/examples/example_suppression_tuning [--users=120] [--k=2]

#include <iostream>
#include <limits>

#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/stats/table.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  const Engine engine;
  util::Flags flags{"suppression_tuning: sweep GLOVE suppression thresholds"};
  api::define_synth_flags(flags, /*default_users=*/120, /*default_days=*/7.0,
                          /*default_seed=*/17);
  // The sweep owns the suppression knobs, so only k and the strategy are
  // configurable — a --suppress-* flag would be silently overwritten.
  // Only the GLOVE-family strategies read config.suppression; sweeping
  // w4m-baseline or incremental would print seven identical rows.
  flags.define("k", "2", "anonymity level (every group hides >= k users)");
  flags.define_enum("strategy", std::string{api::kStrategyFull},
                    {std::string{api::kStrategyFull},
                     std::string{api::kStrategyChunked},
                     std::string{api::kStrategyPrunedKGap}},
                    "suppression-aware anonymization strategy to sweep");
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  const cdr::FingerprintDataset data = api::synth_dataset_from_flags(flags);
  api::RunConfig config;
  config.strategy = flags.get("strategy");
  config.k = static_cast<std::uint32_t>(flags.get_int("k"));

  stats::TextTable table{"Suppression threshold sweep (k=" +
                         std::to_string(config.k) + ", " + data.name() + ")"};
  table.header({"spatial", "temporal", "discarded", "pos mean", "pos median",
                "time mean", "time median"});

  struct Setting {
    std::string space_label;
    std::string time_label;
    double space_m;
    double time_min;
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<Setting> settings{
      {"off", "off", kInf, kInf},      {"40km", "8h", 40'000.0, 480.0},
      {"20km", "6h", 20'000.0, 360.0}, {"15km", "6h", 15'000.0, 360.0},
      {"10km", "4h", 10'000.0, 240.0}, {"5km", "2h", 5'000.0, 120.0},
      {"2km", "1h", 2'000.0, 60.0},
  };

  for (const Setting& setting : settings) {
    config.suppression.reset();
    if (setting.space_m != kInf || setting.time_min != kInf) {
      config.suppression =
          core::SuppressionThresholds{setting.space_m, setting.time_min};
    }
    const RunReport report = api::run_or_exit(engine, data, config);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(report.anonymized));
    const double discarded =
        static_cast<double>(report.counters.deleted_samples) /
        static_cast<double>(report.counters.input_samples);
    table.row({setting.space_label, setting.time_label,
               stats::fmt_pct(discarded),
               stats::fmt(summary.mean_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.mean_time_min, 1) + "min",
               stats::fmt(summary.median_time_min, 1) + "min"});
  }
  table.print(std::cout);
  std::cout << "\nguidance (Sec. 7.1): pick the mildest thresholds whose "
               "mean accuracy meets your\nanalysis needs — the first few "
               "percent of suppressed outliers buy most of the gain.\n";
  return 0;
}
