// compare_baselines: GLOVE vs W4M-LC vs uniform generalization on one
// citywide scenario — the Sec. 7.2 comparison as a runnable example.
// Both anonymizers run through the same glove::Engine entry point; only
// the strategy name differs.
//
//   ./build/examples/example_compare_baselines [--users=150] [--k=2]

#include <iostream>

#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/generalize.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/stats/table.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  const Engine engine;
  util::Flags flags{"compare_baselines: GLOVE vs W4M-LC vs generalization"};
  api::define_synth_flags(flags, /*default_users=*/150, /*default_days=*/7.0,
                          /*default_seed=*/31, /*default_preset=*/"sen");
  api::define_run_flags(flags, engine);
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  const cdr::FingerprintDataset data = api::synth_dataset_from_flags(flags);
  api::RunConfig config = api::run_config_from_flags(flags);
  const std::uint32_t k = config.k;
  std::cout << "dataset: " << data.size() << " users, "
            << data.total_samples() << " samples; target k=" << k << "\n";

  stats::TextTable table{"GLOVE vs W4M-LC vs uniform generalization"};
  table.header({"approach", "k-anonymous?", "created", "deleted",
                "pos accuracy (median)", "time accuracy (median)",
                "truthful (P2)?"});

  // --- Uniform generalization at a severe 5 km / 2 h level (Fig. 4).
  {
    const auto coarse = core::generalize_dataset(data, {5'000.0, 120.0});
    const auto gaps = core::k_gap_values(coarse, k);
    std::size_t anonymous = 0;
    for (const double g : gaps) {
      if (g == 0.0) ++anonymous;
    }
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(coarse));
    table.row({"uniform 5km/2h",
               stats::fmt_pct(static_cast<double>(anonymous) /
                              static_cast<double>(gaps.size())) +
                   " of users",
               "0", "0",
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_time_min, 1) + "min", "yes"});
  }

  // --- W4M-LC (delta = 2 km, 10% trash) through the Engine.
  {
    api::RunConfig w4m_config = config;
    w4m_config.strategy = api::kStrategyW4M;
    const RunReport w4m = api::run_or_exit(engine, data, w4m_config);
    const double mean_pos_error_m =
        api::find_metric(w4m, "mean_position_error_m");
    const double mean_time_error_min =
        api::find_metric(w4m, "mean_time_error_min");
    table.row({"W4M-LC",
               "(k," + stats::fmt(w4m.config.w4m_delta_m, 0) + "m)-anonymity",
               std::to_string(w4m.counters.created_samples),
               std::to_string(w4m.counters.deleted_samples),
               stats::fmt(mean_pos_error_m / 1'000.0, 2) + "km (mean err)",
               stats::fmt(mean_time_error_min, 1) + "min (mean err)",
               "NO (fabricates samples)"});
  }

  // --- GLOVE through the Engine (flag-selected variant, default "full").
  const RunReport glove = api::run_or_exit(engine, data, config);
  {
    const bool ok = core::is_k_anonymous(glove.anonymized, k);
    const std::uint64_t uncovered =
        core::count_uncovered_samples(data, glove.anonymized);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(glove.anonymized));
    table.row({"GLOVE (" + glove.strategy + ")",
               ok ? "100% of users" : "FAILED", "0",
               std::to_string(glove.counters.deleted_samples),
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_time_min, 1) + "min",
               uncovered == 0 ? "yes" : "NO"});
  }

  table.print(std::cout);
  api::maybe_write_report(flags, glove, std::cout);
  std::cout << "\nreading: uniform generalization destroys granularity and "
               "still fails k-anonymity;\nW4M-LC reaches its (k,delta) "
               "criterion only by fabricating samples and displacing\nusers "
               "in space and time; GLOVE anonymizes everyone, truthfully, "
               "at modest cost.\n";
  return 0;
}
