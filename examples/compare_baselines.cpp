// compare_baselines: GLOVE vs W4M-LC vs uniform generalization on one
// citywide scenario — the Sec. 7.2 comparison as a runnable example.
//
//   ./build/examples/compare_baselines [--users=150] [--k=2]

#include <iostream>

#include "glove/baseline/w4m.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/generalize.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"
#include "glove/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace glove;
  util::Flags flags{"compare_baselines: GLOVE vs W4M-LC vs generalization"};
  flags.define("users", "150", "synthetic population size");
  flags.define("days", "7", "trace timespan in days");
  flags.define("k", "2", "anonymity level");
  flags.define("seed", "31", "generator seed");
  try {
    flags.parse(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }

  synth::SynthConfig config = synth::sen_like(
      static_cast<std::size_t>(flags.get_int("users")),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  config.days = flags.get_double("days");
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const auto k = static_cast<std::uint32_t>(flags.get_int("k"));
  std::cout << "dataset: " << data.size() << " users, "
            << data.total_samples() << " samples; target k=" << k << "\n";

  stats::TextTable table{"GLOVE vs W4M-LC vs uniform generalization"};
  table.header({"approach", "k-anonymous?", "created", "deleted",
                "pos accuracy (median)", "time accuracy (median)",
                "truthful (P2)?"});

  // --- Uniform generalization at a severe 5 km / 2 h level (Fig. 4).
  {
    const auto coarse = core::generalize_dataset(data, {5'000.0, 120.0});
    const auto gaps = core::k_gap_values(coarse, k);
    std::size_t anonymous = 0;
    for (const double g : gaps) {
      if (g == 0.0) ++anonymous;
    }
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(coarse));
    table.row({"uniform 5km/2h",
               stats::fmt_pct(static_cast<double>(anonymous) /
                              static_cast<double>(gaps.size())) +
                   " of users",
               "0", "0",
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_time_min, 1) + "min", "yes"});
  }

  // --- W4M-LC (delta = 2 km, 10% trash).
  {
    baseline::W4MConfig w4m_config;
    w4m_config.k = k;
    const baseline::W4MResult w4m = baseline::anonymize_w4m(data, w4m_config);
    table.row({"W4M-LC", "(k," + stats::fmt(w4m_config.delta_m, 0) +
                             "m)-anonymity",
               std::to_string(w4m.stats.created_samples),
               std::to_string(w4m.stats.deleted_samples),
               stats::fmt(w4m.stats.mean_position_error_m / 1'000.0, 2) +
                   "km (mean err)",
               stats::fmt(w4m.stats.mean_time_error_min, 1) + "min (mean err)",
               "NO (fabricates samples)"});
  }

  // --- GLOVE.
  {
    core::GloveConfig glove_config;
    glove_config.k = k;
    const core::GloveResult glove = core::anonymize(data, glove_config);
    const bool ok = core::is_k_anonymous(glove.anonymized, k);
    const std::uint64_t uncovered =
        core::count_uncovered_samples(data, glove.anonymized);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(glove.anonymized));
    table.row({"GLOVE", ok ? "100% of users" : "FAILED", "0",
               std::to_string(glove.stats.deleted_samples),
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_time_min, 1) + "min",
               uncovered == 0 ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nreading: uniform generalization destroys granularity and "
               "still fails k-anonymity;\nW4M-LC reaches its (k,delta) "
               "criterion only by fabricating samples and displacing\nusers "
               "in space and time; GLOVE anonymizes everyone, truthfully, "
               "at modest cost.\n";
  return 0;
}
