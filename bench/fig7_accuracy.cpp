// Fig. 7 reproduction — spatiotemporal accuracy after GLOVE, k = 2.
//
// CDFs of per-sample position accuracy (bounding-rectangle side) and time
// accuracy (interval length) of the 2-anonymized civ-like and sen-like
// datasets.  Paper shape: 20-40% of samples keep the original spatial
// accuracy with <= 30 min time error; 70-80% stay under 2 km and 2 h.

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

void run_dataset(const Engine& engine, const cdr::FingerprintDataset& data,
                 stats::TextTable& position_table,
                 stats::TextTable& time_table) {
  api::RunConfig config;
  config.k = 2;
  const RunReport result = api::run_or_exit(engine, data, config);
  if (!core::is_k_anonymous(result.anonymized, 2)) {
    std::cerr << "ERROR: output not 2-anonymous\n";
    std::exit(1);
  }
  const core::AccuracyObservations obs =
      core::measure_accuracy(result.anonymized);
  const auto pos_cdf = core::position_accuracy_cdf(obs);
  const auto time_cdf = core::time_accuracy_cdf(obs);

  std::vector<std::string> pos_row{data.name()};
  for (const auto& cell : bench::cdf_row(pos_cdf, bench::position_grid_m())) {
    pos_row.push_back(cell);
  }
  position_table.row(std::move(pos_row));

  std::vector<std::string> time_row{data.name()};
  for (const auto& cell : bench::cdf_row(time_cdf, bench::time_grid_min())) {
    time_row.push_back(cell);
  }
  time_table.row(std::move(time_row));

  std::cout << "  " << data.name() << ": original spatial accuracy kept "
            << stats::fmt_pct(pos_cdf.at(100.0))
            << " (paper: 20-40%);  <=2km "
            << stats::fmt_pct(pos_cdf.at(2'000.0))
            << " (paper: 70-80%);  <=30min "
            << stats::fmt_pct(time_cdf.at(30.0))
            << ";  <=2h " << stats::fmt_pct(time_cdf.at(120.0))
            << " (paper: 70-80%)"
            << ";  merges=" << result.counters.merges
            << ", init=" << stats::fmt(result.timings.init_seconds, 2)
            << "s, greedy=" << stats::fmt(result.timings.merge_seconds, 2)
            << "s\n";
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/250);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  const cdr::FingerprintDataset sen = bench::make_sen(scale);
  bench::print_banner("Fig. 7 (GLOVE accuracy, k=2)", civ);
  bench::print_banner("Fig. 7 (GLOVE accuracy, k=2)", sen);

  stats::TextTable position_table{
      "Fig. 7 (left) — CDF of position accuracy after GLOVE, k=2"};
  std::vector<std::string> pos_header{"dataset"};
  for (const auto& label :
       bench::grid_labels(bench::position_grid_m(), "m")) {
    pos_header.push_back(label);
  }
  position_table.header(std::move(pos_header));

  stats::TextTable time_table{
      "Fig. 7 (right) — CDF of time accuracy after GLOVE, k=2"};
  std::vector<std::string> time_header{"dataset"};
  for (const auto& label : bench::grid_labels(bench::time_grid_min(), "min")) {
    time_header.push_back(label);
  }
  time_table.header(std::move(time_header));

  run_dataset(engine, civ, position_table, time_table);
  run_dataset(engine, sen, position_table, time_table);
  position_table.print(std::cout);
  time_table.print(std::cout);
  return 0;
}
