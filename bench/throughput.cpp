// Kernel throughput microbenchmarks (google-benchmark), cf. Sec. 6.3: the
// paper's proof-of-concept CUDA build evaluated eq. 10 on 20-50k
// fingerprint pairs per second on a low-end GPU.  These benches report the
// CPU figures of this implementation for the same kernels.

#include <benchmark/benchmark.h>

#include <vector>

#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/core/merge.hpp"
#include "glove/core/stretch.hpp"
#include "glove/synth/generator.hpp"
#include "glove/util/rng.hpp"

namespace {

using namespace glove;

cdr::Fingerprint random_fingerprint(util::Xoshiro256& rng, cdr::UserId id,
                                    std::size_t samples) {
  std::vector<cdr::Sample> list;
  list.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    cdr::Sample s;
    s.sigma = cdr::SpatialExtent{util::uniform(rng, 0.0, 100'000.0), 100.0,
                                 util::uniform(rng, 0.0, 100'000.0), 100.0};
    s.tau = cdr::TemporalExtent{util::uniform(rng, 0.0, 20'160.0), 1.0};
    list.push_back(s);
  }
  return cdr::Fingerprint{id, std::move(list)};
}

void BM_SampleStretch(benchmark::State& state) {
  util::Xoshiro256 rng{1};
  const cdr::Fingerprint a = random_fingerprint(rng, 0, 2);
  const cdr::Fingerprint b = random_fingerprint(rng, 1, 2);
  const core::StretchLimits limits;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sample_stretch(
        a.samples()[0], 1, b.samples()[1], 1, limits));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleStretch);

/// The paper's headline kernel: eq. 10 on a fingerprint pair.  items/s is
/// directly comparable with the 20-50k pairs/s of Sec. 6.3 (length ~ the
/// benchmarked arg).
void BM_FingerprintStretchPair(benchmark::State& state) {
  util::Xoshiro256 rng{2};
  const auto length = static_cast<std::size_t>(state.range(0));
  const cdr::Fingerprint a = random_fingerprint(rng, 0, length);
  const cdr::Fingerprint b = random_fingerprint(rng, 1, length + 1);
  const core::StretchLimits limits;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fingerprint_stretch(a, b, limits));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FingerprintStretchPair)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_MergeFingerprints(benchmark::State& state) {
  util::Xoshiro256 rng{3};
  const auto length = static_cast<std::size_t>(state.range(0));
  const cdr::Fingerprint a = random_fingerprint(rng, 0, length);
  const cdr::Fingerprint b = random_fingerprint(rng, 1, length);
  const core::MergeOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::merge_fingerprints(a, b, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergeFingerprints)->Arg(25)->Arg(100);

void BM_KGapSmallDataset(benchmark::State& state) {
  synth::SynthConfig config = synth::civ_like(
      static_cast<std::size_t>(state.range(0)), 7);
  config.days = 3.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::k_gap_values(data, 2));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()) *
                          static_cast<std::int64_t>(data.size() - 1) / 2);
}
BENCHMARK(BM_KGapSmallDataset)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_GloveEndToEnd(benchmark::State& state) {
  synth::SynthConfig config = synth::civ_like(
      static_cast<std::size_t>(state.range(0)), 11);
  config.days = 3.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  core::GloveConfig glove_config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::anonymize(data, glove_config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_GloveEndToEnd)->Arg(60)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace
