// Shard-executor throughput harness: the same streaming bordered sharded
// run through the in-process thread pool and the multi-process
// coordinator/worker backend, timed side by side with the byte-parity of
// their outputs checked on every run.
//
//   GLOVE_USERS=20000 ./build/bench/bench_executor
//
// The process executor ships dataset indices out and finalized groups
// back while workers re-read their shard slices from the shared glovebin
// file, so its overhead is the wire protocol plus per-worker io — the
// table shows what that costs (or saves, on multi-core machines) relative
// to the shared-memory pool.  The "identical" column is deterministic and
// doubles as the baseline's parity record: it must read "yes" on every
// machine.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/cdr/binio.hpp"
#include "glove/shard/config.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;
namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

struct Measured {
  RunReport report;
  double seconds = 0.0;
  std::string output;
};

Measured run(const Engine& engine, const std::string& input,
             const std::string& output, shard::ExecutorKind executor,
             std::size_t exec_workers) {
  api::RunConfig config;
  config.strategy = api::kStrategySharded;
  config.k = 2;
  config.sharded.max_shard_users = 500;
  config.sharded.executor = executor;
  config.sharded.exec_workers = exec_workers;

  const auto source = api::open_dataset_source(input);
  const auto sink = api::make_dataset_sink(output, "csv");
  const auto start = std::chrono::steady_clock::now();
  Measured measured;
  measured.report =
      api::run_streaming_or_exit(engine, *source, *sink, config);
  measured.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  measured.output = read_file(output);
  return measured;
}

}  // namespace

int main() {
  const Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/20'000,
                                                  /*default_days=*/1.0);
  const cdr::FingerprintDataset data = bench::make_civ(scale);
  bench::print_banner("shard executors (inprocess vs process, k=2)", data);

  const fs::path work =
      fs::temp_directory_path() /
      ("glove_bench_executor-" + std::to_string(scale.users));
  fs::create_directories(work);
  const std::string input = (work / "dataset.glovebin").string();
  cdr::write_dataset_glovebin_file(input, data);

  struct Row {
    std::string label;
    shard::ExecutorKind executor;
    std::size_t workers;
  };
  const Row rows[] = {
      {"inprocess", shard::ExecutorKind::kInProcess, 0},
      {"process x1", shard::ExecutorKind::kProcess, 1},
      {"process x2", shard::ExecutorKind::kProcess, 2},
      {"process x4", shard::ExecutorKind::kProcess, 4},
  };

  stats::TextTable table{"Streaming sharded run by executor"};
  table.header({"executor", "seconds", "speedup", "fingerprints/s", "groups",
                "identical"});
  std::string reference;
  double baseline = 0.0;
  bool all_identical = true;
  for (const Row& row : rows) {
    const std::string output =
        (work / ("anon-" + std::to_string(&row - rows) + ".csv")).string();
    const Measured m =
        run(engine, input, output, row.executor, row.workers);
    if (reference.empty()) {
      reference = m.output;
      baseline = m.seconds;
    }
    const bool identical = m.output == reference;
    all_identical = all_identical && identical;
    table.row({row.label, stats::fmt(m.seconds, 2),
               stats::fmt(baseline / m.seconds, 2) + "x",
               std::to_string(static_cast<std::uint64_t>(
                   static_cast<double>(data.size()) / m.seconds)),
               std::to_string(m.report.counters.output_groups),
               identical ? "yes" : "NO"});
    fs::remove(output);
  }
  table.print(std::cout);
  std::cout << "\n  outputs byte-identical across executors: "
            << (all_identical ? "yes" : "NO") << "\n";

  std::error_code ec;
  fs::remove_all(work, ec);
  if (!all_identical) {
    std::cerr << "ERROR: executor outputs diverged\n";
    return 1;
  }
  return 0;
}
