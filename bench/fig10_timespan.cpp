// Fig. 10 reproduction — accuracy vs dataset timespan (GLOVE, k = 2).
//
// The 14-day datasets are cut to 1/2/5/7/14-day windows, each anonymized
// independently.  Paper shape: shorter datasets anonymize more accurately
// (1-day roughly twice as precise as 2-week), with a sub-linear loss as
// the span grows (weekly periodicity saturates fingerprint diversity).

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

void run_dataset(const Engine& engine, const cdr::FingerprintDataset& data,
                 double max_days) {
  stats::TextTable table{"Fig. 10 — accuracy vs timespan (" + data.name() +
                         ", k=2)"};
  table.header({"days", "users", "pos mean", "pos median", "time mean",
                "time median"});
  for (const double days : {1.0, 2.0, 5.0, 7.0, 14.0}) {
    if (days > max_days + 1e-9) continue;
    const cdr::FingerprintDataset window =
        cdr::cut_time_window(data, 0.0, days * 1'440.0);
    if (window.size() < 4) continue;
    api::RunConfig config;
    config.k = 2;
    const RunReport result = api::run_or_exit(engine, window, config);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(result.anonymized));
    table.row({stats::fmt(days, 0), std::to_string(window.size()),
               stats::fmt(summary.mean_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.mean_time_min, 1) + "min",
               stats::fmt(summary.median_time_min, 1) + "min"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/220);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  const cdr::FingerprintDataset sen = bench::make_sen(scale);
  bench::print_banner("Fig. 10 (accuracy vs timespan)", civ);
  run_dataset(engine, civ, scale.days);
  bench::print_banner("Fig. 10 (accuracy vs timespan)", sen);
  run_dataset(engine, sen, scale.days);
  std::cout << "\n  Paper shape: accuracy roughly halves from 1-day to "
               "14-day spans, with diminishing degradation.\n";
  return 0;
}
