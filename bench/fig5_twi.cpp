// Fig. 5 reproduction — the "why": long-tailed time diversity.
//
//  (a) CDF of the Tail Weight Index of the per-user sample-stretch
//      distributions (total delta, spatial component, temporal component)
//      on civ-like data.  Paper shape: spatial TWI < 1.5 in ~85% of cases
//      (exponential-or-lighter tails), temporal TWI >= 1.5 in ~70%
//      (heavy tails); the total follows the temporal component.
//  (b) CDF of the temporal share of the total stretch effort,
//      sum(T)/(sum(S)+sum(T)), for both datasets.  Paper shape: in ~95% of
//      fingerprints the temporal stretch exceeds the spatial one; in half
//      it contributes >= 80% of the total.

#include <algorithm>
#include <iostream>

#include "common/bench_common.hpp"
#include "glove/analysis/anonymizability.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

analysis::TailAnalysis analyze(const cdr::FingerprintDataset& data) {
  const auto kgaps = core::k_gaps(data, 2);
  return analysis::analyze_tails(analysis::stretch_profiles(data, kgaps));
}

void figure_5a(const analysis::TailAnalysis& tails) {
  const std::vector<double> grid{0.3, 0.5, 0.8, 1.0, 1.5,
                                 2.0, 3.0, 5.0, 10.0, 30.0, 100.0};
  stats::TextTable table{
      "Fig. 5a — CDF of Tail Weight Index per fingerprint (civ-like)"};
  std::vector<std::string> header{"component"};
  for (const auto& label : bench::grid_labels(grid, "")) {
    header.push_back(label);
  }
  table.header(std::move(header));

  const auto add = [&](const std::string& name,
                       const std::vector<double>& values) {
    const stats::EmpiricalCdf cdf{values};
    std::vector<std::string> row{name};
    for (const auto& cell : bench::cdf_row(cdf, grid)) row.push_back(cell);
    table.row(std::move(row));
    return cdf;
  };
  add("delta (total)", tails.twi_total);
  const auto spatial = add("w_s*phi_s (space)", tails.twi_spatial);
  const auto temporal = add("w_t*phi_t (time)", tails.twi_temporal);
  table.print(std::cout);

  std::cout << "  spatial TWI < 1.5: " << stats::fmt_pct(spatial.at(1.5))
            << "  (paper: ~85%)\n"
            << "  temporal TWI >= 1.5: "
            << stats::fmt_pct(1.0 - temporal.at(1.5))
            << "  (paper: ~70%)\n";
}

void figure_5b(const std::string& name,
               const analysis::TailAnalysis& tails) {
  const std::vector<double> grid{0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9, 0.999, 1.0};
  const stats::EmpiricalCdf cdf{tails.temporal_share};
  stats::TextTable table{"Fig. 5b — CDF of temporal share of stretch (" +
                         name + ")"};
  std::vector<std::string> header{"dataset"};
  for (const auto& label : bench::grid_labels(grid, "")) {
    header.push_back(label);
  }
  table.header(std::move(header));
  std::vector<std::string> row{name};
  for (const auto& cell : bench::cdf_row(cdf, grid)) row.push_back(cell);
  table.row(std::move(row));
  table.print(std::cout);

  std::cout << "  temporal > spatial: " << stats::fmt_pct(1.0 - cdf.at(0.5))
            << "  (paper: ~95%)\n"
            << "  temporal >= 80% of total: "
            << stats::fmt_pct(1.0 - cdf.at(0.8))
            << "  (paper: ~50%)\n"
            << "  fully temporal: " << stats::fmt_pct(1.0 - cdf.at(0.999))
            << "  (paper: ~15%)\n";
}

}  // namespace

int main() {
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/250);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  const cdr::FingerprintDataset sen = bench::make_sen(scale);
  bench::print_banner("Fig. 5 (tail analysis)", civ);

  const analysis::TailAnalysis civ_tails = analyze(civ);
  figure_5a(civ_tails);
  figure_5b(civ.name(), civ_tails);

  bench::print_banner("Fig. 5 (tail analysis)", sen);
  figure_5b(sen.name(), analyze(sen));
  return 0;
}
