// Tab. 2 reproduction — comparative analysis of W4M-LC and GLOVE.
//
// Four datasets (countrywide civ-like and sen-like, citywide abidjan-like
// and dakar-like subsets), two anonymity levels (k = 2 and k = 5), two
// algorithms.  Rows match the paper's table: discarded fingerprints,
// created samples, deleted samples, mean position error, mean time error.
//
// GLOVE runs with the paper's suppression setting (15 km / 6 h); W4M-LC
// with its suggested delta = 2 km and 10% trash bin.  Paper shape: W4M
// fabricates 17-74% synthetic samples and suffers km-scale/hour-to-day
// scale mean errors, while GLOVE discards no fingerprint, creates nothing,
// deletes a few percent and keeps errors around 1 km / 1 h at k = 2.

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

struct Row {
  std::string dataset;
  std::uint32_t k = 0;
  // W4M-LC
  std::uint64_t w4m_discarded = 0;
  std::uint64_t w4m_created = 0;
  std::uint64_t w4m_deleted = 0;
  double w4m_pos_error_m = 0.0;
  double w4m_time_error_min = 0.0;
  // GLOVE
  std::uint64_t glove_deleted = 0;
  double glove_pos_error_m = 0.0;
  double glove_time_error_min = 0.0;
  std::uint64_t input_samples = 0;
  std::uint64_t input_users = 0;
};

Row run_case(const Engine& engine, const cdr::FingerprintDataset& data,
             std::uint32_t k) {
  Row row;
  row.dataset = data.name();
  row.k = k;
  row.input_samples = data.total_samples();
  row.input_users = data.total_users();

  // Both sides of the table are one Engine run each; only the strategy
  // (and the paper's per-algorithm knobs) differ.
  api::RunConfig w4m_config;
  w4m_config.strategy = api::kStrategyW4M;
  w4m_config.k = k;
  w4m_config.w4m.delta_m = 2'000.0;
  w4m_config.w4m.trash_fraction = 0.10;
  const RunReport w4m = api::run_or_exit(engine, data, w4m_config);
  row.w4m_discarded = w4m.counters.discarded_fingerprints;
  row.w4m_created = w4m.counters.created_samples;
  row.w4m_deleted = w4m.counters.deleted_samples;
  row.w4m_pos_error_m = api::find_metric(w4m, "mean_position_error_m");
  row.w4m_time_error_min = api::find_metric(w4m, "mean_time_error_min");

  api::RunConfig glove_config;
  glove_config.k = k;
  glove_config.suppression = core::SuppressionThresholds{15'000.0, 360.0};
  const RunReport glove = api::run_or_exit(engine, data, glove_config);
  const auto summary =
      core::summarize_accuracy(core::measure_accuracy(glove.anonymized));
  row.glove_deleted = glove.counters.deleted_samples;
  row.glove_pos_error_m = summary.mean_position_m;
  row.glove_time_error_min = summary.mean_time_min;
  return row;
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "0%";
  return stats::fmt_pct(static_cast<double>(part) /
                        static_cast<double>(whole));
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/220);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  const cdr::FingerprintDataset sen = bench::make_sen(scale);
  const cdr::FingerprintDataset abidjan =
      bench::city_subset(civ, "abidjan-like");
  const cdr::FingerprintDataset dakar = bench::city_subset(sen, "dakar-like");
  bench::print_banner("Tab. 2 (W4M-LC vs GLOVE)", civ);
  bench::print_banner("Tab. 2 (W4M-LC vs GLOVE)", sen);
  bench::print_banner("Tab. 2 (W4M-LC vs GLOVE)", abidjan);
  bench::print_banner("Tab. 2 (W4M-LC vs GLOVE)", dakar);

  for (const std::uint32_t k : {2u, 5u}) {
    stats::TextTable table{"Tab. 2 — W4M-LC vs GLOVE, k = " +
                           std::to_string(k)};
    table.header({"dataset", "metric", "W4M-LC", "GLOVE"});
    for (const auto* data : {&civ, &sen, &abidjan, &dakar}) {
      if (data->size() < 4 * k) {
        std::cout << "  skipping " << data->name()
                  << " (too few users at this scale)\n";
        continue;
      }
      const Row row = run_case(engine, *data, k);
      table.row({row.dataset, "discarded fingerprints",
                 std::to_string(row.w4m_discarded) + " (" +
                     pct(row.w4m_discarded, row.input_users) + ")",
                 "0 (0%)"});
      table.row({"", "created samples",
                 std::to_string(row.w4m_created) + " (" +
                     pct(row.w4m_created, row.input_samples) + ")",
                 "0 (0%)"});
      table.row({"", "deleted samples",
                 std::to_string(row.w4m_deleted) + " (" +
                     pct(row.w4m_deleted, row.input_samples) + ")",
                 std::to_string(row.glove_deleted) + " (" +
                     pct(row.glove_deleted, row.input_samples) + ")"});
      table.row({"", "mean position error",
                 stats::fmt(row.w4m_pos_error_m, 0) + " m",
                 stats::fmt(row.glove_pos_error_m, 0) + " m"});
      table.row({"", "mean time error",
                 stats::fmt(row.w4m_time_error_min, 1) + " min",
                 stats::fmt(row.glove_time_error_min, 1) + " min"});
    }
    table.print(std::cout);
  }
  std::cout << "\n  Paper reference (k=2, d4d-civ): W4M-LC creates 24.9% "
               "samples, mean errors 10.2 km / 1151 min; GLOVE deletes "
               "8.3%, mean errors 1.01 km / 60.2 min.\n";
  return 0;
}
