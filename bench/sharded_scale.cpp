// Sharded-vs-single-matrix scaling harness (ROADMAP "Sharded k-gap /
// merge"): runs the same population through --strategy=full, pruned-kgap
// and sharded, printing wall-clocks, speedups, decomposition counters and
// the per-shard timing table from the run report.
//
//   GLOVE_USERS=5000 GLOVE_THREADS=8 ./build/bench/bench_sharded_scale
//
// On multi-core machines the sharded wall-clock gain compounds an
// algorithmic gain (tiled quadratic cost) with shard-level parallelism;
// the accuracy columns quantify what the tiling costs in return.

#include <chrono>
#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

struct Measured {
  RunReport report;
  double seconds = 0.0;
};

Measured run(const Engine& engine, const cdr::FingerprintDataset& data,
             const std::string& strategy) {
  api::RunConfig config;
  config.strategy = strategy;
  config.k = 2;
  const auto start = std::chrono::steady_clock::now();
  Measured measured{api::run_or_exit(engine, data, config), 0.0};
  measured.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  if (!core::is_k_anonymous(measured.report.anonymized, config.k)) {
    std::cerr << "ERROR: " << strategy << " output is not k-anonymous\n";
    std::exit(1);
  }
  return measured;
}

}  // namespace

int main() {
  const Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/1'500,
                                                  /*default_days=*/3.0);
  const cdr::FingerprintDataset data = bench::make_civ(scale);
  bench::print_banner("sharded scaling (full vs pruned vs sharded, k=2)",
                      data);

  stats::TextTable table{"Wall-clock and accuracy by strategy"};
  table.header({"strategy", "seconds", "speedup", "groups", "pos median",
                "time median"});
  double baseline = 0.0;
  Measured sharded_run{};
  for (const std::string strategy : {"full", "pruned-kgap", "sharded"}) {
    const Measured m = run(engine, data, strategy);
    if (baseline == 0.0) baseline = m.seconds;
    if (strategy == "sharded") sharded_run = m;
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(m.report.anonymized));
    table.row({strategy, stats::fmt(m.seconds, 2),
               stats::fmt(baseline / m.seconds, 1) + "x",
               std::to_string(m.report.counters.output_groups),
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_time_min, 1) + "min"});
  }
  table.print(std::cout);

  const RunReport& report = sharded_run.report;
  std::cout << "\n  sharded decomposition: "
            << api::find_metric(report, "tiles") << " tiles -> "
            << api::find_metric(report, "shards") << " shards, "
            << api::find_metric(report, "deferred_fingerprints")
            << " deferred to reconciliation ("
            << api::find_metric(report, "reconciled_groups")
            << " reconciled groups, "
            << api::find_metric(report, "absorbed_leftovers")
            << " absorbed)\n";

  stats::TextTable shards{"Per-shard timings (run report 'shards' rows)"};
  shards.header({"shard", "kept", "deferred", "groups", "init s", "merge s",
                 "total s"});
  for (const api::ShardTimingRow& row : report.shard_timings) {
    shards.row({std::to_string(row.shard),
                std::to_string(row.input_fingerprints),
                std::to_string(row.deferred),
                std::to_string(row.output_groups),
                stats::fmt(row.init_seconds, 3),
                stats::fmt(row.merge_seconds, 3),
                stats::fmt(row.total_seconds, 3)});
  }
  shards.print(std::cout);
  return 0;
}
