// Fig. 11 reproduction — accuracy vs dataset population (GLOVE, k = 2).
//
// Random user subsets of 5-100% of each dataset, anonymized independently.
// Paper shape: thinner crowds are harder to hide in, but the degradation
// only becomes severe below a small fraction of the population.

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

void run_dataset(const Engine& engine, const cdr::FingerprintDataset& data,
                 std::uint64_t seed) {
  stats::TextTable table{"Fig. 11 — accuracy vs population (" + data.name() +
                         ", k=2)"};
  table.header({"fraction", "users", "pos mean", "pos median", "time mean",
                "time median"});
  for (const double fraction : {0.05, 0.10, 0.25, 0.50, 0.75, 1.00}) {
    const cdr::FingerprintDataset subset =
        fraction >= 1.0 ? data : cdr::subsample_users(data, fraction, seed);
    if (subset.size() < 4) continue;
    api::RunConfig config;
    config.k = 2;
    const RunReport result = api::run_or_exit(engine, subset, config);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(result.anonymized));
    table.row({stats::fmt_pct(fraction, 0), std::to_string(subset.size()),
               stats::fmt(summary.mean_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.mean_time_min, 1) + "min",
               stats::fmt(summary.median_time_min, 1) + "min"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/250);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  const cdr::FingerprintDataset sen = bench::make_sen(scale);
  bench::print_banner("Fig. 11 (accuracy vs population)", civ);
  run_dataset(engine, civ, scale.seed * 101);
  bench::print_banner("Fig. 11 (accuracy vs population)", sen);
  run_dataset(engine, sen, scale.seed * 103);
  std::cout << "\n  Paper shape: accuracy degrades as the population "
               "shrinks, sharply only at small fractions.\n";
  return 0;
}
