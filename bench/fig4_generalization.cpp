// Fig. 4 reproduction — why legacy uniform generalization fails.
//
// For each spatiotemporal generalization level (0.1 km-1 min up to the
// uninformative 20 km-8 h) we generalize the dataset and recompute the CDF
// of the 2-gap.  Paper shape: even the coarsest level leaves the majority
// of users non-2-anonymous (paper: only ~35% reach 2-anonymity at
// 20 km-480 min).

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/core/generalize.hpp"
#include "glove/core/kgap.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

const std::vector<std::pair<std::string, core::GeneralizationLevel>>&
levels() {
  static const std::vector<std::pair<std::string, core::GeneralizationLevel>>
      list{
          {"0.1km-1min", {100.0, 1.0}},
          {"1km-30min", {1'000.0, 30.0}},
          {"2.5km-60min", {2'500.0, 60.0}},
          {"5km-120min", {5'000.0, 120.0}},
          {"10km-240min", {10'000.0, 240.0}},
          {"20km-480min", {20'000.0, 480.0}},
      };
  return list;
}

void run_dataset(const cdr::FingerprintDataset& data) {
  const auto grid = bench::kgap_grid();
  stats::TextTable table{
      "Fig. 4 — CDF of 2-gap under uniform generalization (" + data.name() +
      ")"};
  std::vector<std::string> header{"level"};
  for (const auto& label : bench::grid_labels(grid, "")) {
    header.push_back(label);
  }
  table.header(std::move(header));

  for (const auto& [label, level] : levels()) {
    const cdr::FingerprintDataset coarse =
        core::generalize_dataset(data, level);
    const std::vector<double> gaps = core::k_gap_values(coarse, 2);
    const stats::EmpiricalCdf cdf{gaps};
    std::vector<std::string> row{label};
    for (const auto& cell : bench::cdf_row(cdf, grid)) row.push_back(cell);
    table.row(std::move(row));

    std::size_t anonymous = 0;
    for (const double g : gaps) {
      if (g == 0.0) ++anonymous;
    }
    std::cout << "  " << label << ": 2-anonymous users "
              << stats::fmt_pct(static_cast<double>(anonymous) /
                                static_cast<double>(gaps.size()))
              << "  (paper at 20km-480min: ~35%)\n";
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/220);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  const cdr::FingerprintDataset sen = bench::make_sen(scale);
  bench::print_banner("Fig. 4 (uniform generalization)", civ);
  run_dataset(civ);
  bench::print_banner("Fig. 4 (uniform generalization)", sen);
  run_dataset(sen);
  return 0;
}
