// Supplementary table — the paper's motivation, measured (Sec. 1 / refs
// [5], [6]), and the defense GLOVE provides:
//
//   * top-N-locations attack (Zang & Bolot): the paper cites 50% of users
//     unique at N = 3 on a 25M dataset;
//   * p-random-points attack (de Montjoye et al.): ~95% unique at p = 4 on
//     1.5M users;
//   * the same attacks after GLOVE: anonymity sets must reach k for every
//     user, and after partial GLOVE they must reach k for the assumed
//     surface.

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/attack/linkage.hpp"
#include "glove/core/partial.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

void report_row(stats::TextTable& table, const std::string& dataset,
                const std::string& attack_name,
                const attack::AttackReport& report) {
  table.row({dataset, attack_name, stats::fmt_pct(report.uniqueness()),
             stats::fmt(report.mean_candidates, 2),
             std::to_string(report.below_k[0]),
             std::to_string(report.below_k[3])});
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/220);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  bench::print_banner("Attack & defense (motivation + verification)", civ);

  stats::TextTable table{
      "Record-linkage attacks: raw data vs GLOVE vs partial GLOVE"};
  table.header({"published", "attack", "unique users", "mean candidates",
                "below k=2", "below k=5"});

  // --- Raw data: the motivation numbers.
  for (const std::size_t n : {1u, 2u, 3u}) {
    attack::TopLocationsAttack top;
    top.top_n = n;
    report_row(table, "raw", "top-" + std::to_string(n) + " locations",
               top.run(civ, civ));
  }
  for (const std::size_t p : {2u, 4u, 6u}) {
    attack::PointsAttack points;
    points.points = p;
    report_row(table, "raw", std::to_string(p) + " random points",
               points.run(civ, civ));
  }

  // --- After full-length GLOVE (k = 2): every attack must be defeated.
  api::RunConfig glove_config;
  glove_config.k = 2;
  const RunReport glove = api::run_or_exit(engine, civ, glove_config);
  {
    attack::TopLocationsAttack top;
    top.top_n = 3;
    report_row(table, "GLOVE k=2", "top-3 locations",
               top.run(civ, glove.anonymized));
    attack::PointsAttack points;
    points.points = 4;
    report_row(table, "GLOVE k=2", "4 random points",
               points.run(civ, glove.anonymized));
    attack::PointsAttack many;
    many.points = 10;
    report_row(table, "GLOVE k=2", "10 random points",
               many.run(civ, glove.anonymized));
  }

  // --- After partial GLOVE (top-3 surface): the in-surface attack is
  // defeated; the full-knowledge attack is out of the threat model.
  core::PartialConfig partial_config;
  partial_config.glove.k = 2;
  partial_config.top_locations = 3;
  const core::PartialResult partial =
      core::anonymize_partial(civ, partial_config);
  {
    attack::TopLocationsAttack top;
    top.top_n = 3;
    report_row(table, "partial k=2", "top-3 locations (in surface)",
               top.run(civ, partial.glove.anonymized));
  }

  table.print(std::cout);
  std::cout << "\n  Paper reference: ~50% unique at top-3 locations "
               "(25M users, [5]); ~95% unique at 4 points (1.5M users, "
               "[6]).  After GLOVE, 'below k' must be 0 at the configured "
               "k.\n";
  return 0;
}
