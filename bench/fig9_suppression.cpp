// Fig. 9 reproduction — combining GLOVE with suppression (civ-like, k=2).
//
// Left sweep: spatial suppression thresholds (4-80 km) at a fixed 6 h
// temporal threshold; right sweep: temporal thresholds (90 min-8 h).
// For each setting we report the fraction of discarded samples and the
// position/time accuracy statistics (mean, median, quartiles).  Paper
// shape: suppressing only a few percent of samples improves the mean
// accuracy dramatically (e.g. mean position error from >5 km to ~1 km
// while discarding < 8% of samples).

#include <iostream>
#include <limits>
#include <optional>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

struct SweepPoint {
  std::string label;
  std::optional<core::SuppressionThresholds> thresholds;
};

void run_sweep(const Engine& engine, const cdr::FingerprintDataset& data,
               const std::string& title,
               const std::vector<SweepPoint>& sweep) {
  stats::TextTable table{title};
  table.header({"threshold", "discarded", "pos mean", "pos med", "pos q25",
                "pos q75", "time mean", "time med", "time q25", "time q75"});
  for (const SweepPoint& point : sweep) {
    api::RunConfig config;
    config.k = 2;
    config.suppression = point.thresholds;
    const RunReport result = api::run_or_exit(engine, data, config);
    const auto summary =
        core::summarize_accuracy(core::measure_accuracy(result.anonymized));
    const double discarded =
        static_cast<double>(result.counters.deleted_samples) /
        static_cast<double>(result.counters.input_samples);
    table.row({point.label, stats::fmt_pct(discarded),
               stats::fmt(summary.mean_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.median_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.q25_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.q75_position_m / 1'000.0, 2) + "km",
               stats::fmt(summary.mean_time_min, 1) + "min",
               stats::fmt(summary.median_time_min, 1) + "min",
               stats::fmt(summary.q25_time_min, 1) + "min",
               stats::fmt(summary.q75_time_min, 1) + "min"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/200);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  bench::print_banner("Fig. 9 (suppression sweeps, k=2)", civ);

  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<SweepPoint> spatial_sweep{{"none", std::nullopt}};
  for (const double km : {80.0, 40.0, 20.0, 15.0, 10.0, 8.0, 4.0}) {
    spatial_sweep.push_back(
        {"6h-" + stats::fmt(km, 0) + "km",
         core::SuppressionThresholds{km * 1'000.0, 360.0}});
  }
  run_sweep(engine, civ,
            "Fig. 9 (left) — spatial thresholds at 6 h temporal (civ-like)",
            spatial_sweep);

  std::vector<SweepPoint> temporal_sweep{{"none", std::nullopt}};
  for (const double minutes : {480.0, 360.0, 240.0, 180.0, 120.0, 90.0}) {
    temporal_sweep.push_back(
        {stats::fmt(minutes, 0) + "min",
         core::SuppressionThresholds{kInf, minutes}});
  }
  run_sweep(engine, civ, "Fig. 9 (right) — temporal thresholds (civ-like)",
            temporal_sweep);
  return 0;
}
