// Fig. 3 reproduction — anonymizability of the raw datasets.
//
//  (a) CDF of the 2-gap on civ-like and sen-like data.  Paper shape: the
//      CDF starts at 0 (no user is 2-anonymous) and nearly all probability
//      mass sits below ~0.2.
//  (b) CDF of the k-gap for k in {2, 5, 10, 25, 50, 100} on sen-like data.
//      Paper shape: curves shift right sub-linearly with k.

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/core/kgap.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

void figure_3a(const cdr::FingerprintDataset& civ,
               const cdr::FingerprintDataset& sen) {
  const auto grid = bench::kgap_grid();
  stats::TextTable table{"Fig. 3a — CDF of 2-gap (rows: dataset)"};
  std::vector<std::string> header{"dataset"};
  for (const auto& label : bench::grid_labels(grid, "")) {
    header.push_back(label);
  }
  table.header(std::move(header));

  for (const auto* data : {&civ, &sen}) {
    const stats::EmpiricalCdf cdf{core::k_gap_values(*data, 2)};
    std::vector<std::string> row{data->name()};
    for (const auto& cell : bench::cdf_row(cdf, grid)) row.push_back(cell);
    table.row(std::move(row));

    const std::size_t anonymous = static_cast<std::size_t>(
        cdf.at(0.0) * static_cast<double>(data->size()) + 0.5);
    std::cout << "  " << data->name() << ": users already 2-anonymous: "
              << anonymous << " / " << data->size()
              << "  (paper: 0);  median 2-gap = "
              << stats::fmt(cdf.inverse(0.5), 3)
              << "  (paper: 0.09 civ / <=0.17 at p80 sen)\n";
  }
  table.print(std::cout);
}

void figure_3b(const cdr::FingerprintDataset& sen) {
  const auto grid = bench::kgap_grid();
  stats::TextTable table{"Fig. 3b — CDF of k-gap, sen-like (rows: k)"};
  std::vector<std::string> header{"k"};
  for (const auto& label : bench::grid_labels(grid, "")) {
    header.push_back(label);
  }
  table.header(std::move(header));

  double previous_median = 0.0;
  for (const std::uint32_t k : {2u, 5u, 10u, 25u, 50u, 100u}) {
    if (sen.size() < k) break;
    const stats::EmpiricalCdf cdf{core::k_gap_values(sen, k)};
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& cell : bench::cdf_row(cdf, grid)) row.push_back(cell);
    table.row(std::move(row));
    const double median = cdf.inverse(0.5);
    std::cout << "  k=" << k << ": median k-gap " << stats::fmt(median, 3)
              << (median >= previous_median ? "  (monotone ok)" : "  (!)")
              << '\n';
    previous_median = median;
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/250);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  const cdr::FingerprintDataset sen = bench::make_sen(scale);
  bench::print_banner("Fig. 3 (k-gap CDFs)", civ);
  bench::print_banner("Fig. 3 (k-gap CDFs)", sen);
  figure_3a(civ, sen);
  figure_3b(sen);
  return 0;
}
