// Supplementary table — data-utility after anonymization (the Sec. 2.4
// claims, measured): home detection, spatial population distribution and
// hourly activity profile, compared across the original data, GLOVE
// (with and without suppression) and W4M-LC.

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/analysis/utility.hpp"
#include "glove/api/cli.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

void add_row(stats::TextTable& table, const std::string& name,
             const cdr::FingerprintDataset& original,
             const cdr::FingerprintDataset& published) {
  const analysis::HomeUtilityReport homes =
      analysis::compare_homes(original, published);
  const double density = analysis::density_distance(
      analysis::population_density(original, 10'000.0),
      analysis::population_density(published, 10'000.0));
  const double profile = analysis::profile_distance(
      analysis::hourly_profile(original),
      analysis::hourly_profile(published));
  table.row({name, stats::fmt_pct(homes.same_tile_fraction),
             stats::fmt(homes.median_displacement_m / 1'000.0, 2) + "km",
             stats::fmt(density, 3), stats::fmt(profile, 3)});
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/200);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  bench::print_banner("Utility after anonymization (Sec. 2.4 claims)", civ);

  stats::TextTable table{
      "Utility of published data vs original (civ-like, k=2)"};
  table.header({"published", "homes same tile", "home shift (median)",
                "density TV dist", "hourly TV dist"});

  add_row(table, "original", civ, civ);

  api::RunConfig plain;
  plain.k = 2;
  add_row(table, "GLOVE", civ,
          api::run_or_exit(engine, civ, plain).anonymized);

  api::RunConfig suppressing = plain;
  suppressing.suppression = core::SuppressionThresholds{15'000.0, 360.0};
  add_row(table, "GLOVE +suppression", civ,
          api::run_or_exit(engine, civ, suppressing).anonymized);

  api::RunConfig w4m = plain;
  w4m.strategy = api::kStrategyW4M;
  add_row(table, "W4M-LC", civ,
          api::run_or_exit(engine, civ, w4m).anonymized);

  table.print(std::cout);
  std::cout << "\n  Reading: k-anonymized data must keep aggregate "
               "distributions close (small TV distances) and routine "
               "behaviours (homes) mostly intact — the analyses the paper "
               "says k-anonymity suits.  W4M's perturbation moves users "
               "and fabricates samples, degrading all three.\n";
  return 0;
}
