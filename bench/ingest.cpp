// Dataset ingest throughput: CSV parse vs glovebin decode (ROADMAP
// "Lossless dataset round-trips").  Streaming sharded runs re-read the
// source once per pass, so ingest speed multiplies across the whole run —
// the glovebin format exists to turn that repeated double-parsing into
// block decodes.  The harness writes the same synthetic dataset in both
// formats, drains each through its DatasetSource several times and prints
// per-format throughput plus the speedup, after verifying the two
// spellings serialize byte-identically (the format's losslessness claim).
//
//   GLOVE_USERS=50000 ./build/bench/bench_ingest

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/bench_common.hpp"
#include "glove/api/source.hpp"
#include "glove/cdr/binio.hpp"
#include "glove/cdr/io.hpp"
#include "glove/stats/table.hpp"

namespace {

using namespace glove;

constexpr int kPasses = 3;

struct Drained {
  std::uint64_t fingerprints = 0;
  std::uint64_t samples = 0;
  double seconds = 0.0;
};

Drained drain(api::DatasetSource& source) {
  Drained total;
  cdr::Fingerprint fp;
  const auto start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    source.rewind();
    while (source.next(fp)) {
      ++total.fingerprints;
      total.samples += fp.size();
    }
  }
  total.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return total;
}

std::string serialize(const std::string& path) {
  const auto source = api::open_dataset_source(path);
  cdr::FingerprintDataset data;
  cdr::Fingerprint fp;
  while (source->next(fp)) data.add(std::move(fp));
  std::ostringstream out;
  cdr::write_dataset_csv(out, data);
  return out.str();
}

}  // namespace

int main() {
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/20'000,
                                                  /*default_days=*/2.0);
  const cdr::FingerprintDataset data = bench::make_civ(scale);
  bench::print_banner("ingest throughput (csv parse vs glovebin decode)",
                      data);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("glove_bench_ingest_" +
       std::to_string(static_cast<std::uint64_t>(
           std::chrono::steady_clock::now().time_since_epoch().count())));
  std::filesystem::create_directories(dir);
  const std::string csv = (dir / "data.csv").string();
  const std::string bin = (dir / "data.glovebin").string();
  cdr::write_dataset_file(csv, data);
  cdr::write_dataset_glovebin_file(bin, data);

  if (serialize(bin) != serialize(csv)) {
    std::cerr << "ERROR: glovebin and csv spellings are not byte-identical\n";
    std::filesystem::remove_all(dir);
    return 1;
  }

  stats::TextTable table{"Full-scan ingest, " + std::to_string(kPasses) +
                         " passes per format"};
  table.header({"format", "file MiB", "seconds", "Mfp/s", "Msamples/s",
                "speedup"});
  double csv_seconds = 0.0;
  for (const std::string& path : {csv, bin}) {
    const auto source = api::open_dataset_source(path);
    const Drained d = drain(*source);
    if (d.fingerprints != kPasses * data.size()) {
      std::cerr << "ERROR: " << path << " drained " << d.fingerprints
                << " fingerprints, expected " << kPasses * data.size()
                << '\n';
      std::filesystem::remove_all(dir);
      return 1;
    }
    if (csv_seconds == 0.0) csv_seconds = d.seconds;
    const double mib =
        static_cast<double>(std::filesystem::file_size(path)) / (1 << 20);
    table.row({std::string{source->kind()}, stats::fmt(mib, 1),
               stats::fmt(d.seconds, 3),
               stats::fmt(static_cast<double>(d.fingerprints) / d.seconds /
                              1e6, 2),
               stats::fmt(static_cast<double>(d.samples) / d.seconds / 1e6,
                          2),
               stats::fmt(csv_seconds / d.seconds, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n  spellings byte-identical after round-trip: yes\n";
  std::filesystem::remove_all(dir);
  return 0;
}
