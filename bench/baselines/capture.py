#!/usr/bin/env python3
"""Capture bench baselines into bench/baselines/*.json.

Runs every bench binary on the fixed synthetic population (the env pin
below) and checks the numbers in:

  * one JSON per text bench (fig*, tab2, ablation, utility, sharded_scale,
    attack_defense) recording the full stdout — a reference for humans and
    for coarse diffing after algorithm changes;
  * throughput.json holding the parsed items/sec of every
    bench_throughput kernel — the machine-checked regression gate
    (see check.py);
  * streaming_metrics.json holding the *deterministic* observability of a
    pinned streaming sharded run (pass fingerprint/block counts,
    blocks_read, reconcile chunk passes, the report's obs counters).
    These are exact-compared by check.py — unlike items/sec they must
    reproduce bit-for-bit on any machine, so a diff means the data plane
    changed, not the hardware.

Usage:
  python3 bench/baselines/capture.py --build-dir build [--only throughput]

Baselines are hardware-dependent: re-capture (and review the diff) when
the reference machine class changes.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

BASELINE_DIR = pathlib.Path(__file__).resolve().parent

# The fixed population every bench runs on (small enough for CI, large
# enough that the kernels dominate process startup).
FIXED_ENV = {
    "GLOVE_USERS": "120",
    "GLOVE_DAYS": "3",
    "GLOVE_SEED": "1",
    "GLOVE_THREADS": "2",
}


def bench_env():
    env = dict(os.environ)
    env.update(FIXED_ENV)
    return env


def run_text_bench(binary: pathlib.Path) -> dict:
    result = subprocess.run(
        [str(binary)], capture_output=True, text=True, env=bench_env(),
        timeout=1800, check=True)
    return {
        "bench": binary.name,
        "env": FIXED_ENV,
        "stdout": result.stdout,
    }


def run_throughput(binary: pathlib.Path) -> dict:
    # Median of repeated runs: single-shot items/sec swings far more than
    # the 15% regression tolerance on small kernels, medians do not.  The
    # raw per-rep values ride along so check.py can tell a persistent
    # speedup (every rep above the baseline) from a lucky run.
    result = subprocess.run(
        [str(binary), "--benchmark_format=json",
         "--benchmark_repetitions=5"],
        capture_output=True, text=True, env=bench_env(), timeout=1800,
        check=True)
    doc = json.loads(result.stdout)
    items = {}
    reps = {}
    for bench in doc.get("benchmarks", []):
        ips = bench.get("items_per_second")
        if ips is None:
            continue
        if bench.get("run_type") == "iteration":
            reps.setdefault(bench["run_name"], []).append(ips)
        elif bench.get("aggregate_name") == "median":
            items[bench["run_name"]] = ips
    return {
        "bench": binary.name,
        "env": FIXED_ENV,
        "items_per_second": items,
        "items_per_second_reps": reps,
    }


# The pinned streaming run whose deterministic metrics are baselined:
# glovebin input (so the planning pass is index-served and rewound passes
# block-seek) through the bordered sharded strategy with a reconcile
# chunk budget small enough to force several rewound passes.
STREAMING_SYNTH = ["--users=20000", "--days=1", "--seed=3"]
STREAMING_RUN = [
    "--strategy=sharded", "--shard-users=500", "--shard-workers=2",
    "--reconcile-chunk-users=4000",
]


def run_streaming_metrics(build_dir: pathlib.Path) -> dict:
    example = build_dir / "examples" / "example_anonymize_csv"
    if not example.is_file():
        raise SystemExit(f"error: {example} not found (build first)")
    with tempfile.TemporaryDirectory() as tmp:
        work = pathlib.Path(tmp)
        csv = work / "dataset.csv"
        binfile = work / "dataset.glovebin"
        report_path = work / "run.json"
        subprocess.run(
            [str(example), f"--synth-dataset={csv}"] + STREAMING_SYNTH,
            capture_output=True, env=bench_env(), timeout=1800, check=True)
        subprocess.run(
            [str(example), "--convert", f"--input={csv}",
             f"--output={binfile}"],
            capture_output=True, env=bench_env(), timeout=1800, check=True)
        subprocess.run(
            [str(example), f"--input={binfile}",
             f"--output={work / 'anon.csv'}",
             f"--report={report_path}"] + STREAMING_RUN,
            capture_output=True, env=bench_env(), timeout=1800, check=True)
        report = json.loads(report_path.read_text())
    io = report["io"]
    # Only reproducible-anywhere quantities: no timings, no RSS, and no
    # bytes_mapped (page-size dependent rounding).
    return {
        "bench": "streaming_metrics",
        "env": FIXED_ENV,
        "synth": STREAMING_SYNTH,
        "run": STREAMING_RUN,
        "deterministic": {
            "pass_fingerprints": io["pass_fingerprints"],
            "pass_blocks": io["pass_blocks"],
            "file_blocks": io["file_blocks"],
            "blocks_read": io["blocks_read"],
            "reconcile_passes": int(report["metrics"].get(
                "reconcile_passes", 0)),
            "counters": report["counters"],
            "obs": report["obs"],
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding bench binaries")
    parser.add_argument("--only", default=None,
                        help="capture a single bench (e.g. 'throughput')")
    args = parser.parse_args()

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    if not bench_dir.is_dir():
        print(f"error: {bench_dir} not found (build first)", file=sys.stderr)
        return 1

    captured = 0
    for binary in sorted(bench_dir.glob("bench_*")):
        if not os.access(binary, os.X_OK) or binary.is_dir():
            continue
        name = binary.name.removeprefix("bench_")
        if args.only and name != args.only:
            continue
        print(f"capturing {binary.name} ...", flush=True)
        if name == "throughput":
            payload = run_throughput(binary)
        else:
            payload = run_text_bench(binary)
        out = BASELINE_DIR / f"{name}.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
        print(f"  wrote {out}")
        captured += 1

    if args.only in (None, "streaming_metrics"):
        print("capturing streaming_metrics ...", flush=True)
        payload = run_streaming_metrics(pathlib.Path(args.build_dir))
        out = BASELINE_DIR / "streaming_metrics.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
        print(f"  wrote {out}")
        captured += 1

    if captured == 0:
        print("error: no bench binaries captured", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
