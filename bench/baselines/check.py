#!/usr/bin/env python3
"""Fail CI when bench_throughput regresses against the checked-in baseline.

Re-runs bench_throughput on the same pinned population as capture.py and
compares per-kernel items/sec against bench/baselines/throughput.json.
By default the comparison is *normalized*: each kernel's items/sec is
divided by the run's own reference kernel (BM_SampleStretch, a tiny
scalar kernel whose speed tracks raw machine speed), so baselines stay
meaningful across machine classes (laptop vs CI runner) and only
genuine per-kernel regressions trip the gate.  The reference kernel
itself is gated *absolutely* with a looser tolerance
(--reference-tolerance, default 0.5): normalization would otherwise
hide a global slowdown that hits the reference too.  Pass --absolute to
compare every kernel's raw items/sec on a machine matching the capture
host.

Caveat: a change that speeds up the reference kernel itself makes every
normalized ratio look slower — re-capture baselines when touching
sample_stretch.

The gate also ratchets upward: when a kernel runs more than the
tolerance *faster* than its baseline in every repetition (not just the
median — a lucky rep must not move the floor), it prints a re-capture
suggestion so the checked-in performance floor keeps rising.  The
suggestion never fails the run (exit 0).

When bench/baselines/streaming_metrics.json exists the gate also re-runs
the pinned streaming sharded run and *exact*-compares its deterministic
observability (pass fingerprint/block counts, blocks_read, reconcile
passes, the report's obs counters) against the baseline.  These numbers
are machine-independent by design, so there is no tolerance: any diff
means the data plane changed and the baseline needs an intentional
re-capture.

The gate finishes with a baseline-free executor-parity check: the same
pinned streaming sharded run through --executor=inprocess and
--executor=process --exec-workers=2 must produce byte-identical output
(skipped when the example or worker binary is not built).

Usage:
  python3 bench/baselines/check.py --build-dir build [--tolerance 0.15]
                                   [--reference-tolerance 0.5] [--absolute]

Exit codes: 0 ok, 1 regression, 2 usage/setup error.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

import capture  # shares the env pin and the throughput parser

REFERENCE_KERNEL = "BM_SampleStretch"


def normalize(items: dict) -> dict:
    reference = items.get(REFERENCE_KERNEL)
    if not reference:
        raise SystemExit(f"error: reference kernel {REFERENCE_KERNEL} "
                         "missing from throughput run")
    return {name: ips / reference for name, ips in items.items()
            if name != REFERENCE_KERNEL}


def check_streaming_metrics(build_dir: str) -> list:
    """Exact-compares the deterministic streaming metrics; returns
    failure strings (empty when clean or no baseline is checked in)."""
    baseline_path = capture.BASELINE_DIR / "streaming_metrics.json"
    if not baseline_path.is_file():
        return []
    baseline = json.loads(baseline_path.read_text())["deterministic"]
    current = capture.run_streaming_metrics(
        pathlib.Path(build_dir))["deterministic"]
    failures = []
    for key in sorted(set(baseline) | set(current)):
        base, now = baseline.get(key), current.get(key)
        verdict = "FAIL" if now != base else "ok"
        print(f"{verdict:4} streaming_metrics.{key}: {now}"
              + ("" if now == base else f" (baseline {base})"))
        if now != base:
            failures.append(
                f"streaming_metrics.{key}: {now} != baseline {base} "
                "(deterministic metric; exact match required)")
    return failures


# The pinned run the executor-parity gate repeats under both executors.
EXECUTOR_SYNTH = ["--users=5000", "--days=1", "--seed=7"]
EXECUTOR_RUN = ["--strategy=sharded", "--shard-users=500"]


def check_executor_parity(build_dir: str) -> list:
    """Byte-compares the streaming sharded output of the in-process and
    multi-process shard executors; returns failure strings.

    Self-checking (no baseline file): the coordinator/worker backend is
    specified to reproduce the in-process thread pool's output
    byte-for-byte on any machine, so a diff is a data-plane bug, never
    hardware."""
    example = pathlib.Path(build_dir) / "examples" / "example_anonymize_csv"
    worker = pathlib.Path(build_dir) / "tools" / "shard_worker" \
        / "glove_shard_worker"
    if not example.is_file() or not worker.is_file():
        print("note: example_anonymize_csv or glove_shard_worker missing; "
              "skipping executor parity")
        return []
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        work = pathlib.Path(tmp)
        csv = work / "dataset.csv"
        subprocess.run(
            [str(example), f"--synth-dataset={csv}"] + EXECUTOR_SYNTH,
            capture_output=True, env=capture.bench_env(), timeout=1800,
            check=True)
        outputs = {}
        for label, flags in (
                ("inprocess", ["--executor=inprocess"]),
                ("process", ["--executor=process", "--exec-workers=2"])):
            out = work / f"anon-{label}.csv"
            result = subprocess.run(
                [str(example), f"--input={csv}", f"--output={out}"]
                + EXECUTOR_RUN + flags,
                capture_output=True, text=True, env=capture.bench_env(),
                timeout=1800)
            if result.returncode != 0:
                failures.append(
                    f"executor_parity: {label} run failed: "
                    f"{result.stderr.strip()[-300:]}")
                continue
            outputs[label] = out.read_bytes()
    if len(outputs) == 2:
        identical = outputs["inprocess"] == outputs["process"]
        verdict = "ok" if identical else "FAIL"
        print(f"{verdict:4} executor_parity: process-executor output "
              + ("byte-identical to inprocess" if identical
                 else "DIVERGES from inprocess"))
        if not identical:
            failures.append(
                "executor_parity: process executor output differs from "
                "inprocess (byte identity required)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--reference-tolerance", type=float, default=0.5,
                        help="allowed absolute slowdown of the reference "
                             "kernel in normalized mode (default 0.5, "
                             "loose to absorb machine-class differences)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw items/sec instead of ratios "
                             "normalized by the reference kernel")
    args = parser.parse_args()

    baseline_path = capture.BASELINE_DIR / "throughput.json"
    if not baseline_path.is_file():
        print(f"error: {baseline_path} missing (run capture.py)",
              file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())["items_per_second"]

    binary = pathlib.Path(args.build_dir) / "bench" / "bench_throughput"
    if not binary.is_file():
        print(f"error: {binary} not found (build with google-benchmark)",
              file=sys.stderr)
        return 2
    run = capture.run_throughput(binary)
    current = run["items_per_second"]
    current_reps = run["items_per_second_reps"]
    raw_current = dict(current)

    failures = []
    unit = "items/s"
    if not args.absolute:
        # Per-rep values in the same (normalized) domain as the gate:
        # each rep divided by the run's reference-kernel median.
        ref_median = current.get(REFERENCE_KERNEL)
        if ref_median:
            current_reps = {
                name: [ips / ref_median for ips in reps]
                for name, reps in current_reps.items()
                if name != REFERENCE_KERNEL}
        # Normalization hides a slowdown that hits the reference kernel
        # too; gate the reference absolutely (loosely) to keep that
        # failure mode visible.
        ref_base = baseline.get(REFERENCE_KERNEL)
        ref_now = current.get(REFERENCE_KERNEL)
        if ref_base and ref_now:
            ref_floor = ref_base * (1.0 - args.reference_tolerance)
            verdict = "FAIL" if ref_now < ref_floor else "ok"
            print(f"{verdict:4} {REFERENCE_KERNEL} (absolute): "
                  f"{ref_now:,.4g} items/s (baseline {ref_base:,.4g}, "
                  f"floor {ref_floor:,.4g})")
            if ref_now < ref_floor:
                failures.append(
                    f"{REFERENCE_KERNEL}: reference kernel {ref_now:,.4g} "
                    f"< {ref_floor:,.4g} items/s absolute floor")
        baseline = normalize(baseline)
        current = normalize(current)
        unit = f"x {REFERENCE_KERNEL}"
    for name, base_ips in sorted(baseline.items()):
        now_ips = current.get(name)
        if now_ips is None:
            failures.append(f"{name}: kernel missing from current run")
            continue
        floor = base_ips * (1.0 - args.tolerance)
        verdict = "FAIL" if now_ips < floor else "ok"
        print(f"{verdict:4} {name}: {now_ips:,.4g} {unit} "
              f"(baseline {base_ips:,.4g}, floor {floor:,.4g})")
        if now_ips < floor:
            failures.append(
                f"{name}: {now_ips:,.4g} < {floor:,.4g} {unit} "
                f"({(1 - now_ips / base_ips) * 100:.1f}% below baseline)")

    for name in sorted(set(current) - set(baseline)):
        print(f"note: new kernel without baseline: {name} "
              f"({raw_current[name]:,.0f} items/s) — re-capture to pin it")

    # Upward ratchet: a kernel whose every rep beats the baseline by more
    # than the tolerance has genuinely gotten faster — suggest moving the
    # floor up so the gain cannot silently erode later.
    ratchet = []
    for name, base_ips in sorted(baseline.items()):
        reps = current_reps.get(name)
        if not reps:
            continue
        ceiling = base_ips * (1.0 + args.tolerance)
        if min(reps) > ceiling:
            gain = (min(reps) / base_ips - 1.0) * 100
            ratchet.append(f"{name}: all {len(reps)} reps >= "
                           f"{min(reps):,.4g} {unit} "
                           f"({gain:.1f}% above baseline)")
    if ratchet and not failures:
        print(f"\npersistent speedup (> {args.tolerance:.0%} above baseline "
              "in every rep) — consider ratcheting the floor:")
        for line in ratchet:
            print(f"  {line}")
        print("  re-capture with: python3 bench/baselines/capture.py "
              "--only throughput  (then review the diff)")

    failures.extend(check_streaming_metrics(args.build_dir))
    failures.extend(check_executor_parity(args.build_dir))

    if failures:
        print("\nbaseline regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
