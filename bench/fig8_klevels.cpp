// Fig. 8 reproduction — the privacy/accuracy trade-off, k in {2, 3, 5}.
//
// CDFs of position and time accuracy on the civ-like dataset anonymized at
// increasing k.  Paper shape: monotone degradation; at k=5 roughly 15% of
// samples keep original position accuracy and ~20% stay under 2 h.

#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/stats/table.hpp"

int main() {
  using namespace glove;
  const Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/250);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  bench::print_banner("Fig. 8 (accuracy vs k)", civ);

  stats::TextTable position_table{
      "Fig. 8 (left) — CDF of position accuracy after GLOVE (civ-like)"};
  std::vector<std::string> pos_header{"k"};
  for (const auto& label :
       bench::grid_labels(bench::position_grid_m(), "m")) {
    pos_header.push_back(label);
  }
  position_table.header(std::move(pos_header));

  stats::TextTable time_table{
      "Fig. 8 (right) — CDF of time accuracy after GLOVE (civ-like)"};
  std::vector<std::string> time_header{"k"};
  for (const auto& label : bench::grid_labels(bench::time_grid_min(), "min")) {
    time_header.push_back(label);
  }
  time_table.header(std::move(time_header));

  double previous_kept = 1.0;
  for (const std::uint32_t k : {2u, 3u, 5u}) {
    api::RunConfig config;
    config.k = k;
    const RunReport result = api::run_or_exit(engine, civ, config);
    if (!core::is_k_anonymous(result.anonymized, k)) {
      std::cerr << "ERROR: output not " << k << "-anonymous\n";
      return 1;
    }
    const auto obs = core::measure_accuracy(result.anonymized);
    const auto pos_cdf = core::position_accuracy_cdf(obs);
    const auto time_cdf = core::time_accuracy_cdf(obs);

    std::vector<std::string> pos_row{std::to_string(k)};
    for (const auto& cell :
         bench::cdf_row(pos_cdf, bench::position_grid_m())) {
      pos_row.push_back(cell);
    }
    position_table.row(std::move(pos_row));

    std::vector<std::string> time_row{std::to_string(k)};
    for (const auto& cell : bench::cdf_row(time_cdf, bench::time_grid_min())) {
      time_row.push_back(cell);
    }
    time_table.row(std::move(time_row));

    const double kept = pos_cdf.at(100.0);
    std::cout << "  k=" << k << ": original position accuracy kept "
              << stats::fmt_pct(kept)
              << (kept <= previous_kept + 1e-9 ? "  (monotone ok)" : "  (!)")
              << ";  <=2km " << stats::fmt_pct(pos_cdf.at(2'000.0))
              << ";  <=2h " << stats::fmt_pct(time_cdf.at(120.0))
              << "  (paper k=3: 25% kept / 70% <=2km; k=5: 15% / 50%)\n";
    previous_kept = kept;
  }
  position_table.print(std::cout);
  time_table.print(std::cout);
  return 0;
}
