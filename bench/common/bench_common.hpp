// Shared scaffolding for the paper-reproduction bench harnesses: scaled
// dataset construction (env-overridable), CDF sampling onto the paper's
// plot axes, and consistent run banners.
//
// Scaling knobs (environment variables):
//   GLOVE_USERS    population per dataset        (default per bench)
//   GLOVE_DAYS     trace timespan in days        (default per bench)
//   GLOVE_SEED     synthetic generator seed      (default 1)
//   GLOVE_THREADS  worker threads                (default: hw concurrency)

#ifndef GLOVE_BENCH_COMMON_HPP
#define GLOVE_BENCH_COMMON_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/stats/stats.hpp"
#include "glove/synth/generator.hpp"

namespace glove::bench {

/// Scale parameters resolved from the environment.
struct Scale {
  std::size_t users;
  double days;
  std::uint64_t seed;
};

/// Reads GLOVE_USERS / GLOVE_DAYS / GLOVE_SEED with bench-specific defaults.
[[nodiscard]] Scale resolve_scale(std::size_t default_users,
                                  double default_days = 14.0);

/// Builds the civ-like dataset at the requested scale (screened as Sec. 3).
[[nodiscard]] cdr::FingerprintDataset make_civ(const Scale& scale);

/// Builds the sen-like dataset at the requested scale.
[[nodiscard]] cdr::FingerprintDataset make_sen(const Scale& scale);

/// Prints the standard run banner (dataset descriptors, scale, threads).
void print_banner(const std::string& experiment,
                  const cdr::FingerprintDataset& data);

/// Samples an empirical CDF at grid points and renders one table row per
/// grid value: "P[X <= x]".
[[nodiscard]] std::vector<std::string> cdf_row(
    const stats::EmpiricalCdf& cdf, const std::vector<double>& grid);

/// Paper plot grids.
[[nodiscard]] std::vector<double> kgap_grid();        // Fig. 3/4 x-axis
[[nodiscard]] std::vector<double> position_grid_m();  // Fig. 7/8 x-axis
[[nodiscard]] std::vector<double> time_grid_min();    // Fig. 7/8 x-axis

/// Formats a grid label vector ("0.05", "0.1", ... / "200m", "1km", ...).
[[nodiscard]] std::vector<std::string> grid_labels(
    const std::vector<double>& grid, const std::string& unit);

/// Centre of the densest 10 km tile of the dataset (by sample count) — the
/// synthetic stand-in for the Abidjan/Dakar geofence anchors of Tab. 2.
[[nodiscard]] geo::PlanarPoint densest_center(
    const cdr::FingerprintDataset& data);

/// Citywide subset around the densest centre (Tab. 2 abidjan/dakar rows).
[[nodiscard]] cdr::FingerprintDataset city_subset(
    const cdr::FingerprintDataset& data, const std::string& name,
    double radius_m = 25'000.0);

}  // namespace glove::bench

#endif  // GLOVE_BENCH_COMMON_HPP
