#include "common/bench_common.hpp"

#include <iostream>
#include <unordered_map>

#include "glove/analysis/descriptors.hpp"
#include "glove/stats/table.hpp"
#include "glove/util/flags.hpp"
#include "glove/util/thread_pool.hpp"

namespace glove::bench {

Scale resolve_scale(std::size_t default_users, double default_days) {
  Scale scale;
  scale.users = static_cast<std::size_t>(
      util::env_int("GLOVE_USERS", static_cast<long long>(default_users)));
  scale.days = util::env_double("GLOVE_DAYS", default_days);
  scale.seed =
      static_cast<std::uint64_t>(util::env_int("GLOVE_SEED", 1));
  return scale;
}

namespace {

cdr::FingerprintDataset make_dataset(synth::SynthConfig config,
                                     const Scale& scale) {
  config.days = scale.days;
  cdr::FingerprintDataset data = synth::generate_dataset(config);
  // Sec. 3 screening: keep users with at least one sample per day.
  cdr::FingerprintDataset screened =
      cdr::filter_min_activity(data, 1.0, scale.days);
  screened.set_name(config.name);
  return screened;
}

}  // namespace

cdr::FingerprintDataset make_civ(const Scale& scale) {
  return make_dataset(synth::civ_like(scale.users, scale.seed), scale);
}

cdr::FingerprintDataset make_sen(const Scale& scale) {
  return make_dataset(synth::sen_like(scale.users, scale.seed + 1), scale);
}

void print_banner(const std::string& experiment,
                  const cdr::FingerprintDataset& data) {
  const analysis::DatasetDescriptor d = analysis::describe(data);
  std::cout << "\n### " << experiment << " — dataset '" << data.name()
            << "': " << d.fingerprints << " users, " << d.samples
            << " samples (" << stats::fmt(d.mean_fingerprint_length, 1)
            << " per fingerprint, "
            << stats::fmt(d.samples_per_user_per_day, 2)
            << "/user/day over " << stats::fmt(d.timespan_days, 1)
            << " days; median r_gyr "
            << stats::fmt(d.median_radius_of_gyration_m / 1'000.0, 2)
            << " km), threads=" << util::ThreadPool::shared().size() << '\n';
}

std::vector<std::string> cdf_row(const stats::EmpiricalCdf& cdf,
                                 const std::vector<double>& grid) {
  std::vector<std::string> cells;
  cells.reserve(grid.size());
  for (const double x : grid) {
    cells.push_back(stats::fmt(cdf.at(x), 3));
  }
  return cells;
}

std::vector<double> kgap_grid() {
  return {0.0,  0.02, 0.05, 0.09, 0.13, 0.17,
          0.22, 0.30, 0.40, 0.60, 0.80, 1.00};
}

std::vector<double> position_grid_m() {
  // Fig. 7 x-axis: 200 m .. 20 km (log scale), plus the 100 m original.
  return {100.0,   200.0,   500.0,    1'000.0,  2'000.0,
          5'000.0, 10'000.0, 20'000.0, 50'000.0};
}

std::vector<double> time_grid_min() {
  // Fig. 7 x-axis: 1 min .. 1 day.
  return {1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 1'440.0};
}

geo::PlanarPoint densest_center(const cdr::FingerprintDataset& data) {
  constexpr double kTileM = 10'000.0;
  const geo::Grid grid{kTileM};
  std::unordered_map<geo::GridCell, std::size_t> counts;
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    for (const cdr::Sample& s : fp.samples()) {
      ++counts[grid.cell_of(
          {s.sigma.x + s.sigma.dx / 2, s.sigma.y + s.sigma.dy / 2})];
    }
  }
  geo::GridCell best{};
  std::size_t best_count = 0;
  // Full (count, ix, iy) tie-break so the elected centre — and with it
  // every downstream city subset — is independent of hash order.
  for (const auto& [cell, count] : counts) {
    if (count > best_count ||
        (count == best_count && best_count > 0 &&
         (cell.ix < best.ix ||
          (cell.ix == best.ix && cell.iy < best.iy)))) {
      best_count = count;
      best = cell;
    }
  }
  return grid.cell_center(best);
}

cdr::FingerprintDataset city_subset(const cdr::FingerprintDataset& data,
                                    const std::string& name,
                                    double radius_m) {
  const geo::PlanarPoint center = densest_center(data);
  cdr::FingerprintDataset city =
      cdr::filter_geofence(data, center.x_m, center.y_m, radius_m, 0.8);
  city.set_name(name);
  return city;
}

std::vector<std::string> grid_labels(const std::vector<double>& grid,
                                     const std::string& unit) {
  std::vector<std::string> labels;
  labels.reserve(grid.size());
  for (const double g : grid) {
    if (unit == "m" && g >= 1'000.0) {
      labels.push_back(stats::fmt(g / 1'000.0, 1) + "km");
    } else if (unit == "min" && g >= 60.0) {
      labels.push_back(stats::fmt(g / 60.0, 1) + "h");
    } else {
      labels.push_back(stats::fmt(g, 2) + unit);
    }
  }
  return labels;
}

}  // namespace glove::bench
