// Ablation bench — quantifies the design choices DESIGN.md calls out:
//
//   1. reshaping (Fig. 6b) on vs off: reshaping trades spatial granularity
//      for a temporally consistent, analyzable dataset;
//   2. leftover policy: merge-into-nearest (no user loss) vs suppress;
//   3. suppression (Sec. 7.1) off vs the paper's 15 km / 6 h setting;
//   4. input-order sensitivity of the greedy pass (dataset shuffled by
//      seed): GLOVE's heap order is content-driven, so accuracy should be
//      stable across input permutations.

#include <algorithm>
#include <chrono>
#include <iostream>

#include "common/bench_common.hpp"
#include "glove/api/cli.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/scalability.hpp"
#include "glove/stats/table.hpp"
#include "glove/util/rng.hpp"

namespace {

using namespace glove;

struct Outcome {
  double pos_mean_km;
  double time_mean_min;
  std::uint64_t deleted;
  std::uint64_t groups;
  double seconds;
};

Outcome run(const Engine& engine, const cdr::FingerprintDataset& data,
            const api::RunConfig& config) {
  const RunReport result = api::run_or_exit(engine, data, config);
  const auto summary =
      core::summarize_accuracy(core::measure_accuracy(result.anonymized));
  return Outcome{summary.mean_position_m / 1'000.0, summary.mean_time_min,
                 result.counters.deleted_samples,
                 result.counters.output_groups,
                 result.timings.init_seconds + result.timings.merge_seconds};
}

void add_row(stats::TextTable& table, const std::string& name,
             const Outcome& o) {
  table.row({name, stats::fmt(o.pos_mean_km, 2) + "km",
             stats::fmt(o.time_mean_min, 1) + "min",
             std::to_string(o.deleted), std::to_string(o.groups),
             stats::fmt(o.seconds, 2) + "s"});
}

}  // namespace

int main() {
  const glove::Engine engine;
  const bench::Scale scale = bench::resolve_scale(/*default_users=*/180);
  const cdr::FingerprintDataset civ = bench::make_civ(scale);
  bench::print_banner("Ablations (GLOVE design choices)", civ);

  stats::TextTable table{"Ablation — GLOVE variants (civ-like, k=2)"};
  table.header({"variant", "pos mean", "time mean", "deleted", "groups",
                "runtime"});

  api::RunConfig base;
  base.k = 2;
  add_row(table, "baseline (reshape on)", run(engine, civ, base));

  api::RunConfig no_reshape = base;
  no_reshape.reshape = false;
  add_row(table, "reshape off", run(engine, civ, no_reshape));

  api::RunConfig suppress_leftover = base;
  suppress_leftover.leftover_policy = core::LeftoverPolicy::kSuppress;
  add_row(table, "leftover: suppress", run(engine, civ, suppress_leftover));

  api::RunConfig with_suppression = base;
  with_suppression.suppression =
      core::SuppressionThresholds{15'000.0, 360.0};
  add_row(table, "suppression 15km/6h", run(engine, civ, with_suppression));

  api::RunConfig pruned = base;
  pruned.strategy = api::kStrategyPrunedKGap;
  add_row(table, "pruned init (exact)", run(engine, civ, pruned));

  // Input-order sensitivity: shuffle the dataset and re-run.
  util::Xoshiro256 rng{scale.seed * 7 + 5};
  std::vector<cdr::Fingerprint> shuffled{civ.fingerprints().begin(),
                                         civ.fingerprints().end()};
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[util::uniform_index(rng, i)]);
  }
  const cdr::FingerprintDataset permuted{std::move(shuffled), "civ-shuffled"};
  add_row(table, "input order shuffled", run(engine, permuted, base));

  // Chunked (W4M-LC-style scaling): smaller chunks trade accuracy for a
  // quadratic-cost reduction.
  for (const std::size_t chunk : {90u, 45u}) {
    api::RunConfig chunked = base;
    chunked.strategy = api::kStrategyChunked;
    chunked.chunked.chunk_size = chunk;
    add_row(table, "chunked (" + std::to_string(chunk) + "/chunk)",
            run(engine, civ, chunked));
  }

  table.print(std::cout);

  // Pruned k-gap: exact results, fewer pair evaluations.
  {
    stats::TextTable pruning{"Ablation — k-gap bounding-box pruning"};
    pruning.header({"variant", "pair evals skipped", "median gap",
                    "runtime"});
    const auto t0 = std::chrono::steady_clock::now();
    const auto brute = core::k_gap_values(civ, 2);
    const auto t1 = std::chrono::steady_clock::now();
    std::uint64_t skipped = 0;
    const auto fast = core::k_gaps_pruned(civ, 2, {}, &skipped);
    const auto t2 = std::chrono::steady_clock::now();
    const double total_pairs = static_cast<double>(civ.size()) *
                               static_cast<double>(civ.size() - 1);
    std::vector<double> fast_gaps;
    for (const auto& e : fast) fast_gaps.push_back(e.gap);
    pruning.row({"brute force", "0",
                 stats::fmt(stats::quantile(brute, 0.5), 3),
                 stats::fmt(std::chrono::duration<double>(t1 - t0).count(),
                            2) +
                     "s"});
    pruning.row({"bbox-pruned",
                 stats::fmt_pct(static_cast<double>(skipped) / total_pairs),
                 stats::fmt(stats::quantile(fast_gaps, 0.5), 3),
                 stats::fmt(std::chrono::duration<double>(t2 - t1).count(),
                            2) +
                     "s"});
    pruning.print(std::cout);
  }
  std::cout << "\n  Expectations: reshape-off keeps finer mean granularity "
               "(no overlap unions) but leaves temporally overlapping, "
               "hard-to-analyze samples; suppression cuts the mean errors "
               "sharply at a bounded deletion cost; shuffling the input "
               "changes results only marginally (the greedy order is "
               "content-driven).\n";
  return 0;
}
