// Tiny command-line flag parser used by examples and bench harnesses.
//
// Supports "--name=value" and "--name value" syntax plus boolean switches.
// Unknown flags raise an error with the list of registered names, so typos
// in experiment scripts fail loudly instead of silently using defaults.

#ifndef GLOVE_UTIL_FLAGS_HPP
#define GLOVE_UTIL_FLAGS_HPP

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace glove::util {

/// Declarative flag set: register flags with defaults, then parse argv.
class Flags {
 public:
  /// `program_help` is printed by `usage()` above the flag list.
  explicit Flags(std::string program_help);

  Flags& define(std::string name, std::string default_value,
                std::string help);

  /// Enum-valued flag: the value must be one of `choices`.  The default
  /// must be a choice (std::invalid_argument otherwise); parse() rejects
  /// any other value, listing the valid choices.  Replaces per-binary
  /// string matching for flags such as --strategy.
  Flags& define_enum(std::string name, std::string default_value,
                     std::vector<std::string> choices, std::string help);

  /// Parses argv (excluding argv[0]).  Throws std::invalid_argument on
  /// unknown flags or missing values.  "--help" sets `help_requested()`.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string usage() const;

  [[nodiscard]] const std::string& get(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] long long get_int(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
    std::vector<std::string> choices;  // empty = any value accepted
  };

  /// Throws std::invalid_argument when `value` is not a valid choice.
  static void check_choice(std::string_view name, const Entry& entry,
                           std::string_view value);

  const Entry& entry(std::string_view name) const;

  std::string program_help_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

/// Reads environment variable `name` as integer, returning `fallback` when
/// unset or unparsable.  Used for GLOVE_USERS / GLOVE_DAYS / GLOVE_SEED
/// bench-scaling overrides.
[[nodiscard]] long long env_int(const char* name, long long fallback);

/// Reads environment variable `name` as double with fallback.
[[nodiscard]] double env_double(const char* name, double fallback);

}  // namespace glove::util

#endif  // GLOVE_UTIL_FLAGS_HPP
