#include "glove/util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace glove::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock{mutex_};
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{[] {
    if (const char* env = std::getenv("GLOVE_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};
  }()};
  return pool;
}

}  // namespace glove::util
