#include "glove/util/flags.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "glove/util/csv.hpp"

namespace glove::util {

Flags::Flags(std::string program_help)
    : program_help_{std::move(program_help)} {}

Flags& Flags::define(std::string name, std::string default_value,
                     std::string help) {
  entries_[std::move(name)] =
      Entry{default_value, std::move(default_value), std::move(help), {}};
  return *this;
}

Flags& Flags::define_enum(std::string name, std::string default_value,
                          std::vector<std::string> choices,
                          std::string help) {
  Entry entry{default_value, std::move(default_value), std::move(help),
              std::move(choices)};
  check_choice(name, entry, entry.default_value);
  entries_[std::move(name)] = std::move(entry);
  return *this;
}

void Flags::check_choice(std::string_view name, const Entry& entry,
                         std::string_view value) {
  if (entry.choices.empty()) return;
  if (std::find(entry.choices.begin(), entry.choices.end(), value) !=
      entry.choices.end()) {
    return;
  }
  std::ostringstream out;
  out << "invalid value '" << value << "' for --" << name << " (choices:";
  for (const std::string& choice : entry.choices) out << ' ' << choice;
  out << ')';
  throw std::invalid_argument{out.str()};
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string_view arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string{arg.substr(0, eq)};
      value = std::string{arg.substr(eq + 1)};
    } else {
      name = std::string{arg};
      const auto it = entries_.find(name);
      if (it == entries_.end()) {
        throw std::invalid_argument{"unknown flag --" + name + "\n" + usage()};
      }
      // Boolean-style switch unless a value follows.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::invalid_argument{"unknown flag --" + name + "\n" + usage()};
    }
    check_choice(name, it->second, value);
    it->second.value = std::move(value);
  }
}

std::string Flags::usage() const {
  std::ostringstream out;
  out << program_help_ << "\n\nFlags:\n";
  for (const auto& [name, entry] : entries_) {
    out << "  --" << name << " (default: " << entry.default_value << ")\n"
        << "      " << entry.help << '\n';
    if (!entry.choices.empty()) {
      out << "      choices:";
      for (const std::string& choice : entry.choices) out << ' ' << choice;
      out << '\n';
    }
  }
  return out.str();
}

const Flags::Entry& Flags::entry(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument{"flag not defined: " + std::string{name}};
  }
  return it->second;
}

const std::string& Flags::get(std::string_view name) const {
  return entry(name).value;
}

double Flags::get_double(std::string_view name) const {
  return parse_double(entry(name).value, name);
}

long long Flags::get_int(std::string_view name) const {
  return parse_int(entry(name).value, name);
}

bool Flags::get_bool(std::string_view name) const {
  const std::string& v = entry(name).value;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

long long env_int(const char* name, long long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

}  // namespace glove::util
