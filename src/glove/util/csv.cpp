#include "glove/util/csv.hpp"

#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace glove::util {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::vector<std::string_view> split_csv_line(std::string_view line,
                                             char separator) {
  std::vector<std::string_view> fields;
  if (line.empty()) return fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == separator) {
      fields.push_back(trim(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return fields;
}

CsvReader::CsvReader(std::istream& in, char separator)
    : in_{in}, separator_{separator} {}

bool CsvReader::next(std::vector<std::string_view>& fields) {
  while (std::getline(in_, buffer_)) {
    ++line_no_;
    const std::string_view trimmed = trim(buffer_);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    fields = split_csv_line(buffer_, separator_);
    ++rows_;
    return true;
  }
  return false;
}

void CsvReader::rewind() {
  in_.clear();
  in_.seekg(0);
  if (!in_) {
    throw std::runtime_error{"CsvReader::rewind: stream is not seekable"};
  }
  rows_ = 0;
  line_no_ = 0;
}

CsvWriter::CsvWriter(std::ostream& out, char separator)
    : out_{out}, separator_{separator} {}

void CsvWriter::comment(std::string_view text) {
  out_ << "# " << text << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << separator_;
    out_ << fields[i];
  }
  out_ << '\n';
}

double parse_double(std::string_view field, std::string_view context) {
  double value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::invalid_argument{"bad numeric field '" + std::string{field} +
                                "' in " + std::string{context}};
  }
  return value;
}

long long parse_int(std::string_view field, std::string_view context) {
  long long value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::invalid_argument{"bad integer field '" + std::string{field} +
                                "' in " + std::string{context}};
  }
  return value;
}

}  // namespace glove::util
