// Cooperative observability for long-running anonymization loops: a
// progress callback plus a thread-safe cancellation token.  The hot loops
// (GLOVE's greedy merge, the k-gap matrix build, W4M clustering) poll the
// token between units of work and abort by throwing CancelledError, which
// the glove::api::Engine boundary converts into a typed error — no partial
// output ever escapes a cancelled run.

#ifndef GLOVE_UTIL_HOOKS_HPP
#define GLOVE_UTIL_HOOKS_HPP

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>

namespace glove::util {

/// Copyable handle to a shared cancellation flag.  `request_cancel()` may
/// be called from any thread (including a progress callback); workers
/// observe it at their next poll point.
class CancellationToken {
 public:
  CancellationToken() : state_{std::make_shared<std::atomic<bool>>(false)} {}

  void request_cancel() const noexcept {
    state_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return state_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Thrown by hook-aware loops when their token is cancelled.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error{"operation cancelled"} {}
};

/// Thrown by streaming pipelines when the *data* (not the configuration)
/// turns out to be unusable mid-stream — empty, smaller than the anonymity
/// level, or changed size between passes.  Collect-first paths learn this
/// from upfront validation; a streaming pass only learns it while
/// consuming, so it surfaces as this exception and the glove::api::Engine
/// maps it to ErrorCode::kInvalidDataset (plain std::invalid_argument
/// stays kInvalidConfig).
class DatasetError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Progress notification: `done` out of `total` abstract work units.  Both
/// are loop-specific (pair evaluations, users closed, chunks finished);
/// only the ratio and the monotonicity of `done` are meaningful.
using ProgressFn = std::function<void(std::uint64_t done, std::uint64_t total)>;

/// Hooks threaded through the hot loops.  Default-constructed hooks are
/// inert (no progress reporting, never cancelled).
struct RunHooks {
  ProgressFn progress;
  std::optional<CancellationToken> cancel;

  /// Reports progress when a callback is installed.
  void report(std::uint64_t done, std::uint64_t total) const {
    if (progress) progress(done, total);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancel.has_value() && cancel->cancelled();
  }

  /// Poll point: aborts the enclosing loop via CancelledError.
  void throw_if_cancelled() const {
    if (cancelled()) throw CancelledError{};
  }
};

/// Sub-progress adapter: hooks for an inner loop whose whole run covers
/// `span` outer units starting at `base`, reported against `grand_total`.
/// The inner (done, total) ratio is scaled onto the span with floor
/// rounding, so the outer `done` stays monotone; cancellation is shared.
/// Used by multi-phase drivers (e.g. the sharded reconciliation) to fold
/// inner-loop progress into one coherent outer scale.
inline RunHooks subrange_hooks(const RunHooks& outer, std::uint64_t base,
                               std::uint64_t span,
                               std::uint64_t grand_total) {
  RunHooks inner;
  inner.cancel = outer.cancel;
  if (outer.progress) {
    inner.progress = [fn = outer.progress, base, span, grand_total](
                         std::uint64_t done, std::uint64_t total) {
      const std::uint64_t scaled =
          total == 0 ? 0
                     : static_cast<std::uint64_t>(
                           static_cast<double>(span) *
                           (static_cast<double>(done) /
                            static_cast<double>(total)));
      fn(base + std::min(scaled, span), grand_total);
    };
  }
  return inner;
}

}  // namespace glove::util

#endif  // GLOVE_UTIL_HOOKS_HPP
