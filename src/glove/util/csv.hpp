// Minimal CSV reading/writing for CDR traces and anonymized datasets.
//
// The dialect is deliberately simple (comma separator, no embedded commas in
// fields, '#'-prefixed comment lines), matching the flat numeric traces the
// D4D challenge distributed and that this library emits.

#ifndef GLOVE_UTIL_CSV_HPP
#define GLOVE_UTIL_CSV_HPP

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace glove::util {

/// Splits one CSV line into fields.  Leading/trailing whitespace of each
/// field is trimmed.  Empty input yields an empty vector.
[[nodiscard]] std::vector<std::string_view> split_csv_line(
    std::string_view line, char separator = ',');

/// Streaming CSV reader over an istream.  Skips blank lines and lines whose
/// first non-space character is '#'.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, char separator = ',');

  /// Reads the next data row into `fields` (views into an internal buffer
  /// valid until the next call).  Returns false at end of input.
  bool next(std::vector<std::string_view>& fields);

  /// Number of data rows returned so far.
  [[nodiscard]] std::size_t rows_read() const noexcept { return rows_; }
  /// 1-based line number of the row most recently returned.
  [[nodiscard]] std::size_t line_number() const noexcept { return line_no_; }

  /// Restarts from the beginning of the stream (clearing an EOF state) and
  /// resets the row/line counters, so multi-pass consumers can re-read a
  /// seekable stream (files, string streams).  Throws std::runtime_error
  /// when the underlying stream cannot seek.
  void rewind();

 private:
  std::istream& in_;
  std::string buffer_;
  char separator_;
  std::size_t rows_ = 0;
  std::size_t line_no_ = 0;
};

/// CSV writer with row-oriented API.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char separator = ',');

  /// Writes a comment line ("# ...").
  void comment(std::string_view text);
  /// Writes one row; fields are emitted verbatim.
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char separator_;
};

/// Parses a double, throwing std::invalid_argument with context on failure.
[[nodiscard]] double parse_double(std::string_view field,
                                  std::string_view context);

/// Parses a non-negative integer, throwing std::invalid_argument on failure.
[[nodiscard]] long long parse_int(std::string_view field,
                                  std::string_view context);

}  // namespace glove::util

#endif  // GLOVE_UTIL_CSV_HPP
