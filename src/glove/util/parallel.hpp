// parallel_for: block-partitioned parallel loop on top of ThreadPool.
//
// The loop body receives index ranges, not single indices, so callers can
// amortize per-task overhead over thousands of cheap stretch computations.
// Exceptions thrown by the body are captured and rethrown on the caller's
// thread (first one wins) so failures are not silently swallowed.

#ifndef GLOVE_UTIL_PARALLEL_HPP
#define GLOVE_UTIL_PARALLEL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>

#include "glove/util/thread_pool.hpp"

namespace glove::util {

/// Runs `body(begin, end)` over contiguous chunks of [0, count) on `pool`
/// and blocks until all chunks complete.  `body` must be safe to invoke
/// concurrently on disjoint ranges.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t count, const Body& body,
                  std::size_t min_chunk = 256) {
  if (count == 0) return;
  const std::size_t workers = pool.size();
  std::size_t chunks = workers * 4;
  if (chunks == 0) chunks = 1;
  std::size_t chunk = (count + chunks - 1) / chunks;
  if (chunk < min_chunk) chunk = min_chunk;
  const std::size_t tasks = (count + chunk - 1) / chunk;

  if (tasks <= 1) {
    body(std::size_t{0}, count);
    return;
  }

  std::atomic<std::size_t> remaining{tasks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t t = 0; t < tasks; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = begin + chunk < count ? begin + chunk : count;
    pool.submit([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        const std::lock_guard lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard lock{done_mutex};
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock lock{done_mutex};
  done_cv.wait(lock, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  });
  if (first_error) std::rethrow_exception(first_error);
}

/// Convenience overload on the shared pool.
template <typename Body>
void parallel_for(std::size_t count, const Body& body,
                  std::size_t min_chunk = 256) {
  parallel_for(ThreadPool::shared(), count, body, min_chunk);
}

}  // namespace glove::util

#endif  // GLOVE_UTIL_PARALLEL_HPP
