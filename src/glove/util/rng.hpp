// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in this library (synthetic CDR generation,
// subsampling, property tests) draws from an explicitly seeded engine so that
// a given seed always reproduces the same dataset, independently of platform
// and thread count.

#ifndef GLOVE_UTIL_RNG_HPP
#define GLOVE_UTIL_RNG_HPP

#include <cstdint>
#include <limits>

namespace glove::util {

/// SplitMix64: tiny, high-quality 64-bit mixer.  Used to expand a single
/// user-provided seed into the state of larger generators and to derive
/// independent per-entity streams (e.g. one stream per synthetic user).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose engine with 256-bit state; satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 mix{seed};
    for (auto& word : s_) word = mix();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Derives an independent engine for sub-entity `index` (per-user streams):
  /// re-seeds through SplitMix64 so streams do not overlap in practice.
  [[nodiscard]] constexpr Xoshiro256 fork(std::uint64_t index) const noexcept {
    SplitMix64 mix{s_[0] ^ (0x5851f42d4c957f2dULL * (index + 1))};
    Xoshiro256 child{mix()};
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Uniform double in [0, 1).
template <typename Engine>
[[nodiscard]] constexpr double uniform01(Engine& rng) noexcept {
  // 53 top bits -> double mantissa.
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <typename Engine>
[[nodiscard]] constexpr double uniform(Engine& rng, double lo,
                                       double hi) noexcept {
  return lo + (hi - lo) * uniform01(rng);
}

/// Uniform integer in [0, n).  Unbiased enough for simulation purposes.
template <typename Engine>
[[nodiscard]] constexpr std::uint64_t uniform_index(Engine& rng,
                                                    std::uint64_t n) noexcept {
  return n == 0 ? 0 : rng() % n;
}

}  // namespace glove::util

#endif  // GLOVE_UTIL_RNG_HPP
