// Fixed-size worker pool used to parallelize the O(|M|^2) stretch-effort
// computations that dominate GLOVE's running time (Sec. 6.3 of the paper maps
// the same computations onto CUDA; this is the CPU substitute, see DESIGN.md).

#ifndef GLOVE_UTIL_THREAD_POOL_HPP
#define GLOVE_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace glove::util {

/// A minimal task-queue thread pool.  Tasks are `void()` callables; waiting
/// for completion is done through `parallel_for` (parallel.hpp) or by the
/// caller's own synchronization.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide default pool, sized from GLOVE_THREADS (if set) or
  /// hardware concurrency.  Constructed on first use.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace glove::util

#endif  // GLOVE_UTIL_THREAD_POOL_HPP
