// Process memory observability: the peak resident set size, recorded in
// run reports so larger-than-RAM streaming runs can prove their memory
// behavior (the CI gate compares it against the materialized dataset
// size).

#ifndef GLOVE_UTIL_MEM_HPP
#define GLOVE_UTIL_MEM_HPP

#include <cstdint>

namespace glove::util {

/// Peak resident set size of the calling process in bytes, or 0 when the
/// platform does not expose it.  Monotone over the process lifetime (it
/// never decreases), so a value taken at the end of a run bounds the
/// whole run.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

}  // namespace glove::util

#endif  // GLOVE_UTIL_MEM_HPP
