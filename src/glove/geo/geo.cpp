#include "glove/geo/geo.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace glove::geo {

namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;

}  // namespace

double haversine_m(LatLon a, LatLon b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2);
  const double s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double planar_distance_m(PlanarPoint a, PlanarPoint b) {
  return std::hypot(a.x_m - b.x_m, a.y_m - b.y_m);
}

LambertAzimuthalEqualArea::LambertAzimuthalEqualArea(LatLon origin) noexcept
    : origin_{origin},
      sin_lat0_{std::sin(origin.lat_deg * kDegToRad)},
      cos_lat0_{std::cos(origin.lat_deg * kDegToRad)},
      lon0_rad_{origin.lon_deg * kDegToRad} {}

PlanarPoint LambertAzimuthalEqualArea::project(LatLon p) const noexcept {
  const double lat = p.lat_deg * kDegToRad;
  const double dlon = p.lon_deg * kDegToRad - lon0_rad_;
  const double sin_lat = std::sin(lat);
  const double cos_lat = std::cos(lat);
  const double cos_dlon = std::cos(dlon);
  const double denom =
      1.0 + sin_lat0_ * sin_lat + cos_lat0_ * cos_lat * cos_dlon;
  // denom -> 0 only at the antipode of the origin; clamp to keep the map
  // total (antipodal inputs project to a very distant but finite point).
  const double kp = std::sqrt(2.0 / std::max(denom, 1e-12));
  return PlanarPoint{
      kEarthRadiusM * kp * cos_lat * std::sin(dlon),
      kEarthRadiusM * kp *
          (cos_lat0_ * sin_lat - sin_lat0_ * cos_lat * cos_dlon)};
}

LatLon LambertAzimuthalEqualArea::inverse(PlanarPoint p) const noexcept {
  const double rho = std::hypot(p.x_m, p.y_m);
  if (rho < 1e-9) return origin_;
  const double c = 2.0 * std::asin(std::min(1.0, rho / (2.0 * kEarthRadiusM)));
  const double sin_c = std::sin(c);
  const double cos_c = std::cos(c);
  const double lat = std::asin(cos_c * sin_lat0_ +
                               p.y_m * sin_c * cos_lat0_ / rho);
  const double lon =
      lon0_rad_ +
      std::atan2(p.x_m * sin_c,
                 rho * cos_lat0_ * cos_c - p.y_m * sin_lat0_ * sin_c);
  return LatLon{lat * kRadToDeg, lon * kRadToDeg};
}

std::uint64_t morton_interleave(std::uint32_t x, std::uint32_t y) noexcept {
  std::uint64_t code = 0;
  for (int bit = 0; bit < 32; ++bit) {
    code |= static_cast<std::uint64_t>((x >> bit) & 1U) << (2 * bit);
    code |= static_cast<std::uint64_t>((y >> bit) & 1U) << (2 * bit + 1);
  }
  return code;
}

Grid::Grid(double cell_size_m) : cell_m_{cell_size_m} {
  if (!(cell_size_m > 0.0)) {
    throw std::invalid_argument{"Grid cell size must be positive"};
  }
}

GridCell Grid::cell_of(PlanarPoint p) const noexcept {
  return GridCell{static_cast<std::int32_t>(std::floor(p.x_m / cell_m_)),
                  static_cast<std::int32_t>(std::floor(p.y_m / cell_m_))};
}

PlanarPoint Grid::cell_origin(GridCell c) const noexcept {
  return PlanarPoint{c.ix * cell_m_, c.iy * cell_m_};
}

PlanarPoint Grid::cell_center(GridCell c) const noexcept {
  return PlanarPoint{(c.ix + 0.5) * cell_m_, (c.iy + 0.5) * cell_m_};
}

PlanarPoint Grid::snap(PlanarPoint p) const noexcept {
  return cell_origin(cell_of(p));
}

}  // namespace glove::geo
