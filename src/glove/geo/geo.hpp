// Geographic primitives: WGS-84 coordinates, great-circle distance, the
// Lambert azimuthal equal-area projection the paper uses to map antenna
// positions to a planar coordinate system (Sec. 3), and the regular grid
// used to discretize positions at 100 m granularity.

#ifndef GLOVE_GEO_GEO_HPP
#define GLOVE_GEO_GEO_HPP

#include <cstdint>
#include <functional>

namespace glove::geo {

/// Authalic Earth radius in metres (sphere of equal surface area as the
/// WGS-84 ellipsoid); the natural choice for an equal-area projection.
inline constexpr double kEarthRadiusM = 6371007.1809;

/// A geographic position in decimal degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// A position in the projected plane, metres from the projection origin.
struct PlanarPoint {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// Great-circle (haversine) distance between two coordinates, metres.
[[nodiscard]] double haversine_m(LatLon a, LatLon b);

/// Euclidean distance in the projected plane, metres.
[[nodiscard]] double planar_distance_m(PlanarPoint a, PlanarPoint b);

/// Lambert azimuthal equal-area projection centred on a reference point.
///
/// Equal-area is what the paper picks because spatial generalization reasons
/// about *areas* of bounding rectangles: an equal-area mapping keeps the
/// accuracy-loss semantics uniform over a nationwide region.
class LambertAzimuthalEqualArea {
 public:
  /// `origin` becomes planar (0, 0).
  explicit LambertAzimuthalEqualArea(LatLon origin) noexcept;

  /// Forward projection: geographic -> planar metres.
  [[nodiscard]] PlanarPoint project(LatLon p) const noexcept;

  /// Inverse projection: planar metres -> geographic.  Exact inverse of
  /// `project` up to floating-point rounding for points within the
  /// projection's domain (everything but the antipode).
  [[nodiscard]] LatLon inverse(PlanarPoint p) const noexcept;

  [[nodiscard]] LatLon origin() const noexcept { return origin_; }

 private:
  LatLon origin_;
  double sin_lat0_;
  double cos_lat0_;
  double lon0_rad_;
};

/// Interleaves the bits of `x` (even positions) and `y` (odd positions)
/// into one 64-bit Morton (Z-curve) code.  Shared by the locality sorts
/// (chunked anonymization, shard tiling): nearby (x, y) pairs map to
/// nearby codes, so sorting by code keeps geographic neighbours together.
[[nodiscard]] std::uint64_t morton_interleave(std::uint32_t x,
                                              std::uint32_t y) noexcept;

/// A cell index on the regular discretization grid.
struct GridCell {
  std::int32_t ix = 0;
  std::int32_t iy = 0;

  friend bool operator==(GridCell, GridCell) = default;
};

/// Regular square grid over the projected plane.  The paper discretizes
/// positions on a 100 m grid, the finest spatial granularity considered;
/// at that size each cell contains at most one antenna, so discretization
/// is lossless (Sec. 3, footnote 2).
class Grid {
 public:
  explicit Grid(double cell_size_m = 100.0);

  [[nodiscard]] double cell_size_m() const noexcept { return cell_m_; }

  /// Cell containing a planar point.
  [[nodiscard]] GridCell cell_of(PlanarPoint p) const noexcept;

  /// South-west corner of a cell, i.e. the (x, y) the paper's sample tuple
  /// sigma carries together with dx = dy = cell size.
  [[nodiscard]] PlanarPoint cell_origin(GridCell c) const noexcept;

  /// Centre of a cell.
  [[nodiscard]] PlanarPoint cell_center(GridCell c) const noexcept;

  /// Snaps a planar point to its cell's south-west corner.
  [[nodiscard]] PlanarPoint snap(PlanarPoint p) const noexcept;

 private:
  double cell_m_;
};

}  // namespace glove::geo

template <>
struct std::hash<glove::geo::GridCell> {
  std::size_t operator()(glove::geo::GridCell c) const noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.ix)) << 32) |
        static_cast<std::uint32_t>(c.iy);
    // SplitMix64-style finalizer.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

#endif  // GLOVE_GEO_GEO_HPP
