#include "glove/baseline/w4m.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "glove/geo/geo.hpp"

namespace glove::baseline {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Point-trajectory view of a fingerprint: (t, x, y) at sample centres,
/// with linear constant-speed interpolation between points (the W4M
/// trajectory model).
struct Trajectory {
  std::vector<double> t;
  std::vector<double> x;
  std::vector<double> y;
  /// Original samples each point represents (Sample::contributors);
  /// deletion accounting is in original samples everywhere.
  std::vector<std::uint32_t> c;

  [[nodiscard]] std::size_t size() const noexcept { return t.size(); }
  [[nodiscard]] double t_begin() const noexcept { return t.front(); }
  [[nodiscard]] double t_end() const noexcept { return t.back(); }

  /// Interpolated position at `when`, clamped to the endpoints.
  [[nodiscard]] geo::PlanarPoint at(double when) const {
    if (when <= t.front()) return {x.front(), y.front()};
    if (when >= t.back()) return {x.back(), y.back()};
    const auto it = std::upper_bound(t.begin(), t.end(), when);
    const auto hi = static_cast<std::size_t>(it - t.begin());
    const std::size_t lo = hi - 1;
    const double span = t[hi] - t[lo];
    const double f = span > 0.0 ? (when - t[lo]) / span : 0.0;
    return {x[lo] + f * (x[hi] - x[lo]), y[lo] + f * (y[hi] - y[lo])};
  }

  /// Index of the sample whose timestamp is nearest to `when`.
  [[nodiscard]] std::size_t nearest_index(double when) const {
    const auto it = std::lower_bound(t.begin(), t.end(), when);
    if (it == t.begin()) return 0;
    if (it == t.end()) return t.size() - 1;
    const auto hi = static_cast<std::size_t>(it - t.begin());
    return (t[hi] - when < when - t[hi - 1]) ? hi : hi - 1;
  }
};

Trajectory to_trajectory(const cdr::Fingerprint& fp) {
  Trajectory traj;
  traj.t.reserve(fp.size());
  traj.x.reserve(fp.size());
  traj.y.reserve(fp.size());
  traj.c.reserve(fp.size());
  for (const cdr::Sample& s : fp.samples()) {
    traj.t.push_back(s.tau.t);
    traj.x.push_back(s.sigma.x + s.sigma.dx / 2);
    traj.y.push_back(s.sigma.y + s.sigma.dy / 2);
    traj.c.push_back(s.contributors);
  }
  return traj;
}

double linear_st_distance_impl(const Trajectory& a, const Trajectory& b) {
  if (a.size() == 0 || b.size() == 0) return kInf;
  const double lo = std::max(a.t_begin(), b.t_begin());
  const double hi = std::min(a.t_end(), b.t_end());
  if (!(hi > lo)) return kInf;

  // Trapezoidal time-average of the inter-point distance over the merged
  // breakpoints of the co-existence interval.
  double integral = 0.0;
  double prev_t = lo;
  double prev_d = geo::planar_distance_m(a.at(lo), b.at(lo));
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && a.t[ia] <= lo) ++ia;
  while (ib < b.size() && b.t[ib] <= lo) ++ib;
  while (true) {
    double next_t = hi;
    if (ia < a.size() && a.t[ia] < next_t) next_t = a.t[ia];
    if (ib < b.size() && b.t[ib] < next_t) next_t = b.t[ib];
    const double d = geo::planar_distance_m(a.at(next_t), b.at(next_t));
    integral += (next_t - prev_t) * (prev_d + d) / 2.0;
    prev_t = next_t;
    prev_d = d;
    if (next_t >= hi) break;
    while (ia < a.size() && a.t[ia] <= next_t) ++ia;
    while (ib < b.size() && b.t[ib] <= next_t) ++ib;
  }
  const double mean_distance = integral / (hi - lo);

  // Penalize limited co-existence: scale by span_union / span_intersection.
  const double union_lo = std::min(a.t_begin(), b.t_begin());
  const double union_hi = std::max(a.t_end(), b.t_end());
  const double penalty = (union_hi - union_lo) / (hi - lo);
  return mean_distance * penalty;
}

/// How far (on average) the cluster seed is from its k-1 nearest peers
/// before we accept it as a cluster; beyond this it goes to the trash bin
/// (budget permitting).  Tuned to the delta scale: clusters that would need
/// perturbations of many cylinder diameters are outliers.
double outlier_threshold_m(const W4MConfig& config) {
  return 15.0 * config.delta_m;
}

}  // namespace

double linear_st_distance(const cdr::Fingerprint& a,
                          const cdr::Fingerprint& b) {
  return linear_st_distance_impl(to_trajectory(a), to_trajectory(b));
}

W4MResult anonymize_w4m(const cdr::FingerprintDataset& data,
                        const W4MConfig& config) {
  return anonymize_w4m(data, config, {});
}

W4MResult anonymize_w4m(const cdr::FingerprintDataset& data,
                        const W4MConfig& config,
                        const util::RunHooks& hooks) {
  if (config.k < 2) {
    throw std::invalid_argument{"W4M requires k >= 2"};
  }
  if (data.size() < config.k) {
    throw std::invalid_argument{
        "dataset smaller than the target anonymity level k"};
  }
  if (config.chunk_size < config.k) {
    throw std::invalid_argument{"chunk size must be at least k"};
  }

  W4MResult result;
  W4MStats& stats = result.stats;
  stats.input_users = data.total_users();
  stats.input_samples = data.total_samples();

  const std::size_t n = data.size();
  std::vector<Trajectory> trajectories;
  trajectories.reserve(n);
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    trajectories.push_back(to_trajectory(fp));
  }

  std::uint64_t trash_budget = static_cast<std::uint64_t>(
      config.trash_fraction * static_cast<double>(n));
  std::vector<std::vector<std::size_t>> clusters;

  // Progress: n units for clustering (trajectories consumed) plus n units
  // for publication (cluster members written), 2n total.
  const std::uint64_t total_work = 2 * static_cast<std::uint64_t>(n);
  std::uint64_t consumed = 0;

  // --- Greedy k-member clustering within chunks (the LC variant).
  for (std::size_t chunk_begin = 0; chunk_begin < n;
       chunk_begin += config.chunk_size) {
    const std::size_t chunk_end =
        std::min(chunk_begin + config.chunk_size, n);
    std::vector<std::size_t> unassigned;
    for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
      unassigned.push_back(i);
    }

    while (unassigned.size() >= config.k) {
      hooks.throw_if_cancelled();
      const std::size_t pivot = unassigned.front();
      // Distances from the pivot to all other unassigned trajectories.
      std::vector<std::pair<double, std::size_t>> nearest;
      nearest.reserve(unassigned.size() - 1);
      for (std::size_t idx = 1; idx < unassigned.size(); ++idx) {
        const std::size_t other = unassigned[idx];
        nearest.emplace_back(
            linear_st_distance_impl(trajectories[pivot],
                                    trajectories[other]),
            other);
      }
      const std::size_t need = config.k - 1;
      std::partial_sort(
          nearest.begin(),
          nearest.begin() + static_cast<std::ptrdiff_t>(need),
          nearest.end());
      double mean_distance = 0.0;
      for (std::size_t i = 0; i < need; ++i) mean_distance += nearest[i].first;
      mean_distance /= static_cast<double>(need);

      if ((!std::isfinite(mean_distance) ||
           mean_distance > outlier_threshold_m(config)) &&
          trash_budget > 0) {
        // Outlier: to the trash bin.  Deletion is counted in *original*
        // samples (summed contributors), the one definition every
        // suppression path shares (core GLOVE leftovers, shard
        // reconciliation, this baseline).
        --trash_budget;
        stats.discarded_fingerprints += data[pivot].group_size();
        stats.deleted_samples += data[pivot].total_contributors();
        unassigned.erase(unassigned.begin());
        hooks.report(++consumed, total_work);
        continue;
      }

      std::vector<std::size_t> cluster{pivot};
      for (std::size_t i = 0; i < need; ++i) {
        cluster.push_back(nearest[i].second);
      }
      // Remove clustered ids from the unassigned pool.
      std::vector<std::size_t> rest;
      rest.reserve(unassigned.size() - cluster.size());
      for (const std::size_t id : unassigned) {
        if (std::find(cluster.begin(), cluster.end(), id) == cluster.end()) {
          rest.push_back(id);
        }
      }
      consumed += cluster.size();
      unassigned = std::move(rest);
      clusters.push_back(std::move(cluster));
      hooks.report(consumed, total_work);
    }

    // Chunk leftovers (< k): attach to the nearest cluster of this chunk,
    // or trash when the chunk produced none.
    for (const std::size_t id : unassigned) {
      hooks.throw_if_cancelled();
      hooks.report(++consumed, total_work);
      double best = kInf;
      std::vector<std::size_t>* best_cluster = nullptr;
      for (auto& cluster : clusters) {
        const double d = linear_st_distance_impl(
            trajectories[id], trajectories[cluster.front()]);
        if (d < best) {
          best = d;
          best_cluster = &cluster;
        }
      }
      if (best_cluster != nullptr && std::isfinite(best)) {
        best_cluster->push_back(id);
      } else {
        stats.discarded_fingerprints += data[id].group_size();
        stats.deleted_samples += data[id].total_contributors();
      }
    }
  }
  stats.clusters = clusters.size();

  // --- Per-cluster anonymization: align members on the pivot's timestamps
  // (creating synthetic samples where a member has no sample nearby,
  // deleting excess member samples that collapse onto one timestamp) and
  // publish the centroid trajectory with spatial extent delta.
  std::vector<cdr::Fingerprint> published;
  published.reserve(clusters.size());
  double position_error_sum = 0.0;
  double time_error_sum = 0.0;
  std::uint64_t error_count = 0;

  std::uint64_t published_members = 0;
  for (const auto& cluster : clusters) {
    hooks.throw_if_cancelled();
    const std::size_t pivot = cluster.front();
    const Trajectory& pivot_traj = trajectories[pivot];
    const std::size_t slots = pivot_traj.size();

    // Published member-point per (member, slot): position of the member.
    std::vector<geo::PlanarPoint> slot_positions(slots,
                                                 geo::PlanarPoint{0.0, 0.0});
    std::vector<double> slot_weight(slots, 0.0);

    struct MemberPoint {
      geo::PlanarPoint position;
      double time_error;
    };
    std::vector<std::vector<MemberPoint>> member_points(
        cluster.size(), std::vector<MemberPoint>(slots));

    for (std::size_t mi = 0; mi < cluster.size(); ++mi) {
      const std::size_t member = cluster[mi];
      const Trajectory& traj = trajectories[member];

      // Assign each member sample to its nearest pivot slot.
      std::vector<std::vector<std::size_t>> assigned(slots);
      for (std::size_t s = 0; s < traj.size(); ++s) {
        // Nearest slot by timestamp.
        const auto it = std::lower_bound(pivot_traj.t.begin(),
                                         pivot_traj.t.end(), traj.t[s]);
        std::size_t slot;
        if (it == pivot_traj.t.begin()) {
          slot = 0;
        } else if (it == pivot_traj.t.end()) {
          slot = slots - 1;
        } else {
          const auto hi = static_cast<std::size_t>(it - pivot_traj.t.begin());
          slot =
              (pivot_traj.t[hi] - traj.t[s] < traj.t[s] - pivot_traj.t[hi - 1])
                  ? hi
                  : hi - 1;
        }
        assigned[slot].push_back(s);
      }

      for (std::size_t slot = 0; slot < slots; ++slot) {
        const double slot_t = pivot_traj.t[slot];
        MemberPoint point{};
        if (assigned[slot].empty()) {
          // Synthetic sample: interpolate the member's position.
          point.position = traj.at(slot_t);
          point.time_error =
              std::abs(slot_t - traj.t[traj.nearest_index(slot_t)]);
          ++stats.created_samples;
        } else {
          // Use the closest assigned sample; the rest are deleted.
          std::size_t best = assigned[slot].front();
          for (const std::size_t s : assigned[slot]) {
            if (std::abs(traj.t[s] - slot_t) <
                std::abs(traj.t[best] - slot_t)) {
              best = s;
            }
          }
          point.position = {traj.x[best], traj.y[best]};
          point.time_error = std::abs(traj.t[best] - slot_t);
          if (point.time_error > config.match_tolerance_min) {
            // The sample had to be translated in time ("wait for me").
            // It is neither created nor deleted, only displaced.
          }
          for (const std::size_t s : assigned[slot]) {
            if (s != best) stats.deleted_samples += traj.c[s];
          }
        }
        member_points[mi][slot] = point;
        slot_positions[slot].x_m += point.position.x_m;
        slot_positions[slot].y_m += point.position.y_m;
        slot_weight[slot] += 1.0;
      }
    }

    // Centroid per slot; error accounting per member-point.
    std::vector<cdr::Sample> samples;
    samples.reserve(slots);
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const geo::PlanarPoint centroid{
          slot_positions[slot].x_m / slot_weight[slot],
          slot_positions[slot].y_m / slot_weight[slot]};
      for (std::size_t mi = 0; mi < cluster.size(); ++mi) {
        const MemberPoint& point = member_points[mi][slot];
        const double displacement =
            geo::planar_distance_m(point.position, centroid);
        position_error_sum += displacement;
        time_error_sum += point.time_error;
        ++error_count;
        stats.position_errors_m.push_back(displacement);
        stats.time_errors_min.push_back(point.time_error);
      }
      cdr::Sample s;
      s.sigma = cdr::SpatialExtent{centroid.x_m - config.delta_m / 2,
                                   config.delta_m,
                                   centroid.y_m - config.delta_m / 2,
                                   config.delta_m};
      s.tau = cdr::TemporalExtent{pivot_traj.t[slot], 1.0};
      s.contributors = static_cast<std::uint32_t>(cluster.size());
      samples.push_back(s);
    }

    std::vector<cdr::UserId> members;
    for (const std::size_t id : cluster) {
      members.insert(members.end(), data[id].members().begin(),
                     data[id].members().end());
    }
    published.emplace_back(std::move(members), std::move(samples));
    published_members += cluster.size();
    hooks.report(static_cast<std::uint64_t>(n) + published_members,
                 total_work);
  }
  hooks.report(total_work, total_work);

  if (error_count > 0) {
    stats.mean_position_error_m =
        position_error_sum / static_cast<double>(error_count);
    stats.mean_time_error_min =
        time_error_sum / static_cast<double>(error_count);
  }
  result.anonymized = cdr::FingerprintDataset{
      std::move(published), data.name() + "-w4m-k" + std::to_string(config.k)};
  return result;
}

}  // namespace glove::baseline
