// Wait-for-Me with Linear spatiotemporal distance and Chunking (W4M-LC),
// reimplemented from Abul, Bonchi, Nanni, "Anonymization of moving objects
// databases by clustering and perturbation" (Information Systems, 2010) —
// the state-of-the-art comparator of the paper's Tab. 2.
//
// W4M models a trajectory as a polyline in (x, y, t) with linear constant-
// speed movement between samples.  It greedily clusters trajectories into
// groups of at least k under a linear spatiotemporal distance (with a trash
// bin for hard-to-cluster outliers and chunking for scalability), then
// aligns every cluster member onto the pivot's timestamps — *creating
// synthetic samples by interpolation* — and translates points so that the
// whole cluster fits a cylinder of diameter delta.
//
// The published uncertainty volume is represented in this library's sample
// format as the cluster-centroid trajectory with spatial extent delta.
// Unlike GLOVE, W4M fabricates samples (violating PPDP truthfulness, P2)
// and perturbs positions; the stats below account for that cost exactly as
// Tab. 2 reports it.

#ifndef GLOVE_BASELINE_W4M_HPP
#define GLOVE_BASELINE_W4M_HPP

#include <cstdint>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/util/hooks.hpp"

namespace glove::baseline {

/// W4M-LC parameters.  Defaults follow the paper's comparative setup
/// (Sec. 7.2): delta = 2 km and 10% trashing.
struct W4MConfig {
  std::uint32_t k = 2;
  /// Diameter of the uncertainty cylinder, metres.
  double delta_m = 2'000.0;
  /// Maximum fraction of trajectories that may be discarded as outliers.
  double trash_fraction = 0.10;
  /// Chunk size for the LC variant: clustering runs within chunks of this
  /// many trajectories, bounding the O(n^2) distance computations.
  std::size_t chunk_size = 512;
  /// Tolerance for matching a published timestamp to an original sample
  /// (minutes); published points farther than this from every original
  /// sample of a member count as *created* (synthetic).
  double match_tolerance_min = 1.0;
};

/// Cost accounting matching the rows of Tab. 2.
struct W4MStats {
  std::uint64_t input_users = 0;
  std::uint64_t input_samples = 0;
  /// Users discarded by the trash bin ("Discarded fingerprints").
  std::uint64_t discarded_fingerprints = 0;
  /// Synthetic member-samples fabricated by time alignment ("Created").
  std::uint64_t created_samples = 0;
  /// Original samples with no published counterpart ("Deleted").
  std::uint64_t deleted_samples = 0;
  /// Mean displacement between a member's true (interpolated) position and
  /// the published cluster position at each published timestamp, metres.
  double mean_position_error_m = 0.0;
  /// Mean distance between each published member-sample's timestamp and
  /// the member's nearest original sample, minutes.
  double mean_time_error_min = 0.0;
  /// Per published member-sample error observations (distribution plots).
  std::vector<double> position_errors_m;
  std::vector<double> time_errors_min;
  std::uint64_t clusters = 0;
};

/// Result: the published dataset (one fingerprint per cluster, carrying all
/// member ids, samples = centroid points with spatial extent delta) plus
/// the cost statistics.
struct W4MResult {
  cdr::FingerprintDataset anonymized;
  W4MStats stats;
};

/// Runs W4M-LC with observability hooks: progress counts trajectories
/// consumed by clustering plus cluster members published; cancellation is
/// polled per pivot and per cluster.  Requires data.size() >= k >= 2;
/// throws std::invalid_argument otherwise.  Deterministic.
[[nodiscard]] W4MResult anonymize_w4m(const cdr::FingerprintDataset& data,
                                      const W4MConfig& config,
                                      const util::RunHooks& hooks);

/// Deprecated entry point: prefer glove::Engine::run (strategy
/// "w4m-baseline") or the hooks overload above.
[[nodiscard]] W4MResult anonymize_w4m(const cdr::FingerprintDataset& data,
                                      const W4MConfig& config);

/// Linear spatiotemporal distance between two trajectories (exposed for
/// tests): time-average Euclidean distance between the two moving points
/// over their co-existence interval, plus a proportional penalty for the
/// non-overlapping fraction of their spans.  Returns +inf for trajectories
/// that never co-exist.
[[nodiscard]] double linear_st_distance(const cdr::Fingerprint& a,
                                        const cdr::Fingerprint& b);

}  // namespace glove::baseline

#endif  // GLOVE_BASELINE_W4M_HPP
