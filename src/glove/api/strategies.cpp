// The built-in Anonymizer strategies, each a thin adapter from the
// uniform RunConfig onto the corresponding core/shard/baseline algorithm.
// The algorithms themselves are unchanged — the parity test locks every
// single-matrix strategy's output to the pre-Engine free function byte
// for byte.

#include "glove/api/engine.hpp"
#include "glove/baseline/w4m.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/incremental.hpp"
#include "glove/core/scalability.hpp"
#include "glove/shard/shard.hpp"
#include "glove/shard/stream.hpp"

namespace glove::api {

namespace {

core::GloveConfig to_glove_config(const RunConfig& config) {
  core::GloveConfig glove;
  glove.k = config.k;
  glove.limits = config.limits;
  glove.suppression = config.suppression;
  glove.reshape = config.reshape;
  glove.leftover_policy = config.leftover_policy;
  return glove;
}

RunCounters from_glove_stats(const core::GloveStats& stats) {
  RunCounters counters;
  counters.input_users = stats.input_users;
  counters.input_samples = stats.input_samples;
  counters.output_groups = stats.output_groups;
  counters.output_samples = stats.output_samples;
  counters.merges = stats.merges;
  counters.deleted_samples = stats.deleted_samples;
  counters.discarded_fingerprints = stats.discarded_fingerprints;
  counters.stretch_evaluations = stats.stretch_evaluations;
  return counters;
}

StrategyOutcome from_glove_result(core::GloveResult result) {
  StrategyOutcome outcome;
  outcome.counters = from_glove_stats(result.stats);
  outcome.init_seconds = result.stats.init_seconds;
  outcome.merge_seconds = result.stats.merge_seconds;
  outcome.anonymized = std::move(result.anonymized);
  return outcome;
}

std::optional<Error> require_at_least_k(const cdr::FingerprintDataset& data,
                                        const RunConfig& config) {
  if (data.size() < config.k) {
    return Error{ErrorCode::kInvalidDataset,
                 "dataset holds " + std::to_string(data.size()) +
                     " fingerprints, fewer than the target anonymity level " +
                     std::to_string(config.k)};
  }
  return std::nullopt;
}

class FullStrategy final : public Anonymizer {
 public:
  std::string_view name() const noexcept override { return kStrategyFull; }
  std::string_view description() const noexcept override {
    return "GLOVE greedy k-anonymization over the full pair matrix (Alg. 1)";
  }
  std::optional<Error> validate(const cdr::FingerprintDataset& data,
                                const RunConfig& config) const override {
    return require_at_least_k(data, config);
  }
  StrategyOutcome run(const cdr::FingerprintDataset& data,
                      const RunConfig& config,
                      const RunContext& context) const override {
    return from_glove_result(
        core::anonymize(data, to_glove_config(config), context.hooks));
  }
};

class PrunedStrategy final : public Anonymizer {
 public:
  std::string_view name() const noexcept override {
    return kStrategyPrunedKGap;
  }
  std::string_view description() const noexcept override {
    return "exact GLOVE with bounding-box-pruned (lazy lower-bound) "
           "initialization; identical output, fewer stretch evaluations";
  }
  std::optional<Error> validate(const cdr::FingerprintDataset& data,
                                const RunConfig& config) const override {
    return require_at_least_k(data, config);
  }
  StrategyOutcome run(const cdr::FingerprintDataset& data,
                      const RunConfig& config,
                      const RunContext& context) const override {
    return from_glove_result(
        core::anonymize_pruned(data, to_glove_config(config), context.hooks));
  }
};

class ChunkedStrategy final : public Anonymizer {
 public:
  std::string_view name() const noexcept override { return kStrategyChunked; }
  std::string_view description() const noexcept override {
    return "GLOVE over locality-sorted chunks (W4M-LC-style scaling)";
  }
  std::optional<Error> validate_config(const RunConfig& config) const override {
    if (config.chunked.chunk_size < config.k) {
      return Error{ErrorCode::kInvalidConfig,
                   "chunked.chunk_size must be at least k"};
    }
    return std::nullopt;
  }
  std::optional<Error> validate(const cdr::FingerprintDataset& data,
                                const RunConfig& config) const override {
    return require_at_least_k(data, config);
  }
  StrategyOutcome run(const cdr::FingerprintDataset& data,
                      const RunConfig& config,
                      const RunContext& context) const override {
    core::ChunkedConfig chunked;
    chunked.glove = to_glove_config(config);
    chunked.chunk_size = config.chunked.chunk_size;
    return from_glove_result(
        core::anonymize_chunked(data, chunked, context.hooks));
  }
};

class IncrementalStrategy final : public Anonymizer {
 public:
  std::string_view name() const noexcept override {
    return kStrategyIncremental;
  }
  std::string_view description() const noexcept override {
    return "incremental update: newcomers join a published release without "
           "regrouping existing users";
  }
  std::optional<Error> validate(const cdr::FingerprintDataset& data,
                                const RunConfig& config) const override {
    for (const cdr::Fingerprint& fp : data.fingerprints()) {
      if (fp.group_size() != 1) {
        return Error{ErrorCode::kInvalidDataset,
                     "incremental input must hold single-user fingerprints "
                     "(the newcomers); found a group of " +
                         std::to_string(fp.group_size())};
      }
    }
    const cdr::FingerprintDataset* published = config.incremental.published;
    if (published == nullptr || published->empty()) {
      // Starting from scratch: the newcomers must form groups on their own.
      return require_at_least_k(data, config);
    }
    if (!core::is_k_anonymous(*published, config.k)) {
      return Error{ErrorCode::kInvalidDataset,
                   "incremental.published does not satisfy the configured "
                   "anonymity level k=" +
                       std::to_string(config.k)};
    }
    return std::nullopt;
  }
  StrategyOutcome run(const cdr::FingerprintDataset& data,
                      const RunConfig& config,
                      const RunContext& context) const override {
    static const cdr::FingerprintDataset kEmptyPublished;
    const cdr::FingerprintDataset& published =
        config.incremental.published != nullptr ? *config.incremental.published
                                                : kEmptyPublished;
    core::UpdateResult result = core::anonymize_update(
        published, data, to_glove_config(config), context.hooks);

    StrategyOutcome outcome;
    outcome.counters = from_glove_stats(result.stats.glove);
    outcome.counters.input_users = published.total_users() + data.total_users();
    outcome.counters.input_samples =
        published.total_samples() + data.total_samples();
    outcome.init_seconds = result.stats.glove.init_seconds;
    outcome.merge_seconds = result.stats.glove.merge_seconds;
    outcome.extra_metrics = {
        {"new_users", static_cast<double>(result.stats.new_users)},
        {"joined_existing_groups",
         static_cast<double>(result.stats.joined_existing_groups)},
        {"formed_new_groups",
         static_cast<double>(result.stats.formed_new_groups)}};
    outcome.anonymized = std::move(result.anonymized);
    outcome.counters.output_groups = outcome.anonymized.size();
    outcome.counters.output_samples = outcome.anonymized.total_samples();
    return outcome;
  }
};

class ShardedStrategy final : public Anonymizer {
 public:
  std::string_view name() const noexcept override { return kStrategySharded; }
  std::string_view description() const noexcept override {
    return "spatially-sharded parallel GLOVE: tiled partition, per-shard "
           "exact pipeline, deterministic cross-shard reconciliation";
  }
  std::optional<Error> validate_config(const RunConfig& config) const override {
    if (config.sharded.tile_size_m < 0.0) {
      return Error{ErrorCode::kInvalidConfig,
                   "sharded.tile_size_m must be positive (or 0 for an "
                   "adaptive, density-derived tile size)"};
    }
    if (config.sharded.halo_m < 0.0) {
      return Error{ErrorCode::kInvalidConfig,
                   "sharded.halo_m must be non-negative"};
    }
    if (config.sharded.max_shard_users < config.k) {
      return Error{ErrorCode::kInvalidConfig,
                   "sharded.max_shard_users must be at least k"};
    }
    // The scheduler spawns this many threads; an absurd value is a config
    // mistake (e.g. an integer wrap), not a parallelism request.
    if (config.sharded.workers > 4'096) {
      return Error{ErrorCode::kInvalidConfig,
                   "sharded.workers must be at most 4096 (0 = hardware "
                   "concurrency)"};
    }
    // Same sanity bound for the process executor's daemon count.
    if (config.sharded.exec_workers > 4'096) {
      return Error{ErrorCode::kInvalidConfig,
                   "sharded.exec_workers must be at most 4096 (0 = hardware "
                   "concurrency)"};
    }
    return std::nullopt;
  }
  bool supports_streaming() const noexcept override { return true; }

  StrategyOutcome run(const cdr::FingerprintDataset& data,
                      const RunConfig& config,
                      const RunContext& context) const override {
    shard::ShardedResult result = shard::anonymize_sharded(
        data, to_shard_config(config), context.hooks);
    StrategyOutcome outcome =
        outcome_from_stats(result.stats, result.shard_timings);
    attach_exec(outcome, std::move(result.exec_kind), result.exec_workers,
                result.exec_worker_stats);
    outcome.anonymized = std::move(result.anonymized);
    return outcome;
  }

  StrategyOutcome run_streaming(DatasetSource& source, const RunConfig& config,
                                const RunContext& context,
                                DatasetSink& sink) const override {
    // The sharded pipeline is the first true streaming consumer: tile
    // histogram and border split from a bounds-only first pass, shard
    // batches materialized on later passes, groups pushed to the sink as
    // shards finish.
    sink.begin(shard::sharded_output_name(source.name(), config.k));
    SourceStream stream{source};
    shard::StreamShardedResult result = shard::anonymize_sharded_stream(
        stream, to_shard_config(config),
        [&sink](cdr::Fingerprint&& group) { sink.write(std::move(group)); },
        context.hooks);
    sink.finish();
    StrategyOutcome outcome =
        outcome_from_stats(result.stats, result.shard_timings);
    attach_exec(outcome, std::move(result.exec_kind), result.exec_workers,
                result.exec_worker_stats);
    outcome.pass_fingerprints = std::move(result.pass_fingerprints);
    return outcome;
  }

 private:
  /// Adapts the api-level source to the shard subsystem's stream concept
  /// (the shard layer stays independent of the api layer).
  class SourceStream final : public shard::FingerprintStream {
   public:
    explicit SourceStream(DatasetSource& source) noexcept : source_{source} {}
    bool next(cdr::Fingerprint& fingerprint) override {
      return source_.next(fingerprint);
    }
    void rewind() override { source_.rewind(); }
    const cdr::FingerprintDataset* materialized() const noexcept override {
      return source_.materialized();
    }
    bool summaries(std::vector<cdr::FingerprintSummary>& out) override {
      return source_.summaries(out);
    }
    std::optional<std::uint64_t> fetch(
        const std::unordered_map<std::uint32_t, std::uint32_t>& slot_of_id,
        std::vector<cdr::Fingerprint>& store) override {
      return source_.fetch(slot_of_id, store);
    }
    std::optional<std::string> file_path() const override {
      return source_.file_path();
    }

   private:
    DatasetSource& source_;
  };

  static shard::ShardConfig to_shard_config(const RunConfig& config) {
    shard::ShardConfig sharded;
    sharded.glove = to_glove_config(config);
    sharded.tile_size_m = config.sharded.tile_size_m;
    sharded.max_shard_users = config.sharded.max_shard_users;
    sharded.workers = config.sharded.workers;
    sharded.border = config.sharded.border;
    sharded.halo_m = config.sharded.halo_m;
    sharded.reconcile_chunk_users = config.sharded.reconcile_chunk_users;
    sharded.executor = config.sharded.executor;
    sharded.exec_workers = config.sharded.exec_workers;
    sharded.worker_binary = config.sharded.worker_binary;
    return sharded;
  }

  static void attach_exec(StrategyOutcome& outcome, std::string exec_kind,
                          std::uint64_t exec_workers,
                          const std::vector<shard::exec::ExecWorkerStats>&
                              worker_stats) {
    outcome.exec_kind = std::move(exec_kind);
    outcome.exec_workers = exec_workers;
    outcome.exec_worker_stats.reserve(worker_stats.size());
    for (const shard::exec::ExecWorkerStats& w : worker_stats) {
      ExecWorkerRow row;
      row.worker = w.worker;
      row.jobs = w.jobs;
      row.fingerprints = w.fingerprints;
      row.groups = w.groups;
      row.busy_seconds = w.busy_seconds;
      outcome.exec_worker_stats.push_back(row);
    }
  }

  static StrategyOutcome outcome_from_stats(
      const shard::ShardedStats& stats,
      const std::vector<shard::ShardTiming>& timings) {
    StrategyOutcome outcome;
    outcome.counters = from_glove_stats(stats.glove);
    outcome.init_seconds = stats.glove.init_seconds;
    outcome.merge_seconds = stats.glove.merge_seconds;
    outcome.extra_metrics = {
        {"tiles", static_cast<double>(stats.tiles)},
        {"shards", static_cast<double>(stats.shards)},
        {"deferred_fingerprints",
         static_cast<double>(stats.deferred_fingerprints)},
        {"reconciled_groups", static_cast<double>(stats.reconciled_groups)},
        {"absorbed_leftovers", static_cast<double>(stats.absorbed_leftovers)},
        {"reconcile_passes", static_cast<double>(stats.reconcile_passes)},
        {"tile_size_m", stats.tile_size_m},
        {"plan_seconds", stats.plan_seconds},
        {"reconcile_seconds", stats.reconcile_seconds}};
    outcome.shard_timings.reserve(timings.size());
    for (const shard::ShardTiming& t : timings) {
      ShardTimingRow row;
      row.shard = t.shard;
      row.input_fingerprints = t.input_fingerprints;
      row.deferred = t.deferred;
      row.output_groups = t.output_groups;
      row.init_seconds = t.init_seconds;
      row.merge_seconds = t.merge_seconds;
      row.total_seconds = t.total_seconds;
      outcome.shard_timings.push_back(row);
    }
    return outcome;
  }
};

class W4MStrategy final : public Anonymizer {
 public:
  std::string_view name() const noexcept override { return kStrategyW4M; }
  std::string_view description() const noexcept override {
    return "W4M-LC baseline: cluster-and-perturb (fabricates samples; for "
           "comparison, not PPDP-truthful)";
  }
  std::optional<Error> validate_config(const RunConfig& config) const override {
    if (config.w4m.delta_m <= 0.0) {
      return Error{ErrorCode::kInvalidConfig, "w4m.delta_m must be positive"};
    }
    if (config.w4m.trash_fraction < 0.0 || config.w4m.trash_fraction >= 1.0) {
      return Error{ErrorCode::kInvalidConfig,
                   "w4m.trash_fraction must be in [0, 1)"};
    }
    if (config.w4m.chunk_size < config.k) {
      return Error{ErrorCode::kInvalidConfig,
                   "w4m.chunk_size must be at least k"};
    }
    return std::nullopt;
  }
  std::optional<Error> validate(const cdr::FingerprintDataset& data,
                                const RunConfig& config) const override {
    return require_at_least_k(data, config);
  }
  StrategyOutcome run(const cdr::FingerprintDataset& data,
                      const RunConfig& config,
                      const RunContext& context) const override {
    baseline::W4MConfig w4m;
    w4m.k = config.k;
    w4m.delta_m = config.w4m.delta_m;
    w4m.trash_fraction = config.w4m.trash_fraction;
    w4m.chunk_size = config.w4m.chunk_size;
    w4m.match_tolerance_min = config.w4m.match_tolerance_min;
    baseline::W4MResult result =
        baseline::anonymize_w4m(data, w4m, context.hooks);

    StrategyOutcome outcome;
    outcome.counters.input_users = result.stats.input_users;
    outcome.counters.input_samples = result.stats.input_samples;
    outcome.counters.deleted_samples = result.stats.deleted_samples;
    outcome.counters.created_samples = result.stats.created_samples;
    outcome.counters.discarded_fingerprints =
        result.stats.discarded_fingerprints;
    outcome.extra_metrics = {
        {"clusters", static_cast<double>(result.stats.clusters)},
        {"mean_position_error_m", result.stats.mean_position_error_m},
        {"mean_time_error_min", result.stats.mean_time_error_min}};
    outcome.anonymized = std::move(result.anonymized);
    outcome.counters.output_groups = outcome.anonymized.size();
    outcome.counters.output_samples = outcome.anonymized.total_samples();
    return outcome;
  }
};

}  // namespace

void register_builtin_strategies(Engine& engine) {
  engine.register_strategy(std::make_unique<FullStrategy>());
  engine.register_strategy(std::make_unique<ChunkedStrategy>());
  engine.register_strategy(std::make_unique<PrunedStrategy>());
  engine.register_strategy(std::make_unique<ShardedStrategy>());
  engine.register_strategy(std::make_unique<IncrementalStrategy>());
  engine.register_strategy(std::make_unique<W4MStrategy>());
}

}  // namespace glove::api
