#include "glove/api/source.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "glove/util/hooks.hpp"

namespace glove::api {

bool MemorySource::next(cdr::Fingerprint& fingerprint) {
  if (cursor_ >= data_->size()) return false;
  fingerprint = (*data_)[cursor_++];
  return true;
}

CsvFileSource::CsvFileSource(std::string path)
    : path_{std::move(path)}, in_{path_}, reader_{in_} {
  if (!in_) throw std::runtime_error{"cannot open for reading: " + path_};
}

bool CsvFileSource::next(cdr::Fingerprint& fingerprint) {
  try {
    return reader_.next(fingerprint);
  } catch (const std::invalid_argument& e) {
    // A malformed row is a *data* problem: surface it as DatasetError so
    // the Engine reports kInvalidDataset (with path and line), matching
    // the empty/too-small cases, not kInvalidConfig.
    throw util::DatasetError{path_ + ": " + e.what()};
  }
}

void CsvFileSource::rewind() {
  try {
    reader_.rewind();
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path_ + ": " + e.what()};
  }
}

cdr::FingerprintDataset collect(DatasetSource& source) {
  std::vector<cdr::Fingerprint> fingerprints;
  if (const auto hint = source.size_hint()) {
    fingerprints.reserve(static_cast<std::size_t>(*hint));
  }
  cdr::Fingerprint fp;
  while (source.next(fp)) fingerprints.push_back(std::move(fp));
  return cdr::FingerprintDataset{std::move(fingerprints), source.name()};
}

}  // namespace glove::api
