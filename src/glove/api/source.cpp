#include "glove/api/source.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "glove/obs/metrics.hpp"
#include "glove/obs/span.hpp"
#include "glove/util/hooks.hpp"

namespace glove::api {

bool MemorySource::next(cdr::Fingerprint& fingerprint) {
  if (cursor_ >= data_->size()) return false;
  fingerprint = (*data_)[cursor_++];
  return true;
}

CsvFileSource::CsvFileSource(std::string path)
    : path_{std::move(path)}, in_{path_}, reader_{in_} {
  if (!in_) throw std::runtime_error{"cannot open for reading: " + path_};
}

bool CsvFileSource::next(cdr::Fingerprint& fingerprint) {
  static const obs::Counter c_rows = obs::counter("source.csv.rows_read");
  try {
    const bool ok = reader_.next(fingerprint);
    if (ok) c_rows.add();
    return ok;
  } catch (const std::invalid_argument& e) {
    // A malformed row is a *data* problem: surface it as DatasetError so
    // the Engine reports kInvalidDataset (with path and line), matching
    // the empty/too-small cases, not kInvalidConfig.
    throw util::DatasetError{path_ + ": " + e.what()};
  }
}

void CsvFileSource::rewind() {
  try {
    reader_.rewind();
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path_ + ": " + e.what()};
  }
}

namespace {

/// Blocks decoded per mmap during a sequential scan: large enough to
/// amortize the map/unmap syscalls, small enough that the window stays a
/// few MiB under any dataset.
constexpr std::size_t kSequentialBlocksPerMap = 64;

}  // namespace

GlovebinSource::GlovebinSource(std::string path)
    : reader_{std::move(path)} {
  stats_.file_blocks = reader_.block_count();
}

bool GlovebinSource::next(cdr::Fingerprint& fingerprint) {
  if (buffer_cursor_ >= buffer_.size()) {
    const auto blocks = static_cast<std::size_t>(reader_.block_count());
    if (next_block_ >= blocks) return false;
    const std::size_t last =
        std::min(next_block_ + kSequentialBlocksPerMap, blocks);
    GLOVE_SPAN_NAMED(read_span, "source.glovebin.scan_window");
    read_span.arg("first_block", next_block_);
    read_span.arg("blocks", last - next_block_);
    buffer_.clear();
    buffer_cursor_ = 0;
    try {
      reader_.read_blocks(next_block_, last,
                          [&](std::uint64_t, cdr::Fingerprint&& fp) {
                            buffer_.push_back(std::move(fp));
                          });
    } catch (const std::invalid_argument& e) {
      throw util::DatasetError{e.what()};  // reader messages carry the path
    }
    next_block_ = last;
  }
  fingerprint = std::move(buffer_[buffer_cursor_++]);
  return true;
}

void GlovebinSource::rewind() {
  buffer_.clear();
  buffer_cursor_ = 0;
  next_block_ = 0;
}

bool GlovebinSource::summaries(std::vector<cdr::FingerprintSummary>& out) {
  GLOVE_SPAN_NAMED(span, "source.glovebin.summaries");
  out = reader_.summaries();
  span.arg("fingerprints", out.size());
  stats_.pass_blocks.push_back(0);  // index-only pass: no payload decoded
  return true;
}

std::optional<std::uint64_t> GlovebinSource::fetch(
    const std::unordered_map<std::uint32_t, std::uint32_t>& slot_of_id,
    std::vector<cdr::Fingerprint>& store) {
  static const obs::Counter c_blocks =
      obs::counter("source.glovebin.fetch_blocks");
  GLOVE_SPAN_NAMED(fetch_span, "source.glovebin.fetch");
  std::vector<char> needed(static_cast<std::size_t>(reader_.block_count()),
                           0);
  // glove-lint: allow(unordered-iteration, computes the set union of
  // needed blocks into a bitmap; the payload walk below runs in file
  // block order and writes slot-addressed, so hash order never reaches
  // the output)
  for (const auto& [id, slot] : slot_of_id) {
    (void)slot;
    needed[reader_.block_of(id)] = 1;
  }
  std::uint64_t fetched = 0;
  std::uint64_t pass_blocks = 0;
  for (std::size_t b = 0; b < needed.size();) {
    if (needed[b] == 0) {
      ++b;
      continue;
    }
    // Each iteration maps and decodes a whole block run, so this is the
    // only timely poll point a cancel has during an index-served pass.
    throw_if_cancelled();
    std::size_t e = b;
    while (e < needed.size() && needed[e] != 0) ++e;
    try {
      reader_.read_blocks(b, e, [&](std::uint64_t id, cdr::Fingerprint&& fp) {
        const auto it = slot_of_id.find(static_cast<std::uint32_t>(id));
        if (it != slot_of_id.end()) {
          store[it->second] = std::move(fp);
          ++fetched;
        }
      });
    } catch (const std::invalid_argument& error) {
      throw util::DatasetError{error.what()};
    }
    pass_blocks += e - b;
    b = e;
  }
  stats_.pass_blocks.push_back(pass_blocks);
  c_blocks.add(pass_blocks);
  fetch_span.arg("blocks", pass_blocks);
  fetch_span.arg("fetched", fetched);
  return fetched;
}

const SourceIoStats* GlovebinSource::io_stats() const noexcept {
  stats_.blocks_read = reader_.blocks_read();
  stats_.bytes_mapped = reader_.bytes_mapped();
  return &stats_;
}

std::unique_ptr<DatasetSource> open_dataset_source(const std::string& path) {
  if (cdr::is_glovebin_file(path)) {
    return std::make_unique<GlovebinSource>(path);
  }
  return std::make_unique<CsvFileSource>(path);
}

cdr::FingerprintDataset collect(DatasetSource& source) {
  std::vector<cdr::Fingerprint> fingerprints;
  if (const auto hint = source.size_hint()) {
    fingerprints.reserve(static_cast<std::size_t>(*hint));
  }
  cdr::Fingerprint fp;
  while (source.next(fp)) fingerprints.push_back(std::move(fp));
  return cdr::FingerprintDataset{std::move(fingerprints), source.name()};
}

}  // namespace glove::api
