// CLI glue shared by the examples and bench drivers: flag definitions for
// the Engine's RunConfig, dataset acquisition (CSV / D4D file or seeded
// synthetic population), and report output.  Before the Engine each
// binary re-implemented this load -> configure -> run -> report loop.

#ifndef GLOVE_API_CLI_HPP
#define GLOVE_API_CLI_HPP

#include <cstdint>
#include <iosfwd>
#include <string>

#include "glove/api/engine.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/util/flags.hpp"

namespace glove::api {

/// Parses argv (excluding argv[0]).  Returns true to continue; false when
/// the binary should exit with `exit_code` (0 after printing --help usage,
/// 1 after printing a parse error).
bool parse_cli(util::Flags& flags, int argc, const char* const* argv,
               int& exit_code);

/// Registers the Engine run flags: --strategy (enum over
/// engine.strategies()), --k, --suppress-km / --suppress-hours,
/// --chunk-size and --report (JSON/CSV run-report path).
void define_run_flags(util::Flags& flags, const Engine& engine,
                      std::string_view default_strategy = kStrategyFull);

/// Builds a RunConfig from flags registered by define_run_flags.
[[nodiscard]] RunConfig run_config_from_flags(const util::Flags& flags);

/// Registers synthetic-population flags: --users, --days, --seed and
/// --preset (civ|sen).
void define_synth_flags(util::Flags& flags, std::size_t default_users,
                        double default_days = 7.0,
                        std::uint64_t default_seed = 42,
                        std::string_view default_preset = "civ");

/// Generates the seeded synthetic dataset those flags describe.
[[nodiscard]] cdr::FingerprintDataset synth_dataset_from_flags(
    const util::Flags& flags);

/// Registers input-file flags: --format (flat|d4d for raw traces;
/// csv|glovebin to force the dataset format in streaming/convert modes),
/// --antennas, --origin-lat / --origin-lon.
void define_input_flags(util::Flags& flags);

/// Registers the observability flags: --trace-out (Chrome trace-event
/// JSON of the run's spans) and --verbose (rate-limited structured stderr
/// logging).  Neither affects the anonymized output or the run report's
/// deterministic sections.
void define_observability_flags(util::Flags& flags);

/// Applies the observability flags: enables verbose logging and starts
/// span recording when --trace-out is set.  Call before the run.
void start_observability(const util::Flags& flags);

/// Stops span recording and writes the trace file named by --trace-out
/// (no-op when the flag is empty), logging the path.  Throws
/// std::runtime_error on I/O failure.
void finish_observability(const util::Flags& flags, std::ostream& out);

/// Result of a dataset format conversion.
struct ConvertStats {
  std::uint64_t fingerprints = 0;
  std::uint64_t samples = 0;
};

/// Converts a fingerprint dataset file between formats: the input is
/// sniffed by magic bytes (glovebin vs CSV), the output selected by
/// `format` ("csv"/"glovebin", or "" to pick by the output extension).
/// The dataset name is carried across, so csv -> glovebin -> csv
/// round-trips byte-identically.  Throws on I/O or parse failure.
ConvertStats convert_dataset_file(const std::string& input,
                                  const std::string& output,
                                  std::string_view format = {});

/// Reads `path` as a raw CDR trace in the flags-selected format and
/// builds fingerprints.  Throws on I/O or format errors.
[[nodiscard]] cdr::FingerprintDataset load_dataset(const std::string& path,
                                                   const util::Flags& flags);

/// Runs the Engine; on error prints the typed error to stderr and calls
/// std::exit(1).  For CLI binaries where every error is fatal.
[[nodiscard]] RunReport run_or_exit(const Engine& engine,
                                    const cdr::FingerprintDataset& data,
                                    const RunConfig& config);

/// Streaming variant: source in, sink out (file-to-file runs).  Same
/// fatal-error contract as run_or_exit.
[[nodiscard]] RunReport run_streaming_or_exit(const Engine& engine,
                                              DatasetSource& source,
                                              DatasetSink& sink,
                                              const RunConfig& config);

/// Writes the --report file when the flag is non-empty, logging the path.
void maybe_write_report(const util::Flags& flags, const RunReport& report,
                        std::ostream& out);

/// One-line human summary: groups, samples, deletions, timings.
[[nodiscard]] std::string summarize_report(const RunReport& report);

}  // namespace glove::api

#endif  // GLOVE_API_CLI_HPP
