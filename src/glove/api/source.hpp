// DatasetSource: the pull side of the Engine's streaming run boundary.
//
// A source yields fingerprints one at a time and can be rewound, so
// two-pass strategies (the sharded backend plans on a first pass and
// materializes shard batches on later ones) never need the whole dataset
// in memory.  MemorySource adapts an existing in-memory dataset — the
// legacy dataset-in/dataset-out Engine overload is a thin wrapper around
// it — and CsvFileSource streams a fingerprint-dataset CSV straight off
// disk through cdr::DatasetStreamReader.

#ifndef GLOVE_API_SOURCE_HPP
#define GLOVE_API_SOURCE_HPP

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "glove/cdr/binio.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/cdr/io.hpp"
#include "glove/util/hooks.hpp"

namespace glove::api {

/// Io accounting an index-capable source exposes for the run report's
/// `io` section.  `pass_blocks` records, per planning/materialization
/// pass, how many payload blocks the pass decoded (0 for an index-only
/// planning pass); `blocks_read`/`bytes_mapped` are the cumulative
/// totals.
struct SourceIoStats {
  std::uint64_t file_blocks = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_mapped = 0;
  std::vector<std::uint64_t> pass_blocks;
};

class DatasetSource {
 public:
  virtual ~DatasetSource() = default;

  /// Stable identifier of the source's transport ("memory", "csv-file"),
  /// recorded in the run report.
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  /// Dataset name carried into reports and output naming (the in-memory
  /// dataset's name, or the file path).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Yields the next fingerprint.  Returns false at end of input; may
  /// throw (e.g. std::invalid_argument on malformed rows).
  virtual bool next(cdr::Fingerprint& fingerprint) = 0;

  /// Restarts the sequence from the first fingerprint, including after
  /// EOF.  Every pass must yield the same fingerprints in the same order;
  /// streaming strategies abort with a dataset error when the count
  /// changes between passes.
  virtual void rewind() = 0;

  /// Fingerprint count when the source knows it upfront (memory sources
  /// do, file sources do not).
  [[nodiscard]] virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }

  /// Zero-copy escape hatch: the backing dataset when this source is an
  /// adapter over one already in memory, else nullptr.  Streaming
  /// strategies then read fingerprints by index instead of copy-yielding
  /// the whole sequence once per pass; the output is identical either
  /// way.
  [[nodiscard]] virtual const cdr::FingerprintDataset* materialized()
      const noexcept {
    return nullptr;
  }

  /// Index fast path for planning scans: when the source carries
  /// precomputed per-fingerprint summaries (the exact
  /// core::fingerprint_bounds geometry plus group size and sample count,
  /// in stream order), fills `out` and returns true — the caller then
  /// skips streaming the payload entirely.  Default: unsupported.
  virtual bool summaries(std::vector<cdr::FingerprintSummary>& out) {
    (void)out;
    return false;
  }

  /// Index fast path for rewound materialization passes: fetches exactly
  /// the fingerprints whose stream index keys `slot_of_id`, storing each
  /// at its mapped slot in `store` (pre-sized by the caller), and returns
  /// how many it materialized.  Sources without random access return
  /// nullopt and the caller re-streams the whole sequence instead.
  virtual std::optional<std::uint64_t> fetch(
      const std::unordered_map<std::uint32_t, std::uint32_t>& slot_of_id,
      std::vector<cdr::Fingerprint>& store) {
    (void)slot_of_id;
    (void)store;
    return std::nullopt;
  }

  /// Io accounting for the run report when this source tracks it
  /// (index-capable file sources), else nullptr.
  [[nodiscard]] virtual const SourceIoStats* io_stats() const noexcept {
    return nullptr;
  }

  /// Path of the file backing this source, when there is one.  The
  /// process shard executor hands it to its worker daemons so each can
  /// re-read its shard slice through its own source; in-memory sources
  /// return nullopt and only support the in-process executor.
  [[nodiscard]] virtual std::optional<std::string> file_path() const {
    return std::nullopt;
  }

  /// Binds the run's cancellation token so long block loops *inside* the
  /// source (GlovebinSource::fetch maps whole block runs per call) get
  /// poll points of their own — without it a cancel only lands between
  /// fingerprints the strategy pulls.  Engine::run binds config.cancel
  /// before dispatching; an unbound source never cancels.
  void bind_cancel(std::optional<util::CancellationToken> token) noexcept {
    cancel_ = std::move(token);
  }

 protected:
  /// Poll point for source-side loops (throws util::CancelledError).
  void throw_if_cancelled() const {
    if (cancel_ && cancel_->cancelled()) throw util::CancelledError{};
  }

 private:
  std::optional<util::CancellationToken> cancel_;
};

/// Streams an existing in-memory dataset (copies on yield; the dataset
/// must outlive the source).
class MemorySource final : public DatasetSource {
 public:
  explicit MemorySource(const cdr::FingerprintDataset& data) noexcept
      : data_{&data} {}

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "memory";
  }
  [[nodiscard]] std::string name() const override { return data_->name(); }
  bool next(cdr::Fingerprint& fingerprint) override;
  void rewind() override { cursor_ = 0; }
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return data_->size();
  }
  [[nodiscard]] const cdr::FingerprintDataset* materialized()
      const noexcept override {
    return data_;
  }

 private:
  const cdr::FingerprintDataset* data_;
  std::size_t cursor_ = 0;
};

/// Streams a fingerprint-dataset CSV (the write_dataset_csv format) from
/// a file, holding O(1 fingerprint) memory.  Throws std::runtime_error
/// when the file cannot be opened; parse failures carry the path and row
/// number and surface as util::DatasetError (kInvalidDataset at the
/// Engine boundary).  `rewind()` seeks back to the start, so the file
/// can be consumed any number of times.
class CsvFileSource final : public DatasetSource {
 public:
  explicit CsvFileSource(std::string path);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "csv-file";
  }
  [[nodiscard]] std::string name() const override { return path_; }
  bool next(cdr::Fingerprint& fingerprint) override;
  void rewind() override;
  [[nodiscard]] std::optional<std::string> file_path() const override {
    return path_;
  }

 private:
  std::string path_;
  std::ifstream in_;
  cdr::DatasetStreamReader reader_;
};

/// Streams a glovebin file (cdr/binio.hpp), decoding one block range at a
/// time, and serves the index fast paths: summaries() reads the footer
/// instead of the payload and fetch() maps only the blocks holding the
/// requested fingerprints.  Throws std::runtime_error with the path when
/// the file cannot be opened or fails validation; corrupt block payloads
/// surface as util::DatasetError (kInvalidDataset at the Engine
/// boundary), matching CsvFileSource's malformed-row behavior.
class GlovebinSource final : public DatasetSource {
 public:
  explicit GlovebinSource(std::string path);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "glovebin-file";
  }
  [[nodiscard]] std::string name() const override { return reader_.path(); }
  /// The dataset name stored in the footer (the converter preserves it).
  [[nodiscard]] const std::string& dataset_name() const noexcept {
    return reader_.dataset_name();
  }
  bool next(cdr::Fingerprint& fingerprint) override;
  void rewind() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return reader_.fingerprint_count();
  }
  bool summaries(std::vector<cdr::FingerprintSummary>& out) override;
  std::optional<std::uint64_t> fetch(
      const std::unordered_map<std::uint32_t, std::uint32_t>& slot_of_id,
      std::vector<cdr::Fingerprint>& store) override;
  [[nodiscard]] const SourceIoStats* io_stats() const noexcept override;
  [[nodiscard]] std::optional<std::string> file_path() const override {
    return reader_.path();
  }

 private:
  cdr::GlovebinReader reader_;
  std::vector<cdr::Fingerprint> buffer_;  ///< sequential-scan block window
  std::size_t buffer_cursor_ = 0;
  std::size_t next_block_ = 0;
  mutable SourceIoStats stats_;
};

/// Opens `path` as the matching file source: GlovebinSource when the file
/// leads with the glovebin magic, CsvFileSource otherwise.
[[nodiscard]] std::unique_ptr<DatasetSource> open_dataset_source(
    const std::string& path);

/// Materializes everything the source still holds into a dataset named
/// after the source — the collect-then-run fallback for strategies that
/// need the full pair matrix.
[[nodiscard]] cdr::FingerprintDataset collect(DatasetSource& source);

}  // namespace glove::api

#endif  // GLOVE_API_SOURCE_HPP
