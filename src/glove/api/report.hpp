// RunReport: the structured outcome of an Engine run — the anonymized
// dataset plus uniform counters, phase timings, a config echo, and
// strategy-specific extra metrics.  Serializable to JSON (schema locked by
// a golden test) and to a flat CSV row for sweep scripts.

#ifndef GLOVE_API_REPORT_HPP
#define GLOVE_API_REPORT_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "glove/api/config.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/stats/json.hpp"

namespace glove::api {

/// Uniform cost counters across strategies (the Tab. 2 rows).  Fields a
/// strategy cannot produce stay zero (e.g. created_samples for GLOVE,
/// merges for W4M).
struct RunCounters {
  std::uint64_t input_users = 0;
  std::uint64_t input_samples = 0;
  std::uint64_t output_groups = 0;
  std::uint64_t output_samples = 0;
  std::uint64_t merges = 0;
  std::uint64_t deleted_samples = 0;
  std::uint64_t created_samples = 0;
  std::uint64_t discarded_fingerprints = 0;
  std::uint64_t stretch_evaluations = 0;
};

struct RunTimings {
  double init_seconds = 0.0;   ///< strategy setup (e.g. stretch matrix)
  double merge_seconds = 0.0;  ///< main loop (greedy merge / clustering)
  double total_seconds = 0.0;  ///< wall clock of Engine::run
};

/// Per-shard accounting of the `sharded` strategy, serialized as the
/// report's "shards" array (absent for single-matrix strategies).
struct ShardTimingRow {
  std::uint64_t shard = 0;
  std::uint64_t input_fingerprints = 0;  ///< anonymized inside the shard
  std::uint64_t deferred = 0;            ///< handed to reconciliation
  std::uint64_t output_groups = 0;
  double init_seconds = 0.0;
  double merge_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Per-worker accounting of the shard execution backend, serialized as
/// the report's "exec.per_worker" array (sharded strategy only; the
/// in-process executor reports no per-worker rows because its thread
/// pool's work stealing is timing-dependent, while the process executor's
/// round-robin assignment is deterministic).
struct ExecWorkerRow {
  std::uint64_t worker = 0;        ///< 0-based worker index
  std::uint64_t jobs = 0;          ///< shard jobs dispatched to it
  std::uint64_t fingerprints = 0;  ///< fingerprints across those jobs
  std::uint64_t groups = 0;        ///< anonymized groups it returned
  double busy_seconds = 0.0;       ///< summed per-job wall clock
};

/// Scalar echo of the validated configuration the run actually used.
struct ConfigEcho {
  std::string strategy;
  std::uint32_t k = 0;
  double phi_max_sigma_m = 0.0;
  double phi_max_tau_min = 0.0;
  double w_sigma = 0.0;
  double w_tau = 0.0;
  bool suppression_enabled = false;
  double max_spatial_extent_m = 0.0;
  double max_temporal_extent_min = 0.0;
  bool reshape = true;
  std::string leftover_policy;
  std::size_t chunked_chunk_size = 0;
  double sharded_tile_size_m = 0.0;
  std::size_t sharded_max_shard_users = 0;
  std::size_t sharded_workers = 0;
  std::string sharded_border;
  double sharded_halo_m = 0.0;
  std::size_t sharded_reconcile_chunk_users = 0;
  std::string sharded_executor;
  std::size_t sharded_exec_workers = 0;
  double w4m_delta_m = 0.0;
  double w4m_trash_fraction = 0.0;
  std::size_t w4m_chunk_size = 0;
  double w4m_match_tolerance_min = 0.0;
};

[[nodiscard]] ConfigEcho echo_config(const RunConfig& config);

struct RunReport {
  std::string strategy;
  std::string dataset_name;
  /// The anonymized dataset for dataset-out runs (the legacy Engine
  /// overload).  Streaming runs deliver groups to the DatasetSink instead
  /// and leave this empty.
  cdr::FingerprintDataset anonymized;
  RunCounters counters;
  RunTimings timings;
  ConfigEcho config;
  /// Strategy-specific scalar metrics (e.g. W4M mean errors, incremental
  /// join counts), serialized under "metrics" in declaration order.
  std::vector<std::pair<std::string, double>> extra_metrics;
  /// Per-shard timings (sharded strategy only; empty otherwise).
  /// Serialized as "shards" when non-empty.
  std::vector<ShardTimingRow> shard_timings;
  /// Shard execution backend the run used ("inprocess", "process"; empty
  /// for strategies without the executor seam), its resolved worker
  /// count, and per-worker accounting when the backend reports it.
  /// Serialized as "exec" when exec_kind is non-empty.
  std::string exec_kind;
  std::uint64_t exec_workers = 0;
  std::vector<ExecWorkerRow> exec_worker_stats;
  /// Data-plane echo of the run boundary: the source/sink transports
  /// ("memory", "csv-file"), how many fingerprints each pass over the
  /// source streamed (one entry for collect-then-run strategies and for
  /// in-memory sources, which are never re-read; planning + batch passes
  /// for true streams), and the process's peak resident set size when
  /// the run finished (0 when the platform hides it) — together the
  /// evidence that a streaming run stayed out-of-core.
  std::string source_kind;
  std::string sink_kind;
  std::vector<std::uint64_t> pass_fingerprints;
  /// Block accounting of index-capable sources (glovebin files): payload
  /// blocks each pass decoded (aligned with pass_fingerprints; 0 for the
  /// index-only planning pass), the file's total block count, and the
  /// cumulative blocks/bytes mapped.  All zero/empty for sources without
  /// a block index.
  std::vector<std::uint64_t> pass_blocks;
  std::uint64_t file_blocks = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_mapped = 0;
  std::uint64_t peak_rss_bytes = 0;
  /// Deterministic observability counters this run contributed (the
  /// obs::counter_delta across Engine::run), name-sorted and serialized
  /// under "obs".  Only counts/bytes/passes ever land here — wall-clock
  /// quantities stay in the trace file — so the section is byte-stable
  /// for a given input and config.
  std::vector<std::pair<std::string, std::uint64_t>> obs_counters;
};

/// Looks up a strategy-specific metric by name; `fallback` when absent.
[[nodiscard]] double find_metric(const RunReport& report,
                                 std::string_view name,
                                 double fallback = 0.0);

/// Sets metric `name` in extra_metrics, overwriting an existing entry in
/// place (serialization order is first-set).  Drivers stamping run-level
/// context — e.g. glove-serve's epoch number and window bounds — go
/// through this rather than growing the locked top-level schema.
void set_metric(RunReport& report, std::string name, double value);

/// JSON document of everything but the dataset itself (strategy, config
/// echo, counters, timings, metrics).  Key order is fixed; the schema is
/// locked by tests/api/report_test.cpp.
[[nodiscard]] stats::Json report_json(const RunReport& report);
[[nodiscard]] std::string to_json(const RunReport& report, int indent = 2);

/// Flat CSV form: a stable header plus one row per report, for appending
/// sweep results.  Extra metrics are not included (they vary by strategy).
[[nodiscard]] std::string report_csv_header();
[[nodiscard]] std::string to_csv_row(const RunReport& report);

/// Writes `to_json` or a header+row CSV to `path`, chosen by extension
/// (".json" vs anything else).  Throws std::runtime_error on I/O failure.
void write_report_file(const std::string& path, const RunReport& report);

}  // namespace glove::api

#endif  // GLOVE_API_REPORT_HPP
