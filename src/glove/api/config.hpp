// RunConfig: the one validated configuration for every anonymization
// strategy the Engine can drive.  Shared knobs (k, stretch limits,
// suppression) sit at the top level; strategy-specific knobs live in
// per-strategy sections that are ignored by the other strategies.

#ifndef GLOVE_API_CONFIG_HPP
#define GLOVE_API_CONFIG_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "glove/cdr/dataset.hpp"
#include "glove/core/glove.hpp"
#include "glove/shard/config.hpp"
#include "glove/util/hooks.hpp"

namespace glove::api {

/// Built-in strategy names (the registry accepts additional ones).
inline constexpr std::string_view kStrategyFull = "full";
inline constexpr std::string_view kStrategyChunked = "chunked";
inline constexpr std::string_view kStrategyPrunedKGap = "pruned-kgap";
inline constexpr std::string_view kStrategyIncremental = "incremental";
inline constexpr std::string_view kStrategyW4M = "w4m-baseline";
inline constexpr std::string_view kStrategySharded = "sharded";

struct RunConfig {
  /// Registered Anonymizer to run (see Engine::strategies()).
  std::string strategy{kStrategyFull};

  // --- Shared knobs (GLOVE family; W4M uses only `k`).
  /// Target anonymity level; every output fingerprint hides >= k users.
  std::uint32_t k = 2;
  core::StretchLimits limits;
  /// Per-merge suppression thresholds (Sec. 7.1); disabled when empty.
  std::optional<core::SuppressionThresholds> suppression;
  /// Resolve temporal overlaps after each merge (Fig. 6b).
  bool reshape = true;
  core::LeftoverPolicy leftover_policy =
      core::LeftoverPolicy::kMergeIntoNearest;

  // --- Strategy sections.
  struct ChunkedSection {
    /// Users per locality-sorted chunk; must be >= k.
    std::size_t chunk_size = 2'000;
  } chunked;

  struct W4MSection {
    /// Diameter of the uncertainty cylinder, metres.
    double delta_m = 2'000.0;
    /// Maximum fraction of trajectories discarded as outliers, in [0, 1).
    double trash_fraction = 0.10;
    /// Trajectories per clustering chunk (the LC variant); must be >= k.
    std::size_t chunk_size = 512;
    /// Published-to-original timestamp match tolerance, minutes.
    double match_tolerance_min = 1.0;
  } w4m;

  struct ShardedSection {
    /// Edge length of the spatial tiles fingerprints are bucketed into.
    /// 0 = adaptive: derived from the anchor density observed during the
    /// planning pass (targets a fingerprints-per-tile band and shrinks
    /// until the densest tile fits max_shard_users).  The resolved value
    /// is reported as the "tile_size_m" run metric.
    double tile_size_m = 25'000.0;
    /// Load-balancing target: fingerprints per shard; must be >= k.
    std::size_t max_shard_users = 2'000;
    /// Shard-scheduler worker threads; 0 = shared-pool default
    /// (GLOVE_THREADS when set, else hardware concurrency).  The output
    /// is byte-identical for every worker count.
    std::size_t workers = 0;
    /// Border handling: kHalo defers fingerprints near a foreign tile to
    /// the reconciliation pass; kNone keeps everything in its home shard.
    shard::BorderPolicy border = shard::BorderPolicy::kHalo;
    /// Border strip width for kHalo, metres.
    double halo_m = 1'000.0;
    /// Streaming runs: deferred fingerprints materialized per
    /// halo-reconciliation pass (whole reconcile chunks per pass; 0 = the
    /// shard batch budget).  Does not change the output bytes — only how
    /// many rewound passes the reconciliation spends.
    std::size_t reconcile_chunk_users = 0;
    /// Shard execution backend: kInProcess runs shards on the scheduler's
    /// thread pool (the default); kProcess forks glove_shard_worker
    /// daemons that re-read their shard slices from the file backing the
    /// source (streaming file runs only).  The output is byte-identical
    /// across backends.
    shard::ExecutorKind executor = shard::ExecutorKind::kInProcess;
    /// Worker count for the process executor; 0 = shared-pool default
    /// (GLOVE_THREADS when set, else hardware concurrency).
    std::size_t exec_workers = 0;
    /// Explicit glove_shard_worker binary path; empty = discover via
    /// $GLOVE_SHARD_WORKER_BIN, then next to the running executable.
    std::string worker_binary;
  } sharded;

  struct IncrementalSection {
    /// The already-published k-anonymized release; the run's input dataset
    /// is then the set of newcomers (single-user fingerprints).  When
    /// null, the run starts from an empty release and the newcomers are
    /// grouped among themselves.  The pointee must outlive the run.
    const cdr::FingerprintDataset* published = nullptr;
  } incremental;

  // --- Observability.
  /// Invoked with monotone non-decreasing `done` out of a fixed `total`
  /// (the Engine clamps out-of-order reports from worker threads).  The
  /// callback runs on the Engine's calling thread or a worker; it must be
  /// fast and must not re-enter the Engine.
  util::ProgressFn progress;
  /// Cooperative cancellation; request_cancel() (from any thread,
  /// including the progress callback) aborts the run with
  /// ErrorCode::kCancelled and no partial output.
  std::optional<util::CancellationToken> cancel;
};

}  // namespace glove::api

#endif  // GLOVE_API_CONFIG_HPP
