#include "glove/api/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "glove/util/csv.hpp"

namespace glove::api {

namespace {

std::string_view leftover_policy_name(core::LeftoverPolicy policy) {
  switch (policy) {
    case core::LeftoverPolicy::kMergeIntoNearest: return "merge-into-nearest";
    case core::LeftoverPolicy::kSuppress: return "suppress";
  }
  return "merge-into-nearest";
}

std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  return buffer;
}

std::string_view border_policy_name(shard::BorderPolicy policy) {
  switch (policy) {
    case shard::BorderPolicy::kHalo: return "halo";
    case shard::BorderPolicy::kNone: return "none";
  }
  return "halo";
}

std::string_view executor_kind_echo(shard::ExecutorKind kind) {
  switch (kind) {
    case shard::ExecutorKind::kInProcess: return "inprocess";
    case shard::ExecutorKind::kProcess: return "process";
  }
  return "inprocess";
}

}  // namespace

double find_metric(const RunReport& report, std::string_view name,
                   double fallback) {
  for (const auto& [key, value] : report.extra_metrics) {
    if (key == name) return value;
  }
  return fallback;
}

void set_metric(RunReport& report, std::string name, double value) {
  for (auto& [key, existing] : report.extra_metrics) {
    if (key == name) {
      existing = value;
      return;
    }
  }
  report.extra_metrics.emplace_back(std::move(name), value);
}

ConfigEcho echo_config(const RunConfig& config) {
  ConfigEcho echo;
  echo.strategy = config.strategy;
  echo.k = config.k;
  echo.phi_max_sigma_m = config.limits.phi_max_sigma_m;
  echo.phi_max_tau_min = config.limits.phi_max_tau_min;
  echo.w_sigma = config.limits.w_sigma;
  echo.w_tau = config.limits.w_tau;
  echo.suppression_enabled = config.suppression.has_value();
  if (config.suppression) {
    echo.max_spatial_extent_m = config.suppression->max_spatial_extent_m;
    echo.max_temporal_extent_min = config.suppression->max_temporal_extent_min;
  }
  echo.reshape = config.reshape;
  echo.leftover_policy = leftover_policy_name(config.leftover_policy);
  echo.chunked_chunk_size = config.chunked.chunk_size;
  echo.sharded_tile_size_m = config.sharded.tile_size_m;
  echo.sharded_max_shard_users = config.sharded.max_shard_users;
  echo.sharded_workers = config.sharded.workers;
  echo.sharded_border = border_policy_name(config.sharded.border);
  echo.sharded_halo_m = config.sharded.halo_m;
  echo.sharded_reconcile_chunk_users = config.sharded.reconcile_chunk_users;
  echo.sharded_executor = executor_kind_echo(config.sharded.executor);
  echo.sharded_exec_workers = config.sharded.exec_workers;
  echo.w4m_delta_m = config.w4m.delta_m;
  echo.w4m_trash_fraction = config.w4m.trash_fraction;
  echo.w4m_chunk_size = config.w4m.chunk_size;
  echo.w4m_match_tolerance_min = config.w4m.match_tolerance_min;
  return echo;
}

stats::Json report_json(const RunReport& report) {
  const ConfigEcho& echo = report.config;

  stats::Json limits = stats::Json::object();
  limits.set("phi_max_sigma_m", echo.phi_max_sigma_m)
      .set("phi_max_tau_min", echo.phi_max_tau_min)
      .set("w_sigma", echo.w_sigma)
      .set("w_tau", echo.w_tau);

  stats::Json suppression = stats::Json::object();
  suppression.set("enabled", echo.suppression_enabled)
      .set("max_spatial_extent_m", echo.max_spatial_extent_m)
      .set("max_temporal_extent_min", echo.max_temporal_extent_min);

  stats::Json config = stats::Json::object();
  config.set("strategy", echo.strategy)
      .set("k", echo.k)
      .set("limits", std::move(limits))
      .set("suppression", std::move(suppression))
      .set("reshape", echo.reshape)
      .set("leftover_policy", echo.leftover_policy)
      .set("chunked",
           stats::Json::object().set(
               "chunk_size",
               static_cast<std::uint64_t>(echo.chunked_chunk_size)))
      .set("sharded",
           stats::Json::object()
               .set("tile_size_m", echo.sharded_tile_size_m)
               .set("max_shard_users",
                    static_cast<std::uint64_t>(echo.sharded_max_shard_users))
               .set("workers",
                    static_cast<std::uint64_t>(echo.sharded_workers))
               .set("border", echo.sharded_border)
               .set("halo_m", echo.sharded_halo_m)
               .set("reconcile_chunk_users",
                    static_cast<std::uint64_t>(
                        echo.sharded_reconcile_chunk_users))
               .set("executor", echo.sharded_executor)
               .set("exec_workers",
                    static_cast<std::uint64_t>(echo.sharded_exec_workers)))
      .set("w4m", stats::Json::object()
                      .set("delta_m", echo.w4m_delta_m)
                      .set("trash_fraction", echo.w4m_trash_fraction)
                      .set("chunk_size",
                           static_cast<std::uint64_t>(echo.w4m_chunk_size))
                      .set("match_tolerance_min",
                           echo.w4m_match_tolerance_min));

  const RunCounters& c = report.counters;
  stats::Json counters = stats::Json::object();
  counters.set("input_users", c.input_users)
      .set("input_samples", c.input_samples)
      .set("output_groups", c.output_groups)
      .set("output_samples", c.output_samples)
      .set("merges", c.merges)
      .set("deleted_samples", c.deleted_samples)
      .set("created_samples", c.created_samples)
      .set("discarded_fingerprints", c.discarded_fingerprints)
      .set("stretch_evaluations", c.stretch_evaluations);

  stats::Json timings = stats::Json::object();
  timings.set("init_seconds", report.timings.init_seconds)
      .set("merge_seconds", report.timings.merge_seconds)
      .set("total_seconds", report.timings.total_seconds);

  stats::Json metrics = stats::Json::object();
  for (const auto& [name, value] : report.extra_metrics) {
    metrics.set(name, value);
  }

  // Dynamic keys (like "metrics" above): the schema lock covers the
  // section name, not the counter names, which grow as instrumentation
  // spreads without forcing a version bump each time.
  stats::Json obs = stats::Json::object();
  for (const auto& [name, value] : report.obs_counters) {
    obs.set(name, value);
  }

  stats::Json passes = stats::Json::array();
  for (const std::uint64_t count : report.pass_fingerprints) {
    passes.push(count);
  }
  stats::Json pass_blocks = stats::Json::array();
  for (const std::uint64_t count : report.pass_blocks) {
    pass_blocks.push(count);
  }
  stats::Json io = stats::Json::object();
  io.set("source", report.source_kind)
      .set("sink", report.sink_kind)
      .set("pass_fingerprints", std::move(passes))
      .set("pass_blocks", std::move(pass_blocks))
      .set("file_blocks", report.file_blocks)
      .set("blocks_read", report.blocks_read)
      .set("bytes_mapped", report.bytes_mapped)
      .set("peak_rss_bytes", report.peak_rss_bytes);

  stats::Json doc = stats::Json::object();
  doc.set("schema", "glove.run_report.v7")
      .set("strategy", report.strategy)
      .set("dataset", report.dataset_name)
      .set("config", std::move(config))
      .set("counters", std::move(counters))
      .set("timings", std::move(timings))
      .set("io", std::move(io))
      .set("metrics", std::move(metrics))
      .set("obs", std::move(obs));
  if (!report.shard_timings.empty()) {
    stats::Json shards = stats::Json::array();
    for (const ShardTimingRow& row : report.shard_timings) {
      shards.push(stats::Json::object()
                      .set("shard", row.shard)
                      .set("input_fingerprints", row.input_fingerprints)
                      .set("deferred", row.deferred)
                      .set("output_groups", row.output_groups)
                      .set("init_seconds", row.init_seconds)
                      .set("merge_seconds", row.merge_seconds)
                      .set("total_seconds", row.total_seconds));
    }
    doc.set("shards", std::move(shards));
  }
  if (!report.exec_kind.empty()) {
    stats::Json per_worker = stats::Json::array();
    for (const ExecWorkerRow& row : report.exec_worker_stats) {
      per_worker.push(stats::Json::object()
                          .set("worker", row.worker)
                          .set("jobs", row.jobs)
                          .set("fingerprints", row.fingerprints)
                          .set("groups", row.groups)
                          .set("busy_seconds", row.busy_seconds));
    }
    doc.set("exec", stats::Json::object()
                        .set("kind", report.exec_kind)
                        .set("workers", report.exec_workers)
                        .set("per_worker", std::move(per_worker)));
  }
  return doc;
}

std::string to_json(const RunReport& report, int indent) {
  return report_json(report).dump(indent) + "\n";
}

std::string report_csv_header() {
  return "strategy,dataset,k,input_users,input_samples,output_groups,"
         "output_samples,merges,deleted_samples,created_samples,"
         "discarded_fingerprints,stretch_evaluations,init_seconds,"
         "merge_seconds,total_seconds";
}

std::string to_csv_row(const RunReport& report) {
  std::ostringstream out;
  util::CsvWriter writer{out};
  const RunCounters& c = report.counters;
  writer.row({report.strategy, report.dataset_name,
              std::to_string(report.config.k), std::to_string(c.input_users),
              std::to_string(c.input_samples), std::to_string(c.output_groups),
              std::to_string(c.output_samples), std::to_string(c.merges),
              std::to_string(c.deleted_samples),
              std::to_string(c.created_samples),
              std::to_string(c.discarded_fingerprints),
              std::to_string(c.stretch_evaluations),
              fmt_double(report.timings.init_seconds),
              fmt_double(report.timings.merge_seconds),
              fmt_double(report.timings.total_seconds)});
  std::string row = out.str();
  // CsvWriter terminates rows with '\n'; the caller appends rows itself.
  if (!row.empty() && row.back() == '\n') row.pop_back();
  return row;
}

void write_report_file(const std::string& path, const RunReport& report) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"cannot open report file: " + path};
  }
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    out << to_json(report);
  } else {
    out << report_csv_header() << '\n' << to_csv_row(report) << '\n';
  }
  if (!out) {
    throw std::runtime_error{"failed writing report file: " + path};
  }
}

}  // namespace glove::api
