// DatasetSink: the push side of the Engine's streaming run boundary.
//
// Strategies (or the Engine's collect-then-run fallback) announce the
// output dataset's name once via begin(), then push finalized k-anonymous
// groups in output order; finish() flushes.  MemorySink collects groups
// back into a dataset — the legacy dataset-out Engine overload reads it —
// and CsvFileSink appends each group to a fingerprint-dataset CSV as it
// arrives, so file-to-file runs never hold the output in memory.
//
// Failure caveat: a sink may have consumed groups when a run fails (the
// Engine returns a typed error and the legacy overload discards its
// MemorySink, but a file sink's partial output stays on disk — callers
// should treat the file as invalid unless the run succeeded).

#ifndef GLOVE_API_SINK_HPP
#define GLOVE_API_SINK_HPP

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "glove/cdr/binio.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/cdr/io.hpp"
#include "glove/obs/metrics.hpp"

namespace glove::api {

class DatasetSink {
 public:
  virtual ~DatasetSink() = default;

  /// Stable identifier of the sink's transport ("memory", "csv-file"),
  /// recorded in the run report.
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  /// Announces the output dataset's name.  Called once, before the first
  /// group.
  virtual void begin(const std::string& dataset_name) { (void)dataset_name; }

  /// Accepts the next finalized group (counts, then forwards to the
  /// implementation).
  void write(cdr::Fingerprint group) {
    static const obs::Counter c_groups = obs::counter("sink.groups_written");
    static const obs::Counter c_samples =
        obs::counter("sink.samples_written");
    c_groups.add();
    c_samples.add(group.size());
    do_write(std::move(group));
    ++groups_written_;
  }

  /// Completes the output (flush, final validity check).  Called once,
  /// after the last group.
  virtual void finish() {}

  [[nodiscard]] std::uint64_t groups_written() const noexcept {
    return groups_written_;
  }

 protected:
  virtual void do_write(cdr::Fingerprint group) = 0;

 private:
  std::uint64_t groups_written_ = 0;
};

/// Collects groups into an in-memory dataset, named by begin().
class MemorySink final : public DatasetSink {
 public:
  [[nodiscard]] std::string_view kind() const noexcept override {
    return "memory";
  }
  void begin(const std::string& dataset_name) override {
    name_ = dataset_name;
  }

  /// Hands the collected dataset out (call once, after the run).
  [[nodiscard]] cdr::FingerprintDataset take_dataset() && {
    return cdr::FingerprintDataset{std::move(groups_), std::move(name_)};
  }

 protected:
  void do_write(cdr::Fingerprint group) override {
    groups_.push_back(std::move(group));
  }

 private:
  std::vector<cdr::Fingerprint> groups_;
  std::string name_;
};

/// Appends groups to a fingerprint-dataset CSV incrementally, producing
/// byte-identical files to cdr::write_dataset_file on the same groups.
/// Throws std::runtime_error (with the path) when the file cannot be
/// opened or a write fails.
class CsvFileSink final : public DatasetSink {
 public:
  explicit CsvFileSink(std::string path);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "csv-file";
  }
  void begin(const std::string& dataset_name) override;
  void finish() override;

 protected:
  void do_write(cdr::Fingerprint group) override;

 private:
  std::string path_;
  std::ofstream out_;
  cdr::DatasetStreamWriter writer_;
};

/// Appends groups to a glovebin file (cdr/binio.hpp) incrementally,
/// producing byte-identical files to cdr::write_dataset_glovebin_file on
/// the same groups.  Throws std::runtime_error (with the path) when the
/// file cannot be opened or a write fails — begin() already flushes the
/// header, so an unwritable target fails at run start.
class GlovebinSink final : public DatasetSink {
 public:
  explicit GlovebinSink(std::string path) : writer_{std::move(path)} {}

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "glovebin-file";
  }
  void begin(const std::string& dataset_name) override {
    writer_.begin(dataset_name);
  }
  void finish() override { writer_.finish(); }

 protected:
  void do_write(cdr::Fingerprint group) override { writer_.write(group); }

 private:
  cdr::GlovebinWriter writer_;
};

/// Opens `path` as the matching file sink.  `format` selects "csv" or
/// "glovebin" explicitly; empty picks by extension (".glovebin" →
/// GlovebinSink, anything else → CsvFileSink).  Throws
/// std::invalid_argument on an unknown format name.
[[nodiscard]] std::unique_ptr<DatasetSink> make_dataset_sink(
    const std::string& path, std::string_view format = {});

}  // namespace glove::api

#endif  // GLOVE_API_SINK_HPP
