// glove::Engine — the single entry point for anonymization runs.  The
// primary boundary is streaming — source in, sink out — so datasets
// larger than RAM flow file-to-file:
//
//   glove::Engine engine;
//   glove::api::RunConfig config;
//   config.strategy = "sharded";
//   config.k = 5;
//   glove::api::CsvFileSource source{"trace.csv"};
//   glove::api::CsvFileSink sink{"anonymized.csv"};
//   auto result = engine.run(source, sink, config);
//   if (!result.ok()) { /* typed error */ }
//   // result.value().pass_fingerprints: fingerprints streamed per pass
//
// The classic dataset-in/dataset-out overload is a thin
// MemorySource/MemorySink wrapper over the same path.  Strategies that
// support streaming (sharded) consume the source in bounded memory;
// everything else transparently collects the source first.  One call
// drives every registered Anonymizer behind a uniform validated config,
// progress callback, cooperative cancellation and a serializable run
// report.  The pre-Engine free functions (core::anonymize & friends)
// remain as deprecated shims.

#ifndef GLOVE_API_ENGINE_HPP
#define GLOVE_API_ENGINE_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "glove/api/anonymizer.hpp"
#include "glove/api/config.hpp"
#include "glove/api/error.hpp"
#include "glove/api/report.hpp"
#include "glove/api/sink.hpp"
#include "glove/api/source.hpp"
#include "glove/cdr/dataset.hpp"

namespace glove::api {

class Engine {
 public:
  /// Constructs an Engine with the six built-in strategies registered:
  /// full, chunked, pruned-kgap, sharded, incremental, w4m-baseline.
  Engine();

  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;

  /// Primary run boundary: streams fingerprints from `source` and pushes
  /// finalized groups to `sink`.  Never throws on bad input or
  /// cancellation — those come back as typed errors; the returned
  /// report's `anonymized` dataset is empty (the sink owns the output)
  /// and its source/sink kinds and per-pass counts describe the data
  /// plane.  On error the sink may hold partial output (a file sink's
  /// bytes stay on disk); treat it as invalid unless the run succeeded.
  /// `config.progress` observes monotone (done, total) updates ending at
  /// done == total on success.
  [[nodiscard]] Result<RunReport> run(DatasetSource& source, DatasetSink& sink,
                                      const RunConfig& config) const;

  /// Classic dataset-in/dataset-out overload: a MemorySource/MemorySink
  /// wrapper over the streaming boundary.  The report's `anonymized`
  /// holds the output dataset; a cancelled or failed run produces none.
  [[nodiscard]] Result<RunReport> run(const cdr::FingerprintDataset& data,
                                      const RunConfig& config) const;

  /// Registers (or replaces) a strategy under its name().  This is the
  /// drop-in point for future backends — callers keep calling run().
  void register_strategy(std::unique_ptr<Anonymizer> strategy);

  /// Registered strategy names, sorted.
  [[nodiscard]] std::vector<std::string> strategies() const;

  /// Looks up a strategy; nullptr when unknown.
  [[nodiscard]] const Anonymizer* find(std::string_view name) const;

 private:
  std::map<std::string, std::unique_ptr<Anonymizer>, std::less<>> registry_;
};

/// Registers the built-in strategies on `engine` (called by the Engine
/// constructor; exposed for tests that build a bare registry).
void register_builtin_strategies(Engine& engine);

}  // namespace glove::api

// The Engine is the library's front door; make the short spelling
// glove::Engine (and its companions) available as the issue/README use it.
namespace glove {
using api::Engine;
using api::RunConfig;
using api::RunReport;
}  // namespace glove

#endif  // GLOVE_API_ENGINE_HPP
