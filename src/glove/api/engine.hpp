// glove::Engine — the single entry point for anonymization runs:
//
//   glove::Engine engine;
//   glove::api::RunConfig config;
//   config.strategy = "chunked";
//   config.k = 5;
//   auto result = engine.run(dataset, config);
//   if (!result.ok()) { /* typed error, no partial output */ }
//   const glove::api::RunReport& report = result.value();
//
// One `run(dataset, RunConfig) -> Result<RunReport>` call drives every
// registered Anonymizer strategy (full GLOVE, chunked, pruned, sharded,
// incremental updates, the W4M baseline, and anything registered later)
// behind a uniform validated config, progress callback, cooperative
// cancellation and a serializable run report.  The pre-Engine free
// functions (core::anonymize & friends) remain as deprecated shims.

#ifndef GLOVE_API_ENGINE_HPP
#define GLOVE_API_ENGINE_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "glove/api/anonymizer.hpp"
#include "glove/api/config.hpp"
#include "glove/api/error.hpp"
#include "glove/api/report.hpp"
#include "glove/cdr/dataset.hpp"

namespace glove::api {

class Engine {
 public:
  /// Constructs an Engine with the six built-in strategies registered:
  /// full, chunked, pruned-kgap, sharded, incremental, w4m-baseline.
  Engine();

  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;

  /// Runs the configured strategy on `data`.  Never throws on bad input or
  /// cancellation — those come back as typed errors; a cancelled or failed
  /// run produces no dataset.  `config.progress` observes monotone
  /// (done, total) updates ending at done == total on success.
  [[nodiscard]] Result<RunReport> run(const cdr::FingerprintDataset& data,
                                      const RunConfig& config) const;

  /// Registers (or replaces) a strategy under its name().  This is the
  /// drop-in point for future backends — callers keep calling run().
  void register_strategy(std::unique_ptr<Anonymizer> strategy);

  /// Registered strategy names, sorted.
  [[nodiscard]] std::vector<std::string> strategies() const;

  /// Looks up a strategy; nullptr when unknown.
  [[nodiscard]] const Anonymizer* find(std::string_view name) const;

 private:
  std::map<std::string, std::unique_ptr<Anonymizer>, std::less<>> registry_;
};

/// Registers the built-in strategies on `engine` (called by the Engine
/// constructor; exposed for tests that build a bare registry).
void register_builtin_strategies(Engine& engine);

}  // namespace glove::api

// The Engine is the library's front door; make the short spelling
// glove::Engine (and its companions) available as the issue/README use it.
namespace glove {
using api::Engine;
using api::RunConfig;
using api::RunReport;
}  // namespace glove

#endif  // GLOVE_API_ENGINE_HPP
