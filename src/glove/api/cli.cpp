#include "glove/api/cli.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "glove/cdr/builder.hpp"
#include "glove/cdr/d4d.hpp"
#include "glove/cdr/io.hpp"
#include "glove/obs/log.hpp"
#include "glove/obs/span.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"

namespace glove::api {

bool parse_cli(util::Flags& flags, int argc, const char* const* argv,
               int& exit_code) {
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    exit_code = 1;
    return false;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage();
    exit_code = 0;
    return false;
  }
  return true;
}

void define_run_flags(util::Flags& flags, const Engine& engine,
                      std::string_view default_strategy) {
  flags.define_enum("strategy", std::string{default_strategy},
                    engine.strategies(), "anonymization strategy");
  flags.define("k", "2", "anonymity level (every group hides >= k users)");
  flags.define("suppress-km", "0",
               "spatial suppression threshold in km (0 = off)");
  flags.define("suppress-hours", "0",
               "temporal suppression threshold in hours (0 = off)");
  flags.define("chunk-size", "2000",
               "users per chunk for --strategy=chunked");
  flags.define("tile-km", "0",
               "spatial tile edge in km for --strategy=sharded (0 = "
               "adaptive from the observed anchor density)");
  flags.define("shard-users", "2000",
               "max fingerprints per shard for --strategy=sharded");
  flags.define("shard-workers", "0",
               "shard worker threads (0 = GLOVE_THREADS / hardware "
               "concurrency)");
  flags.define("halo-km", "1",
               "border strip width in km deferred to reconciliation");
  flags.define("reconcile-chunk-users", "0",
               "deferred fingerprints materialized per halo-reconcile pass "
               "in streaming sharded runs (0 = shard batch budget; output "
               "is identical for every value)");
  flags.define_enum("border", "halo", {"halo", "none"},
                    "sharded border policy: defer border fingerprints "
                    "('halo') or keep them in their home shard ('none')");
  flags.define_enum("executor", "inprocess", {"inprocess", "process"},
                    "sharded execution backend: thread pool ('inprocess') "
                    "or forked glove_shard_worker daemons ('process'; "
                    "streaming file runs only, byte-identical output)");
  flags.define("exec-workers", "0",
               "worker daemons for --executor=process (0 = GLOVE_THREADS / "
               "hardware concurrency)");
  flags.define("report", "",
               "write the run report to this path (.json or .csv)");
}

void define_observability_flags(util::Flags& flags) {
  flags.define("trace-out", "",
               "write a Chrome trace-event JSON of the run's spans to this "
               "path (load in chrome://tracing or ui.perfetto.dev); the "
               "anonymized output is byte-identical with or without it");
  flags.define("verbose", "false",
               "rate-limited structured progress lines on stderr "
               "(ts level phase key=value)");
}

void start_observability(const util::Flags& flags) {
  obs::set_log_verbose(flags.get_bool("verbose"));
  if (!flags.get("trace-out").empty()) obs::start_tracing();
}

void finish_observability(const util::Flags& flags, std::ostream& out) {
  // Before anything else: surface log lines the rate limiter dropped
  // since the last emitted one — the process is about to exit, so the
  // "next admitted line" that normally reports them never comes.
  obs::flush_suppressed_log();
  const std::string& path = flags.get("trace-out");
  if (path.empty()) return;
  const std::string document = obs::stop_tracing_and_render();
  std::ofstream file{path};
  if (!file) throw std::runtime_error{"cannot open for writing: " + path};
  file << document;
  file.flush();
  if (!file) throw std::runtime_error{"failed writing: " + path};
  out << "wrote trace: " << path << '\n';
}

RunConfig run_config_from_flags(const util::Flags& flags) {
  RunConfig config;
  config.strategy = flags.get("strategy");
  config.k = static_cast<std::uint32_t>(flags.get_int("k"));
  const double suppress_km = flags.get_double("suppress-km");
  const double suppress_hours = flags.get_double("suppress-hours");
  if (suppress_km > 0.0 || suppress_hours > 0.0) {
    config.suppression = core::SuppressionThresholds{
        suppress_km > 0.0 ? suppress_km * 1'000.0
                          : std::numeric_limits<double>::infinity(),
        suppress_hours > 0.0 ? suppress_hours * 60.0
                             : std::numeric_limits<double>::infinity()};
  }
  config.chunked.chunk_size =
      static_cast<std::size_t>(flags.get_int("chunk-size"));
  config.sharded.tile_size_m = flags.get_double("tile-km") * 1'000.0;
  const long long shard_users = flags.get_int("shard-users");
  const long long shard_workers = flags.get_int("shard-workers");
  const long long reconcile_chunk = flags.get_int("reconcile-chunk-users");
  const long long exec_workers = flags.get_int("exec-workers");
  if (shard_users < 0 || shard_workers < 0 || reconcile_chunk < 0 ||
      exec_workers < 0) {
    // Without this check the size_t cast would wrap a negative flag to
    // ~2^64 — for workers that drives thread/process creation, not just a
    // bound.
    throw std::invalid_argument{
        "--shard-users, --shard-workers, --reconcile-chunk-users and "
        "--exec-workers must be non-negative"};
  }
  config.sharded.max_shard_users = static_cast<std::size_t>(shard_users);
  config.sharded.workers = static_cast<std::size_t>(shard_workers);
  config.sharded.reconcile_chunk_users =
      static_cast<std::size_t>(reconcile_chunk);
  config.sharded.executor = flags.get("executor") == "process"
                                ? shard::ExecutorKind::kProcess
                                : shard::ExecutorKind::kInProcess;
  config.sharded.exec_workers = static_cast<std::size_t>(exec_workers);
  config.sharded.halo_m = flags.get_double("halo-km") * 1'000.0;
  config.sharded.border = flags.get("border") == "none"
                              ? shard::BorderPolicy::kNone
                              : shard::BorderPolicy::kHalo;
  return config;
}

void define_synth_flags(util::Flags& flags, std::size_t default_users,
                        double default_days, std::uint64_t default_seed,
                        std::string_view default_preset) {
  flags.define("users", std::to_string(default_users),
               "synthetic population size");
  std::ostringstream days;
  days << default_days;
  flags.define("days", days.str(), "trace timespan in days");
  flags.define("seed", std::to_string(default_seed), "generator seed");
  flags.define_enum("preset", std::string{default_preset}, {"civ", "sen"},
                    "synthetic dataset preset (civ-like or sen-like)");
}

cdr::FingerprintDataset synth_dataset_from_flags(const util::Flags& flags) {
  const auto users = static_cast<std::size_t>(flags.get_int("users"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  synth::SynthConfig config = flags.get("preset") == "sen"
                                  ? synth::sen_like(users, seed)
                                  : synth::civ_like(users, seed);
  config.days = flags.get_double("days");
  return synth::generate_dataset(config);
}

void define_input_flags(util::Flags& flags) {
  flags.define_enum("format", "flat", {"flat", "d4d", "csv", "glovebin"},
                    "input trace format: 'flat' (user,time_min,lat,lon) or "
                    "'d4d' (user,timestamp,antenna_id; needs --antennas); "
                    "'csv'/'glovebin' force the dataset format written by "
                    "streaming --output / --convert (default: by extension)");
  flags.define("antennas", "",
               "D4D antenna file (antenna_id,lat,lon); required with "
               "--format=d4d");
  flags.define("origin-lat", "6.82", "projection origin latitude");
  flags.define("origin-lon", "-5.28", "projection origin longitude");
}

cdr::FingerprintDataset load_dataset(const std::string& path,
                                     const util::Flags& flags) {
  std::vector<cdr::CdrEvent> events;
  if (flags.get("format") == "d4d") {
    const std::string antenna_path = flags.get("antennas");
    if (antenna_path.empty()) {
      throw std::invalid_argument{"--format=d4d requires --antennas=FILE"};
    }
    const cdr::AntennaTable antennas =
        cdr::read_d4d_antennas_file(antenna_path);
    cdr::D4DTrace trace = cdr::read_d4d_trace_file(path, antennas);
    events = std::move(trace.events);
  } else {
    events = cdr::read_cdr_file(path);
  }
  cdr::BuilderConfig builder;
  builder.projection_origin = geo::LatLon{flags.get_double("origin-lat"),
                                          flags.get_double("origin-lon")};
  cdr::FingerprintDataset data = cdr::build_fingerprints(events, builder);
  data.set_name(path);
  return data;
}

ConvertStats convert_dataset_file(const std::string& input,
                                  const std::string& output,
                                  std::string_view format) {
  const std::unique_ptr<DatasetSource> source = open_dataset_source(input);
  // Carry the dataset name across so the conversion is lossless header
  // included: glovebin files store it in the footer, CSVs in the leading
  // comment.
  std::string name;
  if (const auto* bin = dynamic_cast<const GlovebinSource*>(source.get())) {
    name = bin->dataset_name();
  } else {
    name = cdr::sniff_dataset_csv_name(input);
  }
  const std::unique_ptr<DatasetSink> sink = make_dataset_sink(output, format);
  sink->begin(name);
  ConvertStats stats;
  cdr::Fingerprint fp;
  while (source->next(fp)) {
    ++stats.fingerprints;
    stats.samples += fp.size();
    sink->write(std::move(fp));
  }
  sink->finish();
  return stats;
}

namespace {

RunReport value_or_exit(Result<RunReport> result) {
  if (!result.ok()) {
    std::cerr << "error [" << to_string(result.error().code)
              << "]: " << result.error().message << '\n';
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

RunReport run_or_exit(const Engine& engine,
                      const cdr::FingerprintDataset& data,
                      const RunConfig& config) {
  return value_or_exit(engine.run(data, config));
}

RunReport run_streaming_or_exit(const Engine& engine, DatasetSource& source,
                                DatasetSink& sink, const RunConfig& config) {
  return value_or_exit(engine.run(source, sink, config));
}

void maybe_write_report(const util::Flags& flags, const RunReport& report,
                        std::ostream& out) {
  const std::string& path = flags.get("report");
  if (path.empty()) return;
  write_report_file(path, report);
  out << "wrote run report: " << path << '\n';
}

std::string summarize_report(const RunReport& report) {
  std::ostringstream out;
  out << report.strategy << ": " << report.counters.output_groups
      << " groups (k=" << report.config.k << "), "
      << report.counters.output_samples << " samples";
  if (report.counters.deleted_samples > 0) {
    out << "; deleted " << report.counters.deleted_samples << " samples";
  }
  if (report.counters.created_samples > 0) {
    out << "; created " << report.counters.created_samples
        << " synthetic samples";
  }
  if (report.counters.discarded_fingerprints > 0) {
    out << "; discarded " << report.counters.discarded_fingerprints
        << " fingerprints";
  }
  out << "; " << stats::fmt(report.timings.total_seconds, 2) << "s";
  return out.str();
}

}  // namespace glove::api
