// Anonymizer: the common abstract interface every anonymization strategy
// (GLOVE full/chunked/pruned, incremental updates, the W4M baseline, the
// sharded backend) implements to plug into the Engine.
//
// Two run shapes exist.  Every strategy implements the dataset-in shape
// (`run`); strategies that can consume a rewindable DatasetSource without
// materializing it whole additionally set `supports_streaming()` and
// implement `run_streaming` — the Engine routes streaming runs there and
// transparently falls back to collect-then-run for everything else, so
// strategies opt in gradually.

#ifndef GLOVE_API_ANONYMIZER_HPP
#define GLOVE_API_ANONYMIZER_HPP

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "glove/api/config.hpp"
#include "glove/api/error.hpp"
#include "glove/api/report.hpp"
#include "glove/api/sink.hpp"
#include "glove/api/source.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/util/hooks.hpp"

namespace glove::api {

/// Per-run context handed to a strategy: hooks already adapted by the
/// Engine (progress monotone-clamped, cancellation token installed).
/// Strategies thread `hooks` into the core loops they call.
struct RunContext {
  util::RunHooks hooks;
};

/// What a strategy produces: uniform counters, phase timings, optional
/// strategy-specific metrics, and — for the dataset-in shape — the
/// anonymized dataset itself (streaming runs deliver groups to the sink
/// instead and leave it empty).  The Engine wraps this into the final
/// RunReport.
struct StrategyOutcome {
  cdr::FingerprintDataset anonymized;
  RunCounters counters;
  double init_seconds = 0.0;
  double merge_seconds = 0.0;
  std::vector<std::pair<std::string, double>> extra_metrics;
  /// Per-shard rows for strategies that decompose the run (sharded);
  /// leave empty otherwise.
  std::vector<ShardTimingRow> shard_timings;
  /// Fingerprints read from the source on each pass over it (streaming
  /// runs; the Engine records {dataset size} on the collect path).
  std::vector<std::uint64_t> pass_fingerprints;
  /// Shard execution backend the run used ("inprocess", "process"; empty
  /// for strategies without the executor seam) and its worker count.
  std::string exec_kind;
  std::uint64_t exec_workers = 0;
  /// Per-worker accounting of the process executor (empty otherwise);
  /// serialized as the report's "exec.per_worker" array.
  std::vector<ExecWorkerRow> exec_worker_stats;
};

class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  /// Registry key (e.g. "full", "chunked"); also RunConfig::strategy.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// One-line description for --help output and strategy listings.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Strategy-specific *configuration* validation beyond the Engine's
  /// shared checks (k >= 2, positive limits).  Runs before any data is
  /// touched, for streaming and dataset runs alike.  Returns the error to
  /// surface, or nullopt when the configuration is acceptable.
  [[nodiscard]] virtual std::optional<Error> validate_config(
      const RunConfig& config) const {
    (void)config;
    return std::nullopt;
  }

  /// Strategy-specific *dataset* validation (enough fingerprints, right
  /// shape).  Only callable when the dataset is materialized — the
  /// collect path and the legacy overload; streaming strategies enforce
  /// the same constraints mid-stream via util::DatasetError.
  [[nodiscard]] virtual std::optional<Error> validate(
      const cdr::FingerprintDataset& data, const RunConfig& config) const {
    (void)data;
    (void)config;
    return std::nullopt;
  }

  /// Runs the strategy on a materialized dataset.  May throw
  /// util::CancelledError (mapped to kCancelled by the Engine),
  /// util::DatasetError (kInvalidDataset), std::invalid_argument
  /// (kInvalidConfig) or any std::exception (kInternal); the Engine owns
  /// the mapping so strategies can lean on the legacy throwing core.
  [[nodiscard]] virtual StrategyOutcome run(
      const cdr::FingerprintDataset& data, const RunConfig& config,
      const RunContext& context) const = 0;

  /// True when `run_streaming` consumes the source incrementally (bounded
  /// memory) instead of needing the dataset whole.  The Engine collects
  /// the source and calls `run` otherwise.
  [[nodiscard]] virtual bool supports_streaming() const noexcept {
    return false;
  }

  /// Streaming entry: pull fingerprints from `source` (rewinding for
  /// additional passes), push finalized groups to `sink` (begin() with
  /// the output name first, finish() after the last group), and return
  /// the outcome with `anonymized` empty.  Only called when
  /// `supports_streaming()`; the same exception mapping as `run` applies.
  [[nodiscard]] virtual StrategyOutcome run_streaming(
      DatasetSource& source, const RunConfig& config,
      const RunContext& context, DatasetSink& sink) const {
    (void)source;
    (void)config;
    (void)context;
    (void)sink;
    throw std::logic_error{"strategy '" + std::string{name()} +
                           "' does not implement streaming runs"};
  }
};

}  // namespace glove::api

#endif  // GLOVE_API_ANONYMIZER_HPP
