// Anonymizer: the common abstract interface every anonymization strategy
// (GLOVE full/chunked/pruned, incremental updates, the W4M baseline, and
// future sharded/streaming backends) implements to plug into the Engine.

#ifndef GLOVE_API_ANONYMIZER_HPP
#define GLOVE_API_ANONYMIZER_HPP

#include <optional>
#include <string_view>

#include "glove/api/config.hpp"
#include "glove/api/error.hpp"
#include "glove/api/report.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/util/hooks.hpp"

namespace glove::api {

/// Per-run context handed to a strategy: hooks already adapted by the
/// Engine (progress monotone-clamped, cancellation token installed).
/// Strategies thread `hooks` into the core loops they call.
struct RunContext {
  util::RunHooks hooks;
};

/// What a strategy produces: the anonymized dataset, uniform counters,
/// phase timings, and optional strategy-specific metrics.  The Engine
/// wraps this into the final RunReport.
struct StrategyOutcome {
  cdr::FingerprintDataset anonymized;
  RunCounters counters;
  double init_seconds = 0.0;
  double merge_seconds = 0.0;
  std::vector<std::pair<std::string, double>> extra_metrics;
  /// Per-shard rows for strategies that decompose the run (sharded);
  /// leave empty otherwise.
  std::vector<ShardTimingRow> shard_timings;
};

class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  /// Registry key (e.g. "full", "chunked"); also RunConfig::strategy.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// One-line description for --help output and strategy listings.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Strategy-specific validation beyond the Engine's shared checks
  /// (k >= 2, non-empty dataset).  Returns the error to surface, or
  /// nullopt when the configuration is acceptable.
  [[nodiscard]] virtual std::optional<Error> validate(
      const cdr::FingerprintDataset& data, const RunConfig& config) const {
    (void)data;
    (void)config;
    return std::nullopt;
  }

  /// Runs the strategy.  May throw util::CancelledError (mapped to
  /// kCancelled by the Engine), std::invalid_argument (kInvalidConfig) or
  /// any std::exception (kInternal); the Engine owns the mapping so
  /// strategies can lean on the legacy throwing core.
  [[nodiscard]] virtual StrategyOutcome run(const cdr::FingerprintDataset& data,
                                            const RunConfig& config,
                                            const RunContext& context) const = 0;
};

}  // namespace glove::api

#endif  // GLOVE_API_ANONYMIZER_HPP
