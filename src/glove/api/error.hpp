// Typed error/result model of the glove::api boundary.  Inside the
// library, algorithms throw (std::invalid_argument on bad input,
// util::CancelledError on cancellation); the Engine converts every
// failure into an Error so callers branch on a code instead of parsing
// exception types.

#ifndef GLOVE_API_ERROR_HPP
#define GLOVE_API_ERROR_HPP

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace glove::api {

enum class ErrorCode {
  /// A RunConfig field is out of range (k < 2, chunk_size < k, ...).
  kInvalidConfig,
  /// RunConfig::strategy names no registered Anonymizer.
  kUnknownStrategy,
  /// The input dataset cannot be anonymized as configured (empty, or
  /// smaller than the target anonymity level).
  kInvalidDataset,
  /// The run was cancelled via its CancellationToken; no output was
  /// produced.
  kCancelled,
  /// An unexpected failure inside a strategy (a bug, not a usage error).
  kInternal,
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidConfig: return "invalid-config";
    case ErrorCode::kUnknownStrategy: return "unknown-strategy";
    case ErrorCode::kInvalidDataset: return "invalid-dataset";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Minimal expected-like result: either a value or an Error.  (std::expected
/// is C++23; this project targets C++20.)
template <typename T>
class Result {
 public:
  Result(T value) : value_{std::move(value)} {}
  Result(Error error) : value_{std::move(error)} {}

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(value_);
  }
  explicit operator bool() const noexcept { return ok(); }

  /// Value access; throws std::logic_error (carrying the error message)
  /// when the result holds an error, so unchecked access fails loudly.
  [[nodiscard]] const T& value() const& {
    if (!ok()) {
      throw std::logic_error{"Result::value() on error: " + error().message};
    }
    return std::get<T>(value_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) {
      throw std::logic_error{"Result::value() on error: " + error().message};
    }
    return std::get<T>(value_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) {
      throw std::logic_error{"Result::value() on error: " + error().message};
    }
    return std::get<T>(std::move(value_));
  }

  /// Error access; only meaningful when !ok().
  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error{"Result::error() on a value"};
    return std::get<Error>(value_);
  }

 private:
  std::variant<T, Error> value_;
};

}  // namespace glove::api

#endif  // GLOVE_API_ERROR_HPP
