#include "glove/api/sink.hpp"

#include <stdexcept>

namespace glove::api {

CsvFileSink::CsvFileSink(std::string path)
    : path_{std::move(path)}, out_{path_}, writer_{out_} {
  if (!out_) throw std::runtime_error{"cannot open for writing: " + path_};
}

void CsvFileSink::begin(const std::string& dataset_name) {
  writer_.begin(dataset_name);
}

void CsvFileSink::do_write(cdr::Fingerprint group) {
  writer_.write(group);
  if (!out_) throw std::runtime_error{"failed writing: " + path_};
}

void CsvFileSink::finish() {
  out_.flush();
  if (!out_) throw std::runtime_error{"failed writing: " + path_};
}

}  // namespace glove::api
