#include "glove/api/sink.hpp"

#include <stdexcept>

#include "glove/obs/span.hpp"

namespace glove::api {

CsvFileSink::CsvFileSink(std::string path)
    : path_{std::move(path)}, out_{path_}, writer_{out_} {
  if (!out_) throw std::runtime_error{"cannot open for writing: " + path_};
}

void CsvFileSink::begin(const std::string& dataset_name) {
  // Surface an unwritable target (read-only file, full disk) at run
  // start, not at the first group — or never, for an empty result.  The
  // stream writer detects the failure but cannot name the file.
  try {
    writer_.begin(dataset_name);
  } catch (const std::runtime_error&) {
    throw std::runtime_error{"failed writing: " + path_};
  }
  out_.flush();
  if (!out_) throw std::runtime_error{"failed writing: " + path_};
}

void CsvFileSink::do_write(cdr::Fingerprint group) {
  writer_.write(group);
  if (!out_) throw std::runtime_error{"failed writing: " + path_};
}

void CsvFileSink::finish() {
  GLOVE_SPAN("sink.csv.flush");
  out_.flush();
  if (!out_) throw std::runtime_error{"failed writing: " + path_};
}

std::unique_ptr<DatasetSink> make_dataset_sink(const std::string& path,
                                               std::string_view format) {
  if (format.empty()) {
    const std::string_view extension{".glovebin"};
    const bool glovebin =
        path.size() >= extension.size() &&
        std::string_view{path}.substr(path.size() - extension.size()) ==
            extension;
    format = glovebin ? "glovebin" : "csv";
  }
  if (format == "glovebin") return std::make_unique<GlovebinSink>(path);
  if (format == "csv") return std::make_unique<CsvFileSink>(path);
  throw std::invalid_argument{"unknown dataset sink format: " +
                              std::string{format}};
}

}  // namespace glove::api
