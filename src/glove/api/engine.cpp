#include "glove/api/engine.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "glove/obs/metrics.hpp"
#include "glove/obs/span.hpp"
#include "glove/util/mem.hpp"

namespace glove::api {

namespace {

/// Serializes and monotone-clamps progress reports before they reach the
/// caller: core loops may report from worker threads, and phase handoffs
/// could otherwise glitch backwards.  Totals are pinned by the first
/// report so multi-phase strategies present one coherent scale.
class MonotoneProgress {
 public:
  explicit MonotoneProgress(util::ProgressFn fn) : fn_{std::move(fn)} {}

  void operator()(std::uint64_t done, std::uint64_t total) {
    const std::lock_guard lock{mutex_};
    if (total_ == 0) total_ = total;
    if (total_ == 0) return;  // degenerate: nothing to report
    if (done > total_) done = total_;
    if (done < max_done_) return;
    max_done_ = done;
    fn_(done, total_);
  }

 private:
  std::mutex mutex_;
  util::ProgressFn fn_;
  std::uint64_t max_done_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace

Engine::Engine() { register_builtin_strategies(*this); }

void Engine::register_strategy(std::unique_ptr<Anonymizer> strategy) {
  std::string key{strategy->name()};
  registry_[std::move(key)] = std::move(strategy);
}

std::vector<std::string> Engine::strategies() const {
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, strategy] : registry_) names.push_back(name);
  return names;
}

const Anonymizer* Engine::find(std::string_view name) const {
  const auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.get();
}

Result<RunReport> Engine::run(DatasetSource& source, DatasetSink& sink,
                              const RunConfig& config) const {
  GLOVE_SPAN_NAMED(run_span, "engine.run");

  // --- Resolve the strategy.
  const Anonymizer* strategy = find(config.strategy);
  if (strategy == nullptr) {
    std::ostringstream message;
    message << "unknown strategy '" << config.strategy << "' (registered:";
    for (const std::string& name : strategies()) message << ' ' << name;
    message << ')';
    return Error{ErrorCode::kUnknownStrategy, message.str()};
  }

  // --- Shared configuration validation; strategies add their own checks.
  // Dataset-shaped validation happens once the data is in reach: upfront
  // on the collect path, mid-stream (util::DatasetError) when streaming.
  {
    GLOVE_SPAN("engine.validate");
    if (config.k < 2) {
      return Error{ErrorCode::kInvalidConfig,
                   "k must be >= 2 (got " + std::to_string(config.k) + ")"};
    }
    if (config.limits.phi_max_sigma_m <= 0.0 ||
        config.limits.phi_max_tau_min <= 0.0) {
      return Error{ErrorCode::kInvalidConfig,
                   "stretch saturation limits must be positive"};
    }
    if (config.suppression &&
        (config.suppression->max_spatial_extent_m <= 0.0 ||
         config.suppression->max_temporal_extent_min <= 0.0)) {
      return Error{ErrorCode::kInvalidConfig,
                   "suppression thresholds must be positive"};
    }
    if (std::optional<Error> error = strategy->validate_config(config)) {
      return *std::move(error);
    }
  }

  // --- Adapt hooks and run inside the typed-error boundary.
  RunContext context;
  context.hooks.cancel = config.cancel;
  source.bind_cancel(config.cancel);
  std::shared_ptr<MonotoneProgress> progress;
  if (config.progress) {
    progress = std::make_shared<MonotoneProgress>(config.progress);
    context.hooks.progress = [progress](std::uint64_t done,
                                        std::uint64_t total) {
      (*progress)(done, total);
    };
  }

  const obs::MetricsSnapshot metrics_before = obs::snapshot_metrics();
  const auto start = std::chrono::steady_clock::now();
  try {
    StrategyOutcome outcome;
    {
      GLOVE_SPAN("engine.strategy");
      if (strategy->supports_streaming()) {
        outcome = strategy->run_streaming(source, config, context, sink);
      } else {
        // Collect-then-run fallback: materialize the source (or borrow the
        // dataset an in-memory source already wraps — no copy), run the
        // dataset-shaped strategy, drain its output into the sink.
        const cdr::FingerprintDataset* inmem = source.materialized();
        cdr::FingerprintDataset collected;
        {
          GLOVE_SPAN("engine.collect");
          if (inmem == nullptr) collected = collect(source);
        }
        const cdr::FingerprintDataset& data = inmem != nullptr ? *inmem
                                                               : collected;
        if (data.empty()) {
          return Error{ErrorCode::kInvalidDataset, "input dataset is empty"};
        }
        if (std::optional<Error> error = strategy->validate(data, config)) {
          return *std::move(error);
        }
        outcome = strategy->run(data, config, context);
        outcome.pass_fingerprints = {data.size()};
        GLOVE_SPAN("engine.drain");
        sink.begin(outcome.anonymized.name());
        for (cdr::Fingerprint& fp :
             outcome.anonymized.mutable_fingerprints()) {
          sink.write(std::move(fp));
        }
        sink.finish();
        outcome.anonymized = cdr::FingerprintDataset{};
      }
    }

    RunReport report;
    report.strategy = config.strategy;
    report.dataset_name = source.name();
    report.counters = outcome.counters;
    report.timings.init_seconds = outcome.init_seconds;
    report.timings.merge_seconds = outcome.merge_seconds;
    report.timings.total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    report.config = echo_config(config);
    report.extra_metrics = std::move(outcome.extra_metrics);
    report.shard_timings = std::move(outcome.shard_timings);
    report.exec_kind = std::move(outcome.exec_kind);
    report.exec_workers = outcome.exec_workers;
    report.exec_worker_stats = std::move(outcome.exec_worker_stats);
    report.source_kind = source.kind();
    report.sink_kind = sink.kind();
    report.pass_fingerprints = std::move(outcome.pass_fingerprints);
    if (const SourceIoStats* io = source.io_stats()) {
      report.pass_blocks = io->pass_blocks;
      report.file_blocks = io->file_blocks;
      report.blocks_read = io->blocks_read;
      report.bytes_mapped = io->bytes_mapped;
    }
    report.peak_rss_bytes = util::peak_rss_bytes();
    report.obs_counters =
        obs::counter_delta(metrics_before, obs::snapshot_metrics());
    return report;
  } catch (const util::CancelledError&) {
    return Error{ErrorCode::kCancelled, "run cancelled by its token"};
  } catch (const util::DatasetError& e) {
    return Error{ErrorCode::kInvalidDataset, e.what()};
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidConfig, e.what()};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal, e.what()};
  }
}

Result<RunReport> Engine::run(const cdr::FingerprintDataset& data,
                              const RunConfig& config) const {
  MemorySource source{data};
  MemorySink sink;
  Result<RunReport> result = run(source, sink, config);
  if (!result.ok()) return result;
  RunReport report = std::move(result).value();
  report.anonymized = std::move(sink).take_dataset();
  return report;
}

}  // namespace glove::api
