// Record-linkage attack simulators — the adversaries the paper defends
// against (Sec. 2.3), implemented to *measure* anonymity instead of
// assuming it:
//
//   * TopLocationsAttack — Zang & Bolot (MobiCom'11, ref. [5]): the
//     adversary knows a user's N most frequented locations and looks for
//     records matching that multiset.  The paper cites 50% of 25M users
//     being unique under N = 3.
//   * PointsAttack — de Montjoye et al. (Sci. Rep. 2013, ref. [6]): the
//     adversary knows p random spatiotemporal points of the target's
//     trajectory.  Four points identified 95% of 1.5M users.
//
// Both run on original *and* anonymized datasets: a published sample
// "matches" an adversary observation when it spatially and temporally
// covers it, so generalized samples naturally widen the candidate set.
// On a GLOVE output with level k, any attack must return >= k candidate
// records — the empirical verification of the privacy guarantee.

#ifndef GLOVE_ATTACK_LINKAGE_HPP
#define GLOVE_ATTACK_LINKAGE_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "glove/cdr/dataset.hpp"

namespace glove::attack {

/// Aggregate outcome of a linkage attack over a user population.
struct AttackReport {
  /// Number of users attacked.
  std::size_t attacked = 0;
  /// Users whose knowledge matched exactly one record (re-identified,
  /// up to pseudonyms — the paper's "uniqueness").
  std::size_t unique = 0;
  /// Users with at most k-1 other matching records, for k = 2..5
  /// (anonymity-set size < k); index 0 is k=2 etc.
  std::array<std::size_t, 4> below_k{};
  /// Mean size of the candidate (anonymity) set.
  double mean_candidates = 0.0;

  [[nodiscard]] double uniqueness() const noexcept {
    return attacked == 0 ? 0.0
                         : static_cast<double>(unique) /
                               static_cast<double>(attacked);
  }
};

/// One adversary observation: the target was inside this spatial tile
/// during this time slot.
struct Observation {
  double x = 0.0;       ///< tile west edge (m)
  double y = 0.0;       ///< tile south edge (m)
  double size_m = 0.0;  ///< tile side
  double t = 0.0;       ///< slot start (min); negative = time-agnostic
  double dt = 0.0;      ///< slot length
  bool time_known = true;
};

/// True when a published sample is consistent with an observation: their
/// spatial tiles intersect and (when time is known) their intervals do.
[[nodiscard]] bool sample_matches(const cdr::Sample& sample,
                                  const Observation& obs) noexcept;

/// True when a published record (fingerprint) is consistent with all of
/// the adversary's observations.
[[nodiscard]] bool record_matches(const cdr::Fingerprint& record,
                                  const std::vector<Observation>& knowledge);

/// Zang & Bolot-style attack: the adversary knows each user's `top_n`
/// most frequented spatial tiles at granularity `tile_m` (time-agnostic)
/// and counts the records in `published` consistent with all of them.
/// `ground_truth` supplies the true trajectories the knowledge is drawn
/// from (pass the same dataset to attack the original data).
struct TopLocationsAttack {
  std::size_t top_n = 3;
  double tile_m = 1'000.0;

  [[nodiscard]] AttackReport run(
      const cdr::FingerprintDataset& ground_truth,
      const cdr::FingerprintDataset& published) const;

  /// The adversary knowledge for one user: its top-n tiles.
  [[nodiscard]] std::vector<Observation> knowledge_for(
      const cdr::Fingerprint& user) const;
};

/// de Montjoye-style attack: the adversary knows `points` samples drawn
/// uniformly at random from the target's true fingerprint, observed at
/// spatial granularity `tile_m` and temporal granularity `slot_min`.
struct PointsAttack {
  std::size_t points = 4;
  double tile_m = 1'000.0;
  double slot_min = 60.0;
  std::uint64_t seed = 99;

  [[nodiscard]] AttackReport run(
      const cdr::FingerprintDataset& ground_truth,
      const cdr::FingerprintDataset& published) const;

  [[nodiscard]] std::vector<Observation> knowledge_for(
      const cdr::Fingerprint& user, std::uint64_t user_seed) const;
};

}  // namespace glove::attack

#endif  // GLOVE_ATTACK_LINKAGE_HPP
