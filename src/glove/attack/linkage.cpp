#include "glove/attack/linkage.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "glove/geo/geo.hpp"
#include "glove/util/parallel.hpp"
#include "glove/util/rng.hpp"

namespace glove::attack {

namespace {

/// Shared attack loop: derives per-user knowledge via `knowledge_fn`,
/// counts consistent records (user-weighted) in `published`.
template <typename KnowledgeFn>
AttackReport run_attack(const cdr::FingerprintDataset& ground_truth,
                        const cdr::FingerprintDataset& published,
                        const KnowledgeFn& knowledge_fn) {
  AttackReport report;
  const std::size_t n = ground_truth.size();
  std::vector<double> candidates(n, 0.0);

  util::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t u = begin; u < end; ++u) {
          const std::vector<Observation> knowledge =
              knowledge_fn(ground_truth[u], u);
          double candidate_users = 0.0;
          for (const cdr::Fingerprint& record : published.fingerprints()) {
            if (record_matches(record, knowledge)) {
              candidate_users += static_cast<double>(record.group_size());
            }
          }
          candidates[u] = candidate_users;
        }
      },
      /*min_chunk=*/1);

  report.attacked = n;
  double total = 0.0;
  for (const double c : candidates) {
    total += c;
    if (c <= 1.0) ++report.unique;
    for (std::size_t k = 2; k <= 5; ++k) {
      if (c < static_cast<double>(k)) ++report.below_k[k - 2];
    }
  }
  report.mean_candidates = n == 0 ? 0.0 : total / static_cast<double>(n);
  return report;
}

}  // namespace

bool sample_matches(const cdr::Sample& sample,
                    const Observation& obs) noexcept {
  const bool space =
      sample.sigma.x < obs.x + obs.size_m && obs.x < sample.sigma.x_end() &&
      sample.sigma.y < obs.y + obs.size_m && obs.y < sample.sigma.y_end();
  if (!space) return false;
  if (!obs.time_known) return true;
  return sample.tau.t < obs.t + obs.dt && obs.t < sample.tau.t_end();
}

bool record_matches(const cdr::Fingerprint& record,
                    const std::vector<Observation>& knowledge) {
  return std::all_of(
      knowledge.begin(), knowledge.end(), [&](const Observation& obs) {
        return std::any_of(record.samples().begin(), record.samples().end(),
                           [&](const cdr::Sample& s) {
                             return sample_matches(s, obs);
                           });
      });
}

std::vector<Observation> TopLocationsAttack::knowledge_for(
    const cdr::Fingerprint& user) const {
  const geo::Grid grid{tile_m};
  std::unordered_map<geo::GridCell, std::size_t> counts;
  for (const cdr::Sample& s : user.samples()) {
    ++counts[grid.cell_of(
        {s.sigma.x + s.sigma.dx / 2, s.sigma.y + s.sigma.dy / 2})];
  }
  std::vector<std::pair<std::size_t, geo::GridCell>> ranked;
  ranked.reserve(counts.size());
  // Hash-order snapshot is fine: the sort below carries a full
  // (count, ix, iy) tie-break, so the ranking is order-insensitive.
  for (const auto& [cell, count] : counts) ranked.emplace_back(count, cell);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              if (a.second.ix != b.second.ix) return a.second.ix < b.second.ix;
              return a.second.iy < b.second.iy;
            });
  std::vector<Observation> knowledge;
  const std::size_t n = std::min(top_n, ranked.size());
  knowledge.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geo::PlanarPoint sw = grid.cell_origin(ranked[i].second);
    Observation obs;
    obs.x = sw.x_m;
    obs.y = sw.y_m;
    obs.size_m = tile_m;
    obs.time_known = false;
    knowledge.push_back(obs);
  }
  return knowledge;
}

AttackReport TopLocationsAttack::run(
    const cdr::FingerprintDataset& ground_truth,
    const cdr::FingerprintDataset& published) const {
  return run_attack(ground_truth, published,
                    [this](const cdr::Fingerprint& user, std::size_t) {
                      return knowledge_for(user);
                    });
}

std::vector<Observation> PointsAttack::knowledge_for(
    const cdr::Fingerprint& user, std::uint64_t user_seed) const {
  util::Xoshiro256 rng{seed ^ (user_seed * 0x9e3779b97f4a7c15ULL + 1)};
  std::vector<Observation> knowledge;
  if (user.empty()) return knowledge;
  const std::size_t n = std::min(points, user.size());
  // Sample n distinct indices (partial Fisher-Yates over an index vector).
  std::vector<std::size_t> indices(user.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + util::uniform_index(rng, indices.size() - i);
    std::swap(indices[i], indices[j]);
  }
  knowledge.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const cdr::Sample& s = user.samples()[indices[i]];
    Observation obs;
    obs.size_m = tile_m;
    obs.x = std::floor((s.sigma.x + s.sigma.dx / 2) / tile_m) * tile_m;
    obs.y = std::floor((s.sigma.y + s.sigma.dy / 2) / tile_m) * tile_m;
    obs.dt = slot_min;
    obs.t = std::floor(s.tau.t / slot_min) * slot_min;
    obs.time_known = true;
    knowledge.push_back(obs);
  }
  return knowledge;
}

AttackReport PointsAttack::run(const cdr::FingerprintDataset& ground_truth,
                               const cdr::FingerprintDataset& published) const {
  return run_attack(ground_truth, published,
                    [this](const cdr::Fingerprint& user, std::size_t u) {
                      return knowledge_for(user, u);
                    });
}

}  // namespace glove::attack
