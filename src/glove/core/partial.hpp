// Partial-fingerprint anonymization — the relaxation the paper sketches
// for higher privacy levels (Sec. 7, Sec. 9): instead of hiding the
// *full-length* fingerprint (robust to an attacker that knows the whole
// trajectory), assume the adversary only knows each user's top-L most
// frequented locations (the Zang & Bolot attacker of ref. [5]) and
// k-anonymize just that attack surface.
//
// The published record keeps only the samples at the user's top-L tiles,
// generalized by the normal GLOVE pipeline; everything else is withheld.
// This is strictly weaker privacy than full-length GLOVE — attacks using
// out-of-surface knowledge are not countered — but it is much cheaper in
// accuracy, which is exactly the trade-off the paper points to for k > 5.

#ifndef GLOVE_CORE_PARTIAL_HPP
#define GLOVE_CORE_PARTIAL_HPP

#include "glove/core/glove.hpp"

namespace glove::core {

/// Partial anonymization configuration.
struct PartialConfig {
  GloveConfig glove;
  /// Size of the assumed adversary knowledge: the L most frequented
  /// spatial tiles per user.
  std::size_t top_locations = 3;
  /// Tile granularity used to rank locations.
  double tile_m = 1'000.0;
};

/// Result of a partial run: `anonymized` contains the k-anonymized
/// top-location records; `withheld_samples` counts the out-of-surface
/// samples that were not published.
struct PartialResult {
  GloveResult glove;
  std::uint64_t withheld_samples = 0;
};

/// Restricts each fingerprint to the samples falling in its `top_locations`
/// most frequented tiles (exposed for tests and analysis).
[[nodiscard]] cdr::FingerprintDataset reduce_to_top_locations(
    const cdr::FingerprintDataset& data, std::size_t top_locations,
    double tile_m);

/// Runs GLOVE on the reduced (top-locations) fingerprints.
[[nodiscard]] PartialResult anonymize_partial(
    const cdr::FingerprintDataset& data, const PartialConfig& config);

}  // namespace glove::core

#endif  // GLOVE_CORE_PARTIAL_HPP
