// GLOVE (Alg. 1): greedy k-anonymization of a fingerprint dataset through
// specialized generalization.  Repeatedly merges the two not-yet-anonymized
// fingerprints at minimum stretch effort until every published fingerprint
// hides at least k subscribers.

#ifndef GLOVE_CORE_GLOVE_HPP
#define GLOVE_CORE_GLOVE_HPP

#include <cstdint>
#include <optional>

#include "glove/cdr/dataset.hpp"
#include "glove/core/merge.hpp"
#include "glove/core/stretch.hpp"
#include "glove/util/hooks.hpp"

namespace glove::core {

/// What to do with a final fingerprint whose group is still smaller than k
/// when no other un-anonymized fingerprint is left to pair it with (the
/// paper's Alg. 1 leaves this case unspecified; see DESIGN.md).
enum class LeftoverPolicy {
  /// Merge the leftover group into the nearest already-anonymized
  /// fingerprint; no user is lost (default).
  kMergeIntoNearest,
  /// Drop the leftover group from the output (counted as discarded).
  kSuppress,
};

/// GLOVE configuration.
struct GloveConfig {
  /// Target anonymity level; every output fingerprint hides >= k users.
  std::uint32_t k = 2;
  StretchLimits limits;
  /// Per-merge suppression thresholds (Sec. 7.1); disabled when empty.
  std::optional<SuppressionThresholds> suppression;
  /// Resolve temporal overlaps after each merge (Fig. 6b).
  bool reshape = true;
  LeftoverPolicy leftover_policy = LeftoverPolicy::kMergeIntoNearest;
};

/// Run counters for the paper's cost accounting (Tab. 2 rows and Sec. 6.3).
struct GloveStats {
  std::uint64_t input_users = 0;
  std::uint64_t input_samples = 0;
  std::uint64_t output_groups = 0;
  std::uint64_t output_samples = 0;  ///< published (merged) samples
  std::uint64_t merges = 0;
  /// Original samples dropped by suppression ("Deleted samples" of Tab. 2).
  std::uint64_t deleted_samples = 0;
  /// Users dropped (non-zero only under LeftoverPolicy::kSuppress).
  std::uint64_t discarded_fingerprints = 0;
  /// Fingerprint-stretch evaluations performed (throughput accounting).
  std::uint64_t stretch_evaluations = 0;
  double init_seconds = 0.0;   ///< initial |M|^2/2 stretch matrix
  double merge_seconds = 0.0;  ///< greedy loop

  /// Adds `part`'s per-run cost counters (merges, deletions, discards,
  /// stretch evaluations, phase times) into this one.  Dataset-shape
  /// fields (input/output sizes) are left alone — aggregating runs
  /// (chunked, sharded) set those from their own totals.
  void accumulate_costs(const GloveStats& part) {
    merges += part.merges;
    deleted_samples += part.deleted_samples;
    discarded_fingerprints += part.discarded_fingerprints;
    stretch_evaluations += part.stretch_evaluations;
    init_seconds += part.init_seconds;
    merge_seconds += part.merge_seconds;
  }
};

/// Result of an anonymization run: the k-anonymized dataset plus counters.
/// Each output fingerprint lists the users it hides in `members()`; every
/// one of those users publishes that identical generalized fingerprint.
struct GloveResult {
  cdr::FingerprintDataset anonymized;
  GloveStats stats;
};

/// Runs GLOVE on `data` with observability hooks threaded into the hot
/// loops.  Requires data.size() >= k >= 2 (a dataset smaller than the
/// target crowd cannot be k-anonymized); throws std::invalid_argument
/// otherwise.  Deterministic for a given input and configuration,
/// independent of thread count.
///
/// Progress units: initial pair evaluations plus fingerprints closed by
/// the greedy loop; `done` is monotone non-decreasing and reaches `total`
/// on completion.  Cancellation is polled between work units and aborts
/// with util::CancelledError before any output dataset is materialized.
[[nodiscard]] GloveResult anonymize(const cdr::FingerprintDataset& data,
                                    const GloveConfig& config,
                                    const util::RunHooks& hooks);

/// Deprecated entry point: prefer glove::Engine::run (strategy "full") or
/// the hooks overload above.  Kept as a thin shim; equivalent to
/// anonymize(data, config, {}).
[[nodiscard]] GloveResult anonymize(const cdr::FingerprintDataset& data,
                                    const GloveConfig& config);

/// Checks the k-anonymity postcondition: every fingerprint in `data` hides
/// at least k members.  (Each member publishes the group's fingerprint, so
/// group size >= k is exactly record-level k-anonymity.)
[[nodiscard]] bool is_k_anonymous(const cdr::FingerprintDataset& data,
                                  std::uint32_t k);

}  // namespace glove::core

#endif  // GLOVE_CORE_GLOVE_HPP
