// The k-gap (eq. 11): how hard it is to hide each subscriber in a crowd of
// k within the same dataset.  Drives the anonymizability analysis of Sec. 5.

#ifndef GLOVE_CORE_KGAP_HPP
#define GLOVE_CORE_KGAP_HPP

#include <cstdint>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/core/stretch.hpp"
#include "glove/util/hooks.hpp"

namespace glove::core {

/// k-gap of one user together with the identity of its k-1 nearest
/// fingerprints (the set N_a^{k-1} used by the Sec. 5.3 disaggregation).
struct KGapEntry {
  double gap = 0.0;                      ///< Delta_a^k, in [0, 1]
  std::vector<std::size_t> neighbors;    ///< indices of N_a^{k-1}, ascending
                                         ///< by stretch effort
};

/// Computes Delta_a^k for every fingerprint in `data` (eq. 11): the mean
/// fingerprint stretch effort to the k-1 nearest other fingerprints.
/// Work is parallelized across users on the shared thread pool.
/// Requires k >= 2 and data.size() >= k; throws std::invalid_argument
/// otherwise.
[[nodiscard]] std::vector<KGapEntry> k_gaps(const cdr::FingerprintDataset& data,
                                            std::uint32_t k,
                                            const StretchLimits& limits = {});

/// As above, with observability hooks threaded into the O(|M|^2) matrix
/// build: progress units are completed rows (one per fingerprint, reported
/// under a lock so `done` stays monotone across worker threads), and
/// cancellation is polled per row, aborting via util::CancelledError.
[[nodiscard]] std::vector<KGapEntry> k_gaps(const cdr::FingerprintDataset& data,
                                            std::uint32_t k,
                                            const StretchLimits& limits,
                                            const util::RunHooks& hooks);

/// Convenience: just the gap values, same order as `data`.
[[nodiscard]] std::vector<double> k_gap_values(
    const cdr::FingerprintDataset& data, std::uint32_t k,
    const StretchLimits& limits = {});

}  // namespace glove::core

#endif  // GLOVE_CORE_KGAP_HPP
