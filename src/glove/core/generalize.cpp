#include "glove/core/generalize.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace glove::core {

namespace {

/// Widens the 1-D interval [start, start+len) to the enclosing tile of
/// size `step`.  Intervals already wider than one tile are widened to the
/// full run of tiles they touch.
void snap_interval(double& start, double& len, double step) {
  const double lo = std::floor(start / step) * step;
  const double hi = std::ceil((start + len) / step) * step;
  start = lo;
  len = std::max(hi - lo, step);
}

}  // namespace

cdr::Sample generalize_sample(const cdr::Sample& s,
                              const GeneralizationLevel& level) {
  if (!(level.spatial_m > 0.0) || !(level.temporal_min > 0.0)) {
    throw std::invalid_argument{"generalization level must be positive"};
  }
  cdr::Sample out = s;
  snap_interval(out.sigma.x, out.sigma.dx, level.spatial_m);
  snap_interval(out.sigma.y, out.sigma.dy, level.spatial_m);
  snap_interval(out.tau.t, out.tau.dt, level.temporal_min);
  return out;
}

cdr::FingerprintDataset generalize_dataset(
    const cdr::FingerprintDataset& data, const GeneralizationLevel& level) {
  std::vector<cdr::Fingerprint> out;
  out.reserve(data.size());
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    std::vector<cdr::Sample> samples;
    samples.reserve(fp.size());
    for (const cdr::Sample& s : fp.samples()) {
      samples.push_back(generalize_sample(s, level));
    }
    // Collapse duplicates (identical sigma and tau) created by coarsening.
    std::sort(samples.begin(), samples.end(),
              [](const cdr::Sample& a, const cdr::Sample& b) {
                if (a.tau.t != b.tau.t) return a.tau.t < b.tau.t;
                if (a.tau.dt != b.tau.dt) return a.tau.dt < b.tau.dt;
                if (a.sigma.x != b.sigma.x) return a.sigma.x < b.sigma.x;
                return a.sigma.y < b.sigma.y;
              });
    std::vector<cdr::Sample> unique;
    unique.reserve(samples.size());
    for (const cdr::Sample& s : samples) {
      if (!unique.empty() && unique.back().sigma == s.sigma &&
          unique.back().tau == s.tau) {
        unique.back().contributors += s.contributors;
        continue;
      }
      unique.push_back(s);
    }
    out.emplace_back(
        std::vector<cdr::UserId>{fp.members().begin(), fp.members().end()},
        std::move(unique));
  }
  return cdr::FingerprintDataset{std::move(out),
                                 data.name() + "-generalized"};
}

}  // namespace glove::core
