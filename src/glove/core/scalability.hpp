// Scalability variants of the core algorithms.  The paper's full-scale
// runs (82k-320k users) took ~60 GPU-hours (Sec. 6.3); these variants
// bound the quadratic costs for large datasets:
//
//   * k_gaps_pruned — exact k-gap with bounding-box lower-bound pruning:
//     a pair whose fingerprint bounding boxes are far apart cannot have a
//     small stretch effort, so the full O(m_a * m_b) evaluation is skipped
//     once k-1 better candidates are known.  Exact (same output as
//     core::k_gaps), faster on geographically spread datasets.
//
//   * anonymize_chunked — GLOVE over locality-sorted chunks (the same
//     scaling idea as W4M's "LC" variant): fingerprints are ordered by a
//     space-filling curve over their bounding-box centres and partitioned
//     into chunks anonymized independently.  Quadratic cost drops to
//     O(chunks * chunk_size^2); accuracy degrades only mildly because the
//     curve keeps co-located users (the natural merge partners) together.

#ifndef GLOVE_CORE_SCALABILITY_HPP
#define GLOVE_CORE_SCALABILITY_HPP

#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"

namespace glove::core {

/// Exact k-gap with bounding-box pruning.  Identical results to
/// core::k_gaps (same ties broken the same way); the `pruned_pairs`
/// output, when non-null, receives the number of pair evaluations skipped.
[[nodiscard]] std::vector<KGapEntry> k_gaps_pruned(
    const cdr::FingerprintDataset& data, std::uint32_t k,
    const StretchLimits& limits = {}, std::uint64_t* pruned_pairs = nullptr);

/// A sound lower bound on fingerprint_stretch(a, b): both fingerprints'
/// bounding geometries must at least bridge the gap between them for any
/// sample pair to merge.  Exposed for tests.
struct FingerprintBounds {
  cdr::SpatialExtent box;        ///< spatial bounding rectangle
  cdr::TemporalExtent interval;  ///< temporal bounding interval
};

[[nodiscard]] FingerprintBounds fingerprint_bounds(const cdr::Fingerprint& fp);

[[nodiscard]] double stretch_lower_bound(const FingerprintBounds& a,
                                         const FingerprintBounds& b,
                                         const StretchLimits& limits);

/// The locality-sort key of `anonymize_chunked`: the Morton interleave of
/// the bounding-box centre quantized to 1 km.  Exposed so that planners
/// working from precomputed bounds (the sharded backend's streaming
/// reconciliation) partition into exactly the chunks anonymize_chunked
/// would build — byte-identical chunk membership is what keeps the two
/// paths' outputs equal.
[[nodiscard]] std::uint64_t locality_sort_key(
    const FingerprintBounds& bounds) noexcept;

/// Chunked GLOVE configuration.
struct ChunkedConfig {
  GloveConfig glove;
  /// Users per chunk; each chunk is anonymized independently.  Must be
  /// >= glove.k.
  std::size_t chunk_size = 2'000;
  /// Run each chunk through the lazy-lower-bound `anonymize_pruned`
  /// variant instead of the all-exact initialization.  Output is
  /// byte-identical either way (pruned is exact); only the evaluation
  /// counters and timings differ.  The sharded backend's reconciliation
  /// pass enables this because its input is geographically spread — the
  /// case bounding-box pruning is strongest on.
  bool pruned = false;
};

/// Runs GLOVE independently on locality-sorted chunks and concatenates the
/// results.  Every output group still hides >= k users (chunk sizes are
/// adjusted so no chunk is smaller than k).  Stats are aggregated.
/// Progress units are input fingerprints; cancellation is polled between
/// chunks and inside each chunk's greedy loop.
[[nodiscard]] GloveResult anonymize_chunked(const cdr::FingerprintDataset& data,
                                            const ChunkedConfig& config,
                                            const util::RunHooks& hooks);

/// Deprecated entry point: prefer glove::Engine::run (strategy "chunked").
[[nodiscard]] GloveResult anonymize_chunked(const cdr::FingerprintDataset& data,
                                            const ChunkedConfig& config);

/// Exact GLOVE with a bounding-box-pruned initialization (implemented in
/// glove.cpp beside the shared greedy loop): the initial candidate heap is
/// seeded with stretch_lower_bound values and entries refine to the true
/// stretch effort lazily when they surface, so geographically far pairs
/// are never evaluated exactly.  Byte-identical output to anonymize();
/// only GloveStats::stretch_evaluations (and timings) differ.
[[nodiscard]] GloveResult anonymize_pruned(const cdr::FingerprintDataset& data,
                                           const GloveConfig& config,
                                           const util::RunHooks& hooks = {});

}  // namespace glove::core

#endif  // GLOVE_CORE_SCALABILITY_HPP
