#include "glove/core/scalability.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "glove/geo/geo.hpp"
#include "glove/util/parallel.hpp"

namespace glove::core {

FingerprintBounds fingerprint_bounds(const cdr::Fingerprint& fp) {
  FingerprintBounds bounds;
  if (fp.empty()) return bounds;
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = x_lo;
  double y_hi = -x_lo;
  double t_lo = x_lo;
  double t_hi = -x_lo;
  for (const cdr::Sample& s : fp.samples()) {
    x_lo = std::min(x_lo, s.sigma.x);
    x_hi = std::max(x_hi, s.sigma.x_end());
    y_lo = std::min(y_lo, s.sigma.y);
    y_hi = std::max(y_hi, s.sigma.y_end());
    t_lo = std::min(t_lo, s.tau.t);
    t_hi = std::max(t_hi, s.tau.t_end());
  }
  bounds.box = cdr::SpatialExtent{x_lo, x_hi - x_lo, y_lo, y_hi - y_lo};
  bounds.interval = cdr::TemporalExtent{t_lo, t_hi - t_lo};
  return bounds;
}

namespace {

/// Axis gap between two 1-D intervals (0 when they overlap).
double axis_gap(double lo_a, double hi_a, double lo_b, double hi_b) {
  if (hi_a < lo_b) return lo_b - hi_a;
  if (hi_b < lo_a) return lo_a - hi_b;
  return 0.0;
}

}  // namespace

std::uint64_t locality_sort_key(const FingerprintBounds& bounds) noexcept {
  // 1 km quantization of the bounding-box centre, offset to keep values
  // positive, then Morton-interleaved.
  const auto quantize = [](double v) {
    const double q = v / 1'000.0 + 1'000'000.0;
    return static_cast<std::uint32_t>(std::max(0.0, q));
  };
  const std::uint32_t qx = quantize(bounds.box.x + bounds.box.dx / 2);
  const std::uint32_t qy = quantize(bounds.box.y + bounds.box.dy / 2);
  return geo::morton_interleave(qx, qy);
}

double stretch_lower_bound(const FingerprintBounds& a,
                           const FingerprintBounds& b,
                           const StretchLimits& limits) {
  // Any sample of a lies inside a.box; any sample of b inside b.box.  To
  // merge a pair, each rectangle must grow at least across the gap between
  // the boxes (in the weighted two-direction sum of eq. 4, *both*
  // directions must bridge the gap, so the weighted sum is >= the gap).
  const double gap_x =
      axis_gap(a.box.x, a.box.x_end(), b.box.x, b.box.x_end());
  const double gap_y =
      axis_gap(a.box.y, a.box.y_end(), b.box.y, b.box.y_end());
  const double gap_t = axis_gap(a.interval.t, a.interval.t_end(),
                                b.interval.t, b.interval.t_end());
  const double phi_sigma =
      std::min((gap_x + gap_y) / limits.phi_max_sigma_m, 1.0);
  const double phi_tau = std::min(gap_t / limits.phi_max_tau_min, 1.0);
  return limits.w_sigma * phi_sigma + limits.w_tau * phi_tau;
}

std::vector<KGapEntry> k_gaps_pruned(const cdr::FingerprintDataset& data,
                                     std::uint32_t k,
                                     const StretchLimits& limits,
                                     std::uint64_t* pruned_pairs) {
  if (k < 2) throw std::invalid_argument{"k-gap requires k >= 2"};
  if (data.size() < k) {
    throw std::invalid_argument{
        "k-gap requires at least k fingerprints in the dataset"};
  }
  const std::size_t n = data.size();
  const std::size_t neighbors = k - 1;

  std::vector<FingerprintBounds> bounds(n);
  for (std::size_t i = 0; i < n; ++i) bounds[i] = fingerprint_bounds(data[i]);

  std::vector<KGapEntry> result(n);
  std::atomic<std::uint64_t> pruned{0};

  util::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::pair<double, std::size_t>> order;
        std::vector<std::pair<double, std::size_t>> best;
        for (std::size_t a = begin; a < end; ++a) {
          // Candidates sorted by lower bound; evaluate until the bound
          // exceeds the current (k-1)-th best true stretch.
          order.clear();
          order.reserve(n - 1);
          for (std::size_t b = 0; b < n; ++b) {
            if (b == a) continue;
            order.emplace_back(
                stretch_lower_bound(bounds[a], bounds[b], limits), b);
          }
          std::sort(order.begin(), order.end());

          best.clear();  // max-heap-ish: keep the k-1 smallest true values
          double kth = std::numeric_limits<double>::infinity();
          std::uint64_t local_pruned = 0;
          for (const auto& [lb, b] : order) {
            if (best.size() >= neighbors && lb >= kth) {
              ++local_pruned;
              continue;
            }
            const double d = fingerprint_stretch(data[a], data[b], limits);
            best.emplace_back(d, b);
            std::sort(best.begin(), best.end());
            if (best.size() > neighbors) best.pop_back();
            if (best.size() == neighbors) kth = best.back().first;
          }
          pruned.fetch_add(local_pruned, std::memory_order_relaxed);

          KGapEntry& entry = result[a];
          entry.neighbors.reserve(neighbors);
          double total = 0.0;
          for (const auto& [d, b] : best) {
            total += d;
            entry.neighbors.push_back(b);
          }
          entry.gap = total / static_cast<double>(neighbors);
        }
      },
      /*min_chunk=*/1);
  if (pruned_pairs != nullptr) *pruned_pairs = pruned.load();
  return result;
}

GloveResult anonymize_chunked(const cdr::FingerprintDataset& data,
                              const ChunkedConfig& config) {
  return anonymize_chunked(data, config, {});
}

GloveResult anonymize_chunked(const cdr::FingerprintDataset& data,
                              const ChunkedConfig& config,
                              const util::RunHooks& hooks) {
  if (config.chunk_size < config.glove.k) {
    throw std::invalid_argument{"chunk size must be at least k"};
  }
  if (data.size() < config.glove.k) {
    throw std::invalid_argument{
        "dataset smaller than the target anonymity level k"};
  }

  // Locality sort: interleave the bits of the quantized bounding-box
  // centre (Morton order), so chunks hold geographically close users.
  struct Key {
    std::uint64_t morton;
    std::size_t index;
  };
  std::vector<Key> keys;
  keys.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    keys.push_back(Key{locality_sort_key(fingerprint_bounds(data[i])), i});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.morton != b.morton) return a.morton < b.morton;
    return a.index < b.index;
  });

  GloveResult total;
  total.stats.input_users = data.total_users();
  total.stats.input_samples = data.total_samples();
  std::vector<cdr::Fingerprint> output;

  // Inner runs observe only the cancellation token; chunk completions are
  // the outer progress unit (per-chunk progress would not be monotone).
  util::RunHooks inner;
  inner.cancel = hooks.cancel;

  std::size_t begin = 0;
  while (begin < keys.size()) {
    hooks.throw_if_cancelled();
    std::size_t end = std::min(begin + config.chunk_size, keys.size());
    // Never leave a tail smaller than k: extend the last chunk instead.
    if (keys.size() - end < config.glove.k && end < keys.size()) {
      end = keys.size();
    }
    std::vector<cdr::Fingerprint> chunk;
    chunk.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      chunk.push_back(data[keys[i].index]);
    }
    const cdr::FingerprintDataset chunk_data{std::move(chunk)};
    const GloveResult part =
        config.pruned ? anonymize_pruned(chunk_data, config.glove, inner)
                      : anonymize(chunk_data, config.glove, inner);
    for (const cdr::Fingerprint& fp : part.anonymized.fingerprints()) {
      output.push_back(fp);
    }
    total.stats.accumulate_costs(part.stats);
    begin = end;
    hooks.report(begin, keys.size());
  }

  total.anonymized = cdr::FingerprintDataset{
      std::move(output),
      data.name() + "-chunked-k" + std::to_string(config.glove.k)};
  total.stats.output_groups = total.anonymized.size();
  total.stats.output_samples = total.anonymized.total_samples();
  return total;
}

}  // namespace glove::core
