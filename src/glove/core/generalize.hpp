// Legacy uniform spatiotemporal generalization (Sec. 1, Sec. 5.2): reduce
// the granularity of *every* sample to a fixed spatial tile and temporal
// slot.  This is the baseline whose failure (Fig. 4) motivates GLOVE.

#ifndef GLOVE_CORE_GENERALIZE_HPP
#define GLOVE_CORE_GENERALIZE_HPP

#include "glove/cdr/dataset.hpp"

namespace glove::core {

/// A uniform generalization level, e.g. {2'500 m, 60 min} is the paper's
/// "2.5-60" curve in Fig. 4.
struct GeneralizationLevel {
  double spatial_m = 100.0;
  double temporal_min = 1.0;
};

/// Snaps a sample onto the coarser grid: position is widened to the
/// enclosing `spatial_m` tile, time to the enclosing `temporal_min` slot.
[[nodiscard]] cdr::Sample generalize_sample(const cdr::Sample& s,
                                            const GeneralizationLevel& level);

/// Applies the level to every sample of every fingerprint.  Samples of one
/// fingerprint that become identical under the coarser granularity collapse
/// into one (a fingerprint is a *set* of samples; duplicates carry no
/// information and their contributors are accumulated).
[[nodiscard]] cdr::FingerprintDataset generalize_dataset(
    const cdr::FingerprintDataset& data, const GeneralizationLevel& level);

}  // namespace glove::core

#endif  // GLOVE_CORE_GENERALIZE_HPP
