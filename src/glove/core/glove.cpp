#include "glove/core/glove.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "glove/core/scalability.hpp"
#include "glove/obs/metrics.hpp"
#include "glove/util/parallel.hpp"

namespace glove::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Min-heap entry: candidate merge of nodes `a` and `b`.  Entries are lazy
/// in two ways: a node consumed by a merge invalidates all its pending
/// entries (detected on pop via the `alive` flags), and — in the pruned
/// variant — an entry may carry only a bounding-box *lower bound* on the
/// stretch (`exact == false`), refined to the true value when it reaches
/// the top of the heap.
struct PairEntry {
  double stretch;
  std::uint32_t a;
  std::uint32_t b;
  bool exact = true;

  friend bool operator>(const PairEntry& lhs, const PairEntry& rhs) {
    if (lhs.stretch != rhs.stretch) return lhs.stretch > rhs.stretch;
    // At equal value a bound must pop before an exact entry: its true
    // stretch may tie, and only after refinement can the (a, b) tie-break
    // pick the same pair the all-exact heap would.
    if (lhs.exact != rhs.exact) return lhs.exact;
    if (lhs.a != rhs.a) return lhs.a > rhs.a;  // deterministic tie-break
    return lhs.b > rhs.b;
  }
};

/// Cancellation poll interval inside parallel init chunks (elements).
constexpr std::size_t kCancelPollMask = 0x1FFF;

GloveResult anonymize_impl(const cdr::FingerprintDataset& data,
                           const GloveConfig& config,
                           const util::RunHooks& hooks, bool lazy_init) {
  if (config.k < 2) {
    throw std::invalid_argument{"GLOVE requires k >= 2"};
  }
  if (data.size() < config.k) {
    throw std::invalid_argument{
        "dataset smaller than the target anonymity level k"};
  }

  GloveResult result;
  GloveStats& stats = result.stats;
  stats.input_users = data.total_users();
  stats.input_samples = data.total_samples();

  MergeOptions merge_options;
  merge_options.limits = config.limits;
  merge_options.reshape = config.reshape;
  merge_options.suppression = config.suppression;

  // Node store: input fingerprints first, merged fingerprints appended.
  std::vector<cdr::Fingerprint> nodes{data.fingerprints().begin(),
                                      data.fingerprints().end()};
  nodes.reserve(nodes.size() * 2);
  std::vector<bool> alive(nodes.size(), true);
  // Nodes whose group already reaches k: finalized, out of the greedy set.
  std::vector<std::uint32_t> finalized;

  const auto is_open = [&](std::uint32_t id) {
    return alive[id] && nodes[id].group_size() < config.k;
  };

  // Inputs can already satisfy k (e.g. re-anonymizing a published dataset).
  for (std::uint32_t id = 0; id < nodes.size(); ++id) {
    if (nodes[id].group_size() >= config.k) finalized.push_back(id);
  }

  // --- Initialization: stretch effort for all open pairs (Alg. 1 l. 1-2).
  // The pruned variant seeds the heap with bounding-box lower bounds
  // instead of exact efforts; bounds refine lazily on pop, so far-apart
  // pairs are never evaluated exactly.  Output is identical either way.
  const auto init_start = Clock::now();
  std::vector<std::uint32_t> open;
  for (std::uint32_t id = 0; id < nodes.size(); ++id) {
    if (is_open(id)) open.push_back(id);
  }

  // Per-node bounding-geometry cache (lazy variant only): computed once per
  // node — including nodes created by merges later on — so every candidate
  // pair can be seeded with a cheap lower bound instead of an exact
  // O(m_a * m_b) stretch evaluation.
  std::vector<FingerprintBounds> bounds;
  if (lazy_init) {
    bounds.resize(nodes.size());
    util::parallel_for(
        open.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            bounds[open[i]] = fingerprint_bounds(nodes[open[i]]);
          }
        },
        /*min_chunk=*/64);
  }

  std::vector<PairEntry> heap;
  const std::size_t pairs =
      open.size() >= 2 ? open.size() * (open.size() - 1) / 2 : 0;
  // Work units for progress: initial pairs plus open nodes to close.
  const std::uint64_t total_work =
      static_cast<std::uint64_t>(pairs) + open.size();
  if (pairs > 0) {
    heap.resize(pairs);
    // Row-major enumeration of the strict upper triangle, parallel by pair
    // index: pair p -> (i, j) with i < j.
    util::parallel_for(pairs, [&](std::size_t begin, std::size_t end) {
      for (std::size_t p = begin; p < end; ++p) {
        if ((p & kCancelPollMask) == 0) hooks.throw_if_cancelled();
        // Invert p = i*(2n-i-1)/2 + (j-i-1): estimate row i analytically,
        // then fix rounding so that offsets(i) <= p < offsets(i+1).
        const double n = static_cast<double>(open.size());
        const double estimate =
            n - 0.5 -
            std::sqrt(std::max(0.0, (n - 0.5) * (n - 0.5) -
                                        2.0 * static_cast<double>(p)));
        std::size_t i = static_cast<std::size_t>(std::max(0.0, estimate));
        if (i > open.size() - 2) i = open.size() - 2;
        auto offset = [&](std::size_t row) {
          return row * (2 * open.size() - row - 1) / 2;
        };
        while (offset(i + 1) <= p) ++i;
        while (i > 0 && offset(i) > p) --i;
        const std::size_t j = p - offset(i) + i + 1;
        const std::uint32_t a = open[i];
        const std::uint32_t b = open[j];
        if (lazy_init) {
          heap[p] = PairEntry{
              stretch_lower_bound(bounds[a], bounds[b], config.limits), a, b,
              /*exact=*/false};
        } else {
          heap[p] = PairEntry{
              fingerprint_stretch(nodes[a], nodes[b], config.limits), a, b};
        }
      }
    });
    if (!lazy_init) stats.stretch_evaluations += pairs;
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<>{});
  stats.init_seconds = seconds_since(init_start);
  hooks.throw_if_cancelled();
  hooks.report(pairs, total_work);

  // Candidate-churn accounting: how much of the heap's traffic is useful
  // (refines, fresh pairs) vs wasted (stale pops of dead nodes).  All
  // deterministic for a given input/config, so the totals surface in the
  // run report's "obs" section; tallied locally and folded in once after
  // the loop to keep the pop path free of shared writes.
  static const obs::Counter c_seeded = obs::counter("core.heap.seeded");
  static const obs::Counter c_popped = obs::counter("core.heap.popped");
  static const obs::Counter c_refined = obs::counter("core.heap.refined");
  static const obs::Counter c_stale = obs::counter("core.heap.stale_skips");
  static const obs::Counter c_pushed = obs::counter("core.heap.pushed");
  if (pairs > 0) c_seeded.add(pairs);
  std::uint64_t popped = 0;
  std::uint64_t refined = 0;
  std::uint64_t stale = 0;
  std::uint64_t pushed = 0;

  // --- Greedy loop (Alg. 1 l. 4-15).
  const auto merge_start = Clock::now();
  const std::size_t initial_open = open.size();
  std::size_t open_count = open.size();
  std::vector<PairEntry> fresh;  // scratch for new pairs of a merged node
  while (open_count >= 2) {
    hooks.throw_if_cancelled();
    // Pop the minimum-stretch pair of still-open nodes, refining lower
    // bounds that surface at the top.
    PairEntry top{};
    bool found = false;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      top = heap.back();
      heap.pop_back();
      ++popped;
      if (!is_open(top.a) || !is_open(top.b)) {
        ++stale;
        continue;
      }
      if (!top.exact) {
        top.stretch =
            fingerprint_stretch(nodes[top.a], nodes[top.b], config.limits);
        top.exact = true;
        ++stats.stretch_evaluations;
        ++refined;
        heap.push_back(top);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        continue;
      }
      found = true;
      break;
    }
    if (!found) {
      throw std::logic_error{"GLOVE heap exhausted with open nodes left"};
    }

    // Merge and install the new node.
    alive[top.a] = false;
    alive[top.b] = false;
    open_count -= 2;
    MergeStats merge_stats;
    cdr::Fingerprint merged = merge_fingerprints(nodes[top.a], nodes[top.b],
                                                 merge_options, &merge_stats);
    stats.deleted_samples += merge_stats.suppressed_original_samples;
    ++stats.merges;
    const auto m_id = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back(std::move(merged));
    alive.push_back(true);
    if (lazy_init) bounds.push_back(fingerprint_bounds(nodes[m_id]));

    if (nodes[m_id].group_size() >= config.k) {
      finalized.push_back(m_id);
      hooks.report(pairs + (initial_open - open_count), total_work);
      continue;
    }
    ++open_count;

    // Alg. 1 l. 10-13: stretch from the new node to every open node.  The
    // lazy variant seeds these pairs with bounding-box lower bounds from
    // the per-node cache (refined on pop, like the initial heap), so a
    // merge costs O(open) cheap bound evaluations instead of O(open)
    // exact O(m_a * m_b) ones.
    std::vector<std::uint32_t> targets;
    targets.reserve(open_count);
    for (std::uint32_t id = 0; id < m_id; ++id) {
      if (is_open(id)) targets.push_back(id);
    }
    fresh.resize(targets.size());
    if (lazy_init) {
      for (std::size_t t = 0; t < targets.size(); ++t) {
        fresh[t] = PairEntry{stretch_lower_bound(bounds[m_id],
                                                 bounds[targets[t]],
                                                 config.limits),
                             m_id, targets[t], /*exact=*/false};
      }
    } else {
      util::parallel_for(
          targets.size(),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t t = begin; t < end; ++t) {
              fresh[t] = PairEntry{fingerprint_stretch(nodes[m_id],
                                                       nodes[targets[t]],
                                                       config.limits),
                                   m_id, targets[t]};
            }
          },
          /*min_chunk=*/16);
      stats.stretch_evaluations += targets.size();
    }
    for (const PairEntry& e : fresh) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    }
    pushed += fresh.size();
    hooks.report(pairs + (initial_open - open_count), total_work);
  }
  if (popped > 0) c_popped.add(popped);
  if (refined > 0) c_refined.add(refined);
  if (stale > 0) c_stale.add(stale);
  if (pushed > 0) c_pushed.add(pushed);

  // --- Leftover handling (unspecified in Alg. 1; see DESIGN.md).
  if (open_count == 1) {
    hooks.throw_if_cancelled();
    std::uint32_t leftover = 0;
    for (std::uint32_t id = 0; id < nodes.size(); ++id) {
      if (is_open(id)) leftover = id;
    }
    switch (config.leftover_policy) {
      case LeftoverPolicy::kMergeIntoNearest: {
        if (finalized.empty()) {
          // Cannot happen for data.size() >= k >= 2: the loop only exits
          // with one open node after at least one group reached k.
          throw std::logic_error{"no finalized group to absorb leftover"};
        }
        std::uint32_t best_id = finalized.front();
        double best = std::numeric_limits<double>::infinity();
        for (const std::uint32_t id : finalized) {
          const double d =
              fingerprint_stretch(nodes[leftover], nodes[id], config.limits);
          ++stats.stretch_evaluations;
          if (d < best) {
            best = d;
            best_id = id;
          }
        }
        MergeStats merge_stats;
        cdr::Fingerprint merged = merge_fingerprints(
            nodes[leftover], nodes[best_id], merge_options, &merge_stats);
        stats.deleted_samples += merge_stats.suppressed_original_samples;
        ++stats.merges;
        alive[leftover] = false;
        alive[best_id] = false;
        nodes.push_back(std::move(merged));
        alive.push_back(true);
        std::replace(finalized.begin(), finalized.end(), best_id,
                     static_cast<std::uint32_t>(nodes.size() - 1));
        break;
      }
      case LeftoverPolicy::kSuppress: {
        alive[leftover] = false;
        stats.discarded_fingerprints += nodes[leftover].group_size();
        stats.deleted_samples += nodes[leftover].total_contributors();
        break;
      }
    }
  }
  stats.merge_seconds = seconds_since(merge_start);
  hooks.report(total_work, total_work);

  // --- Collect output.
  std::vector<cdr::Fingerprint> output;
  output.reserve(finalized.size());
  for (const std::uint32_t id : finalized) {
    if (alive[id]) output.push_back(nodes[id]);
  }
  stats.output_groups = output.size();
  cdr::FingerprintDataset anonymized{std::move(output),
                                     data.name() + "-k" +
                                         std::to_string(config.k)};
  stats.output_samples = anonymized.total_samples();
  result.anonymized = std::move(anonymized);
  return result;
}

}  // namespace

GloveResult anonymize(const cdr::FingerprintDataset& data,
                      const GloveConfig& config, const util::RunHooks& hooks) {
  return anonymize_impl(data, config, hooks, /*lazy_init=*/false);
}

GloveResult anonymize(const cdr::FingerprintDataset& data,
                      const GloveConfig& config) {
  return anonymize_impl(data, config, {}, /*lazy_init=*/false);
}

GloveResult anonymize_pruned(const cdr::FingerprintDataset& data,
                             const GloveConfig& config,
                             const util::RunHooks& hooks) {
  return anonymize_impl(data, config, hooks, /*lazy_init=*/true);
}

bool is_k_anonymous(const cdr::FingerprintDataset& data, std::uint32_t k) {
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    if (fp.group_size() < k) return false;
  }
  return true;
}

}  // namespace glove::core
