// Incremental anonymization — releasing an updated dataset when new
// subscribers appear after a k-anonymized release is already published.
//
// Re-running GLOVE from scratch would re-generalize everyone (and a
// changed grouping could even leak information across releases, since an
// attacker holding both versions could intersect groups).  The
// incremental update instead keeps every published group intact and only
// decides, for each new user, whether to
//
//   (a) join the nearest existing group (the group's fingerprint widens to
//       cover the newcomer; its anonymity set only grows), or
//   (b) form new groups with other newcomers via the normal greedy pass,
//
// choosing whichever costs less stretch effort.  Groups never shrink or
// split, so the k-anonymity of previously published users is preserved by
// construction.

#ifndef GLOVE_CORE_INCREMENTAL_HPP
#define GLOVE_CORE_INCREMENTAL_HPP

#include "glove/core/glove.hpp"

namespace glove::core {

/// Statistics of an incremental update.
struct UpdateStats {
  std::uint64_t new_users = 0;
  std::uint64_t joined_existing_groups = 0;
  std::uint64_t formed_new_groups = 0;
  GloveStats glove;  ///< stats of the embedded greedy pass (if any)
};

/// Result of an incremental update.
struct UpdateResult {
  cdr::FingerprintDataset anonymized;
  UpdateStats stats;
};

/// Adds `new_users` (group size 1 each) to the already-k-anonymized
/// `published` dataset.  Requires `published` to satisfy config.k and the
/// newcomers to be single-user fingerprints whose ids do not appear in
/// any published group; throws std::invalid_argument otherwise.
///
/// A newcomer joins its nearest existing group when that is cheaper than
/// its nearest fellow newcomer (or when too few newcomers remain to form a
/// group of k).  Remaining newcomers are anonymized by the standard greedy
/// pass; a leftover smaller than k merges into the nearest group.
[[nodiscard]] UpdateResult anonymize_update(
    const cdr::FingerprintDataset& published,
    const cdr::FingerprintDataset& new_users, const GloveConfig& config,
    const util::RunHooks& hooks);

/// Deprecated entry point: prefer glove::Engine::run (strategy
/// "incremental") or the hooks overload above.
[[nodiscard]] UpdateResult anonymize_update(
    const cdr::FingerprintDataset& published,
    const cdr::FingerprintDataset& new_users, const GloveConfig& config);

}  // namespace glove::core

#endif  // GLOVE_CORE_INCREMENTAL_HPP
