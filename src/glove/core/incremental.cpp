#include "glove/core/incremental.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "glove/util/parallel.hpp"

namespace glove::core {

UpdateResult anonymize_update(const cdr::FingerprintDataset& published,
                              const cdr::FingerprintDataset& new_users,
                              const GloveConfig& config) {
  if (!is_k_anonymous(published, config.k)) {
    throw std::invalid_argument{
        "published dataset does not satisfy the configured k"};
  }
  for (const cdr::Fingerprint& fp : new_users.fingerprints()) {
    if (fp.group_size() != 1) {
      throw std::invalid_argument{"new users must be single-user records"};
    }
  }

  UpdateResult result;
  result.stats.new_users = new_users.size();

  std::vector<cdr::Fingerprint> groups{published.fingerprints().begin(),
                                       published.fingerprints().end()};

  MergeOptions merge_options;
  merge_options.limits = config.limits;
  merge_options.reshape = config.reshape;
  merge_options.suppression = config.suppression;

  // Decide each newcomer's fate: nearest existing group vs nearest fellow
  // newcomer.  Computed in parallel, applied sequentially (joins mutate
  // groups, so they are replayed in deterministic order).
  const std::size_t n = new_users.size();
  struct Choice {
    double to_group = std::numeric_limits<double>::infinity();
    std::size_t group = 0;
    double to_peer = std::numeric_limits<double>::infinity();
  };
  std::vector<Choice> choices(n);
  util::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Choice& choice = choices[i];
          for (std::size_t g = 0; g < groups.size(); ++g) {
            const double d =
                fingerprint_stretch(new_users[i], groups[g], config.limits);
            if (d < choice.to_group) {
              choice.to_group = d;
              choice.group = g;
            }
          }
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            const double d =
                fingerprint_stretch(new_users[i], new_users[j],
                                    config.limits);
            choice.to_peer = std::min(choice.to_peer, d);
          }
        }
      },
      /*min_chunk=*/1);

  std::vector<cdr::Fingerprint> peer_pool;
  for (std::size_t i = 0; i < n; ++i) {
    const bool join = !groups.empty() &&
                      (choices[i].to_group <= choices[i].to_peer);
    if (join) {
      cdr::Fingerprint& group = groups[choices[i].group];
      group = merge_fingerprints(group, new_users[i], merge_options);
      ++result.stats.joined_existing_groups;
    } else {
      peer_pool.push_back(new_users[i]);
    }
  }

  // Newcomers pairing among themselves: run the standard greedy pass when
  // enough of them remain; otherwise fall back to joining groups.
  if (peer_pool.size() >= config.k) {
    const GloveResult pass = anonymize(
        cdr::FingerprintDataset{std::move(peer_pool)}, config);
    result.stats.glove = pass.stats;
    result.stats.formed_new_groups = pass.anonymized.size();
    for (const cdr::Fingerprint& fp : pass.anonymized.fingerprints()) {
      groups.push_back(fp);
    }
  } else {
    for (const cdr::Fingerprint& straggler : peer_pool) {
      if (groups.empty()) {
        throw std::invalid_argument{
            "not enough users in total to reach the anonymity level"};
      }
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const double d =
            fingerprint_stretch(straggler, groups[g], config.limits);
        if (d < best_d) {
          best_d = d;
          best = g;
        }
      }
      groups[best] = merge_fingerprints(groups[best], straggler,
                                        merge_options);
      ++result.stats.joined_existing_groups;
    }
  }

  result.anonymized = cdr::FingerprintDataset{
      std::move(groups), published.name() + "-updated"};
  return result;
}

}  // namespace glove::core
