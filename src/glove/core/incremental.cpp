#include "glove/core/incremental.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "glove/util/parallel.hpp"

namespace glove::core {

UpdateResult anonymize_update(const cdr::FingerprintDataset& published,
                              const cdr::FingerprintDataset& new_users,
                              const GloveConfig& config) {
  return anonymize_update(published, new_users, config, {});
}

UpdateResult anonymize_update(const cdr::FingerprintDataset& published,
                              const cdr::FingerprintDataset& new_users,
                              const GloveConfig& config,
                              const util::RunHooks& hooks) {
  if (!is_k_anonymous(published, config.k)) {
    throw std::invalid_argument{
        "published dataset does not satisfy the configured k"};
  }
  for (const cdr::Fingerprint& fp : new_users.fingerprints()) {
    if (fp.group_size() != 1) {
      throw std::invalid_argument{"new users must be single-user records"};
    }
  }
  // Reject id collisions across the two inputs up front: a "newcomer"
  // already inside a published group would be double-counted, and the
  // released groups would overlap — exactly the cross-release linkage
  // the incremental update exists to prevent.
  std::vector<cdr::UserId> published_ids;
  for (const cdr::Fingerprint& fp : published.fingerprints()) {
    published_ids.insert(published_ids.end(), fp.members().begin(),
                         fp.members().end());
  }
  std::sort(published_ids.begin(), published_ids.end());
  for (const cdr::Fingerprint& fp : new_users.fingerprints()) {
    if (std::binary_search(published_ids.begin(), published_ids.end(),
                           fp.members().front())) {
      throw std::invalid_argument{
          "user id " + std::to_string(fp.members().front()) +
          " appears in both the published release and the new users"};
    }
  }

  UpdateResult result;
  result.stats.new_users = new_users.size();

  std::vector<cdr::Fingerprint> groups{published.fingerprints().begin(),
                                       published.fingerprints().end()};

  MergeOptions merge_options;
  merge_options.limits = config.limits;
  merge_options.reshape = config.reshape;
  merge_options.suppression = config.suppression;

  // Decide each newcomer's fate: nearest existing group vs nearest fellow
  // newcomer.  Computed in parallel, applied sequentially (joins mutate
  // groups, so they are replayed in deterministic order).
  const std::size_t n = new_users.size();
  struct Choice {
    double to_group = std::numeric_limits<double>::infinity();
    std::size_t group = 0;
    double to_peer = std::numeric_limits<double>::infinity();
  };
  // Progress: n decision units (parallel phase) then n placement units.
  const std::uint64_t total_work = 2 * static_cast<std::uint64_t>(n);
  std::mutex progress_mutex;
  std::uint64_t decisions_done = 0;

  std::vector<Choice> choices(n);
  util::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hooks.throw_if_cancelled();
          Choice& choice = choices[i];
          for (std::size_t g = 0; g < groups.size(); ++g) {
            const double d =
                fingerprint_stretch(new_users[i], groups[g], config.limits);
            if (d < choice.to_group) {
              choice.to_group = d;
              choice.group = g;
            }
          }
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            const double d =
                fingerprint_stretch(new_users[i], new_users[j],
                                    config.limits);
            choice.to_peer = std::min(choice.to_peer, d);
          }
          if (hooks.progress) {
            const std::lock_guard lock{progress_mutex};
            hooks.progress(++decisions_done, total_work);
          }
        }
      },
      /*min_chunk=*/1);

  // The embedded greedy pass observes only the cancellation token; its
  // own progress would not compose monotonically with the outer units.
  util::RunHooks inner;
  inner.cancel = hooks.cancel;

  std::uint64_t placed = 0;
  std::vector<cdr::Fingerprint> peer_pool;
  for (std::size_t i = 0; i < n; ++i) {
    hooks.throw_if_cancelled();
    const bool join = !groups.empty() &&
                      (choices[i].to_group <= choices[i].to_peer);
    if (join) {
      cdr::Fingerprint& group = groups[choices[i].group];
      group = merge_fingerprints(group, new_users[i], merge_options);
      ++result.stats.joined_existing_groups;
      hooks.report(static_cast<std::uint64_t>(n) + ++placed, total_work);
    } else {
      peer_pool.push_back(new_users[i]);
    }
  }

  // Newcomers pairing among themselves: run the standard greedy pass when
  // enough of them remain; otherwise fall back to joining groups.
  if (peer_pool.size() >= config.k) {
    const GloveResult pass = anonymize(
        cdr::FingerprintDataset{std::move(peer_pool)}, config, inner);
    result.stats.glove = pass.stats;
    result.stats.formed_new_groups = pass.anonymized.size();
    for (const cdr::Fingerprint& fp : pass.anonymized.fingerprints()) {
      groups.push_back(fp);
    }
  } else {
    for (const cdr::Fingerprint& straggler : peer_pool) {
      hooks.throw_if_cancelled();
      if (groups.empty()) {
        throw std::invalid_argument{
            "not enough users in total to reach the anonymity level"};
      }
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const double d =
            fingerprint_stretch(straggler, groups[g], config.limits);
        if (d < best_d) {
          best_d = d;
          best = g;
        }
      }
      groups[best] = merge_fingerprints(groups[best], straggler,
                                        merge_options);
      ++result.stats.joined_existing_groups;
    }
  }

  hooks.report(total_work, total_work);
  result.anonymized = cdr::FingerprintDataset{
      std::move(groups), published.name() + "-updated"};
  return result;
}

}  // namespace glove::core
