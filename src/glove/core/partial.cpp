#include "glove/core/partial.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "glove/geo/geo.hpp"

namespace glove::core {

cdr::FingerprintDataset reduce_to_top_locations(
    const cdr::FingerprintDataset& data, std::size_t top_locations,
    double tile_m) {
  if (top_locations == 0) {
    throw std::invalid_argument{"top_locations must be >= 1"};
  }
  const geo::Grid grid{tile_m};
  std::vector<cdr::Fingerprint> reduced;
  reduced.reserve(data.size());
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    std::unordered_map<geo::GridCell, std::size_t> counts;
    for (const cdr::Sample& s : fp.samples()) {
      ++counts[grid.cell_of(
          {s.sigma.x + s.sigma.dx / 2, s.sigma.y + s.sigma.dy / 2})];
    }
    std::vector<std::pair<std::size_t, geo::GridCell>> ranked;
    ranked.reserve(counts.size());
    // Hash-order snapshot is fine: the sort below carries a full
    // (count, ix, iy) tie-break, so the ranking is order-insensitive.
    for (const auto& [cell, count] : counts) ranked.emplace_back(count, cell);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                if (a.second.ix != b.second.ix) {
                  return a.second.ix < b.second.ix;
                }
                return a.second.iy < b.second.iy;
              });
    const std::size_t keep = std::min(top_locations, ranked.size());
    std::vector<geo::GridCell> kept_cells;
    kept_cells.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      kept_cells.push_back(ranked[i].second);
    }
    std::vector<cdr::Sample> kept;
    for (const cdr::Sample& s : fp.samples()) {
      const geo::GridCell cell = grid.cell_of(
          {s.sigma.x + s.sigma.dx / 2, s.sigma.y + s.sigma.dy / 2});
      if (std::find(kept_cells.begin(), kept_cells.end(), cell) !=
          kept_cells.end()) {
        kept.push_back(s);
      }
    }
    if (kept.empty()) continue;
    reduced.emplace_back(
        std::vector<cdr::UserId>{fp.members().begin(), fp.members().end()},
        std::move(kept));
  }
  return cdr::FingerprintDataset{std::move(reduced),
                                 data.name() + "-top" +
                                     std::to_string(top_locations)};
}

PartialResult anonymize_partial(const cdr::FingerprintDataset& data,
                                const PartialConfig& config) {
  PartialResult result;
  const cdr::FingerprintDataset reduced =
      reduce_to_top_locations(data, config.top_locations, config.tile_m);
  result.withheld_samples = data.total_samples() - reduced.total_samples();
  result.glove = anonymize(reduced, config.glove);
  return result;
}

}  // namespace glove::core
