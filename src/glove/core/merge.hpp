// Fingerprint merging — the heart of GLOVE's specialized generalization
// (Sec. 6.2): a two-stage matching of samples between two fingerprints,
// per-sample spatiotemporal union (eq. 12-13), temporal-overlap reshaping
// (Fig. 6b) and optional suppression of over-stretched samples (Sec. 7.1).

#ifndef GLOVE_CORE_MERGE_HPP
#define GLOVE_CORE_MERGE_HPP

#include <cstdint>
#include <optional>

#include "glove/cdr/fingerprint.hpp"
#include "glove/core/stretch.hpp"

namespace glove::core {

/// Suppression thresholds (Sec. 7.1): merged samples whose spatial extent
/// or duration exceeds these are discarded rather than published.  The
/// paper's Tab. 2 setting is {15 km, 6 h}; Fig. 9 sweeps both knobs.
struct SuppressionThresholds {
  double max_spatial_extent_m = 15'000.0;
  double max_temporal_extent_min = 360.0;
};

/// Counters accumulated by merge operations.
struct MergeStats {
  /// Original samples removed by suppression (contributor-weighted).
  std::uint64_t suppressed_original_samples = 0;
  /// Published (merged) samples removed by suppression.
  std::uint64_t suppressed_merged_samples = 0;
  /// Sample unions performed (eq. 12-13 evaluations).
  std::uint64_t sample_unions = 0;
};

/// Spatiotemporal union of two samples (eq. 12-13): the smallest sample
/// covering both rectangles and both time intervals.  Contributor counts
/// add up.
[[nodiscard]] cdr::Sample merge_samples(const cdr::Sample& a,
                                        const cdr::Sample& b) noexcept;

/// Options controlling `merge_fingerprints`.
struct MergeOptions {
  StretchLimits limits;
  /// Resolve temporal overlaps after merging (Fig. 6b).  GLOVE's default.
  bool reshape = true;
  /// When set, drop merged samples exceeding the thresholds (Sec. 7.1).
  std::optional<SuppressionThresholds> suppression;
};

/// Merges two fingerprints into one generalized fingerprint hiding all
/// members of both (Sec. 6.2):
///
///   stage 1 — every sample of the longer fingerprint is matched to the
///             minimum-stretch sample of the shorter one and unioned with
///             it (samples sharing a target collapse together);
///   stage 2 — shorter-fingerprint samples left unmatched are unioned with
///             their minimum-stretch sample among the stage-1 results;
///   then temporal overlaps are reshaped and suppression is applied.
///
/// The result carries the union of both member lists.  `stats`, when
/// non-null, accumulates suppression counters.
[[nodiscard]] cdr::Fingerprint merge_fingerprints(const cdr::Fingerprint& a,
                                                  const cdr::Fingerprint& b,
                                                  const MergeOptions& options,
                                                  MergeStats* stats = nullptr);

/// Reshaping alone (Fig. 6b): replaces every maximal run of temporally
/// overlapping samples with a single sample covering the union of their
/// intervals and rectangles.  Exposed for tests and ablation benches.
[[nodiscard]] std::vector<cdr::Sample> reshape_samples(
    std::vector<cdr::Sample> samples);

/// Suppression alone: removes samples exceeding the thresholds, counting
/// the discarded original samples into `stats` when non-null.
[[nodiscard]] std::vector<cdr::Sample> suppress_samples(
    std::vector<cdr::Sample> samples, const SuppressionThresholds& thresholds,
    MergeStats* stats = nullptr);

}  // namespace glove::core

#endif  // GLOVE_CORE_MERGE_HPP
