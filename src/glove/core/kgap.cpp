#include "glove/core/kgap.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "glove/util/parallel.hpp"

namespace glove::core {

std::vector<KGapEntry> k_gaps(const cdr::FingerprintDataset& data,
                              std::uint32_t k, const StretchLimits& limits) {
  return k_gaps(data, k, limits, {});
}

std::vector<KGapEntry> k_gaps(const cdr::FingerprintDataset& data,
                              std::uint32_t k, const StretchLimits& limits,
                              const util::RunHooks& hooks) {
  if (k < 2) throw std::invalid_argument{"k-gap requires k >= 2"};
  if (data.size() < k) {
    throw std::invalid_argument{
        "k-gap requires at least k fingerprints in the dataset"};
  }
  const std::size_t n = data.size();
  const std::size_t neighbors = k - 1;
  std::vector<KGapEntry> result(n);

  // Progress (and the cancellation poll) tick per fixed quantum of pair
  // evaluations, not per completed row: one row costs n-1 stretch
  // evaluations, so per-row reporting starves the callback for the whole
  // row on large shards.  Work units are pair evaluations throughout —
  // total is n*(n-1) — and each worker folds its local tally into the
  // shared counter at most once per quantum, bounding both callback
  // frequency and lock traffic by work done.
  constexpr std::uint64_t kProgressQuantum = 8192;
  const std::uint64_t total_evals =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1);
  std::mutex progress_mutex;
  std::uint64_t evals_done = 0;

  util::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::pair<double, std::size_t>> row;
        row.reserve(n - 1);
        std::uint64_t local = 0;
        const auto tick = [&](bool force) {
          if (!force && local < kProgressQuantum) return;
          hooks.throw_if_cancelled();
          if (hooks.progress && local > 0) {
            const std::lock_guard lock{progress_mutex};
            evals_done += local;
            hooks.progress(evals_done, total_evals);
          }
          local = 0;
        };
        for (std::size_t a = begin; a < end; ++a) {
          hooks.throw_if_cancelled();
          row.clear();
          for (std::size_t b = 0; b < n; ++b) {
            if (b == a) continue;
            row.emplace_back(fingerprint_stretch(data[a], data[b], limits),
                             b);
            ++local;
            tick(/*force=*/false);
          }
          // Select the k-1 nearest fingerprints (ties by index for
          // determinism independent of thread count).
          std::partial_sort(
              row.begin(),
              row.begin() + static_cast<std::ptrdiff_t>(neighbors),
              row.end());
          KGapEntry& entry = result[a];
          entry.neighbors.reserve(neighbors);
          double total = 0.0;
          for (std::size_t i = 0; i < neighbors; ++i) {
            total += row[i].first;
            entry.neighbors.push_back(row[i].second);
          }
          entry.gap = total / static_cast<double>(neighbors);
        }
        tick(/*force=*/true);
      },
      /*min_chunk=*/1);
  return result;
}

std::vector<double> k_gap_values(const cdr::FingerprintDataset& data,
                                 std::uint32_t k,
                                 const StretchLimits& limits) {
  const std::vector<KGapEntry> entries = k_gaps(data, k, limits);
  std::vector<double> values;
  values.reserve(entries.size());
  for (const KGapEntry& e : entries) values.push_back(e.gap);
  return values;
}

}  // namespace glove::core
