#include "glove/core/kgap.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "glove/util/parallel.hpp"

namespace glove::core {

std::vector<KGapEntry> k_gaps(const cdr::FingerprintDataset& data,
                              std::uint32_t k, const StretchLimits& limits) {
  return k_gaps(data, k, limits, {});
}

std::vector<KGapEntry> k_gaps(const cdr::FingerprintDataset& data,
                              std::uint32_t k, const StretchLimits& limits,
                              const util::RunHooks& hooks) {
  if (k < 2) throw std::invalid_argument{"k-gap requires k >= 2"};
  if (data.size() < k) {
    throw std::invalid_argument{
        "k-gap requires at least k fingerprints in the dataset"};
  }
  const std::size_t n = data.size();
  const std::size_t neighbors = k - 1;
  std::vector<KGapEntry> result(n);

  std::mutex progress_mutex;
  std::uint64_t rows_done = 0;

  util::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::pair<double, std::size_t>> row;
        row.reserve(n - 1);
        for (std::size_t a = begin; a < end; ++a) {
          hooks.throw_if_cancelled();
          row.clear();
          for (std::size_t b = 0; b < n; ++b) {
            if (b == a) continue;
            row.emplace_back(fingerprint_stretch(data[a], data[b], limits),
                             b);
          }
          // Select the k-1 nearest fingerprints (ties by index for
          // determinism independent of thread count).
          std::partial_sort(
              row.begin(),
              row.begin() + static_cast<std::ptrdiff_t>(neighbors),
              row.end());
          KGapEntry& entry = result[a];
          entry.neighbors.reserve(neighbors);
          double total = 0.0;
          for (std::size_t i = 0; i < neighbors; ++i) {
            total += row[i].first;
            entry.neighbors.push_back(row[i].second);
          }
          entry.gap = total / static_cast<double>(neighbors);
          if (hooks.progress) {
            const std::lock_guard lock{progress_mutex};
            hooks.progress(++rows_done, n);
          }
        }
      },
      /*min_chunk=*/1);
  return result;
}

std::vector<double> k_gap_values(const cdr::FingerprintDataset& data,
                                 std::uint32_t k,
                                 const StretchLimits& limits) {
  const std::vector<KGapEntry> entries = k_gaps(data, k, limits);
  std::vector<double> values;
  values.reserve(entries.size());
  for (const KGapEntry& e : entries) values.push_back(e.gap);
  return values;
}

}  // namespace glove::core
