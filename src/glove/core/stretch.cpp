#include "glove/core/stretch.hpp"

#include <algorithm>

namespace glove::core {

namespace {

/// Left stretch l_sigma(a, b) of eq. 5: how far a's west/south edges must
/// move to reach b's.
inline double left_stretch(const cdr::SpatialExtent& a,
                           const cdr::SpatialExtent& b) noexcept {
  return (a.x - std::min(a.x, b.x)) + (a.y - std::min(a.y, b.y));
}

/// Right stretch r_sigma(a, b) of eq. 6: how far a's east/north edges must
/// move to reach b's.
inline double right_stretch(const cdr::SpatialExtent& a,
                            const cdr::SpatialExtent& b) noexcept {
  return (std::max(a.x_end(), b.x_end()) - a.x_end()) +
         (std::max(a.y_end(), b.y_end()) - a.y_end());
}

}  // namespace

double raw_spatial_stretch_m(const cdr::SpatialExtent& a,
                             const cdr::SpatialExtent& b,
                             PairWeights weights) noexcept {
  return (left_stretch(a, b) + right_stretch(a, b)) * weights.wa +
         (left_stretch(b, a) + right_stretch(b, a)) * weights.wb;
}

double raw_spatial_stretch_m(const cdr::SpatialExtent& a, std::uint32_t na,
                             const cdr::SpatialExtent& b,
                             std::uint32_t nb) noexcept {
  return raw_spatial_stretch_m(a, b, pair_weights(na, nb));
}

double raw_temporal_stretch_min(const cdr::TemporalExtent& a,
                                const cdr::TemporalExtent& b,
                                PairWeights weights) noexcept {
  // l_tau (eq. 8) and r_tau (eq. 9) for both directions.
  const double l_ab = a.t - std::min(a.t, b.t);
  const double r_ab = std::max(a.t_end(), b.t_end()) - a.t_end();
  const double l_ba = b.t - std::min(a.t, b.t);
  const double r_ba = std::max(a.t_end(), b.t_end()) - b.t_end();
  return (l_ab + r_ab) * weights.wa + (l_ba + r_ba) * weights.wb;
}

double raw_temporal_stretch_min(const cdr::TemporalExtent& a,
                                std::uint32_t na,
                                const cdr::TemporalExtent& b,
                                std::uint32_t nb) noexcept {
  return raw_temporal_stretch_min(a, b, pair_weights(na, nb));
}

SampleStretch sample_stretch(const cdr::Sample& a, const cdr::Sample& b,
                             PairWeights weights,
                             const StretchLimits& limits) noexcept {
  const double raw_sigma = raw_spatial_stretch_m(a.sigma, b.sigma, weights);
  const double raw_tau = raw_temporal_stretch_min(a.tau, b.tau, weights);
  // eq. 2-3: linear in the granularity loss, saturating at 1.
  const double phi_sigma = std::min(raw_sigma / limits.phi_max_sigma_m, 1.0);
  const double phi_tau = std::min(raw_tau / limits.phi_max_tau_min, 1.0);
  return SampleStretch{limits.w_sigma * phi_sigma, limits.w_tau * phi_tau};
}

SampleStretch sample_stretch(const cdr::Sample& a, std::uint32_t na,
                             const cdr::Sample& b, std::uint32_t nb,
                             const StretchLimits& limits) noexcept {
  return sample_stretch(a, b, pair_weights(na, nb), limits);
}

namespace {

/// One direction of eq. 10: match each sample of `outer` to the cheapest
/// sample of `inner`, averaging over `outer`.
double directed_stretch(const cdr::Fingerprint& outer,
                        const cdr::Fingerprint& inner,
                        const StretchLimits& limits) noexcept {
  // The population weights are constant across the whole fingerprint pair;
  // computing them once here instead of per sample pair keeps the inner
  // O(m_a * m_b) loop divide-free.
  const PairWeights weights =
      pair_weights(outer.group_size(), inner.group_size());
  const auto outer_samples = outer.samples();
  const auto inner_samples = inner.samples();
  double total = 0.0;
  for (const cdr::Sample& so : outer_samples) {
    double best = 2.0;  // delta is bounded by 1
    for (const cdr::Sample& si : inner_samples) {
      const double d = sample_stretch(so, si, weights, limits).total();
      if (d < best) best = d;
    }
    total += best;
  }
  return total / static_cast<double>(outer_samples.size());
}

}  // namespace

double fingerprint_stretch(const cdr::Fingerprint& a,
                           const cdr::Fingerprint& b,
                           const StretchLimits& limits) noexcept {
  // eq. 10: iterate over the longer fingerprint, matching each sample to
  // the cheapest sample of the shorter one.  The paper leaves the equal-
  // length case unspecified; we average both directions there so the
  // measure stays symmetric (a metric-like property the greedy pass and
  // the k-gap both rely on).
  if (a.empty() || b.empty()) return 0.0;
  if (a.size() > b.size()) return directed_stretch(a, b, limits);
  if (b.size() > a.size()) return directed_stretch(b, a, limits);
  return (directed_stretch(a, b, limits) + directed_stretch(b, a, limits)) /
         2.0;
}

}  // namespace glove::core
