// The anonymizability metrics of Sec. 4:
//
//   * sample stretch effort  delta_ab(i, j)   (eq. 1-9)  — the spatiotemporal
//     loss of accuracy required to merge two samples via generalization;
//   * fingerprint stretch effort  Delta_ab    (eq. 10)   — the average
//     per-sample effort to merge two whole fingerprints;
//   * k-gap  Delta_a^k                        (eq. 11)   — the average
//     effort to the k-1 nearest fingerprints (kgap.hpp).
//
// All efforts are normalized to [0, 1] by the spatial/temporal saturation
// thresholds phi_max (footnote 3: 20 km and 8 h, chosen so that ~0.5 km of
// spatial generalization weighs like ~15 min of temporal generalization).

#ifndef GLOVE_CORE_STRETCH_HPP
#define GLOVE_CORE_STRETCH_HPP

#include <cstdint>

#include "glove/cdr/fingerprint.hpp"
#include "glove/cdr/sample.hpp"

namespace glove::core {

/// Saturation thresholds and dimension weights of eq. 1-3.
struct StretchLimits {
  /// phi_max_sigma: spatial stretch (metres) above which information loss
  /// saturates at 1 (paper: 20 km).
  double phi_max_sigma_m = 20'000.0;
  /// phi_max_tau: temporal stretch (minutes) saturating at 1 (paper: 8 h).
  double phi_max_tau_min = 480.0;
  /// w_sigma, w_tau: dimension weights; the paper fixes both at 1/2 so that
  /// delta in eq. 1 stays within [0, 1].
  double w_sigma = 0.5;
  double w_tau = 0.5;
};

/// The two weighted components of a sample stretch effort:
/// spatial = w_sigma * phi_sigma, temporal = w_tau * phi_tau.
struct SampleStretch {
  double spatial = 0.0;
  double temporal = 0.0;

  /// delta_ab(i, j) of eq. 1.
  [[nodiscard]] constexpr double total() const noexcept {
    return spatial + temporal;
  }
};

/// Population weights of eq. 4/7 for one fingerprint pair.  They depend
/// only on the two group sizes, so hot loops that evaluate many sample
/// pairs of the same fingerprint pair (merge matching, eq. 10) compute
/// them once instead of per sample pair.
struct PairWeights {
  double wa = 0.5;
  double wb = 0.5;
};

[[nodiscard]] inline PairWeights pair_weights(std::uint32_t na,
                                              std::uint32_t nb) noexcept {
  const double n = static_cast<double>(na) + static_cast<double>(nb);
  return PairWeights{static_cast<double>(na) / n,
                     static_cast<double>(nb) / n};
}

/// Raw (unnormalized) spatial stretch phi*_sigma of eq. 4, in metres:
/// the population-weighted sum of left+right expansions each rectangle
/// needs to cover the other, along both axes.
[[nodiscard]] double raw_spatial_stretch_m(const cdr::SpatialExtent& a,
                                           const cdr::SpatialExtent& b,
                                           PairWeights weights) noexcept;
[[nodiscard]] double raw_spatial_stretch_m(const cdr::SpatialExtent& a,
                                           std::uint32_t na,
                                           const cdr::SpatialExtent& b,
                                           std::uint32_t nb) noexcept;

/// Raw temporal stretch phi*_tau of eq. 7, in minutes.
[[nodiscard]] double raw_temporal_stretch_min(const cdr::TemporalExtent& a,
                                              const cdr::TemporalExtent& b,
                                              PairWeights weights) noexcept;
[[nodiscard]] double raw_temporal_stretch_min(const cdr::TemporalExtent& a,
                                              std::uint32_t na,
                                              const cdr::TemporalExtent& b,
                                              std::uint32_t nb) noexcept;

/// Sample stretch effort delta_ab(i, j) (eq. 1-3) split into components,
/// with the per-group weights precomputed by the caller.
[[nodiscard]] SampleStretch sample_stretch(
    const cdr::Sample& a, const cdr::Sample& b, PairWeights weights,
    const StretchLimits& limits) noexcept;

/// Sample stretch effort delta_ab(i, j) (eq. 1-3) split into components.
/// `na` and `nb` are the group sizes of the fingerprints the samples belong
/// to (1 for not-yet-merged users).
[[nodiscard]] SampleStretch sample_stretch(
    const cdr::Sample& a, std::uint32_t na, const cdr::Sample& b,
    std::uint32_t nb, const StretchLimits& limits) noexcept;

/// Fingerprint stretch effort Delta_ab (eq. 10): for each sample of the
/// longer fingerprint, the minimum-effort sample of the shorter one;
/// averaged over the longer fingerprint.  Symmetric in its arguments.
/// Returns 0 when either fingerprint is empty (nothing left to anonymize).
[[nodiscard]] double fingerprint_stretch(const cdr::Fingerprint& a,
                                         const cdr::Fingerprint& b,
                                         const StretchLimits& limits) noexcept;

}  // namespace glove::core

#endif  // GLOVE_CORE_STRETCH_HPP
