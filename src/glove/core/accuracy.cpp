#include "glove/core/accuracy.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace glove::core {

namespace {

/// Weighted mean of `values` with matching `weights`.
double weighted_mean(const std::vector<double>& values,
                     const std::vector<double>& weights) {
  double total = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    total += values[i] * weights[i];
    weight += weights[i];
  }
  return weight > 0.0 ? total / weight : 0.0;
}

}  // namespace

AccuracyObservations measure_accuracy(const cdr::FingerprintDataset& data) {
  AccuracyObservations obs;
  const std::size_t samples = data.total_samples();
  obs.position_m.reserve(samples);
  obs.time_min.reserve(samples);
  obs.weight.reserve(samples);
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    const auto weight = static_cast<double>(fp.group_size());
    for (const cdr::Sample& s : fp.samples()) {
      obs.position_m.push_back(s.sigma.accuracy_m());
      obs.time_min.push_back(s.tau.accuracy_min());
      obs.weight.push_back(weight);
    }
  }
  return obs;
}

AccuracySummary summarize_accuracy(const AccuracyObservations& obs) {
  AccuracySummary summary;
  if (obs.empty()) return summary;
  const stats::EmpiricalCdf pos{obs.position_m, obs.weight};
  const stats::EmpiricalCdf time{obs.time_min, obs.weight};
  summary.mean_position_m = weighted_mean(obs.position_m, obs.weight);
  summary.median_position_m = pos.inverse(0.5);
  summary.q25_position_m = pos.inverse(0.25);
  summary.q75_position_m = pos.inverse(0.75);
  summary.mean_time_min = weighted_mean(obs.time_min, obs.weight);
  summary.median_time_min = time.inverse(0.5);
  summary.q25_time_min = time.inverse(0.25);
  summary.q75_time_min = time.inverse(0.75);
  return summary;
}

stats::EmpiricalCdf position_accuracy_cdf(const AccuracyObservations& obs) {
  return stats::EmpiricalCdf{obs.position_m, obs.weight};
}

stats::EmpiricalCdf time_accuracy_cdf(const AccuracyObservations& obs) {
  return stats::EmpiricalCdf{obs.time_min, obs.weight};
}

std::uint64_t count_uncovered_samples(
    const cdr::FingerprintDataset& original,
    const cdr::FingerprintDataset& anonymized) {
  // Map each user to its published (group) fingerprint.
  std::unordered_map<cdr::UserId, const cdr::Fingerprint*> published;
  published.reserve(anonymized.total_users());
  for (const cdr::Fingerprint& fp : anonymized.fingerprints()) {
    for (const cdr::UserId user : fp.members()) published[user] = &fp;
  }

  const auto covers = [](const cdr::Sample& outer, const cdr::Sample& inner) {
    // Containment with a small tolerance for floating-point unions.
    constexpr double eps = 1e-6;
    return outer.sigma.x <= inner.sigma.x + eps &&
           outer.sigma.x_end() + eps >= inner.sigma.x_end() &&
           outer.sigma.y <= inner.sigma.y + eps &&
           outer.sigma.y_end() + eps >= inner.sigma.y_end() &&
           outer.tau.t <= inner.tau.t + eps &&
           outer.tau.t_end() + eps >= inner.tau.t_end();
  };

  std::uint64_t uncovered = 0;
  for (const cdr::Fingerprint& fp : original.fingerprints()) {
    for (const cdr::UserId user : fp.members()) {
      const auto it = published.find(user);
      if (it == published.end()) {
        uncovered += fp.size();
        continue;
      }
      const cdr::Fingerprint& group = *it->second;
      for (const cdr::Sample& s : fp.samples()) {
        const bool found = std::any_of(
            group.samples().begin(), group.samples().end(),
            [&](const cdr::Sample& g) { return covers(g, s); });
        if (!found) ++uncovered;
      }
    }
  }
  return uncovered;
}

}  // namespace glove::core
