#include "glove/core/merge.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace glove::core {

cdr::Sample merge_samples(const cdr::Sample& a,
                          const cdr::Sample& b) noexcept {
  cdr::Sample m;
  // eq. 12: *_m = min(*_a, *_b); eq. 13: d*_m = max(end_a, end_b) - *_m.
  m.sigma.x = std::min(a.sigma.x, b.sigma.x);
  m.sigma.dx = std::max(a.sigma.x_end(), b.sigma.x_end()) - m.sigma.x;
  m.sigma.y = std::min(a.sigma.y, b.sigma.y);
  m.sigma.dy = std::max(a.sigma.y_end(), b.sigma.y_end()) - m.sigma.y;
  m.tau.t = std::min(a.tau.t, b.tau.t);
  m.tau.dt = std::max(a.tau.t_end(), b.tau.t_end()) - m.tau.t;
  m.contributors = a.contributors + b.contributors;
  return m;
}

std::vector<cdr::Sample> reshape_samples(std::vector<cdr::Sample> samples) {
  if (samples.size() < 2) return samples;
  std::sort(samples.begin(), samples.end(), cdr::by_time);
  std::vector<cdr::Sample> out;
  out.reserve(samples.size());
  out.push_back(samples.front());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (cdr::time_overlaps(out.back(), samples[i])) {
      out.back() = merge_samples(out.back(), samples[i]);
    } else {
      out.push_back(samples[i]);
    }
  }
  return out;
}

std::vector<cdr::Sample> suppress_samples(
    std::vector<cdr::Sample> samples, const SuppressionThresholds& thresholds,
    MergeStats* stats) {
  std::vector<cdr::Sample> kept;
  kept.reserve(samples.size());
  for (const cdr::Sample& s : samples) {
    const bool over_space =
        s.sigma.accuracy_m() > thresholds.max_spatial_extent_m;
    const bool over_time = s.tau.dt > thresholds.max_temporal_extent_min;
    if (over_space || over_time) {
      if (stats != nullptr) {
        stats->suppressed_original_samples += s.contributors;
        ++stats->suppressed_merged_samples;
      }
      continue;
    }
    kept.push_back(s);
  }
  return kept;
}

cdr::Fingerprint merge_fingerprints(const cdr::Fingerprint& a,
                                    const cdr::Fingerprint& b,
                                    const MergeOptions& options,
                                    MergeStats* stats) {
  const cdr::Fingerprint& longer = a.size() >= b.size() ? a : b;
  const cdr::Fingerprint& shorter = a.size() >= b.size() ? b : a;
  const std::uint32_t n_long = longer.group_size();
  const std::uint32_t n_short = shorter.group_size();
  const auto long_samples = longer.samples();
  const auto short_samples = shorter.samples();

  std::vector<cdr::UserId> members{longer.members().begin(),
                                   longer.members().end()};
  members.insert(members.end(), shorter.members().begin(),
                 shorter.members().end());

  // Degenerate inputs (a fingerprint emptied by suppression): the merged
  // fingerprint is whatever samples remain on the other side.
  if (long_samples.empty() || short_samples.empty()) {
    const auto& source = long_samples.empty() ? short_samples : long_samples;
    return cdr::Fingerprint{std::move(members),
                            {source.begin(), source.end()}};
  }

  // The population weights of eq. 4/7 depend only on the two group sizes:
  // they are cached here once per merged pair instead of being recomputed
  // for each of the O(m_a * m_b) sample pairs the two stages evaluate.
  const PairWeights long_to_short = pair_weights(n_long, n_short);
  const PairWeights short_to_long = pair_weights(n_short, n_long);

  // Stage 1: match each sample of the longer fingerprint to the
  // minimum-stretch sample of the shorter one; samples pointing at the same
  // target are unioned together with it (Fig. 6a, top).
  std::vector<cdr::Sample> merged{short_samples.begin(), short_samples.end()};
  std::vector<bool> target_used(short_samples.size(), false);
  for (const cdr::Sample& sl : long_samples) {
    std::size_t best_j = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < short_samples.size(); ++j) {
      const double d =
          sample_stretch(sl, short_samples[j], long_to_short, options.limits)
              .total();
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    merged[best_j] = merge_samples(merged[best_j], sl);
    target_used[best_j] = true;
    if (stats != nullptr) ++stats->sample_unions;
  }

  // Stage 2: shorter-fingerprint samples never chosen as a target are
  // matched against the stage-1 results (Fig. 6a, bottom).
  std::vector<cdr::Sample> result;
  result.reserve(short_samples.size());
  std::vector<std::size_t> unmatched;
  for (std::size_t j = 0; j < short_samples.size(); ++j) {
    if (target_used[j]) {
      result.push_back(merged[j]);
    } else {
      unmatched.push_back(j);
    }
  }
  if (result.empty()) {
    // No stage-1 target exists only if the longer fingerprint was empty,
    // handled above; defensively fall back to raw targets.
    result = std::move(merged);
    unmatched.clear();
  }
  for (const std::size_t j : unmatched) {
    const cdr::Sample& ss = short_samples[j];
    std::size_t best_i = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < result.size(); ++i) {
      const double d =
          sample_stretch(ss, result[i], short_to_long, options.limits)
              .total();
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    result[best_i] = merge_samples(result[best_i], ss);
    if (stats != nullptr) ++stats->sample_unions;
  }

  // Suppression applies to the outputs of eq. 12-13 *before* reshaping
  // (Sec. 7.1): dropping an over-stretched union early costs only its own
  // contributors and breaks the overlap chains that reshaping would
  // otherwise cascade into even coarser samples.
  if (options.suppression.has_value()) {
    result = suppress_samples(std::move(result), *options.suppression, stats);
  }
  if (options.reshape) {
    result = reshape_samples(std::move(result));
    if (options.suppression.has_value()) {
      // Reshaping unions overlapping samples and may re-exceed the
      // thresholds; a second pass keeps the published-extent guarantee.
      result =
          suppress_samples(std::move(result), *options.suppression, stats);
    }
  }

  return cdr::Fingerprint{std::move(members), std::move(result)};
}

}  // namespace glove::core
