// Accuracy accounting for anonymized datasets (Sec. 7): per-sample position
// and time accuracy, weighted by how many user records publish each sample,
// plus the summary rows reported in Tab. 2 and Figs. 7-11.

#ifndef GLOVE_CORE_ACCURACY_HPP
#define GLOVE_CORE_ACCURACY_HPP

#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/stats/stats.hpp"

namespace glove::core {

/// Per-sample accuracy observations over a published dataset.
///
/// Each published sample appears once per user record that carries it, so
/// `weight[i]` equals the group size of the fingerprint owning sample i.
/// Position accuracy is the side of the sample's bounding rectangle
/// (max(dx, dy), metres; 100 m = unchanged).  Time accuracy is the interval
/// length dt (minutes; 1 min = unchanged).
struct AccuracyObservations {
  std::vector<double> position_m;
  std::vector<double> time_min;
  std::vector<double> weight;

  [[nodiscard]] bool empty() const noexcept { return position_m.empty(); }
};

/// Extracts accuracy observations from a (typically anonymized) dataset.
[[nodiscard]] AccuracyObservations measure_accuracy(
    const cdr::FingerprintDataset& data);

/// Weighted accuracy summary: the Tab. 2 "mean position/time error" rows
/// plus the median and quartiles plotted in Figs. 9-11.
struct AccuracySummary {
  double mean_position_m = 0.0;
  double median_position_m = 0.0;
  double q25_position_m = 0.0;
  double q75_position_m = 0.0;
  double mean_time_min = 0.0;
  double median_time_min = 0.0;
  double q25_time_min = 0.0;
  double q75_time_min = 0.0;
};

[[nodiscard]] AccuracySummary summarize_accuracy(
    const AccuracyObservations& obs);

/// Weighted empirical CDF of position accuracy (Fig. 7 left, Fig. 8 left).
[[nodiscard]] stats::EmpiricalCdf position_accuracy_cdf(
    const AccuracyObservations& obs);

/// Weighted empirical CDF of time accuracy (Fig. 7 right, Fig. 8 right).
[[nodiscard]] stats::EmpiricalCdf time_accuracy_cdf(
    const AccuracyObservations& obs);

/// Checks record-level truthfulness (PPDP principle P2, Sec. 2.2): every
/// original sample of every user must be spatially and temporally contained
/// in some published sample of that user's group, unless it was suppressed.
/// `max_unaccounted` tolerates suppressed samples; pass the run's deleted
/// count.  Returns the number of original samples with no covering
/// published sample.
[[nodiscard]] std::uint64_t count_uncovered_samples(
    const cdr::FingerprintDataset& original,
    const cdr::FingerprintDataset& anonymized);

}  // namespace glove::core

#endif  // GLOVE_CORE_ACCURACY_HPP
