#include "glove/cdr/fingerprint.hpp"

#include <algorithm>
#include <stdexcept>

namespace glove::cdr {

Fingerprint::Fingerprint(UserId user, std::vector<Sample> samples)
    : members_{user}, samples_{std::move(samples)} {
  sort_samples();
}

Fingerprint::Fingerprint(std::vector<UserId> members,
                         std::vector<Sample> samples)
    : members_{std::move(members)}, samples_{std::move(samples)} {
  if (members_.empty()) {
    // glove-lint: allow(throw-context, in-memory value-type precondition;
    // deserializers re-anchor failures to the offending file)
    throw std::invalid_argument{"fingerprint needs at least one member"};
  }
  sort_samples();
}

Fingerprint Fingerprint::from_time_sorted(std::vector<UserId> members,
                                          std::vector<Sample> samples) {
  if (members.empty()) {
    // glove-lint: allow(throw-context, in-memory value-type precondition;
    // deserializers re-anchor failures to the offending file)
    throw std::invalid_argument{"fingerprint needs at least one member"};
  }
  Fingerprint fp;
  fp.members_ = std::move(members);
  fp.samples_ = std::move(samples);
  return fp;
}

UserId Fingerprint::representative() const {
  if (members_.empty()) {
    // glove-lint: allow(throw-context, in-memory value-type invariant; a
    // default-constructed fingerprint has no backing file)
    throw std::logic_error{"fingerprint has no members"};
  }
  return *std::min_element(members_.begin(), members_.end());
}

std::uint64_t Fingerprint::total_contributors() const noexcept {
  std::uint64_t total = 0;
  for (const Sample& s : samples_) total += s.contributors;
  return total;
}

void Fingerprint::sort_samples() {
  std::sort(samples_.begin(), samples_.end(), by_time);
}

void Fingerprint::absorb_members(const Fingerprint& other) {
  members_.insert(members_.end(), other.members_.begin(),
                  other.members_.end());
}

}  // namespace glove::cdr
