#include "glove/cdr/d4d.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "glove/util/csv.hpp"

namespace glove::cdr {

namespace {

/// Days from 2000-01-01 to the given civil date (proleptic Gregorian;
/// Howard Hinnant's algorithm rebased from the 1970 epoch).
long long days_from_civil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const long long era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const long long days_since_1970 = era * 146097 +
                                    static_cast<long long>(doe) - 719468;
  return days_since_1970 - 10957;  // 10957 days from 1970 to 2000
}

/// Civil date from days since 2000-01-01.
void civil_from_days(long long z, int& y, unsigned& m, unsigned& d) {
  z += 719468 + 10957;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned long long>(z - era * 146097);
  const auto yoe = static_cast<unsigned>(
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365);
  y = static_cast<int>(yoe) + static_cast<int>(era) * 400;
  const auto doy =
      static_cast<unsigned>(doe - (365ULL * yoe + yoe / 4 - yoe / 100));
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp < 10 ? mp + 3 : mp - 9;
  y += m <= 2;
}

int parse_component(std::string_view text, std::size_t begin,
                    std::size_t length, std::string_view what) {
  if (begin + length > text.size()) {
    // glove-lint: allow(throw-context, value-level timestamp parser; row
    // callers re-anchor with context and file wrappers add the path)
    throw std::invalid_argument{"truncated D4D timestamp: '" +
                                std::string{text} + "'"};
  }
  int value = 0;
  const char* first = text.data() + begin;
  const auto [ptr, ec] = std::from_chars(first, first + length, value);
  if (ec != std::errc{} || ptr != first + length) {
    // glove-lint: allow(throw-context, value-level timestamp parser; row
    // callers re-anchor with context and file wrappers add the path)
    throw std::invalid_argument{"bad " + std::string{what} +
                                " in D4D timestamp: '" + std::string{text} +
                                "'"};
  }
  return value;
}

}  // namespace

double parse_d4d_timestamp_min(std::string_view text) {
  // "YYYY-MM-DD HH:MM[:SS]"
  if (text.size() < 16 || text[4] != '-' || text[7] != '-' ||
      (text[10] != ' ' && text[10] != 'T') || text[13] != ':') {
    // glove-lint: allow(throw-context, value-level timestamp parser; row
    // callers re-anchor with context and file wrappers add the path)
    throw std::invalid_argument{"malformed D4D timestamp: '" +
                                std::string{text} + "'"};
  }
  const int year = parse_component(text, 0, 4, "year");
  const int month = parse_component(text, 5, 2, "month");
  const int day = parse_component(text, 8, 2, "day");
  const int hour = parse_component(text, 11, 2, "hour");
  const int minute = parse_component(text, 14, 2, "minute");
  int second = 0;
  if (text.size() >= 19) {
    if (text[16] != ':') {
      // glove-lint: allow(throw-context, value-level timestamp parser; row
      // callers re-anchor with context and file wrappers add the path)
      throw std::invalid_argument{"malformed D4D timestamp: '" +
                                  std::string{text} + "'"};
    }
    second = parse_component(text, 17, 2, "second");
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    // glove-lint: allow(throw-context, value-level timestamp parser; row
    // callers re-anchor with context and file wrappers add the path)
    throw std::invalid_argument{"out-of-range D4D timestamp: '" +
                                std::string{text} + "'"};
  }
  const long long days = days_from_civil(year, static_cast<unsigned>(month),
                                         static_cast<unsigned>(day));
  return static_cast<double>(days) * 1440.0 + hour * 60.0 + minute +
         second / 60.0;
}

std::string format_d4d_timestamp(double time_min) {
  const double floored = std::floor(time_min);
  auto total_minutes = static_cast<long long>(floored);
  long long days = total_minutes / 1440;
  long long in_day = total_minutes % 1440;
  if (in_day < 0) {
    in_day += 1440;
    --days;
  }
  int year = 0;
  unsigned month = 0;
  unsigned day = 0;
  civil_from_days(days, year, month, day);
  const auto seconds = static_cast<int>(
      std::min(std::round((time_min - floored) * 60.0), 59.0));
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%04d-%02u-%02u %02d:%02d:%02d", year,
                month, day, static_cast<int>(in_day / 60),
                static_cast<int>(in_day % 60), seconds);
  return std::string{buffer};
}

AntennaTable read_d4d_antennas(std::istream& in) {
  util::CsvReader reader{in};
  AntennaTable table;
  std::vector<std::string_view> fields;
  while (reader.next(fields)) {
    const std::string context =
        "D4D antenna row at line " + std::to_string(reader.line_number());
    if (fields.size() != 3) {
      throw std::invalid_argument{context + ": expected 3 fields"};
    }
    const long long id = util::parse_int(fields[0], context);
    const double lat = util::parse_double(fields[1], context);
    const double lon = util::parse_double(fields[2], context);
    if (!table.emplace(id, geo::LatLon{lat, lon}).second) {
      throw std::invalid_argument{context + ": duplicate antenna id " +
                                  std::to_string(id)};
    }
  }
  return table;
}

D4DTrace read_d4d_trace(std::istream& in, const AntennaTable& antennas) {
  util::CsvReader reader{in};
  D4DTrace trace;
  std::vector<std::string_view> fields;
  double earliest = std::numeric_limits<double>::infinity();
  std::vector<D4DRecord> records;
  while (reader.next(fields)) {
    const std::string context =
        "D4D trace row at line " + std::to_string(reader.line_number());
    if (fields.size() != 3) {
      throw std::invalid_argument{context + ": expected 3 fields"};
    }
    D4DRecord record;
    const long long user = util::parse_int(fields[0], context);
    if (user < 0) {
      throw std::invalid_argument{context + ": negative user id"};
    }
    record.user = static_cast<UserId>(user);
    try {
      record.time_min = parse_d4d_timestamp_min(fields[1]);
    } catch (const std::invalid_argument& e) {
      // The timestamp helpers are value-level; re-anchor their failures
      // to the offending row.
      throw std::invalid_argument{context + ": " + e.what()};
    }
    record.antenna = util::parse_int(fields[2], context);
    if (!antennas.contains(record.antenna)) {
      throw std::invalid_argument{context + ": unknown antenna id " +
                                  std::to_string(record.antenna)};
    }
    earliest = std::min(earliest, record.time_min);
    records.push_back(record);
  }
  if (records.empty()) return trace;

  // Rebase to the midnight on or before the earliest event so that day
  // boundaries stay aligned for diurnal analyses.
  trace.origin_min = std::floor(earliest / 1440.0) * 1440.0;
  trace.events.reserve(records.size());
  std::vector<bool> seen;
  std::size_t users = 0;
  for (const D4DRecord& record : records) {
    CdrEvent event;
    event.user = record.user;
    event.time_min = record.time_min - trace.origin_min;
    event.antenna = antennas.at(record.antenna);
    trace.events.push_back(event);
    if (record.user >= seen.size()) seen.resize(record.user + 1, false);
    if (!seen[record.user]) {
      seen[record.user] = true;
      ++users;
    }
  }
  trace.users = users;
  return trace;
}

AntennaTable read_d4d_antennas_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open for reading: " + path};
  try {
    return read_d4d_antennas(in);
  } catch (const std::invalid_argument& e) {
    // Same convention as cdr/io's with_path_context: parse errors from
    // the stream layer gain the offending file's path.
    throw std::invalid_argument{path + ": " + e.what()};
  }
}

D4DTrace read_d4d_trace_file(const std::string& path,
                             const AntennaTable& antennas) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open for reading: " + path};
  try {
    return read_d4d_trace(in, antennas);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument{path + ": " + e.what()};
  }
}

void write_d4d_trace(std::ostream& out,
                     const std::vector<D4DRecord>& records) {
  util::CsvWriter writer{out};
  writer.comment("D4D trace: user_id,timestamp,antenna_id");
  for (const D4DRecord& record : records) {
    writer.row({std::to_string(record.user),
                format_d4d_timestamp(record.time_min),
                std::to_string(record.antenna)});
  }
}

}  // namespace glove::cdr
