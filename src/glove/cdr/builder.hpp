// From raw CDR events to mobile fingerprints (Sec. 3 pipeline):
// project antenna coordinates with the Lambert azimuthal equal-area
// projection, discretize on a 100 m grid, round timestamps to the minute,
// group per user, and deduplicate identical samples.

#ifndef GLOVE_CDR_BUILDER_HPP
#define GLOVE_CDR_BUILDER_HPP

#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/geo/geo.hpp"

namespace glove::cdr {

/// One logged network event: a subscriber seen at an antenna at a time.
struct CdrEvent {
  UserId user = 0;
  double time_min = 0.0;  ///< minutes from the dataset epoch
  geo::LatLon antenna;    ///< antenna position (decimal degrees)
};

/// A CDR event already expressed in projected planar coordinates; useful
/// when the trace source works natively in metres (e.g. the synthesizer).
struct PlanarEvent {
  UserId user = 0;
  double time_min = 0.0;
  geo::PlanarPoint position;
};

/// Configuration of the fingerprint construction pipeline.
struct BuilderConfig {
  /// Projection origin; choose a point central to the covered region.
  geo::LatLon projection_origin{};
  /// Spatial discretization step (paper: 100 m).
  double grid_cell_m = 100.0;
  /// Temporal discretization step (paper: 1 min).
  double time_step_min = 1.0;
  /// Drop events that duplicate an existing sample of the same user
  /// (same grid cell and same minute).  Multiple network events within a
  /// minute at one antenna carry no extra trajectory information.
  bool deduplicate = true;
};

/// Builds a fingerprint dataset from geographic CDR events.
[[nodiscard]] FingerprintDataset build_fingerprints(
    const std::vector<CdrEvent>& events, const BuilderConfig& config);

/// Builds a fingerprint dataset from planar events (already projected).
[[nodiscard]] FingerprintDataset build_fingerprints(
    const std::vector<PlanarEvent>& events, const BuilderConfig& config);

}  // namespace glove::cdr

#endif  // GLOVE_CDR_BUILDER_HPP
