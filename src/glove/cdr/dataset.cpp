#include "glove/cdr/dataset.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "glove/util/rng.hpp"

namespace glove::cdr {

FingerprintDataset::FingerprintDataset(std::vector<Fingerprint> fingerprints,
                                       std::string name)
    : fingerprints_{std::move(fingerprints)}, name_{std::move(name)} {}

std::uint64_t FingerprintDataset::total_samples() const noexcept {
  std::uint64_t total = 0;
  for (const auto& fp : fingerprints_) total += fp.size();
  return total;
}

std::uint64_t FingerprintDataset::total_users() const noexcept {
  std::uint64_t total = 0;
  for (const auto& fp : fingerprints_) total += fp.group_size();
  return total;
}

double FingerprintDataset::mean_fingerprint_length() const noexcept {
  if (fingerprints_.empty()) return 0.0;
  return static_cast<double>(total_samples()) /
         static_cast<double>(fingerprints_.size());
}

FingerprintDataset::TimeSpan FingerprintDataset::time_span() const noexcept {
  if (fingerprints_.empty()) return {};
  double begin = std::numeric_limits<double>::infinity();
  double end = -std::numeric_limits<double>::infinity();
  for (const auto& fp : fingerprints_) {
    for (const Sample& s : fp.samples()) {
      begin = std::min(begin, s.tau.t);
      end = std::max(end, s.tau.t_end());
    }
  }
  if (begin > end) return {};
  return {begin, end};
}

FingerprintDataset filter_min_activity(const FingerprintDataset& data,
                                       double min_samples_per_day,
                                       double timespan_days) {
  if (!(timespan_days > 0.0)) {
    // glove-lint: allow(throw-context, in-memory dataset precondition; no
    // file is involved at this layer)
    throw std::invalid_argument{"timespan_days must be positive"};
  }
  std::vector<Fingerprint> kept;
  for (const auto& fp : data.fingerprints()) {
    const double per_day =
        static_cast<double>(fp.size()) / timespan_days;
    if (per_day >= min_samples_per_day) kept.push_back(fp);
  }
  return FingerprintDataset{std::move(kept), data.name() + "-screened"};
}

FingerprintDataset cut_time_window(const FingerprintDataset& data,
                                   double begin_min, double end_min) {
  if (!(end_min > begin_min)) {
    // glove-lint: allow(throw-context, in-memory dataset precondition; no
    // file is involved at this layer)
    throw std::invalid_argument{"empty time window"};
  }
  std::vector<Fingerprint> kept;
  for (const auto& fp : data.fingerprints()) {
    std::vector<Sample> inside;
    for (const Sample& s : fp.samples()) {
      if (s.tau.t >= begin_min && s.tau.t_end() <= end_min) {
        inside.push_back(s);
      }
    }
    if (inside.empty()) continue;
    kept.emplace_back(std::vector<UserId>{fp.members().begin(),
                                          fp.members().end()},
                      std::move(inside));
  }
  return FingerprintDataset{std::move(kept), data.name() + "-window"};
}

FingerprintDataset filter_geofence(const FingerprintDataset& data, double cx,
                                   double cy, double radius_m,
                                   double min_inside_fraction) {
  if (!(radius_m > 0.0)) {
    // glove-lint: allow(throw-context, in-memory dataset precondition; no
    // file is involved at this layer)
    throw std::invalid_argument{"geofence radius must be positive"};
  }
  const auto inside = [&](const Sample& s) {
    const double mx = s.sigma.x + s.sigma.dx / 2;
    const double my = s.sigma.y + s.sigma.dy / 2;
    return std::abs(mx - cx) <= radius_m && std::abs(my - cy) <= radius_m;
  };
  std::vector<Fingerprint> kept;
  for (const auto& fp : data.fingerprints()) {
    std::vector<Sample> in;
    for (const Sample& s : fp.samples()) {
      if (inside(s)) in.push_back(s);
    }
    if (in.empty() || fp.empty()) continue;
    const double fraction =
        static_cast<double>(in.size()) / static_cast<double>(fp.size());
    if (fraction < min_inside_fraction) continue;
    kept.emplace_back(std::vector<UserId>{fp.members().begin(),
                                          fp.members().end()},
                      std::move(in));
  }
  return FingerprintDataset{std::move(kept), data.name() + "-city"};
}

FingerprintDataset subsample_users(const FingerprintDataset& data,
                                   double fraction, std::uint64_t seed) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    // glove-lint: allow(throw-context, in-memory dataset precondition; no
    // file is involved at this layer)
    throw std::invalid_argument{"subsample fraction must be in (0, 1]"};
  }
  util::Xoshiro256 rng{seed};
  std::vector<Fingerprint> kept;
  for (const auto& fp : data.fingerprints()) {
    if (util::uniform01(rng) < fraction) kept.push_back(fp);
  }
  return FingerprintDataset{std::move(kept), data.name() + "-sub"};
}

}  // namespace glove::cdr
