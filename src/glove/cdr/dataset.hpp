// FingerprintDataset: the movement micro-data database of Tab. 1 — one
// mobile fingerprint per record — plus the dataset-level operations the
// paper's evaluation needs (activity filtering, time-window cuts, geofence
// subsets, user subsampling).

#ifndef GLOVE_CDR_DATASET_HPP
#define GLOVE_CDR_DATASET_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "glove/cdr/fingerprint.hpp"

namespace glove::cdr {

/// A database of mobile fingerprints.
class FingerprintDataset {
 public:
  FingerprintDataset() = default;
  explicit FingerprintDataset(std::vector<Fingerprint> fingerprints,
                              std::string name = {});

  [[nodiscard]] std::span<const Fingerprint> fingerprints() const noexcept {
    return fingerprints_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return fingerprints_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return fingerprints_.empty(); }
  [[nodiscard]] const Fingerprint& operator[](std::size_t i) const {
    return fingerprints_[i];
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add(Fingerprint fp) { fingerprints_.push_back(std::move(fp)); }

  /// Total number of samples across all fingerprints.
  [[nodiscard]] std::uint64_t total_samples() const noexcept;

  /// Total number of user records represented (sum of group sizes).
  [[nodiscard]] std::uint64_t total_users() const noexcept;

  /// Mean fingerprint length (n-bar of the complexity analysis, Sec. 6.3).
  [[nodiscard]] double mean_fingerprint_length() const noexcept;

  /// Time span [min sample start, max sample end] over the dataset, minutes.
  /// Returns {0, 0} when empty.
  struct TimeSpan {
    double begin_min = 0.0;
    double end_min = 0.0;
  };
  [[nodiscard]] TimeSpan time_span() const noexcept;

  [[nodiscard]] std::vector<Fingerprint>& mutable_fingerprints() noexcept {
    return fingerprints_;
  }

 private:
  std::vector<Fingerprint> fingerprints_;
  std::string name_;
};

/// Keeps only users with at least `min_samples_per_day` samples per day on
/// average — the preliminary screening applied to d4d-civ (Sec. 3).
/// `timespan_days` is the recording period length used for the average.
[[nodiscard]] FingerprintDataset filter_min_activity(
    const FingerprintDataset& data, double min_samples_per_day,
    double timespan_days);

/// Restricts every fingerprint to samples fully inside
/// [begin_min, end_min); users left with no samples are dropped.
/// Used by the Fig. 10 timespan sweep.
[[nodiscard]] FingerprintDataset cut_time_window(
    const FingerprintDataset& data, double begin_min, double end_min);

/// Keeps users whose fraction of samples within the axis-aligned box
/// centred at (cx, cy) with half-side `radius_m` is at least
/// `min_inside_fraction`, then drops their outside samples.  Models the
/// citywide abidjan/dakar subsets of Tab. 2.
[[nodiscard]] FingerprintDataset filter_geofence(
    const FingerprintDataset& data, double cx, double cy, double radius_m,
    double min_inside_fraction = 0.8);

/// Keeps a deterministic pseudo-random fraction of users (Fig. 11 sweep).
[[nodiscard]] FingerprintDataset subsample_users(
    const FingerprintDataset& data, double fraction, std::uint64_t seed);

}  // namespace glove::cdr

#endif  // GLOVE_CDR_DATASET_HPP
