#include "glove/cdr/builder.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace glove::cdr {

namespace {

/// Discretized event key used for deduplication: (cell, minute index).
struct SampleKey {
  geo::GridCell cell;
  long long minute;

  friend bool operator<(const SampleKey& a, const SampleKey& b) {
    if (a.cell.ix != b.cell.ix) return a.cell.ix < b.cell.ix;
    if (a.cell.iy != b.cell.iy) return a.cell.iy < b.cell.iy;
    return a.minute < b.minute;
  }
};

FingerprintDataset build_from_planar(const std::vector<PlanarEvent>& events,
                                     const BuilderConfig& config) {
  if (!(config.grid_cell_m > 0.0) || !(config.time_step_min > 0.0)) {
    // glove-lint: allow(throw-context, builder config precondition; no
    // file is involved at this layer)
    throw std::invalid_argument{"builder granularities must be positive"};
  }
  const geo::Grid grid{config.grid_cell_m};

  // Group events per user, discretizing as we go.
  std::map<UserId, std::map<SampleKey, Sample>> per_user;
  for (const PlanarEvent& ev : events) {
    const geo::GridCell cell = grid.cell_of(ev.position);
    const auto minute = static_cast<long long>(
        std::floor(ev.time_min / config.time_step_min));
    const SampleKey key{cell, minute};
    auto& samples = per_user[ev.user];
    if (config.deduplicate && samples.contains(key)) continue;
    const geo::PlanarPoint sw = grid.cell_origin(cell);
    Sample s;
    s.sigma = SpatialExtent{sw.x_m, config.grid_cell_m, sw.y_m,
                            config.grid_cell_m};
    s.tau = TemporalExtent{static_cast<double>(minute) * config.time_step_min,
                           config.time_step_min};
    samples.insert_or_assign(key, s);
  }

  std::vector<Fingerprint> fingerprints;
  fingerprints.reserve(per_user.size());
  for (auto& [user, samples] : per_user) {
    std::vector<Sample> list;
    list.reserve(samples.size());
    for (auto& [key, sample] : samples) list.push_back(sample);
    fingerprints.emplace_back(user, std::move(list));
  }
  return FingerprintDataset{std::move(fingerprints)};
}

}  // namespace

FingerprintDataset build_fingerprints(const std::vector<CdrEvent>& events,
                                      const BuilderConfig& config) {
  const geo::LambertAzimuthalEqualArea projection{config.projection_origin};
  std::vector<PlanarEvent> planar;
  planar.reserve(events.size());
  for (const CdrEvent& ev : events) {
    planar.push_back(
        PlanarEvent{ev.user, ev.time_min, projection.project(ev.antenna)});
  }
  return build_from_planar(planar, config);
}

FingerprintDataset build_fingerprints(const std::vector<PlanarEvent>& events,
                                      const BuilderConfig& config) {
  return build_from_planar(events, config);
}

}  // namespace glove::cdr
