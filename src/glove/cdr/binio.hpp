// glovebin: the binary columnar fingerprint-dataset format.
//
// The CSV dataset format re-parses every double on every pass, which makes
// ingest the bottleneck of streaming sharded runs (each shard batch and
// each reconcile budget rewinds the source).  glovebin stores the same
// dataset losslessly — exact little-endian IEEE doubles, fingerprints in
// file order, samples in each fingerprint's time-sorted order — plus a
// footer the streaming passes can exploit:
//
//   header   magic "glovebin", format version, writer block size
//   blocks   ~kGlovebinDefaultBlockFingerprints fingerprints each; a
//            fingerprint record is (member_count, sample_count, members,
//            samples), a sample is sigma (4 doubles) + tau (2 doubles) +
//            contributors
//   footer   per-fingerprint summaries (the exact core::fingerprint_bounds
//            geometry + group size + sample count — pass 1 of a sharded
//            run becomes a read of this table), then the block index
//            (offset/length/fingerprint range/min-max locality_sort_key/
//            merged bounds per block — rewound passes map only the blocks
//            that hold the fingerprints they need), then the dataset name
//   trailer  counts + footer offsets + magic again, fixed size at EOF
//
// The reader maps (or on non-POSIX platforms reads) one block range at a
// time, so consuming a glovebin file never costs address space
// proportional to the file — required by the ulimit-capped streaming CI
// gate — and counts blocks_read/bytes_mapped for the run report.

#ifndef GLOVE_CDR_BINIO_HPP
#define GLOVE_CDR_BINIO_HPP

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/cdr/fingerprint.hpp"

namespace glove::cdr {

inline constexpr std::uint32_t kGlovebinVersion = 1;

/// Fingerprints per block the writer targets by default.  Small enough
/// that a spatially random subset of a large dataset leaves many blocks
/// untouched (the block-seek fast path's win), large enough that the index
/// overhead stays below 1% of typical payloads.
inline constexpr std::uint32_t kGlovebinDefaultBlockFingerprints = 32;

/// The 8-byte magic leading (and trailing) every glovebin file.
[[nodiscard]] std::string_view glovebin_magic() noexcept;

/// True when the first bytes of `path` carry the glovebin magic.  False
/// for short, unreadable or non-glovebin files — the cheap sniff CLI
/// auto-detection uses before choosing a source.
[[nodiscard]] bool is_glovebin_file(const std::string& path);

/// Per-fingerprint footer entry: bit-exact copies of the
/// core::fingerprint_bounds fields (so an index-based planning pass
/// reproduces the streamed scan's geometry byte for byte) plus the group
/// size and sample count the scan also folds.
struct FingerprintSummary {
  double x = 0.0;   ///< bounding box west edge (SpatialExtent::x)
  double dx = 0.0;  ///< bounding box width
  double y = 0.0;   ///< bounding box south edge
  double dy = 0.0;  ///< bounding box height
  double t = 0.0;   ///< bounding interval start (TemporalExtent::t)
  double dt = 0.0;  ///< bounding interval length
  std::uint32_t group_size = 0;
  std::uint32_t sample_count = 0;
};

/// Block-index footer entry.
struct GlovebinBlock {
  std::uint64_t offset = 0;  ///< payload byte offset of the block
  std::uint64_t bytes = 0;   ///< payload byte length
  std::uint64_t first = 0;   ///< dataset index of the block's first fingerprint
  std::uint64_t count = 0;   ///< fingerprints in the block
  /// core::locality_sort_key range over the block's (non-empty)
  /// fingerprints — lets tile-aware consumers skip blocks whose key range
  /// cannot intersect theirs.
  std::uint64_t min_key = 0;
  std::uint64_t max_key = 0;
  /// Merged bounding geometry of the block's fingerprints.
  double x = 0.0, dx = 0.0, y = 0.0, dy = 0.0, t = 0.0, dt = 0.0;
};

/// Streaming glovebin writer: begin() once, write() per fingerprint,
/// finish() once.  Holds O(1 block) payload plus the growing footer
/// tables (56 B per fingerprint, 96 B per block).  Throws
/// std::runtime_error with the path on open or write failure — begin()
/// already flushes the header so an unwritable target fails at run start.
class GlovebinWriter {
 public:
  explicit GlovebinWriter(
      std::string path,
      std::uint32_t block_fingerprints = kGlovebinDefaultBlockFingerprints);

  /// Writes the header and records the dataset name for the footer.
  void begin(const std::string& dataset_name);

  /// Appends one fingerprint (samples in its stored, time-sorted order).
  void write(const Fingerprint& fingerprint);

  /// Flushes the last block, writes footer + trailer and validates the
  /// stream.  Call once, after the last fingerprint.
  void finish();

  [[nodiscard]] std::uint64_t fingerprints_written() const noexcept {
    return summaries_.size();
  }

 private:
  void flush_block();

  std::string path_;
  std::ofstream out_;
  std::uint32_t block_fingerprints_;
  std::string name_;
  bool begun_ = false;
  bool finished_ = false;
  std::string block_buf_;
  std::uint64_t block_count_ = 0;   ///< fingerprints in block_buf_
  std::uint64_t payload_offset_ = 0;
  GlovebinBlock pending_;           ///< metadata of the block being filled
  std::vector<FingerprintSummary> summaries_;
  std::vector<GlovebinBlock> blocks_;
};

/// Random-access glovebin reader.  Opening validates the header/trailer
/// and loads the footer (summaries, block index, name) into memory; block
/// payloads are mapped page-aligned per read_blocks() call and unmapped
/// after decoding, so peak address space stays O(largest requested block
/// range), never O(file).  Throws std::runtime_error with the path on
/// open/validation failure and on corrupt block payloads.
class GlovebinReader {
 public:
  explicit GlovebinReader(std::string path);
  ~GlovebinReader();

  GlovebinReader(const GlovebinReader&) = delete;
  GlovebinReader& operator=(const GlovebinReader&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& dataset_name() const noexcept {
    return name_;
  }
  [[nodiscard]] std::uint64_t fingerprint_count() const noexcept {
    return static_cast<std::uint64_t>(summaries_.size());
  }
  [[nodiscard]] std::uint64_t block_count() const noexcept {
    return static_cast<std::uint64_t>(blocks_.size());
  }
  [[nodiscard]] const std::vector<FingerprintSummary>& summaries()
      const noexcept {
    return summaries_;
  }
  [[nodiscard]] const std::vector<GlovebinBlock>& block_index()
      const noexcept {
    return blocks_;
  }

  /// Dataset index of the block holding fingerprint `id` (binary search
  /// over the index).
  [[nodiscard]] std::size_t block_of(std::uint64_t id) const;

  /// Decodes blocks [first_block, last_block) in file order, invoking
  /// `fn(fingerprint_index, fingerprint)` per fingerprint.  The range is
  /// mapped with one call, so callers batching consecutive blocks pay one
  /// mmap per run.  Fingerprints are reconstructed with
  /// Fingerprint::from_time_sorted — byte-identical to what the CSV path
  /// fed through the Fingerprint constructor when the file was written.
  void read_blocks(
      std::size_t first_block, std::size_t last_block,
      const std::function<void(std::uint64_t, Fingerprint&&)>& fn);

  /// Cumulative io accounting across read_blocks calls.
  [[nodiscard]] std::uint64_t blocks_read() const noexcept {
    return blocks_read_;
  }
  [[nodiscard]] std::uint64_t bytes_mapped() const noexcept {
    return bytes_mapped_;
  }

 private:
  std::string path_;
  std::string name_;
  std::vector<FingerprintSummary> summaries_;
  std::vector<GlovebinBlock> blocks_;
  std::uint64_t payload_begin_ = 0;
  std::uint64_t payload_end_ = 0;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t bytes_mapped_ = 0;
  int fd_ = -1;  ///< POSIX descriptor; -1 when using the stream fallback
};

/// Bulk conveniences mirroring the CSV pair: whole-dataset write/read.
/// write preserves each fingerprint's stored sample order; read returns
/// fingerprints in file order.  Both throw std::runtime_error with the
/// path on failure.
void write_dataset_glovebin_file(
    const std::string& path, const FingerprintDataset& data,
    std::uint32_t block_fingerprints = kGlovebinDefaultBlockFingerprints);
[[nodiscard]] FingerprintDataset read_dataset_glovebin_file(
    const std::string& path);

}  // namespace glove::cdr

#endif  // GLOVE_CDR_BINIO_HPP
