// The spatiotemporal sample: the unit of movement micro-data (Sec. 2.1).
//
// Following the paper's notation, a sample carries a spatial tuple
// sigma = (x, dx, y, dy) describing the bounding rectangle where the user
// was located, and a temporal tuple tau = (t, dt) meaning the user was in
// that rectangle at some point within [t, t + dt].  In an original (not yet
// generalized) dataset dx = dy = 100 m and dt = 1 min (Sec. 3).

#ifndef GLOVE_CDR_SAMPLE_HPP
#define GLOVE_CDR_SAMPLE_HPP

#include <algorithm>
#include <cstdint>

namespace glove::cdr {

/// Spatial component sigma = (x, dx, y, dy): the axis-aligned rectangle
/// [x, x+dx] x [y, y+dy] in projected metres.
struct SpatialExtent {
  double x = 0.0;   ///< west edge, metres
  double dx = 0.0;  ///< width, metres
  double y = 0.0;   ///< south edge, metres
  double dy = 0.0;  ///< height, metres

  [[nodiscard]] constexpr double x_end() const noexcept { return x + dx; }
  [[nodiscard]] constexpr double y_end() const noexcept { return y + dy; }
  /// Side of the bounding rectangle; the paper's "position accuracy".
  [[nodiscard]] constexpr double accuracy_m() const noexcept {
    return std::max(dx, dy);
  }

  friend constexpr bool operator==(const SpatialExtent&,
                                   const SpatialExtent&) = default;
};

/// Temporal component tau = (t, dt): the interval [t, t+dt] in minutes from
/// the dataset epoch.
struct TemporalExtent {
  double t = 0.0;   ///< interval start, minutes
  double dt = 0.0;  ///< interval length, minutes

  [[nodiscard]] constexpr double t_end() const noexcept { return t + dt; }
  /// Interval length; the paper's "time accuracy".
  [[nodiscard]] constexpr double accuracy_min() const noexcept { return dt; }

  friend constexpr bool operator==(const TemporalExtent&,
                                   const TemporalExtent&) = default;
};

/// One spatiotemporal sample of a mobile fingerprint.
struct Sample {
  SpatialExtent sigma;
  TemporalExtent tau;
  /// Number of original (pre-anonymization) samples this sample represents.
  /// 1 for raw data; grows when GLOVE merges samples.  Used to account for
  /// per-original-sample deletion statistics under suppression.
  std::uint32_t contributors = 1;

  friend constexpr bool operator==(const Sample&, const Sample&) = default;
};

/// Strict weak order by interval start time (merge and reshape operate on
/// time-sorted fingerprints).
[[nodiscard]] constexpr bool by_time(const Sample& a,
                                     const Sample& b) noexcept {
  if (a.tau.t != b.tau.t) return a.tau.t < b.tau.t;
  return a.tau.t_end() < b.tau.t_end();
}

/// True when the two samples' time intervals overlap (sharing more than a
/// single boundary instant), the condition triggering reshape (Fig. 6b).
[[nodiscard]] constexpr bool time_overlaps(const Sample& a,
                                           const Sample& b) noexcept {
  return a.tau.t < b.tau.t_end() && b.tau.t < a.tau.t_end();
}

}  // namespace glove::cdr

#endif  // GLOVE_CDR_SAMPLE_HPP
