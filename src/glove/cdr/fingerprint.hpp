// The mobile fingerprint: the complete set of spatiotemporal samples a
// subscriber leaves during the recording period (Sec. 2.1), plus the
// bookkeeping GLOVE needs when fingerprints are merged (group size n_a,
// member user ids).

#ifndef GLOVE_CDR_FINGERPRINT_HPP
#define GLOVE_CDR_FINGERPRINT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "glove/cdr/sample.hpp"

namespace glove::cdr {

using UserId = std::uint32_t;

/// A (possibly generalized) mobile fingerprint.
///
/// Invariants: samples are sorted by interval start time; `members()` lists
/// every user whose original fingerprint has been merged into this one and
/// `group_size() == members().size() >= 1`.
class Fingerprint {
 public:
  Fingerprint() = default;

  /// Fingerprint of a single user.  `samples` need not be pre-sorted.
  Fingerprint(UserId user, std::vector<Sample> samples);

  /// Fingerprint for an explicit member group (used by merge operations).
  Fingerprint(std::vector<UserId> members, std::vector<Sample> samples);

  /// Builds a fingerprint from samples already in time-sorted order,
  /// skipping the constructor's sort.  Deserializers that persisted
  /// `samples()` verbatim use this so re-sorting (std::sort is not stable)
  /// cannot permute time-tied samples and break byte-exact round-trips.
  [[nodiscard]] static Fingerprint from_time_sorted(
      std::vector<UserId> members, std::vector<Sample> samples);

  [[nodiscard]] std::span<const Sample> samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Number of subscribers hidden in this fingerprint (n_a in eq. 4/7;
  /// the `.k` counter of Alg. 1).
  [[nodiscard]] std::uint32_t group_size() const noexcept {
    return static_cast<std::uint32_t>(members_.size());
  }

  [[nodiscard]] std::span<const UserId> members() const noexcept {
    return members_;
  }

  /// Representative id: the smallest member id (stable across merges).
  [[nodiscard]] UserId representative() const;

  /// Sum of `contributors` across samples: how many original samples this
  /// fingerprint still represents.
  [[nodiscard]] std::uint64_t total_contributors() const noexcept;

  /// Mutable access used by anonymization algorithms; callers must keep the
  /// time-sorted invariant (use `sort_samples()` after bulk edits).
  [[nodiscard]] std::vector<Sample>& mutable_samples() noexcept {
    return samples_;
  }
  void sort_samples();

  /// Appends the member ids of `other` (merge bookkeeping).
  void absorb_members(const Fingerprint& other);

 private:
  std::vector<UserId> members_;
  std::vector<Sample> samples_;
};

}  // namespace glove::cdr

#endif  // GLOVE_CDR_FINGERPRINT_HPP
