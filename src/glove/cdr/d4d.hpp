// Loader for the Orange "Data for Development" (D4D) challenge file
// layout — the exact format of the datasets the paper evaluates on
// (Sec. 3), so that holders of the real traces can run this library
// unchanged:
//
//   * antenna file:  antenna_id,lat,lon            (SITE_ARR_LONLAT.CSV)
//   * trace file:    user_id,timestamp,antenna_id  (SET2/SET3 fine-grained
//                    mobility), timestamp formatted YYYY-MM-DD HH:MM:SS
//
// Events referencing unknown antennas are rejected (they indicate a
// mismatched antenna file).  Timestamps are converted to minutes from the
// first midnight on or before the earliest event, preserving the paper's
// 1-minute granularity.

#ifndef GLOVE_CDR_D4D_HPP
#define GLOVE_CDR_D4D_HPP

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "glove/cdr/builder.hpp"
#include "glove/geo/geo.hpp"

namespace glove::cdr {

/// Antenna registry: id -> geographic position.
using AntennaTable = std::unordered_map<long long, geo::LatLon>;

/// Reads a D4D antenna file ("antenna_id,lat,lon", '#' comments allowed).
[[nodiscard]] AntennaTable read_d4d_antennas(std::istream& in);

/// Parses "YYYY-MM-DD HH:MM[:SS]" into minutes since 2000-01-01 00:00
/// (proleptic Gregorian, no leap seconds, UTC assumed — offsets cancel
/// because only differences matter).  Throws std::invalid_argument on
/// malformed input.
[[nodiscard]] double parse_d4d_timestamp_min(std::string_view text);

/// Result of loading a D4D trace.
struct D4DTrace {
  std::vector<CdrEvent> events;  ///< time_min rebased to the trace start
  double origin_min = 0.0;       ///< absolute minutes of the rebased zero
  std::size_t users = 0;
};

/// Reads a D4D trace ("user_id,timestamp,antenna_id") against an antenna
/// table.  Events are rebased so the earliest midnight maps to t = 0
/// (keeping day boundaries aligned for the diurnal analyses).
[[nodiscard]] D4DTrace read_d4d_trace(std::istream& in,
                                      const AntennaTable& antennas);

/// File-path wrappers; throw std::runtime_error when a file cannot be
/// opened.
[[nodiscard]] AntennaTable read_d4d_antennas_file(const std::string& path);
[[nodiscard]] D4DTrace read_d4d_trace_file(const std::string& path,
                                           const AntennaTable& antennas);

/// One row of a D4D trace in its native reference system.
struct D4DRecord {
  UserId user = 0;
  double time_min = 0.0;  ///< minutes since 2000-01-01 00:00
  long long antenna = 0;
};

/// Writes records in the D4D trace layout ("user,YYYY-MM-DD HH:MM:SS,
/// antenna"); used by tests and to export the synthetic substrate in the
/// challenge's format.
void write_d4d_trace(std::ostream& out, const std::vector<D4DRecord>& records);

/// Formats minutes since 2000-01-01 as "YYYY-MM-DD HH:MM:SS" (inverse of
/// parse_d4d_timestamp_min; sub-minute part truncated).
[[nodiscard]] std::string format_d4d_timestamp(double time_min);

}  // namespace glove::cdr

#endif  // GLOVE_CDR_D4D_HPP
