#include "glove/cdr/io.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

#include "glove/util/csv.hpp"

namespace glove::cdr {

namespace {

std::string format_double(double v) {
  // Shortest round-trip form (std::to_chars): every double reparses to
  // the exact same bits, so write -> read -> write is idempotent.  The
  // previous 10-significant-digit ostream formatting silently drifted
  // generalized extents across chained file-to-file runs.
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof buffer, v);
  return std::string(buffer, result.ptr);
}

std::string join_members(std::span<const UserId> members) {
  std::string out;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) out += '+';
    out += std::to_string(members[i]);
  }
  return out;
}

std::vector<UserId> parse_members(std::string_view field,
                                  std::size_t line_no) {
  std::vector<UserId> members;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= field.size(); ++i) {
    if (i == field.size() || field[i] == '+') {
      const std::string_view part = field.substr(start, i - start);
      const long long id = util::parse_int(
          part, "members field at line " + std::to_string(line_no));
      if (id < 0) {
        // glove-lint: allow(throw-context, stream-level parse error; the
        // file wrappers rethrow with the path prefixed via
        // with_path_context)
        throw std::invalid_argument{"negative user id at line " +
                                    std::to_string(line_no)};
      }
      members.push_back(static_cast<UserId>(id));
      start = i + 1;
    }
  }
  if (members.empty()) {
    // glove-lint: allow(throw-context, stream-level parse error; file
    // wrappers rethrow with the path prefixed via with_path_context)
    throw std::invalid_argument{"empty members field at line " +
                                std::to_string(line_no)};
  }
  std::vector<UserId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  const auto duplicate = std::adjacent_find(sorted.begin(), sorted.end());
  if (duplicate != sorted.end()) {
    // glove-lint: allow(throw-context, stream-level parse error; file
    // wrappers rethrow with the path prefixed via with_path_context)
    throw std::invalid_argument{
        "duplicate user id " + std::to_string(*duplicate) +
        " in members field at line " + std::to_string(line_no)};
  }
  return members;
}

}  // namespace

void write_cdr_csv(std::ostream& out, const std::vector<CdrEvent>& events) {
  util::CsvWriter writer{out};
  writer.comment("glove CDR trace: user_id,time_min,lat_deg,lon_deg");
  for (const CdrEvent& ev : events) {
    writer.row({std::to_string(ev.user), format_double(ev.time_min),
                format_double(ev.antenna.lat_deg),
                format_double(ev.antenna.lon_deg)});
  }
}

namespace {

/// Decodes one split CDR row into `event`.  `context` already names the
/// offending path (when known) and line, so every failure here is
/// actionable without a wrapper.
void decode_cdr_row(const std::vector<std::string_view>& fields,
                    const std::string& context, CdrEvent& event) {
  if (fields.size() != 4) {
    throw std::invalid_argument{context + ": expected 4 fields, got " +
                                std::to_string(fields.size())};
  }
  const long long user = util::parse_int(fields[0], context);
  if (user < 0) {
    throw std::invalid_argument{context + ": negative user id"};
  }
  event.user = static_cast<UserId>(user);
  event.time_min = util::parse_double(fields[1], context);
  event.antenna.lat_deg = util::parse_double(fields[2], context);
  event.antenna.lon_deg = util::parse_double(fields[3], context);
}

}  // namespace

bool CdrEventReader::next(CdrEvent& event) {
  if (!reader_.next(fields_)) return false;
  const std::string context =
      (path_.empty() ? std::string{} : path_ + ": ") + "CDR row at line " +
      std::to_string(reader_.line_number());
  decode_cdr_row(fields_, context, event);
  return true;
}

bool CdrEventTailReader::source_replaced() const {
#if defined(__unix__) || defined(__APPLE__)
  struct ::stat st {};
  if (::stat(path_.c_str(), &st) != 0) {
    // Vanished mid-rotation: drop the handle now, start over once the
    // producer recreates the path.
    return true;
  }
  return static_cast<std::uint64_t>(st.st_ino) != inode_ ||
         static_cast<std::uint64_t>(st.st_size) < offset_;
#else
  // Without stat() only truncation is observable, not a same-size swap.
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path_, ec);
  return ec || static_cast<std::uint64_t>(size) < offset_;
#endif
}

bool CdrEventTailReader::poll(CdrEvent& event) {
  if (opened_ && source_replaced()) {
    in_.close();
    in_ = std::ifstream{};
    opened_ = false;
    offset_ = 0;
    line_no_ = 0;
  }
  if (!opened_) {
    in_.open(path_, std::ios::binary);
    if (!in_) {
      in_ = std::ifstream{};  // reset state so a later open can succeed
      return false;
    }
    opened_ = true;
    inode_ = 0;
#if defined(__unix__) || defined(__APPLE__)
    struct ::stat st {};
    if (::stat(path_.c_str(), &st) == 0) {
      inode_ = static_cast<std::uint64_t>(st.st_ino);
    }
#endif
  }
  for (;;) {
    // Re-seek to the first unconsumed byte: clears a sticky eofbit from
    // the previous poll and skips everything already decoded.
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset_));
    if (!std::getline(in_, line_) || in_.eof()) {
      // Nothing new, or bytes without a terminating newline — a row the
      // producer is mid-write on.  Leave offset_ at the row start so the
      // completed row is decoded whole on a later poll.
      return false;
    }
    offset_ += line_.size() + 1;  // +1 for the consumed '\n'
    ++line_no_;
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    const std::size_t text = line_.find_first_not_of(" \t");
    if (text == std::string::npos || line_[text] == '#') continue;
    fields_ = util::split_csv_line(line_);
    const std::string context =
        path_ + ": CDR row at line " + std::to_string(line_no_);
    decode_cdr_row(fields_, context, event);
    ++rows_;
    return true;
  }
}

std::vector<CdrEvent> read_cdr_csv(std::istream& in) {
  CdrEventReader reader{in};
  std::vector<CdrEvent> events;
  CdrEvent event;
  while (reader.next(event)) events.push_back(event);
  return events;
}

void DatasetStreamWriter::begin(const std::string& dataset_name) {
  writer_.comment("glove fingerprint dataset: " +
                  (dataset_name.empty() ? std::string{"unnamed"}
                                        : dataset_name));
  writer_.comment("members,x,dx,y,dy,t,dt,contributors");
  out_->flush();
  if (!*out_) {
    // glove-lint: allow(throw-context, the stream writer cannot name the
    // file; CsvFileSink::begin catches this and rethrows with the path)
    throw std::runtime_error{"failed writing dataset header"};
  }
}

void DatasetStreamWriter::write(const Fingerprint& fingerprint) {
  const std::string members = join_members(fingerprint.members());
  for (const Sample& s : fingerprint.samples()) {
    writer_.row({members, format_double(s.sigma.x), format_double(s.sigma.dx),
                 format_double(s.sigma.y), format_double(s.sigma.dy),
                 format_double(s.tau.t), format_double(s.tau.dt),
                 std::to_string(s.contributors)});
  }
}

void write_dataset_csv(std::ostream& out, const FingerprintDataset& data) {
  DatasetStreamWriter writer{out};
  writer.begin(data.name());
  for (const Fingerprint& fp : data.fingerprints()) writer.write(fp);
}

bool DatasetStreamReader::next_run(std::string& key,
                                   std::vector<UserId>& members,
                                   std::vector<Sample>& samples) {
  key.clear();
  members.clear();
  samples.clear();
  if (have_pending_) {
    key = std::move(pending_key_);
    members = std::move(pending_members_);
    samples = std::move(pending_samples_);
    have_pending_ = false;
  }
  while (reader_.next(fields_)) {
    const std::string context =
        "dataset row at line " + std::to_string(reader_.line_number());
    if (fields_.size() != 8) {
      throw std::invalid_argument{context + ": expected 8 fields, got " +
                                  std::to_string(fields_.size())};
    }
    Sample s;
    s.sigma.x = util::parse_double(fields_[1], context);
    s.sigma.dx = util::parse_double(fields_[2], context);
    s.sigma.y = util::parse_double(fields_[3], context);
    s.sigma.dy = util::parse_double(fields_[4], context);
    s.tau.t = util::parse_double(fields_[5], context);
    s.tau.dt = util::parse_double(fields_[6], context);
    const long long contributors = util::parse_int(fields_[7], context);
    if (contributors <= 0) {
      throw std::invalid_argument{context + ": contributors must be >= 1"};
    }
    s.contributors = static_cast<std::uint32_t>(contributors);

    if (members.empty()) {
      // First row of this run.
      key.assign(fields_[0]);
      members = parse_members(fields_[0], reader_.line_number());
      samples.push_back(s);
      continue;
    }
    if (key == fields_[0]) {
      samples.push_back(s);
      continue;
    }
    // A new key starts the next run; buffer its first row for later.
    pending_key_.assign(fields_[0]);
    pending_members_ = parse_members(fields_[0], reader_.line_number());
    pending_samples_.assign(1, s);
    have_pending_ = true;
    return true;
  }
  return !members.empty();
}

void DatasetStreamReader::rewind() {
  reader_.rewind();
  pending_key_.clear();
  pending_members_.clear();
  pending_samples_.clear();
  have_pending_ = false;
}

bool DatasetStreamReader::next(Fingerprint& fingerprint) {
  std::string key;
  std::vector<UserId> members;
  std::vector<Sample> samples;
  if (!next_run(key, members, samples)) return false;
  fingerprint = Fingerprint{std::move(members), std::move(samples)};
  return true;
}

FingerprintDataset read_dataset_csv(std::istream& in) {
  // Stream runs and coalesce non-contiguous runs of the same key,
  // preserving the first-seen group order (and the file's sample row
  // order within each group) of the historical whole-file reader.
  DatasetStreamReader reader{in};
  std::map<std::string, std::size_t> group_index;
  std::vector<std::vector<UserId>> group_members;
  std::vector<std::vector<Sample>> group_samples;
  std::string key;
  std::vector<UserId> members;
  std::vector<Sample> samples;
  while (reader.next_run(key, members, samples)) {
    auto [it, inserted] = group_index.try_emplace(key, group_members.size());
    if (inserted) {
      group_members.push_back(std::move(members));
      group_samples.push_back(std::move(samples));
    } else {
      std::vector<Sample>& existing = group_samples[it->second];
      existing.insert(existing.end(), samples.begin(), samples.end());
    }
  }
  std::vector<Fingerprint> fingerprints;
  fingerprints.reserve(group_members.size());
  for (std::size_t i = 0; i < group_members.size(); ++i) {
    fingerprints.emplace_back(std::move(group_members[i]),
                              std::move(group_samples[i]));
  }
  return FingerprintDataset{std::move(fingerprints)};
}

namespace {

/// Runs a parse callback, rethrowing its failures with the offending path
/// prefixed — parser messages carry the row's line number but not which
/// file it came from, which is what a caller juggling several traces
/// needs first.
template <typename Fn>
auto with_path_context(const std::string& path, Fn&& fn) {
  try {
    return std::forward<Fn>(fn)();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument{path + ": " + e.what()};
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

void require_writable(std::ostream& out, const std::string& path) {
  out.flush();
  if (!out) throw std::runtime_error{"failed writing: " + path};
}

}  // namespace

void write_cdr_file(const std::string& path,
                    const std::vector<CdrEvent>& events) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path};
  write_cdr_csv(out, events);
  require_writable(out, path);
}

std::vector<CdrEvent> read_cdr_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open for reading: " + path};
  return with_path_context(path, [&] { return read_cdr_csv(in); });
}

void write_dataset_file(const std::string& path,
                        const FingerprintDataset& data) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path};
  write_dataset_csv(out, data);
  require_writable(out, path);
}

std::string sniff_dataset_csv_name(const std::string& path) {
  std::ifstream in{path};
  if (!in) return {};
  std::string line;
  const std::string_view prefix{"# glove fingerprint dataset: "};
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] != '#') return {};  // data before the header comment
    if (line.size() > prefix.size() &&
        std::string_view{line}.substr(0, prefix.size()) == prefix) {
      return line.substr(prefix.size());
    }
  }
  return {};
}

FingerprintDataset read_dataset_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open for reading: " + path};
  return with_path_context(path, [&] { return read_dataset_csv(in); });
}

}  // namespace glove::cdr
