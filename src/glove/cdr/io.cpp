#include "glove/cdr/io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "glove/util/csv.hpp"

namespace glove::cdr {

namespace {

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(10);
  out << v;
  return out.str();
}

std::string join_members(std::span<const UserId> members) {
  std::string out;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) out += '+';
    out += std::to_string(members[i]);
  }
  return out;
}

std::vector<UserId> parse_members(std::string_view field,
                                  std::size_t line_no) {
  std::vector<UserId> members;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= field.size(); ++i) {
    if (i == field.size() || field[i] == '+') {
      const std::string_view part = field.substr(start, i - start);
      const long long id = util::parse_int(
          part, "members field at line " + std::to_string(line_no));
      if (id < 0) {
        throw std::invalid_argument{"negative user id at line " +
                                    std::to_string(line_no)};
      }
      members.push_back(static_cast<UserId>(id));
      start = i + 1;
    }
  }
  if (members.empty()) {
    throw std::invalid_argument{"empty members field at line " +
                                std::to_string(line_no)};
  }
  return members;
}

}  // namespace

void write_cdr_csv(std::ostream& out, const std::vector<CdrEvent>& events) {
  util::CsvWriter writer{out};
  writer.comment("glove CDR trace: user_id,time_min,lat_deg,lon_deg");
  for (const CdrEvent& ev : events) {
    writer.row({std::to_string(ev.user), format_double(ev.time_min),
                format_double(ev.antenna.lat_deg),
                format_double(ev.antenna.lon_deg)});
  }
}

std::vector<CdrEvent> read_cdr_csv(std::istream& in) {
  util::CsvReader reader{in};
  std::vector<CdrEvent> events;
  std::vector<std::string_view> fields;
  while (reader.next(fields)) {
    const std::string context =
        "CDR row at line " + std::to_string(reader.line_number());
    if (fields.size() != 4) {
      throw std::invalid_argument{context + ": expected 4 fields, got " +
                                  std::to_string(fields.size())};
    }
    CdrEvent ev;
    const long long user = util::parse_int(fields[0], context);
    if (user < 0) {
      throw std::invalid_argument{context + ": negative user id"};
    }
    ev.user = static_cast<UserId>(user);
    ev.time_min = util::parse_double(fields[1], context);
    ev.antenna.lat_deg = util::parse_double(fields[2], context);
    ev.antenna.lon_deg = util::parse_double(fields[3], context);
    events.push_back(ev);
  }
  return events;
}

void write_dataset_csv(std::ostream& out, const FingerprintDataset& data) {
  util::CsvWriter writer{out};
  writer.comment("glove fingerprint dataset: " +
                 (data.name().empty() ? std::string{"unnamed"} : data.name()));
  writer.comment("members,x,dx,y,dy,t,dt,contributors");
  for (const Fingerprint& fp : data.fingerprints()) {
    const std::string members = join_members(fp.members());
    for (const Sample& s : fp.samples()) {
      writer.row({members, format_double(s.sigma.x), format_double(s.sigma.dx),
                  format_double(s.sigma.y), format_double(s.sigma.dy),
                  format_double(s.tau.t), format_double(s.tau.dt),
                  std::to_string(s.contributors)});
    }
  }
}

FingerprintDataset read_dataset_csv(std::istream& in) {
  util::CsvReader reader{in};
  std::vector<std::string_view> fields;
  // Preserve first-seen order of groups.
  std::map<std::string, std::size_t> group_index;
  std::vector<std::vector<UserId>> group_members;
  std::vector<std::vector<Sample>> group_samples;
  while (reader.next(fields)) {
    const std::string context =
        "dataset row at line " + std::to_string(reader.line_number());
    if (fields.size() != 8) {
      throw std::invalid_argument{context + ": expected 8 fields, got " +
                                  std::to_string(fields.size())};
    }
    const std::string key{fields[0]};
    auto [it, inserted] = group_index.try_emplace(key, group_members.size());
    if (inserted) {
      group_members.push_back(parse_members(fields[0], reader.line_number()));
      group_samples.emplace_back();
    }
    Sample s;
    s.sigma.x = util::parse_double(fields[1], context);
    s.sigma.dx = util::parse_double(fields[2], context);
    s.sigma.y = util::parse_double(fields[3], context);
    s.sigma.dy = util::parse_double(fields[4], context);
    s.tau.t = util::parse_double(fields[5], context);
    s.tau.dt = util::parse_double(fields[6], context);
    const long long contributors = util::parse_int(fields[7], context);
    if (contributors <= 0) {
      throw std::invalid_argument{context + ": contributors must be >= 1"};
    }
    s.contributors = static_cast<std::uint32_t>(contributors);
    group_samples[it->second].push_back(s);
  }
  std::vector<Fingerprint> fingerprints;
  fingerprints.reserve(group_members.size());
  for (std::size_t i = 0; i < group_members.size(); ++i) {
    fingerprints.emplace_back(std::move(group_members[i]),
                              std::move(group_samples[i]));
  }
  return FingerprintDataset{std::move(fingerprints)};
}

void write_cdr_file(const std::string& path,
                    const std::vector<CdrEvent>& events) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path};
  write_cdr_csv(out, events);
}

std::vector<CdrEvent> read_cdr_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open for reading: " + path};
  return read_cdr_csv(in);
}

void write_dataset_file(const std::string& path,
                        const FingerprintDataset& data) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path};
  write_dataset_csv(out, data);
}

FingerprintDataset read_dataset_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open for reading: " + path};
  return read_dataset_csv(in);
}

}  // namespace glove::cdr
