// CSV I/O for CDR traces and fingerprint datasets.
//
// Two formats:
//   * raw CDR trace:      user_id, time_min, lat_deg, lon_deg
//   * fingerprint dataset: user ids ('+'-joined for merged groups), followed
//     by one row per sample: group_id, x, dx, y, dy, t, dt, contributors
// Both are plain comma-separated numeric files with '#' comments, mirroring
// the flat traces distributed by the D4D challenge.

#ifndef GLOVE_CDR_IO_HPP
#define GLOVE_CDR_IO_HPP

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "glove/cdr/builder.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/util/csv.hpp"

namespace glove::cdr {

/// Writes raw CDR events as CSV rows "user,time_min,lat,lon".
void write_cdr_csv(std::ostream& out, const std::vector<CdrEvent>& events);

/// Streaming CDR trace reader: decodes one event per data row, holding
/// O(1 row) memory, so traces larger than RAM can be consumed
/// incrementally (e.g. to feed shard inputs or the incremental strategy).
/// The bulk `read_cdr_csv` below is a thin collect-all wrapper over this.
class CdrEventReader {
 public:
  explicit CdrEventReader(std::istream& in) : reader_{in} {}

  /// Same, but malformed-row messages lead with `path` (the throw-context
  /// convention for cdr io), so a caller tailing several traces can tell
  /// which file held the bad row without wrapping the call.
  CdrEventReader(std::istream& in, std::string path)
      : reader_{in}, path_{std::move(path)} {}

  /// Decodes the next event.  Returns false at end of input; throws
  /// std::invalid_argument on malformed rows (prefixed with the path when
  /// one was given at construction).
  bool next(CdrEvent& event);

  /// Number of events returned so far.
  [[nodiscard]] std::size_t rows_read() const noexcept {
    return reader_.rows_read();
  }

 private:
  util::CsvReader reader_;
  std::vector<std::string_view> fields_;
  std::string path_;  ///< "" for anonymous streams (no prefix)
};

/// Resume/tail-friendly CDR reader for files another process is still
/// appending to (the glove-serve ingest path).  Unlike CdrEventReader it
/// owns the file handle and treats end-of-input as a transient condition:
///
///   * a missing file is "nothing yet" (poll returns false until it
///     appears), so the reader can be started before its producer;
///   * a partial trailing line — bytes after the last newline, i.e. a row
///     the producer is mid-write on — is NOT parsed: poll rewinds to the
///     row's start and returns false, and the completed row is decoded on
///     a later poll once its newline lands;
///   * truncation and rotation are detected per poll: when the file
///     shrinks below the consumed offset (a producer restarted the feed)
///     or the path points at a new inode (logrotate moved the old file
///     away), the reader reopens and consumes the new file from byte 0
///     instead of seeking past its end or tailing the renamed file
///     forever.  `rows_read()` stays cumulative across reopens;
///     `line_number()` restarts with the new file.
///
/// Malformed *complete* rows throw std::invalid_argument with the path and
/// line number prefixed.  Every poll re-seeks to the first unconsumed
/// byte, so the reader holds O(1 row) state between polls.
class CdrEventTailReader {
 public:
  explicit CdrEventTailReader(std::string path) : path_{std::move(path)} {}

  /// Decodes the next complete event if one is available.  Returns false
  /// when the file is missing, fully consumed, or ends in a partial row
  /// (retry later); true with `event` filled otherwise.
  bool poll(CdrEvent& event);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// True once the file has been successfully opened (it existed at some
  /// poll) — lets batch-mode callers distinguish "consumed to EOF" from
  /// "never appeared".
  [[nodiscard]] bool opened() const noexcept { return opened_; }

  /// Events returned so far.
  [[nodiscard]] std::size_t rows_read() const noexcept { return rows_; }

  /// 1-based number of the last fully consumed line (data or comment).
  [[nodiscard]] std::size_t line_number() const noexcept { return line_no_; }

 private:
  /// True when the file was truncated below offset_ or replaced by a new
  /// inode since the last poll; resets the reader to consume from byte 0.
  [[nodiscard]] bool source_replaced() const;

  std::string path_;
  std::ifstream in_;
  bool opened_ = false;
  std::uint64_t offset_ = 0;  ///< byte offset of the first unconsumed line
  std::uint64_t inode_ = 0;   ///< inode at open (0 where unsupported)
  std::size_t rows_ = 0;
  std::size_t line_no_ = 0;
  std::string line_;
  std::vector<std::string_view> fields_;
};

/// Reads raw CDR events; throws std::invalid_argument on malformed rows.
[[nodiscard]] std::vector<CdrEvent> read_cdr_csv(std::istream& in);

/// Writes a fingerprint dataset (possibly anonymized).  Each sample row is
/// "members,x,dx,y,dy,t,dt,contributors" where members is a '+'-joined list
/// of user ids sharing the (generalized) fingerprint.
void write_dataset_csv(std::ostream& out, const FingerprintDataset& data);

/// Streaming fingerprint writer: emits the dataset header once, then one
/// group at a time, producing byte-identical files to `write_dataset_csv`
/// (which is a thin loop over this) while holding O(1 group) memory — the
/// emit side of file-to-file anonymization runs.
class DatasetStreamWriter {
 public:
  explicit DatasetStreamWriter(std::ostream& out) : out_{&out}, writer_{out} {}

  /// Writes the two header comment lines.  Call once, before any group.
  /// Flushes and throws std::runtime_error when the stream rejects them,
  /// so an unwritable target fails at run start instead of surfacing at
  /// the first group — or never, for an empty result.
  void begin(const std::string& dataset_name);

  /// Appends one fingerprint's sample rows.
  void write(const Fingerprint& fingerprint);

 private:
  std::ostream* out_;
  util::CsvWriter writer_;
};

/// Streaming fingerprint reader: yields one fingerprint per contiguous
/// run of rows sharing a members key, holding O(1 fingerprint) memory.
/// Files written by `write_dataset_csv` keep each group's rows contiguous,
/// so streaming over them is lossless; inputs that interleave group rows
/// yield one fingerprint per run (the bulk `read_dataset_csv` coalesces
/// such runs and preserves the historical first-seen group order).
class DatasetStreamReader {
 public:
  explicit DatasetStreamReader(std::istream& in) : reader_{in} {}

  /// Reads the next fingerprint.  Returns false at end of input; throws
  /// std::invalid_argument on malformed rows.
  bool next(Fingerprint& fingerprint);

  /// Raw-run variant: the members key (e.g. "3+7"), parsed member ids and
  /// samples in file row order, without constructing a Fingerprint (and
  /// hence without its time-sort).  `read_dataset_csv` coalesces runs
  /// through this so its sample ordering stays byte-identical to the
  /// historical whole-file reader.
  bool next_run(std::string& key, std::vector<UserId>& members,
                std::vector<Sample>& samples);

  /// Restarts from the beginning of the stream, including after EOF, so
  /// two-pass consumers (shard planning, then shard materialization) can
  /// re-read the same seekable stream.  Throws std::runtime_error when the
  /// stream cannot seek.
  void rewind();

 private:
  util::CsvReader reader_;
  std::vector<std::string_view> fields_;
  std::string pending_key_;  ///< key of the buffered next run
  std::vector<UserId> pending_members_;
  std::vector<Sample> pending_samples_;
  bool have_pending_ = false;
};

/// Reads a fingerprint dataset written by `write_dataset_csv`.
[[nodiscard]] FingerprintDataset read_dataset_csv(std::istream& in);

/// The dataset name recorded in a fingerprint CSV's leading
/// "# glove fingerprint dataset: NAME" comment, or "" when the file has
/// no such header (or cannot be read) — lets format converters carry the
/// name across without parsing the data.  Note write_dataset_csv stores
/// "unnamed" for empty names.
[[nodiscard]] std::string sniff_dataset_csv_name(const std::string& path);

/// File-path convenience wrappers; throw std::runtime_error when the file
/// cannot be opened or written, and rethrow parse failures with the
/// offending path prefixed (row numbers are already in the parser
/// messages), so callers reading several files can tell which one failed.
void write_cdr_file(const std::string& path,
                    const std::vector<CdrEvent>& events);
[[nodiscard]] std::vector<CdrEvent> read_cdr_file(const std::string& path);
void write_dataset_file(const std::string& path,
                        const FingerprintDataset& data);
[[nodiscard]] FingerprintDataset read_dataset_file(const std::string& path);

}  // namespace glove::cdr

#endif  // GLOVE_CDR_IO_HPP
