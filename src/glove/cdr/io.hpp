// CSV I/O for CDR traces and fingerprint datasets.
//
// Two formats:
//   * raw CDR trace:      user_id, time_min, lat_deg, lon_deg
//   * fingerprint dataset: user ids ('+'-joined for merged groups), followed
//     by one row per sample: group_id, x, dx, y, dy, t, dt, contributors
// Both are plain comma-separated numeric files with '#' comments, mirroring
// the flat traces distributed by the D4D challenge.

#ifndef GLOVE_CDR_IO_HPP
#define GLOVE_CDR_IO_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "glove/cdr/builder.hpp"
#include "glove/cdr/dataset.hpp"

namespace glove::cdr {

/// Writes raw CDR events as CSV rows "user,time_min,lat,lon".
void write_cdr_csv(std::ostream& out, const std::vector<CdrEvent>& events);

/// Reads raw CDR events; throws std::invalid_argument on malformed rows.
[[nodiscard]] std::vector<CdrEvent> read_cdr_csv(std::istream& in);

/// Writes a fingerprint dataset (possibly anonymized).  Each sample row is
/// "members,x,dx,y,dy,t,dt,contributors" where members is a '+'-joined list
/// of user ids sharing the (generalized) fingerprint.
void write_dataset_csv(std::ostream& out, const FingerprintDataset& data);

/// Reads a fingerprint dataset written by `write_dataset_csv`.
[[nodiscard]] FingerprintDataset read_dataset_csv(std::istream& in);

/// File-path convenience wrappers; throw std::runtime_error when the file
/// cannot be opened.
void write_cdr_file(const std::string& path,
                    const std::vector<CdrEvent>& events);
[[nodiscard]] std::vector<CdrEvent> read_cdr_file(const std::string& path);
void write_dataset_file(const std::string& path,
                        const FingerprintDataset& data);
[[nodiscard]] FingerprintDataset read_dataset_file(const std::string& path);

}  // namespace glove::cdr

#endif  // GLOVE_CDR_IO_HPP
