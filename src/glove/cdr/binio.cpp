#include "glove/cdr/binio.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

// The writer stores each fingerprint's exact planning geometry in the
// footer so a sharded run's pass 1 can read the index instead of the
// payload.  Those values must be bit-identical to what the streamed scan
// computes, so they come from the same functions (core::scalability); the
// dependency lives in this .cpp only — binio.hpp stays a pure cdr header.
#include "glove/core/scalability.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define GLOVE_GLOVEBIN_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace glove::cdr {

namespace {

constexpr char kMagic[8] = {'g', 'l', 'o', 'v', 'e', 'b', 'i', 'n'};
constexpr std::uint64_t kHeaderBytes = 16;   // magic + version + block size
constexpr std::uint64_t kTrailerBytes = 48;  // 5 u64 + magic
constexpr std::uint64_t kSummaryBytes = 56;  // 6 f64 + 2 u32
constexpr std::uint64_t kBlockEntryBytes = 96;  // 6 u64 + 6 f64
constexpr std::uint64_t kSampleBytes = 52;      // 6 f64 + contributors

// Explicit little-endian byte assembly: endian-independent, and compilers
// lower it to single moves on little-endian hosts.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

double get_f64(const unsigned char* p) {
  return std::bit_cast<double>(get_u64(p));
}

void append_summary(std::string& out, const FingerprintSummary& s) {
  put_f64(out, s.x);
  put_f64(out, s.dx);
  put_f64(out, s.y);
  put_f64(out, s.dy);
  put_f64(out, s.t);
  put_f64(out, s.dt);
  put_u32(out, s.group_size);
  put_u32(out, s.sample_count);
}

void append_block(std::string& out, const GlovebinBlock& b) {
  put_u64(out, b.offset);
  put_u64(out, b.bytes);
  put_u64(out, b.first);
  put_u64(out, b.count);
  put_u64(out, b.min_key);
  put_u64(out, b.max_key);
  put_f64(out, b.x);
  put_f64(out, b.dx);
  put_f64(out, b.y);
  put_f64(out, b.dy);
  put_f64(out, b.t);
  put_f64(out, b.dt);
}

}  // namespace

std::string_view glovebin_magic() noexcept {
  return std::string_view{kMagic, sizeof kMagic};
}

bool is_glovebin_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  char head[sizeof kMagic];
  in.read(head, sizeof head);
  return in.gcount() == sizeof head &&
         std::memcmp(head, kMagic, sizeof kMagic) == 0;
}

// --- Writer -------------------------------------------------------------

GlovebinWriter::GlovebinWriter(std::string path,
                               std::uint32_t block_fingerprints)
    : path_{std::move(path)},
      out_{path_, std::ios::binary},
      block_fingerprints_{std::max<std::uint32_t>(block_fingerprints, 1)} {
  if (!out_) throw std::runtime_error{"cannot open for writing: " + path_};
}

void GlovebinWriter::begin(const std::string& dataset_name) {
  if (begun_) {
    throw std::logic_error{path_ + ": GlovebinWriter::begin called twice"};
  }
  begun_ = true;
  name_ = dataset_name;
  std::string header;
  header.append(kMagic, sizeof kMagic);
  put_u32(header, kGlovebinVersion);
  put_u32(header, block_fingerprints_);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();  // an unwritable target must fail at run start
  if (!out_) throw std::runtime_error{"failed writing: " + path_};
  payload_offset_ = kHeaderBytes;
}

void GlovebinWriter::write(const Fingerprint& fingerprint) {
  if (!begun_ || finished_) {
    throw std::logic_error{
        path_ + ": GlovebinWriter::write outside a begin/finish window"};
  }
  const core::FingerprintBounds bounds =
      core::fingerprint_bounds(fingerprint);
  FingerprintSummary summary;
  summary.x = bounds.box.x;
  summary.dx = bounds.box.dx;
  summary.y = bounds.box.y;
  summary.dy = bounds.box.dy;
  summary.t = bounds.interval.t;
  summary.dt = bounds.interval.dt;
  summary.group_size = fingerprint.group_size();
  summary.sample_count = static_cast<std::uint32_t>(fingerprint.size());

  if (block_count_ == 0) {
    pending_ = GlovebinBlock{};
    pending_.first = static_cast<std::uint64_t>(summaries_.size());
    pending_.min_key = std::numeric_limits<std::uint64_t>::max();
    pending_.max_key = 0;
  }
  if (!fingerprint.empty()) {
    // An empty fingerprint has infinite (empty-fold) bounds; keep it out
    // of the block's informational geometry and key range.
    const std::uint64_t key = core::locality_sort_key(bounds);
    if (pending_.min_key > pending_.max_key) {
      pending_.x = bounds.box.x;
      pending_.dx = bounds.box.dx;
      pending_.y = bounds.box.y;
      pending_.dy = bounds.box.dy;
      pending_.t = bounds.interval.t;
      pending_.dt = bounds.interval.dt;
    } else {
      const double x_hi = std::max(pending_.x + pending_.dx,
                                   bounds.box.x_end());
      const double y_hi = std::max(pending_.y + pending_.dy,
                                   bounds.box.y_end());
      const double t_hi = std::max(pending_.t + pending_.dt,
                                   bounds.interval.t_end());
      pending_.x = std::min(pending_.x, bounds.box.x);
      pending_.y = std::min(pending_.y, bounds.box.y);
      pending_.t = std::min(pending_.t, bounds.interval.t);
      pending_.dx = x_hi - pending_.x;
      pending_.dy = y_hi - pending_.y;
      pending_.dt = t_hi - pending_.t;
    }
    pending_.min_key = std::min(pending_.min_key, key);
    pending_.max_key = std::max(pending_.max_key, key);
  }
  summaries_.push_back(summary);

  put_u32(block_buf_, fingerprint.group_size());
  put_u32(block_buf_, summary.sample_count);
  for (const UserId member : fingerprint.members()) {
    put_u32(block_buf_, member);
  }
  for (const Sample& s : fingerprint.samples()) {
    put_f64(block_buf_, s.sigma.x);
    put_f64(block_buf_, s.sigma.dx);
    put_f64(block_buf_, s.sigma.y);
    put_f64(block_buf_, s.sigma.dy);
    put_f64(block_buf_, s.tau.t);
    put_f64(block_buf_, s.tau.dt);
    put_u32(block_buf_, s.contributors);
  }
  ++block_count_;
  if (block_count_ >= block_fingerprints_) flush_block();
}

void GlovebinWriter::flush_block() {
  if (block_count_ == 0) return;
  if (pending_.min_key > pending_.max_key) {
    // Block of empty fingerprints only: no key range to publish.
    pending_.min_key = 0;
    pending_.max_key = 0;
  }
  pending_.offset = payload_offset_;
  pending_.bytes = static_cast<std::uint64_t>(block_buf_.size());
  pending_.count = block_count_;
  blocks_.push_back(pending_);
  out_.write(block_buf_.data(),
             static_cast<std::streamsize>(block_buf_.size()));
  payload_offset_ += block_buf_.size();
  block_buf_.clear();
  block_count_ = 0;
}

void GlovebinWriter::finish() {
  if (!begun_) {
    throw std::logic_error{path_ + ": GlovebinWriter::finish before begin"};
  }
  if (finished_) return;
  finished_ = true;
  flush_block();

  std::string footer;
  const std::uint64_t summaries_offset = payload_offset_;
  for (const FingerprintSummary& s : summaries_) append_summary(footer, s);
  const std::uint64_t index_offset = summaries_offset + footer.size();
  for (const GlovebinBlock& b : blocks_) append_block(footer, b);
  const std::uint64_t name_offset = summaries_offset + footer.size();
  put_u32(footer, static_cast<std::uint32_t>(name_.size()));
  footer.append(name_);

  put_u64(footer, static_cast<std::uint64_t>(summaries_.size()));
  put_u64(footer, static_cast<std::uint64_t>(blocks_.size()));
  put_u64(footer, summaries_offset);
  put_u64(footer, index_offset);
  put_u64(footer, name_offset);
  footer.append(kMagic, sizeof kMagic);

  out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out_.flush();
  if (!out_) throw std::runtime_error{"failed writing: " + path_};
}

// --- Reader -------------------------------------------------------------

namespace {

[[noreturn]] void bad_file(const std::string& path, const std::string& what) {
  throw std::runtime_error{path + ": " + what};
}

}  // namespace

GlovebinReader::GlovebinReader(std::string path) : path_{std::move(path)} {
  std::uint64_t file_size = 0;
#ifdef GLOVE_GLOVEBIN_POSIX
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) bad_file(path_, "cannot open for reading");
  struct stat st{};
  if (::fstat(fd_, &st) != 0) bad_file(path_, "cannot stat");
  file_size = static_cast<std::uint64_t>(st.st_size);
  const auto read_exact = [&](std::uint64_t offset, std::uint64_t len,
                              void* dst) {
    std::uint64_t done = 0;
    while (done < len) {
      const ::ssize_t got =
          ::pread(fd_, static_cast<char*>(dst) + done, len - done,
                  static_cast<::off_t>(offset + done));
      if (got <= 0) bad_file(path_, "truncated read");
      done += static_cast<std::uint64_t>(got);
    }
  };
#else
  std::ifstream probe{path_, std::ios::binary | std::ios::ate};
  if (!probe) bad_file(path_, "cannot open for reading");
  file_size = static_cast<std::uint64_t>(probe.tellg());
  const auto read_exact = [&](std::uint64_t offset, std::uint64_t len,
                              void* dst) {
    probe.seekg(static_cast<std::streamoff>(offset));
    probe.read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
    if (static_cast<std::uint64_t>(probe.gcount()) != len) {
      bad_file(path_, "truncated read");
    }
  };
#endif

  if (file_size < kHeaderBytes + kTrailerBytes) {
    bad_file(path_, "not a glovebin file (too short)");
  }
  unsigned char header[kHeaderBytes];
  read_exact(0, kHeaderBytes, header);
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    bad_file(path_, "not a glovebin file (bad magic)");
  }
  const std::uint32_t version = get_u32(header + 8);
  if (version != kGlovebinVersion) {
    bad_file(path_, "unsupported glovebin version " +
                        std::to_string(version));
  }

  unsigned char trailer[kTrailerBytes];
  read_exact(file_size - kTrailerBytes, kTrailerBytes, trailer);
  if (std::memcmp(trailer + 40, kMagic, sizeof kMagic) != 0) {
    bad_file(path_, "corrupt glovebin trailer (bad magic)");
  }
  const std::uint64_t n = get_u64(trailer);
  const std::uint64_t m = get_u64(trailer + 8);
  const std::uint64_t summaries_offset = get_u64(trailer + 16);
  const std::uint64_t index_offset = get_u64(trailer + 24);
  const std::uint64_t name_offset = get_u64(trailer + 32);
  const std::uint64_t trailer_offset = file_size - kTrailerBytes;
  if (summaries_offset < kHeaderBytes || summaries_offset > index_offset ||
      index_offset > name_offset || name_offset + 4 > trailer_offset ||
      index_offset - summaries_offset != n * kSummaryBytes ||
      name_offset - index_offset != m * kBlockEntryBytes) {
    bad_file(path_, "corrupt glovebin trailer (inconsistent offsets)");
  }

  std::vector<unsigned char> footer(
      static_cast<std::size_t>(trailer_offset - summaries_offset));
  read_exact(summaries_offset, footer.size(), footer.data());
  const unsigned char* p = footer.data();

  summaries_.resize(static_cast<std::size_t>(n));
  for (FingerprintSummary& s : summaries_) {
    s.x = get_f64(p);
    s.dx = get_f64(p + 8);
    s.y = get_f64(p + 16);
    s.dy = get_f64(p + 24);
    s.t = get_f64(p + 32);
    s.dt = get_f64(p + 40);
    s.group_size = get_u32(p + 48);
    s.sample_count = get_u32(p + 52);
    p += kSummaryBytes;
  }

  blocks_.resize(static_cast<std::size_t>(m));
  std::uint64_t expected_first = 0;
  std::uint64_t previous_end = kHeaderBytes;
  for (GlovebinBlock& b : blocks_) {
    b.offset = get_u64(p);
    b.bytes = get_u64(p + 8);
    b.first = get_u64(p + 16);
    b.count = get_u64(p + 24);
    b.min_key = get_u64(p + 32);
    b.max_key = get_u64(p + 40);
    b.x = get_f64(p + 48);
    b.dx = get_f64(p + 56);
    b.y = get_f64(p + 64);
    b.dy = get_f64(p + 72);
    b.t = get_f64(p + 80);
    b.dt = get_f64(p + 88);
    p += kBlockEntryBytes;
    if (b.first != expected_first || b.count == 0 ||
        b.offset != previous_end || b.offset + b.bytes > summaries_offset) {
      bad_file(path_, "corrupt glovebin block index");
    }
    expected_first += b.count;
    previous_end = b.offset + b.bytes;
  }
  if (expected_first != n) {
    bad_file(path_, "corrupt glovebin block index (fingerprint count)");
  }

  const std::uint32_t name_len = get_u32(p);
  p += 4;
  if (name_offset + 4 + name_len != trailer_offset) {
    bad_file(path_, "corrupt glovebin trailer (name length)");
  }
  name_.assign(reinterpret_cast<const char*>(p), name_len);

  payload_begin_ = kHeaderBytes;
  payload_end_ = summaries_offset;
}

GlovebinReader::~GlovebinReader() {
#ifdef GLOVE_GLOVEBIN_POSIX
  if (fd_ >= 0) ::close(fd_);
#endif
}

std::size_t GlovebinReader::block_of(std::uint64_t id) const {
  if (id >= fingerprint_count()) {
    throw std::out_of_range{path_ + ": fingerprint id out of range"};
  }
  const auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), id,
      [](std::uint64_t value, const GlovebinBlock& b) {
        return value < b.first;
      });
  return static_cast<std::size_t>(it - blocks_.begin()) - 1;
}

void GlovebinReader::read_blocks(
    std::size_t first_block, std::size_t last_block,
    const std::function<void(std::uint64_t, Fingerprint&&)>& fn) {
  if (first_block >= last_block) return;
  if (last_block > blocks_.size()) {
    throw std::out_of_range{path_ + ": block range out of range"};
  }
  const std::uint64_t range_begin = blocks_[first_block].offset;
  const std::uint64_t range_end =
      blocks_[last_block - 1].offset + blocks_[last_block - 1].bytes;

  const unsigned char* base = nullptr;
  std::vector<unsigned char> buffer;  // non-mmap fallback
#ifdef GLOVE_GLOVEBIN_POSIX
  const std::uint64_t page =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t map_begin = range_begin & ~(page - 1);
  const std::uint64_t map_len = range_end - map_begin;
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(map_len), PROT_READ,
                        MAP_PRIVATE, fd_, static_cast<::off_t>(map_begin));
  if (mapped == MAP_FAILED) bad_file(path_, "mmap failed");
  base = static_cast<const unsigned char*>(mapped) +
         (range_begin - map_begin);
  bytes_mapped_ += map_len;
#else
  buffer.resize(static_cast<std::size_t>(range_end - range_begin));
  std::ifstream in{path_, std::ios::binary};
  if (!in) bad_file(path_, "cannot open for reading");
  in.seekg(static_cast<std::streamoff>(range_begin));
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(buffer.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != buffer.size()) {
    bad_file(path_, "truncated read");
  }
  base = buffer.data();
  bytes_mapped_ += buffer.size();
#endif

  try {
    for (std::size_t bi = first_block; bi < last_block; ++bi) {
      const GlovebinBlock& block = blocks_[bi];
      const unsigned char* cursor = base + (block.offset - range_begin);
      const unsigned char* end = cursor + block.bytes;
      const std::string context =
          path_ + ": corrupt glovebin block " + std::to_string(bi);
      for (std::uint64_t i = 0; i < block.count; ++i) {
        if (end - cursor < 8) throw std::invalid_argument{context};
        const std::uint32_t member_count = get_u32(cursor);
        const std::uint32_t sample_count = get_u32(cursor + 4);
        cursor += 8;
        const std::uint64_t need =
            std::uint64_t{member_count} * 4 +
            std::uint64_t{sample_count} * kSampleBytes;
        if (member_count == 0 ||
            static_cast<std::uint64_t>(end - cursor) < need) {
          throw std::invalid_argument{context};
        }
        std::vector<UserId> members;
        members.reserve(member_count);
        for (std::uint32_t j = 0; j < member_count; ++j) {
          members.push_back(get_u32(cursor));
          cursor += 4;
        }
        std::vector<Sample> samples;
        samples.resize(sample_count);
        for (Sample& s : samples) {
          s.sigma.x = get_f64(cursor);
          s.sigma.dx = get_f64(cursor + 8);
          s.sigma.y = get_f64(cursor + 16);
          s.sigma.dy = get_f64(cursor + 24);
          s.tau.t = get_f64(cursor + 32);
          s.tau.dt = get_f64(cursor + 40);
          s.contributors = get_u32(cursor + 48);
          if (s.contributors == 0) throw std::invalid_argument{context};
          cursor += kSampleBytes;
        }
        fn(block.first + i, Fingerprint::from_time_sorted(
                                std::move(members), std::move(samples)));
      }
      if (cursor != end) throw std::invalid_argument{context};
    }
  } catch (...) {
#ifdef GLOVE_GLOVEBIN_POSIX
    ::munmap(const_cast<unsigned char*>(base - (range_begin - map_begin)),
             static_cast<std::size_t>(map_len));
#endif
    blocks_read_ += last_block - first_block;
    throw;
  }
#ifdef GLOVE_GLOVEBIN_POSIX
  ::munmap(const_cast<unsigned char*>(base - (range_begin - map_begin)),
           static_cast<std::size_t>(map_len));
#endif
  blocks_read_ += last_block - first_block;
}

// --- Bulk conveniences ---------------------------------------------------

void write_dataset_glovebin_file(const std::string& path,
                                 const FingerprintDataset& data,
                                 std::uint32_t block_fingerprints) {
  GlovebinWriter writer{path, block_fingerprints};
  writer.begin(data.name());
  for (const Fingerprint& fp : data.fingerprints()) writer.write(fp);
  writer.finish();
}

FingerprintDataset read_dataset_glovebin_file(const std::string& path) {
  GlovebinReader reader{path};
  std::vector<Fingerprint> fingerprints;
  fingerprints.resize(static_cast<std::size_t>(reader.fingerprint_count()));
  reader.read_blocks(0, static_cast<std::size_t>(reader.block_count()),
                     [&](std::uint64_t id, Fingerprint&& fp) {
                       fingerprints[static_cast<std::size_t>(id)] =
                           std::move(fp);
                     });
  FingerprintDataset data{std::move(fingerprints)};
  data.set_name(reader.dataset_name());
  return data;
}

}  // namespace glove::cdr
