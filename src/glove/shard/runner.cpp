#include "glove/shard/runner.hpp"

#include <algorithm>

#include "glove/core/scalability.hpp"

namespace glove::shard {

namespace {

/// Above this many overlapped tiles the fingerprint is a wide wanderer
/// whose geometry spans a large part of the map; defer it outright rather
/// than enumerating cells.
constexpr std::size_t kMaxOverlappedCells = 4096;

}  // namespace

bool crosses_shard_border(const core::FingerprintBounds& bounds,
                          std::size_t home_shard, const ShardPlan& plan,
                          double tile_size_m, double halo_m) {
  const geo::Grid grid{tile_size_m};
  const geo::GridCell lo = grid.cell_of(geo::PlanarPoint{
      bounds.box.x - halo_m, bounds.box.y - halo_m});
  const geo::GridCell hi = grid.cell_of(geo::PlanarPoint{
      bounds.box.x_end() + halo_m, bounds.box.y_end() + halo_m});
  const auto span_x = static_cast<std::size_t>(hi.ix - lo.ix) + 1;
  const auto span_y = static_cast<std::size_t>(hi.iy - lo.iy) + 1;
  if (span_x * span_y > kMaxOverlappedCells) return true;
  for (std::int32_t ix = lo.ix; ix <= hi.ix; ++ix) {
    for (std::int32_t iy = lo.iy; iy <= hi.iy; ++iy) {
      const auto it = plan.shard_of_cell.find(geo::GridCell{ix, iy});
      // Unoccupied tiles hold no merge partners and are skipped.
      if (it != plan.shard_of_cell.end() && it->second != home_shard) {
        return true;
      }
    }
  }
  return false;
}

BorderSplit split_borders(const Tiling& tiling, const ShardPlan& plan,
                          const ShardConfig& config) {
  const std::size_t shard_count = plan.shards.size();
  BorderSplit split;
  split.kept.resize(shard_count);
  split.deferred.resize(shard_count);

  // A single shard has no borders; a shard whose kept set dropped below k
  // cannot run GLOVE and defers everything.
  const bool halo = config.border == BorderPolicy::kHalo && shard_count > 1;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const PlannedShard& shard = plan.shards[s];
    std::vector<std::uint32_t>& kept = split.kept[s];
    std::vector<std::uint32_t>& deferred = split.deferred[s];
    kept.reserve(shard.members.size());
    for (const std::uint32_t id : shard.members) {
      if (halo && crosses_shard_border(tiling.bounds[id], s, plan,
                                       tiling.tile_size_m, config.halo_m)) {
        deferred.push_back(id);
      } else {
        kept.push_back(id);
      }
    }
    if (kept.size() < config.glove.k) {
      deferred.insert(deferred.end(), kept.begin(), kept.end());
      std::sort(deferred.begin(), deferred.end());
      kept.clear();
    }
  }
  return split;
}

}  // namespace glove::shard
