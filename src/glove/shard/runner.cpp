#include "glove/shard/runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "glove/core/scalability.hpp"
#include "glove/util/parallel.hpp"
#include "glove/util/thread_pool.hpp"

namespace glove::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Above this many overlapped tiles the fingerprint is a wide wanderer
/// whose geometry spans a large part of the map; defer it outright rather
/// than enumerating cells.
constexpr std::size_t kMaxOverlappedCells = 4096;

}  // namespace

bool crosses_shard_border(const core::FingerprintBounds& bounds,
                          std::size_t home_shard, const ShardPlan& plan,
                          double tile_size_m, double halo_m) {
  const geo::Grid grid{tile_size_m};
  const geo::GridCell lo = grid.cell_of(geo::PlanarPoint{
      bounds.box.x - halo_m, bounds.box.y - halo_m});
  const geo::GridCell hi = grid.cell_of(geo::PlanarPoint{
      bounds.box.x_end() + halo_m, bounds.box.y_end() + halo_m});
  const auto span_x = static_cast<std::size_t>(hi.ix - lo.ix) + 1;
  const auto span_y = static_cast<std::size_t>(hi.iy - lo.iy) + 1;
  if (span_x * span_y > kMaxOverlappedCells) return true;
  for (std::int32_t ix = lo.ix; ix <= hi.ix; ++ix) {
    for (std::int32_t iy = lo.iy; iy <= hi.iy; ++iy) {
      const auto it = plan.shard_of_cell.find(geo::GridCell{ix, iy});
      // Unoccupied tiles hold no merge partners and are skipped.
      if (it != plan.shard_of_cell.end() && it->second != home_shard) {
        return true;
      }
    }
  }
  return false;
}

ShardRunOutcome run_shards(const cdr::FingerprintDataset& data,
                           const Tiling& tiling, const ShardPlan& plan,
                           const ShardConfig& config,
                           const util::RunHooks& hooks) {
  ShardRunOutcome outcome;
  const std::size_t shard_count = plan.shards.size();
  outcome.timings.resize(shard_count);

  // --- Serial kept/deferred split (determinism does not depend on the
  // worker count).  A single shard has no borders; a shard whose kept set
  // dropped below k cannot run GLOVE and defers everything.
  std::vector<std::vector<std::uint32_t>> kept(shard_count);
  const bool halo = config.border == BorderPolicy::kHalo && shard_count > 1;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const PlannedShard& shard = plan.shards[s];
    std::vector<std::uint32_t> deferred;
    kept[s].reserve(shard.members.size());
    for (const std::uint32_t id : shard.members) {
      if (halo && crosses_shard_border(tiling.bounds[id], s, plan,
                                       config.tile_size_m, config.halo_m)) {
        deferred.push_back(id);
      } else {
        kept[s].push_back(id);
      }
    }
    if (kept[s].size() < config.glove.k) {
      deferred.insert(deferred.end(), kept[s].begin(), kept[s].end());
      std::sort(deferred.begin(), deferred.end());
      kept[s].clear();
    }
    outcome.timings[s].shard = s;
    outcome.timings[s].input_fingerprints = kept[s].size();
    outcome.timings[s].deferred = deferred.size();
    for (const std::uint32_t id : deferred) {
      outcome.leftovers.push_back(data[id]);
    }
  }

  // --- Parallel shard execution on a dedicated scheduler pool.  Inner
  // loops (pair matrix, fresh-pair evaluation) still run on the shared
  // pool, so nesting cannot deadlock the scheduler.
  const std::uint64_t total_work = data.size() + 1;  // +1: reconciliation
  hooks.report(0, total_work);
  std::vector<core::GloveResult> results(shard_count);
  std::mutex progress_mutex;
  std::uint64_t done = 0;

  // workers == 0 follows the same default as the shared pool (GLOVE_THREADS
  // when set, else hardware concurrency), and the pool is never bigger than
  // the number of shards to run — a small plan on a big machine would
  // otherwise spawn mostly idle workers for 1-2 tasks.
  std::size_t requested = config.workers;
  if (requested == 0) {
    requested = util::ThreadPool::shared().size();
  }
  util::ThreadPool scheduler{
      std::min(std::max<std::size_t>(requested, 1), shard_count)};
  util::RunHooks inner;
  inner.cancel = hooks.cancel;
  util::parallel_for(
      scheduler, shard_count,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          hooks.throw_if_cancelled();
          if (kept[s].empty()) continue;
          const auto start = Clock::now();
          std::vector<cdr::Fingerprint> members;
          members.reserve(kept[s].size());
          for (const std::uint32_t id : kept[s]) members.push_back(data[id]);
          results[s] = core::anonymize_pruned(
              cdr::FingerprintDataset{std::move(members)}, config.glove,
              inner);
          outcome.timings[s].init_seconds = results[s].stats.init_seconds;
          outcome.timings[s].merge_seconds = results[s].stats.merge_seconds;
          outcome.timings[s].total_seconds = seconds_since(start);
          outcome.timings[s].output_groups = results[s].anonymized.size();
          const std::lock_guard lock{progress_mutex};
          done += kept[s].size();
          hooks.report(done, total_work);
        }
      },
      /*min_chunk=*/1);

  for (std::size_t s = 0; s < shard_count; ++s) {
    outcome.stats.accumulate_costs(results[s].stats);
    for (const cdr::Fingerprint& fp : results[s].anonymized.fingerprints()) {
      outcome.anonymized.push_back(fp);
    }
  }
  return outcome;
}

}  // namespace glove::shard
