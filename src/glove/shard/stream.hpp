// Streaming execution of the sharded backend: the run boundary for
// datasets larger than RAM.
//
//   pass 1  — scan the stream once, keeping only per-fingerprint bounding
//             geometry (+ group size): enough to tile, plan shards and
//             compute the kept/deferred border split without ever holding
//             the samples;
//   pass 2+ — rewind and re-scan once per shard batch, materializing only
//             the fingerprints of the shards currently running; finished
//             groups are pushed to the emitter as each batch completes
//             and freed immediately;
//   pass N+ — rewind once per reconciliation chunk batch: the deferred
//             border leftovers are partitioned into locality-sorted GLOVE
//             chunks from their pass-1 bounds alone and each pass
//             materializes one budget's worth (reconcile_chunk_users),
//             mirroring the shard batches.
//
// Peak sample memory is O(largest batch) — bounded by max_shard_users x
// scheduler workers for the shard phase and by reconcile_chunk_users for
// the halo reconciliation — instead of O(dataset) or O(borders).  The
// output is byte-identical to the in-memory pipeline (anonymize_sharded
// is now a thin wrapper over this core) for every budget, including the
// rare absorb-leftovers tail case, which falls back to buffering the
// output groups because absorption may rewrite any already-finalized
// group.

#ifndef GLOVE_SHARD_STREAM_HPP
#define GLOVE_SHARD_STREAM_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "glove/cdr/binio.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/shard/exec/executor.hpp"
#include "glove/shard/shard.hpp"
#include "glove/util/hooks.hpp"

namespace glove::shard {

/// Pull-based fingerprint stream the sharded backend consumes twice or
/// more.  `rewind()` must restart the sequence from the beginning (also
/// after EOF) and every pass must yield the same fingerprints in the same
/// order — the pipeline throws util::DatasetError when the count changes
/// between passes.
class FingerprintStream {
 public:
  virtual ~FingerprintStream() = default;

  /// Yields the next fingerprint.  Returns false at end of stream.
  virtual bool next(cdr::Fingerprint& fingerprint) = 0;

  /// Restarts from the first fingerprint.
  virtual void rewind() = 0;

  /// Zero-copy escape hatch: when the stream is backed by an already
  /// materialized dataset, returns it and the pipeline reads fingerprints
  /// by index (copying only the shard batches it runs, exactly like the
  /// pre-streaming runner) instead of re-streaming the whole sequence per
  /// batch.  Byte-identical output either way.  nullptr for true streams.
  [[nodiscard]] virtual const cdr::FingerprintDataset* materialized()
      const noexcept {
    return nullptr;
  }

  /// Index fast path for pass 1: when the stream carries precomputed
  /// per-fingerprint summaries (bit-exact core::fingerprint_bounds fields
  /// plus group size and sample count, in stream order), fills `out` and
  /// returns true so the planning scan never touches the payload.
  /// Default: unsupported.
  virtual bool summaries(std::vector<cdr::FingerprintSummary>& out) {
    (void)out;
    return false;
  }

  /// Index fast path for the rewound materialization passes: fetches
  /// exactly the fingerprints whose stream index keys `slot_of_id` into
  /// their mapped slots of `store` (pre-sized by the caller) and returns
  /// how many it materialized.  nullopt when the stream has no random
  /// access — the pipeline then re-streams the whole sequence.
  virtual std::optional<std::uint64_t> fetch(
      const std::unordered_map<std::uint32_t, std::uint32_t>& slot_of_id,
      std::vector<cdr::Fingerprint>& store) {
    (void)slot_of_id;
    (void)store;
    return std::nullopt;
  }

  /// Path of the file backing this stream, when there is one.  The
  /// process ShardExecutor hands it to its workers so each can re-read
  /// its shard slice through its own streaming front door; streams
  /// without a shared file (in-memory datasets) return nullopt and only
  /// support the in-process executor.
  [[nodiscard]] virtual std::optional<std::string> file_path() const {
    return std::nullopt;
  }
};

/// In-memory adapter: streams an existing dataset (copies on yield), the
/// bridge the legacy dataset-in/dataset-out API uses.
class DatasetStream final : public FingerprintStream {
 public:
  explicit DatasetStream(const cdr::FingerprintDataset& data) noexcept
      : data_{&data} {}

  bool next(cdr::Fingerprint& fingerprint) override {
    if (cursor_ >= data_->size()) return false;
    fingerprint = (*data_)[cursor_++];
    return true;
  }

  void rewind() override { cursor_ = 0; }

  [[nodiscard]] const cdr::FingerprintDataset* materialized()
      const noexcept override {
    return data_;
  }

 private:
  const cdr::FingerprintDataset* data_;
  std::size_t cursor_ = 0;
};

/// Receives finalized k-anonymous groups in output order.
using GroupEmitter = std::function<void(cdr::Fingerprint&&)>;

struct StreamShardedResult {
  ShardedStats stats;
  /// Per-shard sizes and wall-clock, in shard order.
  std::vector<ShardTiming> shard_timings;
  /// Fingerprints read from the stream on each pass (the planning scan,
  /// one entry per shard-batch materialization pass, then one per
  /// reconciliation chunk pass — stats.reconcile_passes counts those).
  /// A materialized() source is never re-streamed, so it reports the
  /// single scan pass.  An index-capable stream (fetch()) reports, for
  /// each rewound pass, only the fingerprints that pass materialized —
  /// strictly fewer than the scan's full count.  Under the process
  /// executor the shard batches are read worker-side, so only the
  /// planning and reconciliation passes appear here.
  std::vector<std::uint64_t> pass_fingerprints;
  /// Which ShardExecutor ran the shard batches ("inprocess", "process")
  /// and its resolved parallelism, for the run report's "exec" section.
  std::string exec_kind;
  std::uint64_t exec_workers = 0;
  /// Per-worker accounting (process executor only; empty otherwise).
  std::vector<exec::ExecWorkerStats> exec_worker_stats;
};

/// Runs the sharded pipeline over a restartable stream, emitting groups
/// to `emit` as they are finalized.  Requires glove.k >= 2, tile_size_m
/// >= 0 (0 = adaptive from observed anchor density), halo_m >= 0 and
/// max_shard_users >= glove.k (std::invalid_argument otherwise); a stream
/// holding fewer than k fingerprints raises util::DatasetError.
/// Deterministic for a given stream content and configuration,
/// independent of `workers` and of batch boundaries (shard and reconcile
/// budgets alike).  Progress units are input fingerprints — kept ones as
/// their shard completes, deferred ones as reconciliation consumes them —
/// plus one final reconcile tick; cancellation aborts with
/// util::CancelledError (groups already emitted stay with the emitter —
/// file sinks may hold a partial dataset on failure).
[[nodiscard]] StreamShardedResult anonymize_sharded_stream(
    FingerprintStream& source, const ShardConfig& config,
    const GroupEmitter& emit, const util::RunHooks& hooks = {});

}  // namespace glove::shard

#endif  // GLOVE_SHARD_STREAM_HPP
