// glove::shard — the spatially-sharded parallel anonymization backend.
//
//   tile -> plan -> run shards in parallel -> reconcile borders
//
// The quadratic costs of GLOVE (the |M|^2/2 candidate matrix and the
// greedy merge loop, paper Sec. 6.3) are confined to spatial shards of
// bounded size, so populations far beyond the single-matrix limit become
// tractable; shard jobs run concurrently on a dedicated worker pool.  The
// output is k-anonymous as a whole and byte-stable across worker counts.
// Registered with the Engine as strategy "sharded"; this header is the
// subsystem's front door for direct library use.

#ifndef GLOVE_SHARD_SHARD_HPP
#define GLOVE_SHARD_SHARD_HPP

#include <string>
#include <string_view>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/shard/config.hpp"
#include "glove/shard/exec/executor.hpp"
#include "glove/shard/planner.hpp"
#include "glove/shard/reconcile.hpp"
#include "glove/shard/runner.hpp"
#include "glove/shard/tiling.hpp"
#include "glove/util/hooks.hpp"

namespace glove::shard {

/// Decomposition and phase accounting of a sharded run, on top of the
/// aggregated inner GLOVE counters.
struct ShardedStats {
  core::GloveStats glove;
  std::size_t tiles = 0;
  std::size_t shards = 0;
  std::size_t deferred_fingerprints = 0;
  std::size_t reconciled_groups = 0;
  std::size_t absorbed_leftovers = 0;
  /// Rewound passes over the source spent materializing reconciliation
  /// chunks (streaming runs with a true — non-materialized — source only;
  /// 0 for in-memory runs, which fetch leftovers by index).
  std::size_t reconcile_passes = 0;
  /// Tile edge actually used: the configured tile_size_m, or the
  /// density-derived choice when the config asked for adaptive (0).
  double tile_size_m = 0.0;
  double plan_seconds = 0.0;       ///< streaming scan + tiling + planning
  double reconcile_seconds = 0.0;  ///< cross-shard reconciliation pass
};

struct ShardedResult {
  cdr::FingerprintDataset anonymized;
  ShardedStats stats;
  /// Per-shard sizes and wall-clock, in shard order.
  std::vector<ShardTiming> shard_timings;
  /// Executor echo (see StreamShardedResult): backend kind, resolved
  /// worker count, and per-worker rows when the backend reports them.
  std::string exec_kind;
  std::uint64_t exec_workers = 0;
  std::vector<exec::ExecWorkerStats> exec_worker_stats;
};

/// Canonical name of a sharded run's output dataset ("<base>-sharded-k<k>").
/// Shared by the in-memory wrapper and the streaming Engine strategy so
/// the two paths stay byte-identical down to the CSV header comment.
[[nodiscard]] std::string sharded_output_name(std::string_view base,
                                              std::uint32_t k);

/// Runs the sharded pipeline on an in-memory dataset (a thin wrapper over
/// the streaming core in stream.hpp).  Requires data.size() >= glove.k >=
/// 2, tile_size_m >= 0 (0 = adaptive), halo_m >= 0 and max_shard_users >=
/// glove.k (std::invalid_argument otherwise).  Deterministic for a given
/// input and configuration, independent of `workers` and of the shared
/// pool size.  Progress units are input fingerprints plus one
/// reconciliation unit; cancellation aborts with util::CancelledError and
/// no output.
[[nodiscard]] ShardedResult anonymize_sharded(
    const cdr::FingerprintDataset& data, const ShardConfig& config,
    const util::RunHooks& hooks = {});

}  // namespace glove::shard

#endif  // GLOVE_SHARD_SHARD_HPP
