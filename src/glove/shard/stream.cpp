#include "glove/shard/stream.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "glove/core/scalability.hpp"
#include "glove/obs/log.hpp"
#include "glove/obs/metrics.hpp"
#include "glove/obs/span.hpp"
#include "glove/shard/exec/executor.hpp"
#include "glove/shard/reconcile.hpp"
#include "glove/util/parallel.hpp"

namespace glove::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// What pass 1 keeps per fingerprint: bounding geometry for tiling and
/// the border split, group size for the leftover accounting — never the
/// samples.
struct StreamScan {
  std::vector<core::FingerprintBounds> bounds;
  std::vector<std::uint32_t> group_sizes;
  std::uint64_t users = 0;
  std::uint64_t samples = 0;
};

StreamScan scan_stream(FingerprintStream& source,
                       const util::RunHooks& hooks) {
  StreamScan scan;
  if (std::vector<cdr::FingerprintSummary> summaries;
      source.summaries(summaries)) {
    // Index-capable sources persisted the exact fingerprint_bounds
    // fields, so pass 1 is a footer read — no payload decode at all.
    scan.bounds.reserve(summaries.size());
    scan.group_sizes.reserve(summaries.size());
    for (const cdr::FingerprintSummary& s : summaries) {
      scan.bounds.push_back(core::FingerprintBounds{
          cdr::SpatialExtent{s.x, s.dx, s.y, s.dy},
          cdr::TemporalExtent{s.t, s.dt}});
      scan.group_sizes.push_back(s.group_size);
      scan.users += s.group_size;
      scan.samples += s.sample_count;
    }
    return scan;
  }
  if (const cdr::FingerprintDataset* data = source.materialized()) {
    // Materialized sources are scanned by index with parallel bounds
    // computation — the pre-streaming runner's exact setup, no copies.
    scan.bounds.resize(data->size());
    util::parallel_for(
        data->size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            scan.bounds[i] = core::fingerprint_bounds((*data)[i]);
          }
        },
        /*min_chunk=*/64);
    scan.group_sizes.reserve(data->size());
    for (const cdr::Fingerprint& fp : data->fingerprints()) {
      scan.group_sizes.push_back(fp.group_size());
    }
    scan.users = data->total_users();
    scan.samples = data->total_samples();
    return scan;
  }
  cdr::Fingerprint fp;
  while (source.next(fp)) {
    if ((scan.bounds.size() & 0x3FFu) == 0) hooks.throw_if_cancelled();
    scan.bounds.push_back(core::fingerprint_bounds(fp));
    scan.group_sizes.push_back(fp.group_size());
    scan.users += fp.group_size();
    scan.samples += fp.size();
  }
  return scan;
}

/// Re-reads the whole stream, materializing only the fingerprints whose
/// dataset index appears in `slot_of_id` (into `store`, slot-addressed).
/// Returns the number of fingerprints the pass yielded.
std::uint64_t materialize_pass(
    FingerprintStream& source,
    const std::unordered_map<std::uint32_t, std::uint32_t>& slot_of_id,
    std::vector<cdr::Fingerprint>& store, std::size_t expected,
    const util::RunHooks& hooks) {
  // Index-capable sources seek straight to the blocks holding the
  // requested fingerprints; the pass then "streamed" only those.
  if (const std::optional<std::uint64_t> fetched =
          source.fetch(slot_of_id, store)) {
    return *fetched;
  }
  source.rewind();
  cdr::Fingerprint fp;
  std::uint64_t index = 0;
  while (source.next(fp)) {
    if ((index & 0x3FFu) == 0) hooks.throw_if_cancelled();
    if (index < expected) {
      const auto it = slot_of_id.find(static_cast<std::uint32_t>(index));
      if (it != slot_of_id.end()) store[it->second] = std::move(fp);
    }
    ++index;
    if (index > expected) break;  // grew — diagnosed below
  }
  if (index != expected) {
    throw util::DatasetError{
        "streaming source yielded a different number of fingerprints after "
        "rewind (got " + std::to_string(index) +
        (index > expected ? "+" : "") + ", planned " +
        std::to_string(expected) + ")"};
  }
  return index;
}

}  // namespace

StreamShardedResult anonymize_sharded_stream(FingerprintStream& source,
                                             const ShardConfig& config,
                                             const GroupEmitter& emit,
                                             const util::RunHooks& hooks) {
  if (config.glove.k < 2) {
    throw std::invalid_argument{"GLOVE requires k >= 2"};
  }
  if (config.tile_size_m < 0.0) {
    throw std::invalid_argument{
        "sharded.tile_size_m must be positive (or 0 for adaptive)"};
  }
  if (config.halo_m < 0.0) {
    throw std::invalid_argument{"sharded.halo_m must be non-negative"};
  }
  if (config.max_shard_users < config.glove.k) {
    throw std::invalid_argument{"sharded.max_shard_users must be at least k"};
  }
  hooks.throw_if_cancelled();

  // Deterministic plane counters (counts only — they surface in the run
  // report's "obs" section); the per-shard counters live with the
  // executors that run the shards.
  static const obs::Counter c_batches = obs::counter("stream.shard_batches");
  static const obs::Counter c_chunks = obs::counter("stream.reconcile_chunks");

  StreamShardedResult result;

  // --- Pass 1: bounds-only scan, tile, plan, split borders.
  const auto plan_start = Clock::now();
  StreamScan scan;
  {
    GLOVE_SPAN_NAMED(pass1_span, "stream.pass1.scan");
    scan = scan_stream(source, hooks);
    pass1_span.arg("fingerprints", scan.bounds.size());
    pass1_span.arg("users", scan.users);
    pass1_span.arg("samples", scan.samples);
  }
  const std::size_t n = scan.bounds.size();
  result.pass_fingerprints.push_back(n);
  if (n == 0) throw util::DatasetError{"input dataset is empty"};
  if (n < config.glove.k) {
    throw util::DatasetError{
        "dataset smaller than the target anonymity level k"};
  }
  result.stats.glove.input_users = scan.users;
  result.stats.glove.input_samples = scan.samples;

  const Tiling tiling = [&] {
    GLOVE_SPAN("stream.plan");
    return build_tiling_from_bounds(std::move(scan.bounds),
                                    config.tile_size_m,
                                    config.max_shard_users);
  }();
  // Downstream phases (border test, reconcile chunking) read the resolved
  // tile size from the config they are handed.
  ShardConfig resolved = config;
  resolved.tile_size_m = tiling.tile_size_m;
  result.stats.tile_size_m = tiling.tile_size_m;

  const ShardPlan plan = ShardPlanner{resolved}.plan(tiling);
  const BorderSplit split = split_borders(tiling, plan, resolved);
  const std::size_t shard_count = plan.shards.size();
  result.stats.tiles = plan.tiles;
  result.stats.shards = shard_count;
  result.stats.plan_seconds = seconds_since(plan_start);
  hooks.throw_if_cancelled();

  result.shard_timings.resize(shard_count);
  std::size_t deferred_total = 0;
  std::size_t subk_deferred = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    result.shard_timings[s].shard = s;
    result.shard_timings[s].input_fingerprints = split.kept[s].size();
    result.shard_timings[s].deferred = split.deferred[s].size();
    deferred_total += split.deferred[s].size();
    for (const std::uint32_t id : split.deferred[s]) {
      if (scan.group_sizes[id] < resolved.glove.k) ++subk_deferred;
    }
  }
  result.stats.deferred_fingerprints = deferred_total;

  // Absorbing a sub-k tail (fewer than k deferred singles under
  // kMergeIntoNearest) rewrites the nearest already-finalized group, so
  // nothing may leave before reconciliation; that rare case buffers the
  // output groups instead of streaming them out (and materializes its
  // leftovers during the shard batch passes — they are at most k-1 sub-k
  // fingerprints plus the >=k pass-throughs).  Every other tail shape
  // only appends, so groups flow to the emitter as shards complete and
  // the deferred leftovers are materialized later, chunk by chunk, by the
  // streaming reconciliation passes.
  const bool buffered =
      resolved.glove.leftover_policy ==
          core::LeftoverPolicy::kMergeIntoNearest &&
      subk_deferred > 0 && subk_deferred < resolved.glove.k;

  std::uint64_t emitted_groups = 0;
  std::uint64_t emitted_samples = 0;
  std::vector<cdr::Fingerprint> held;  // buffered mode only
  const auto deliver = [&](cdr::Fingerprint&& fp) {
    if (buffered) {
      held.push_back(std::move(fp));
      return;
    }
    ++emitted_groups;
    emitted_samples += fp.size();
    emit(std::move(fp));
  };

  // --- Passes 2..: materialize and run contiguous shard batches through
  // the configured ShardExecutor.  The batch budget caps resident
  // fingerprints at roughly one shard per executor worker, which also
  // keeps the workers busy.
  const std::unique_ptr<exec::ShardExecutor> executor =
      exec::make_shard_executor(resolved, source.file_path(), n, shard_count);
  const std::size_t batch_budget = std::max<std::size_t>(
      resolved.max_shard_users * executor->workers(), 1);
  // Executors that re-read the source themselves (process pool) receive
  // the member ids only; the coordinator then materializes nothing for
  // the kept sets (the buffered tail still fetches its leftovers here).
  const bool local_inputs = !executor->reads_source();

  const std::uint64_t total_work = n + 1;  // +1: the final reconcile tick
  hooks.report(0, total_work);
  std::vector<cdr::Fingerprint> leftovers;  // buffered mode only
  if (buffered) leftovers.reserve(deferred_total);
  std::mutex progress_mutex;
  std::uint64_t done = 0;
  const cdr::FingerprintDataset* inmem = source.materialized();

  for (std::size_t first = 0; first < shard_count;) {
    // Close the batch before the budget breaks; a single oversized shard
    // still forms its own batch.  Deferred fingerprints ride along (and
    // count against the budget) only in buffered mode — the streaming
    // reconciliation materializes them in its own passes otherwise.
    std::size_t last = first;
    std::size_t batch_members = 0;
    while (last < shard_count) {
      std::size_t members = split.kept[last].size();
      if (buffered) members += split.deferred[last].size();
      if (last > first && batch_members + members > batch_budget) break;
      batch_members += members;
      ++last;
    }
    GLOVE_SPAN_NAMED(batch_span, "stream.shard_batch");
    batch_span.arg("first_shard", first);
    batch_span.arg("shards", last - first);
    batch_span.arg("members", batch_members);
    c_batches.add();
    if (obs::log_verbose()) {
      obs::log_info("stream.batch",
                    obs::log_kv("first_shard", first) + ' ' +
                        obs::log_kv("shards", last - first) + ' ' +
                        obs::log_kv("members", batch_members));
    }

    // Materialized sources hand fingerprints out by index (one copy per
    // batch member, as the pre-streaming runner did); true streams are
    // re-read whole, keeping only this batch's members.
    std::unordered_map<std::uint32_t, std::uint32_t> slot_of_id;
    std::vector<cdr::Fingerprint> store;
    if (inmem == nullptr && (local_inputs || buffered)) {
      slot_of_id.reserve(batch_members);
      std::uint32_t next_slot = 0;
      for (std::size_t s = first; s < last; ++s) {
        if (local_inputs) {
          for (const std::uint32_t id : split.kept[s]) {
            slot_of_id[id] = next_slot++;
          }
        }
        if (buffered) {
          for (const std::uint32_t id : split.deferred[s]) {
            slot_of_id[id] = next_slot++;
          }
        }
      }
      store.resize(next_slot);
      result.pass_fingerprints.push_back(
          materialize_pass(source, slot_of_id, store, n, hooks));
    }
    const auto fetch = [&](std::uint32_t id) -> cdr::Fingerprint {
      if (inmem != nullptr) return (*inmem)[id];
      return std::move(store[slot_of_id.at(id)]);
    };

    // Buffered leftovers keep their (shard, member) order across batches.
    if (buffered) {
      for (std::size_t s = first; s < last; ++s) {
        for (const std::uint32_t id : split.deferred[s]) {
          leftovers.push_back(fetch(id));
        }
      }
    }

    // Serialize the batch into shard jobs (empty kept sets run nothing
    // and keep their zeroed timing row) and hand it to the executor;
    // results come back in job = shard order.
    std::vector<exec::ShardJob> jobs;
    jobs.reserve(last - first);
    for (std::size_t s = first; s < last; ++s) {
      if (split.kept[s].empty()) continue;
      exec::ShardJob job;
      job.shard = s;
      job.member_ids = &split.kept[s];
      if (local_inputs) {
        job.inputs.reserve(split.kept[s].size());
        for (const std::uint32_t id : split.kept[s]) {
          job.inputs.push_back(fetch(id));
        }
      }
      jobs.push_back(std::move(job));
    }
    store.clear();
    store.shrink_to_fit();

    const exec::ShardResultFn on_result = [&](const exec::ShardResult& r) {
      const std::lock_guard lock{progress_mutex};
      done += r.timing.input_fingerprints;
      hooks.report(done, total_work);
    };
    std::vector<exec::ShardResult> batch_results =
        executor->run_batch(std::move(jobs), on_result, hooks);

    for (exec::ShardResult& r : batch_results) {
      result.stats.glove.accumulate_costs(r.stats);
      ShardTiming& timing = result.shard_timings[r.timing.shard];
      timing.init_seconds = r.timing.init_seconds;
      timing.merge_seconds = r.timing.merge_seconds;
      timing.total_seconds = r.timing.total_seconds;
      timing.output_groups = r.timing.output_groups;
      for (cdr::Fingerprint& fp : r.groups) {
        deliver(std::move(fp));
      }
    }
    first = last;
  }

  // --- Reconcile cross-shard leftovers.  Appended groups (deferred >= k
  // pass-throughs, then the chunked reconciliation output) trail the
  // shard groups exactly as in the buffered layout.
  hooks.throw_if_cancelled();
  GLOVE_SPAN_NAMED(reconcile_span, "stream.reconcile");
  reconcile_span.arg("deferred", deferred_total);
  if (buffered) {
    // Progress inside the reconcile is reported in leftover units; shift
    // it past the kept fingerprints already counted.
    const ReconcileStats reconcile = reconcile_leftovers(
        std::move(leftovers), held, resolved,
        util::subrange_hooks(hooks, done, deferred_total, total_work));
    result.stats.glove.accumulate_costs(reconcile.glove);
    result.stats.reconciled_groups = reconcile.reconciled_groups;
    result.stats.absorbed_leftovers = reconcile.absorbed;
    result.stats.reconcile_seconds = reconcile.seconds;
    for (cdr::Fingerprint& fp : held) {
      ++emitted_groups;
      emitted_samples += fp.size();
      emit(std::move(fp));
    }
  } else {
    // Streaming reconciliation: plan the whole phase from pass-1 residue
    // (per-fingerprint bounds kept by the tiling, group sizes from the
    // scan), then materialize one budget's worth of reconcile units per
    // rewound pass — the leftover analogue of the shard batches.  No
    // fingerprint is held before the pass that consumes it, so the
    // O(borders) term of the old whole-materialize reconcile is gone.
    const auto reconcile_start = Clock::now();
    ReconcileStats rstats;

    // Leftover ids in (shard, member) order — the exact sequence the
    // buffered path would materialize.
    std::vector<std::uint32_t> leftover_ids;
    leftover_ids.reserve(deferred_total);
    for (std::size_t s = 0; s < shard_count; ++s) {
      for (const std::uint32_t id : split.deferred[s]) {
        leftover_ids.push_back(id);
      }
    }
    std::vector<core::FingerprintBounds> leftover_bounds;
    std::vector<std::uint32_t> leftover_sizes;
    leftover_bounds.reserve(leftover_ids.size());
    leftover_sizes.reserve(leftover_ids.size());
    for (const std::uint32_t id : leftover_ids) {
      leftover_bounds.push_back(tiling.bounds[id]);
      leftover_sizes.push_back(scan.group_sizes[id]);
    }
    const ReconcilePlan rplan =
        plan_reconcile(leftover_bounds, leftover_sizes, resolved);

    // One pass materializes whole units in phase order: the >= k
    // pass-throughs, each GLOVE chunk, then the policy tail.  (The tail
    // here is suppress-only: a sub-k tail under kMergeIntoNearest took
    // the buffered branch above.)
    enum class UnitKind { kPassthrough, kChunk, kTail };
    struct Unit {
      UnitKind kind;
      const std::vector<std::uint32_t>* positions;
    };
    std::vector<Unit> units;
    units.reserve(rplan.chunks.size() + 2);
    if (!rplan.passthrough.empty()) {
      units.push_back({UnitKind::kPassthrough, &rplan.passthrough});
    }
    for (const std::vector<std::uint32_t>& chunk : rplan.chunks) {
      units.push_back({UnitKind::kChunk, &chunk});
    }
    if (!rplan.tail.empty()) {
      units.push_back({UnitKind::kTail, &rplan.tail});
    }
    const std::size_t reconcile_budget =
        resolved.reconcile_chunk_users > 0 ? resolved.reconcile_chunk_users
                                           : batch_budget;

    const std::function<void(cdr::Fingerprint&&)> emit_group = deliver;
    for (std::size_t first_u = 0; first_u < units.size();) {
      std::size_t last_u = first_u;
      std::size_t pass_members = 0;
      while (last_u < units.size()) {
        const std::size_t members = units[last_u].positions->size();
        if (last_u > first_u && pass_members + members > reconcile_budget) {
          break;
        }
        pass_members += members;
        ++last_u;
      }
      GLOVE_SPAN_NAMED(pass_span, "stream.reconcile.pass");
      pass_span.arg("units", last_u - first_u);
      pass_span.arg("members", pass_members);
      if (obs::log_verbose()) {
        obs::log_info("stream.reconcile",
                      obs::log_kv("units", last_u - first_u) + ' ' +
                          obs::log_kv("members", pass_members));
      }

      std::unordered_map<std::uint32_t, std::uint32_t> slot_of_id;
      std::vector<cdr::Fingerprint> store;
      if (inmem == nullptr) {
        slot_of_id.reserve(pass_members);
        store.resize(pass_members);
        std::uint32_t next_slot = 0;
        for (std::size_t u = first_u; u < last_u; ++u) {
          for (const std::uint32_t position : *units[u].positions) {
            slot_of_id[leftover_ids[position]] = next_slot++;
          }
        }
        result.pass_fingerprints.push_back(
            materialize_pass(source, slot_of_id, store, n, hooks));
        ++result.stats.reconcile_passes;
      }
      const auto fetch = [&](std::uint32_t id) -> cdr::Fingerprint {
        if (inmem != nullptr) return (*inmem)[id];
        return std::move(store[slot_of_id.at(id)]);
      };

      for (std::size_t u = first_u; u < last_u; ++u) {
        const Unit& unit = units[u];
        switch (unit.kind) {
          case UnitKind::kPassthrough: {
            for (const std::uint32_t position : *unit.positions) {
              deliver(fetch(leftover_ids[position]));
            }
            done += unit.positions->size();
            hooks.report(done, total_work);
            break;
          }
          case UnitKind::kChunk: {
            hooks.throw_if_cancelled();
            GLOVE_SPAN_NAMED(chunk_span, "stream.reconcile.chunk");
            chunk_span.arg("members", unit.positions->size());
            c_chunks.add();
            std::vector<cdr::Fingerprint> members;
            members.reserve(unit.positions->size());
            for (const std::uint32_t position : *unit.positions) {
              members.push_back(fetch(leftover_ids[position]));
            }
            reconcile_chunk(std::move(members), resolved, rstats, emit_group,
                            util::subrange_hooks(hooks, done,
                                                 unit.positions->size(),
                                                 total_work));
            done += unit.positions->size();
            hooks.report(done, total_work);
            break;
          }
          case UnitKind::kTail: {
            for (const std::uint32_t position : *unit.positions) {
              count_suppressed_leftover(fetch(leftover_ids[position]),
                                        rstats);
              hooks.report(++done, total_work);
            }
            break;
          }
        }
      }
      first_u = last_u;
    }

    result.stats.glove.accumulate_costs(rstats.glove);
    result.stats.reconciled_groups = rstats.reconciled_groups;
    result.stats.absorbed_leftovers = rstats.absorbed;
    result.stats.reconcile_seconds = seconds_since(reconcile_start);
  }

  result.stats.glove.output_groups = emitted_groups;
  result.stats.glove.output_samples = emitted_samples;
  result.exec_kind = std::string{executor->kind()};
  result.exec_workers = executor->workers();
  result.exec_worker_stats = executor->worker_stats();
  hooks.report(total_work, total_work);
  return result;
}

}  // namespace glove::shard
