// Border handling of the sharded backend: which fingerprints a shard
// anonymizes itself and which it defers to the cross-shard reconciliation
// pass, per the configured BorderPolicy.  Both decisions depend only on
// the per-fingerprint bounding geometry, never on the samples themselves,
// so the streaming pipeline computes the full split from its first
// (bounds-only) pass before any fingerprint is materialized.  Shard
// execution itself lives in stream.cpp (the batched two-pass runner that
// both the in-memory and the file-backed entry points share).

#ifndef GLOVE_SHARD_RUNNER_HPP
#define GLOVE_SHARD_RUNNER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "glove/shard/planner.hpp"

namespace glove::shard {

/// Wall-clock and size accounting of one shard job (surfaced in the
/// Engine's RunReport as the "shards" array).
struct ShardTiming {
  std::size_t shard = 0;
  std::size_t input_fingerprints = 0;  ///< anonymized inside this shard
  std::size_t deferred = 0;            ///< handed to reconciliation
  std::size_t output_groups = 0;
  double init_seconds = 0.0;
  double merge_seconds = 0.0;
  double total_seconds = 0.0;
};

/// True when `bounds`, inflated by `halo_m`, touches a tile owned by a
/// shard other than `home_shard` — the deferral test of
/// BorderPolicy::kHalo.  Exposed for tests.
[[nodiscard]] bool crosses_shard_border(const core::FingerprintBounds& bounds,
                                        std::size_t home_shard,
                                        const ShardPlan& plan,
                                        double tile_size_m, double halo_m);

/// The serial kept/deferred split of a plan: per shard, the fingerprints
/// it anonymizes itself and the ones handed to reconciliation (border
/// fingerprints under BorderPolicy::kHalo, or the whole shard when its
/// kept set would fall below k).  A single-shard plan has no borders.
/// Deterministic for a given tiling and plan, independent of workers.
struct BorderSplit {
  /// Per shard: dataset indices anonymized inside the shard, in planned
  /// member order.
  std::vector<std::vector<std::uint32_t>> kept;
  /// Per shard: dataset indices deferred to reconciliation (member order;
  /// sorted ascending when a collapsed shard defers everything).
  std::vector<std::vector<std::uint32_t>> deferred;
};

[[nodiscard]] BorderSplit split_borders(const Tiling& tiling,
                                        const ShardPlan& plan,
                                        const ShardConfig& config);

}  // namespace glove::shard

#endif  // GLOVE_SHARD_RUNNER_HPP
