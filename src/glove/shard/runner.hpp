// Per-shard execution: every planned shard runs the exact GLOVE pipeline
// (the lazy-lower-bound `anonymize_pruned` variant — byte-identical output
// to `full` on the same input) as an independent job on a dedicated worker
// pool, while the inner stretch loops keep using the shared pool like the
// non-sharded strategies.  Border fingerprints are split off first, per
// the configured BorderPolicy, and handed to the reconciliation pass.
//
// Determinism: shard jobs are data-independent and each is deterministic,
// results are concatenated in shard order, and the kept/deferred split is
// computed serially — so the output is byte-stable for any worker count.

#ifndef GLOVE_SHARD_RUNNER_HPP
#define GLOVE_SHARD_RUNNER_HPP

#include <cstddef>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/shard/planner.hpp"
#include "glove/util/hooks.hpp"

namespace glove::shard {

/// Wall-clock and size accounting of one shard job (surfaced in the
/// Engine's RunReport as the "shards" array).
struct ShardTiming {
  std::size_t shard = 0;
  std::size_t input_fingerprints = 0;  ///< anonymized inside this shard
  std::size_t deferred = 0;            ///< handed to reconciliation
  std::size_t output_groups = 0;
  double init_seconds = 0.0;
  double merge_seconds = 0.0;
  double total_seconds = 0.0;
};

struct ShardRunOutcome {
  /// k-anonymous groups produced by the shards, concatenated in shard
  /// order.
  std::vector<cdr::Fingerprint> anonymized;
  /// Fingerprints deferred to reconciliation, in (shard, member) order.
  std::vector<cdr::Fingerprint> leftovers;
  /// Aggregated inner GLOVE counters (merges, deleted samples, stretch
  /// evaluations, phase times summed across shards).
  core::GloveStats stats;
  std::vector<ShardTiming> timings;
};

/// True when `bounds`, inflated by `halo_m`, touches a tile owned by a
/// shard other than `home_shard` — the deferral test of
/// BorderPolicy::kHalo.  Exposed for tests.
[[nodiscard]] bool crosses_shard_border(const core::FingerprintBounds& bounds,
                                        std::size_t home_shard,
                                        const ShardPlan& plan,
                                        double tile_size_m, double halo_m);

/// Runs every planned shard.  Progress units are input fingerprints plus
/// one trailing unit reserved for reconciliation; cancellation is polled
/// between and inside shard jobs.
[[nodiscard]] ShardRunOutcome run_shards(const cdr::FingerprintDataset& data,
                                         const Tiling& tiling,
                                         const ShardPlan& plan,
                                         const ShardConfig& config,
                                         const util::RunHooks& hooks);

}  // namespace glove::shard

#endif  // GLOVE_SHARD_RUNNER_HPP
