// Spatial tiling of a fingerprint dataset: every fingerprint is anchored
// at its bounding-box centre and bucketed into the square grid tile
// containing that anchor.  Tiles are emitted in Morton (Z-curve) order of
// their cell coordinates so downstream packing keeps geographic neighbours
// together — the same locality idea as `chunked`, but on an explicit grid
// the border policy can reason about.

#ifndef GLOVE_SHARD_TILING_HPP
#define GLOVE_SHARD_TILING_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/core/scalability.hpp"
#include "glove/geo/geo.hpp"

namespace glove::shard {

/// One occupied tile: its grid cell and the fingerprints anchored in it
/// (dataset indices, ascending).
struct Tile {
  geo::GridCell cell;
  std::vector<std::uint32_t> members;
};

/// The tiling of one dataset.  The per-fingerprint bounds cache is kept
/// because the runner's border test reuses it (and merged-node bounds in
/// the per-shard pruned runs derive from the same computation).
struct Tiling {
  double tile_size_m = 0.0;
  /// Occupied tiles in Morton order of their cells (deterministic).
  std::vector<Tile> tiles;
  /// Per-fingerprint bounding geometry (index-aligned with the dataset).
  std::vector<core::FingerprintBounds> bounds;
};

/// Order-preserving Morton code of a grid cell (negative coordinates are
/// bias-mapped so the interleave stays monotone per axis).
[[nodiscard]] std::uint64_t morton_code(geo::GridCell cell) noexcept;

/// Adaptive tile edge from the observed anchor density: targets a
/// fingerprints-per-tile band derived from `max_shard_users` (several
/// tiles per shard, so the planner keeps packing granularity), assuming
/// anchors spread roughly evenly over their bounding extent.  The result
/// is clamped to [1 km, 200 km] and is deterministic in `bounds`; one
/// config thereby scales from citywide to nationwide datasets.  Falls
/// back to the 25 km default when the extent degenerates to a point.
[[nodiscard]] double choose_tile_size(
    std::span<const core::FingerprintBounds> bounds,
    std::size_t max_shard_users);

/// Builds the tiling from precomputed per-fingerprint bounds (the
/// streaming path's first pass), taking ownership of them.  tile_size_m
/// == 0 selects `choose_tile_size`; the size actually used is recorded in
/// Tiling::tile_size_m.  Deterministic single-threaded bookkeeping;
/// requires tile_size_m >= 0 (std::invalid_argument otherwise).
[[nodiscard]] Tiling build_tiling_from_bounds(
    std::vector<core::FingerprintBounds> bounds, double tile_size_m,
    std::size_t max_shard_users);

/// Builds the tiling of an in-memory dataset: computes bounds in parallel
/// on the shared pool, then delegates to `build_tiling_from_bounds`.
[[nodiscard]] Tiling build_tiling(const cdr::FingerprintDataset& data,
                                  double tile_size_m,
                                  std::size_t max_shard_users = 2'000);

}  // namespace glove::shard

#endif  // GLOVE_SHARD_TILING_HPP
