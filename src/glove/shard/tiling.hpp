// Spatial tiling of a fingerprint dataset: every fingerprint is anchored
// at its bounding-box centre and bucketed into the square grid tile
// containing that anchor.  Tiles are emitted in Morton (Z-curve) order of
// their cell coordinates so downstream packing keeps geographic neighbours
// together — the same locality idea as `chunked`, but on an explicit grid
// the border policy can reason about.

#ifndef GLOVE_SHARD_TILING_HPP
#define GLOVE_SHARD_TILING_HPP

#include <cstdint>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/core/scalability.hpp"
#include "glove/geo/geo.hpp"

namespace glove::shard {

/// One occupied tile: its grid cell and the fingerprints anchored in it
/// (dataset indices, ascending).
struct Tile {
  geo::GridCell cell;
  std::vector<std::uint32_t> members;
};

/// The tiling of one dataset.  The per-fingerprint bounds cache is kept
/// because the runner's border test reuses it (and merged-node bounds in
/// the per-shard pruned runs derive from the same computation).
struct Tiling {
  double tile_size_m = 0.0;
  /// Occupied tiles in Morton order of their cells (deterministic).
  std::vector<Tile> tiles;
  /// Per-fingerprint bounding geometry (index-aligned with the dataset).
  std::vector<core::FingerprintBounds> bounds;
};

/// Order-preserving Morton code of a grid cell (negative coordinates are
/// bias-mapped so the interleave stays monotone per axis).
[[nodiscard]] std::uint64_t morton_code(geo::GridCell cell) noexcept;

/// Builds the tiling.  Bounds are computed in parallel on the shared
/// pool; everything else is deterministic single-threaded bookkeeping.
/// Requires tile_size_m > 0 (std::invalid_argument otherwise).
[[nodiscard]] Tiling build_tiling(const cdr::FingerprintDataset& data,
                                  double tile_size_m);

}  // namespace glove::shard

#endif  // GLOVE_SHARD_TILING_HPP
