#include "glove/shard/planner.hpp"

#include <stdexcept>

namespace glove::shard {

ShardPlan ShardPlanner::plan(const Tiling& tiling) const {
  const std::size_t k = config_.glove.k;
  std::size_t total = 0;
  for (const Tile& tile : tiling.tiles) total += tile.members.size();
  if (total < k) {
    throw std::invalid_argument{
        "dataset smaller than the target anonymity level k"};
  }

  ShardPlan plan;
  plan.tiles = tiling.tiles.size();

  // Greedy packing over the Morton order: close the current shard when it
  // already satisfies the >= k floor and the next tile would break the
  // budget.  A tile alone larger than the budget becomes its own shard.
  PlannedShard current;
  const auto flush = [&] {
    if (current.members.empty()) return;
    plan.shards.push_back(std::move(current));
    current = PlannedShard{};
  };
  for (const Tile& tile : tiling.tiles) {
    if (!current.members.empty() && current.members.size() >= k &&
        current.members.size() + tile.members.size() >
            config_.max_shard_users) {
      flush();
    }
    current.cells.push_back(tile.cell);
    current.members.insert(current.members.end(), tile.members.begin(),
                           tile.members.end());
  }
  flush();

  // The tail shard may have been left under the >= k floor (the budget
  // closed its predecessor first); fold it into that predecessor.
  if (plan.shards.size() >= 2 && plan.shards.back().members.size() < k) {
    PlannedShard tail = std::move(plan.shards.back());
    plan.shards.pop_back();
    PlannedShard& previous = plan.shards.back();
    previous.cells.insert(previous.cells.end(), tail.cells.begin(),
                          tail.cells.end());
    previous.members.insert(previous.members.end(), tail.members.begin(),
                            tail.members.end());
  }

  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    for (const geo::GridCell cell : plan.shards[s].cells) {
      plan.shard_of_cell.emplace(cell, s);
    }
  }
  return plan;
}

}  // namespace glove::shard
