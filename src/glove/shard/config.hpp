// Configuration of the spatially-sharded anonymization backend (the
// ROADMAP's next scale move past `chunked`): the geo space is tiled on a
// regular grid, tiles are packed into load-balanced shards, every shard
// runs the exact GLOVE pipeline independently (in parallel across a worker
// pool), and a deterministic reconciliation pass handles fingerprints near
// shard borders so candidate merge pairs spanning tiles are not lost.

#ifndef GLOVE_SHARD_CONFIG_HPP
#define GLOVE_SHARD_CONFIG_HPP

#include <cstddef>
#include <string>

#include "glove/core/glove.hpp"

namespace glove::shard {

/// What to do with fingerprints whose bounding geometry comes close to a
/// shard border — exactly the fingerprints whose best merge partner may
/// live in a neighbouring shard.
enum class BorderPolicy {
  /// Defer border fingerprints (bounding box within `halo_m` of a tile
  /// owned by another shard) to the cross-shard reconciliation pass, where
  /// they can merge with partners from any shard.  Default: preserves the
  /// cross-tile pairs the tiling would otherwise cut.
  kHalo,
  /// Anonymize every fingerprint inside its home shard.  Fastest; border
  /// users may pay extra stretch because cross-shard pairs are never
  /// considered.
  kNone,
};

/// Which ShardExecutor backend runs the shard batches.  Both produce
/// byte-identical output for identical input and configuration; only the
/// address-space layout differs.
enum class ExecutorKind {
  /// Today's in-process thread pool (the default).
  kInProcess,
  /// Coordinator/worker split: long-lived glove_shard_worker processes
  /// re-read their shard slices from the shared source file and return
  /// groups over a socketpair protocol.  Requires a file-backed source.
  kProcess,
};

/// Sharded-run configuration.  `glove` carries the shared GLOVE knobs
/// (k, stretch limits, suppression, reshape, leftover policy); the rest
/// shapes the spatial decomposition and the scheduler.
struct ShardConfig {
  core::GloveConfig glove;

  /// Edge length of the square spatial tiles fingerprints are bucketed
  /// into (by bounding-box centre).  Smaller tiles mean more, smaller
  /// shards: faster but with more border traffic.  0 = adaptive
  /// (choose_tile_size derives the edge from the observed anchor
  /// density).
  double tile_size_m = 25'000.0;

  /// Load-balancing target: the planner packs whole tiles into shards of
  /// at most this many fingerprints (a single tile larger than the budget
  /// stays one shard — shrink `tile_size_m` instead).  Must be >= glove.k.
  std::size_t max_shard_users = 2'000;

  /// Shard-scheduler worker threads; 0 follows the shared-pool default
  /// (GLOVE_THREADS when set, else hardware concurrency).  The per-shard
  /// inner loops additionally use the shared pool, exactly like the
  /// non-sharded strategies.  Output is identical for every worker count
  /// (byte-stable determinism is tested).
  std::size_t workers = 0;

  BorderPolicy border = BorderPolicy::kHalo;

  /// Width of the border strip (metres) for BorderPolicy::kHalo: a
  /// fingerprint is deferred when its bounding box, inflated by this
  /// margin, touches a tile owned by a different shard.
  double halo_m = 1'000.0;

  /// Streaming-run budget for the halo-reconciliation phase: at most this
  /// many deferred fingerprints are materialized per rewound
  /// reconciliation pass (passes close on whole reconcile units — the
  /// >=k pass-throughs, each locality-sorted GLOVE chunk, the leftover
  /// tail — and a single unit larger than the budget still forms its own
  /// pass).  0 = the shard batch budget (max_shard_users x scheduler
  /// workers).  Only pass boundaries move: the reconciliation GLOVE
  /// chunking itself is fixed by max_shard_users, so the output bytes are
  /// identical for every budget.
  std::size_t reconcile_chunk_users = 0;

  /// Shard execution backend; see ExecutorKind.
  ExecutorKind executor = ExecutorKind::kInProcess;

  /// Worker-process count for ExecutorKind::kProcess; 0 follows the
  /// shared-pool default (GLOVE_THREADS when set, else hardware
  /// concurrency).  Ignored by the in-process executor, whose threads are
  /// governed by `workers`.
  std::size_t exec_workers = 0;

  /// Path of the glove_shard_worker binary for ExecutorKind::kProcess.
  /// Empty = discover: $GLOVE_SHARD_WORKER_BIN, then well-known locations
  /// relative to the running executable.
  std::string worker_binary;
};

}  // namespace glove::shard

#endif  // GLOVE_SHARD_CONFIG_HPP
