#include "glove/shard/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "glove/util/parallel.hpp"

namespace glove::shard {

std::uint64_t morton_code(geo::GridCell cell) noexcept {
  // Bias to unsigned so the per-axis order survives the interleave:
  // INT32_MIN maps to 0, INT32_MAX to UINT32_MAX.
  const auto bias = [](std::int32_t v) {
    return static_cast<std::uint32_t>(v) ^ 0x8000'0000U;
  };
  return geo::morton_interleave(bias(cell.ix), bias(cell.iy));
}

double choose_tile_size(std::span<const core::FingerprintBounds> bounds,
                        std::size_t max_shard_users) {
  constexpr double kFallbackM = 25'000.0;
  constexpr double kMinM = 1'000.0;
  constexpr double kMaxM = 200'000.0;
  if (bounds.empty()) return kFallbackM;
  const std::size_t budget = std::max<std::size_t>(max_shard_users, 1);

  // First guess from mean density: aim for max_shard_users / 8
  // fingerprints per tile, so a shard is built from ~8 tiles and the
  // planner can still balance, but never fewer than 16 per tile (tiny
  // tiles only create border traffic).
  const double target =
      static_cast<double>(std::max<std::size_t>(16, budget / 8));

  std::vector<geo::PlanarPoint> anchors;
  anchors.reserve(bounds.size());
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (const core::FingerprintBounds& b : bounds) {
    const geo::PlanarPoint anchor{b.box.x + b.box.dx / 2.0,
                                  b.box.y + b.box.dy / 2.0};
    anchors.push_back(anchor);
    min_x = std::min(min_x, anchor.x_m);
    max_x = std::max(max_x, anchor.x_m);
    min_y = std::min(min_y, anchor.y_m);
    max_y = std::max(max_y, anchor.y_m);
  }
  // A degenerate axis still spans one tile; flooring both at the minimum
  // tile edge keeps the density estimate finite for linear or pointlike
  // deployments (e.g. a highway corridor).
  const double extent_x = std::max(max_x - min_x, kMinM);
  const double extent_y = std::max(max_y - min_y, kMinM);
  const double density =
      static_cast<double>(bounds.size()) / (extent_x * extent_y);
  double tile = std::sqrt(target / density);
  if (!std::isfinite(tile)) return kFallbackM;
  tile = std::clamp(tile, kMinM, kMaxM);

  // Mean density lies about skewed deployments: one downtown tile can
  // hold 50x the average and would become an oversized single-tile shard
  // whose quadratic pair structures dwarf everything else.  Halve the
  // edge until the densest occupied tile fits the shard budget (or the
  // clamp floor is reached) — the histogram is O(n) over in-memory
  // anchors, so refinement costs no extra pass over the data.
  for (int step = 0; step < 16 && tile > kMinM; ++step) {
    const geo::Grid grid{tile};
    std::unordered_map<geo::GridCell, std::size_t> occupancy;
    std::size_t densest = 0;
    for (const geo::PlanarPoint& anchor : anchors) {
      densest = std::max(densest, ++occupancy[grid.cell_of(anchor)]);
    }
    if (densest <= budget) break;
    tile = std::max(tile / 2.0, kMinM);
  }
  return tile;
}

Tiling build_tiling_from_bounds(std::vector<core::FingerprintBounds> bounds,
                                double tile_size_m,
                                std::size_t max_shard_users) {
  if (tile_size_m < 0.0) {
    throw std::invalid_argument{
        "shard tile size must be positive (or 0 for adaptive)"};
  }
  Tiling tiling;
  tiling.tile_size_m = tile_size_m > 0.0
                           ? tile_size_m
                           : choose_tile_size(bounds, max_shard_users);
  tiling.bounds = std::move(bounds);

  const geo::Grid grid{tiling.tile_size_m};
  std::unordered_map<geo::GridCell, std::size_t> tile_of_cell;
  for (std::size_t i = 0; i < tiling.bounds.size(); ++i) {
    const core::FingerprintBounds& b = tiling.bounds[i];
    const geo::PlanarPoint anchor{b.box.x + b.box.dx / 2.0,
                                  b.box.y + b.box.dy / 2.0};
    const geo::GridCell cell = grid.cell_of(anchor);
    const auto [it, inserted] = tile_of_cell.try_emplace(cell,
                                                         tiling.tiles.size());
    if (inserted) tiling.tiles.push_back(Tile{cell, {}});
    tiling.tiles[it->second].members.push_back(static_cast<std::uint32_t>(i));
  }

  std::sort(tiling.tiles.begin(), tiling.tiles.end(),
            [](const Tile& a, const Tile& b) {
              return morton_code(a.cell) < morton_code(b.cell);
            });
  return tiling;
}

Tiling build_tiling(const cdr::FingerprintDataset& data, double tile_size_m,
                    std::size_t max_shard_users) {
  std::vector<core::FingerprintBounds> bounds(data.size());
  util::parallel_for(
      data.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          bounds[i] = core::fingerprint_bounds(data[i]);
        }
      },
      /*min_chunk=*/64);
  return build_tiling_from_bounds(std::move(bounds), tile_size_m,
                                  max_shard_users);
}

}  // namespace glove::shard
