#include "glove/shard/tiling.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "glove/util/parallel.hpp"

namespace glove::shard {

std::uint64_t morton_code(geo::GridCell cell) noexcept {
  // Bias to unsigned so the per-axis order survives the interleave:
  // INT32_MIN maps to 0, INT32_MAX to UINT32_MAX.
  const auto bias = [](std::int32_t v) {
    return static_cast<std::uint32_t>(v) ^ 0x8000'0000U;
  };
  return geo::morton_interleave(bias(cell.ix), bias(cell.iy));
}

Tiling build_tiling(const cdr::FingerprintDataset& data, double tile_size_m) {
  if (tile_size_m <= 0.0) {
    throw std::invalid_argument{"shard tile size must be positive"};
  }

  Tiling tiling;
  tiling.tile_size_m = tile_size_m;
  tiling.bounds.resize(data.size());
  util::parallel_for(
      data.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          tiling.bounds[i] = core::fingerprint_bounds(data[i]);
        }
      },
      /*min_chunk=*/64);

  const geo::Grid grid{tile_size_m};
  std::unordered_map<geo::GridCell, std::size_t> tile_of_cell;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const core::FingerprintBounds& b = tiling.bounds[i];
    const geo::PlanarPoint anchor{b.box.x + b.box.dx / 2.0,
                                  b.box.y + b.box.dy / 2.0};
    const geo::GridCell cell = grid.cell_of(anchor);
    const auto [it, inserted] = tile_of_cell.try_emplace(cell,
                                                         tiling.tiles.size());
    if (inserted) tiling.tiles.push_back(Tile{cell, {}});
    tiling.tiles[it->second].members.push_back(static_cast<std::uint32_t>(i));
  }

  std::sort(tiling.tiles.begin(), tiling.tiles.end(),
            [](const Tile& a, const Tile& b) {
              return morton_code(a.cell) < morton_code(b.cell);
            });
  return tiling;
}

}  // namespace glove::shard
