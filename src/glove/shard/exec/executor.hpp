// The shard execution seam: the streaming pipeline plans batches and
// materializes (or names) shard member slices, a ShardExecutor turns each
// slice into finalized groups.  Two backends implement it — the in-process
// thread pool the backend always had, and a coordinator/worker process
// pool — and both must produce byte-identical groups for identical jobs,
// so the choice is an operational knob, never a semantic one.

#ifndef GLOVE_SHARD_EXEC_EXECUTOR_HPP
#define GLOVE_SHARD_EXEC_EXECUTOR_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "glove/cdr/fingerprint.hpp"
#include "glove/core/glove.hpp"
#include "glove/shard/config.hpp"
#include "glove/shard/runner.hpp"
#include "glove/util/hooks.hpp"

namespace glove::shard::exec {

/// One serialized unit of shard work: shard `shard` of the current plan.
/// `member_ids` names the slice (dataset indices in planned member order);
/// `inputs` carries the materialized fingerprints when the caller
/// materializes (executors whose `reads_source()` is true re-read the
/// slice from the shared source file themselves and receive `inputs`
/// empty).
struct ShardJob {
  std::size_t shard = 0;
  const std::vector<std::uint32_t>* member_ids = nullptr;
  std::vector<cdr::Fingerprint> inputs;
};

/// What running one shard produced: the finalized groups plus the cost
/// counters the caller folds via GloveStats::accumulate_costs and the
/// per-shard timing row for the run report.
struct ShardResult {
  ShardTiming timing;
  std::vector<cdr::Fingerprint> groups;
  core::GloveStats stats;
};

/// Per-worker accounting surfaced in the run report's "exec" section
/// (process pool only; the in-process executor reports none).
struct ExecWorkerStats {
  std::uint64_t worker = 0;
  std::uint64_t jobs = 0;
  std::uint64_t fingerprints = 0;
  std::uint64_t groups = 0;
  double busy_seconds = 0.0;
};

/// Called once per completed job, possibly from an executor thread (the
/// caller must make it thread-safe); drives progress reporting.
using ShardResultFn = std::function<void(const ShardResult&)>;

/// Executes batches of shard jobs.  Implementations must return results
/// in job order and must be deterministic: identical jobs yield identical
/// groups regardless of worker count or scheduling.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;

  /// Stable identifier for the run report ("inprocess", "process").
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  /// Resolved parallelism; the caller sizes shard batches from it.
  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;

  /// True when the executor materializes shard inputs itself by
  /// re-reading the shared source file; the caller then leaves
  /// ShardJob::inputs empty and skips its own materialization pass.
  [[nodiscard]] virtual bool reads_source() const noexcept = 0;

  /// Runs one batch, invoking `on_result` as each job completes and
  /// returning all results in job order.  Cancellation propagates from
  /// `hooks.cancel` (util::CancelledError); any worker failure surfaces
  /// as a typed exception, never a hang.
  virtual std::vector<ShardResult> run_batch(std::vector<ShardJob> jobs,
                                             const ShardResultFn& on_result,
                                             const util::RunHooks& hooks) = 0;

  /// Cumulative per-worker accounting across all batches so far.
  [[nodiscard]] virtual std::vector<ExecWorkerStats> worker_stats() const {
    return {};
  }
};

/// Human-readable executor name for reports and error messages.
[[nodiscard]] std::string_view executor_kind_name(ExecutorKind kind) noexcept;

/// Builds the executor `config` selects.  `source_path` is the file
/// backing the stream (nullopt for in-memory sources); the process
/// executor requires it and throws std::invalid_argument otherwise.
/// `total_fingerprints` is the pass-1 count (workers validate their
/// re-reads against it); `shard_count` caps the resolved parallelism.
[[nodiscard]] std::unique_ptr<ShardExecutor> make_shard_executor(
    const ShardConfig& config, const std::optional<std::string>& source_path,
    std::uint64_t total_fingerprints, std::size_t shard_count);

}  // namespace glove::shard::exec

#endif  // GLOVE_SHARD_EXEC_EXECUTOR_HPP
