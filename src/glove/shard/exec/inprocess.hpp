// The default ShardExecutor: runs shard jobs on an in-process thread
// pool, exactly the execution path the streaming backend always had (and
// byte-identical to it).

#ifndef GLOVE_SHARD_EXEC_INPROCESS_HPP
#define GLOVE_SHARD_EXEC_INPROCESS_HPP

#include <cstddef>
#include <vector>

#include "glove/shard/exec/executor.hpp"
#include "glove/util/thread_pool.hpp"

namespace glove::shard::exec {

class InProcessExecutor final : public ShardExecutor {
 public:
  /// `config.workers` sizes the pool (0 = shared-pool default), clamped
  /// to `shard_count` so no thread is ever idle by construction.
  InProcessExecutor(const ShardConfig& config, std::size_t shard_count);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "inprocess";
  }
  [[nodiscard]] std::size_t workers() const noexcept override {
    return scheduler_.size();
  }
  [[nodiscard]] bool reads_source() const noexcept override { return false; }

  std::vector<ShardResult> run_batch(std::vector<ShardJob> jobs,
                                     const ShardResultFn& on_result,
                                     const util::RunHooks& hooks) override;

 private:
  core::GloveConfig glove_;
  util::ThreadPool scheduler_;
};

}  // namespace glove::shard::exec

#endif  // GLOVE_SHARD_EXEC_INPROCESS_HPP
