// Wire protocol of the process ShardExecutor: length-prefixed frames over
// a connected AF_UNIX socketpair between the coordinator and each
// glove_shard_worker daemon.
//
// Framing: u32 payload length, u8 frame type, payload.  All integers are
// little-endian byte-shift encoded and doubles travel as their exact
// IEEE-754 bit patterns (the binio convention), so a group deserialized on
// the coordinator is bit-identical to the one the worker produced — the
// protocol can never perturb published bytes.
//
// Conversation: the coordinator opens with kHello (protocol version,
// shared source file, expected fingerprint count, serialized GloveConfig);
// the worker replies kHelloAck.  Each kRunShard names one shard slice by
// dataset index; the worker re-reads the slice from the shared file, runs
// GLOVE, and replies kShardDone (groups + cost stats + timing + obs
// counter deltas) or kError.  kShutdown (or EOF) ends the worker.

#ifndef GLOVE_SHARD_EXEC_PROTO_HPP
#define GLOVE_SHARD_EXEC_PROTO_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "glove/cdr/fingerprint.hpp"
#include "glove/core/glove.hpp"

namespace glove::shard::exec {

/// Bumped on any wire-format change; hello handshakes across versions
/// fail fast instead of misparsing.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on a single frame payload (1 GiB): a corrupt length prefix
/// fails loudly instead of driving a giant allocation.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kRunShard = 3,
  kShardDone = 4,
  kError = 5,
  kShutdown = 6,
};

struct Frame {
  FrameType type = FrameType::kShutdown;
  std::vector<std::uint8_t> payload;
};

struct HelloRequest {
  std::string source_path;
  std::uint64_t expected_fingerprints = 0;
  core::GloveConfig glove;
};

struct RunShardRequest {
  std::uint64_t shard = 0;
  /// Dataset indices of the slice, in planned member order.
  std::vector<std::uint32_t> member_ids;
};

struct ShardDoneReply {
  std::uint64_t shard = 0;
  /// Cost counters for GloveStats::accumulate_costs.
  std::uint64_t merges = 0;
  std::uint64_t deleted_samples = 0;
  std::uint64_t discarded_fingerprints = 0;
  std::uint64_t stretch_evaluations = 0;
  double init_seconds = 0.0;
  double merge_seconds = 0.0;
  /// Whole-job wall-clock on the worker (materialize + GLOVE).
  double total_seconds = 0.0;
  std::vector<cdr::Fingerprint> groups;
  /// Worker-side obs counter increments during the job, name-sorted; the
  /// coordinator folds them into its registry so the run report's "obs"
  /// section matches the in-process executor.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};

/// Payload codecs.  Decoders throw std::runtime_error on malformed input
/// (short payload, trailing bytes, out-of-range enum).
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloRequest& req);
[[nodiscard]] HelloRequest decode_hello(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_run_shard(
    const RunShardRequest& req);
[[nodiscard]] RunShardRequest decode_run_shard(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_shard_done(
    const ShardDoneReply& reply);
[[nodiscard]] ShardDoneReply decode_shard_done(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_error(
    const std::string& message);
[[nodiscard]] std::string decode_error(
    const std::vector<std::uint8_t>& payload);

/// Framed blocking io over a connected fd.  write_frame retries partial
/// writes; read_frame returns false on clean EOF at a frame boundary and
/// throws std::runtime_error on io errors, truncated frames, or a length
/// prefix beyond kMaxFramePayload.
void write_frame(int fd, FrameType type,
                 const std::vector<std::uint8_t>& payload);
[[nodiscard]] bool read_frame(int fd, Frame& out);

}  // namespace glove::shard::exec

#endif  // GLOVE_SHARD_EXEC_PROTO_HPP
