#include "glove/shard/exec/proto.hpp"

#include <bit>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>
#define GLOVE_EXEC_HAVE_POSIX_IO 1
#endif

namespace glove::shard::exec {

namespace {

// Little-endian byte-shift encoders, the binio convention: integers are
// assembled bytewise (no memcpy of host-order structs) and doubles travel
// as their exact IEEE-754 bit patterns, so decoding reproduces the
// encoder's values bit for bit on any host.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

/// Bounds-checked payload reader; decoders finish with done() so trailing
/// garbage is as loud as a short payload.
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& data) : data_{&data} {}

  std::uint8_t u8() {
    need(1);
    return (*data_)[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>((*data_)[pos_++]) << shift;
    }
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>((*data_)[pos_++]) << shift;
    }
    return value;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t size = u32();
    need(size);
    std::string value{reinterpret_cast<const char*>(data_->data() + pos_),
                      size};
    pos_ += size;
    return value;
  }

  void done() const {
    if (pos_ != data_->size()) {
      throw std::runtime_error{"exec frame payload has trailing bytes"};
    }
  }

 private:
  void need(std::size_t bytes) const {
    if (pos_ + bytes > data_->size()) {
      throw std::runtime_error{"exec frame payload truncated"};
    }
  }

  const std::vector<std::uint8_t>* data_;
  std::size_t pos_ = 0;
};

void put_fingerprint(std::vector<std::uint8_t>& out,
                     const cdr::Fingerprint& fp) {
  put_u32(out, static_cast<std::uint32_t>(fp.members().size()));
  put_u32(out, static_cast<std::uint32_t>(fp.size()));
  for (const cdr::UserId member : fp.members()) put_u32(out, member);
  for (const cdr::Sample& sample : fp.samples()) {
    put_f64(out, sample.sigma.x);
    put_f64(out, sample.sigma.dx);
    put_f64(out, sample.sigma.y);
    put_f64(out, sample.sigma.dy);
    put_f64(out, sample.tau.t);
    put_f64(out, sample.tau.dt);
    put_u32(out, sample.contributors);
  }
}

cdr::Fingerprint get_fingerprint(Cursor& in) {
  const std::uint32_t member_count = in.u32();
  const std::uint32_t sample_count = in.u32();
  std::vector<cdr::UserId> members;
  members.reserve(member_count);
  for (std::uint32_t i = 0; i < member_count; ++i) members.push_back(in.u32());
  std::vector<cdr::Sample> samples;
  samples.reserve(sample_count);
  for (std::uint32_t i = 0; i < sample_count; ++i) {
    cdr::Sample sample;
    sample.sigma.x = in.f64();
    sample.sigma.dx = in.f64();
    sample.sigma.y = in.f64();
    sample.sigma.dy = in.f64();
    sample.tau.t = in.f64();
    sample.tau.dt = in.f64();
    sample.contributors = in.u32();
    samples.push_back(sample);
  }
  // Workers serialize samples() verbatim (already time-sorted); re-sorting
  // here could permute time-tied samples and break byte-exact parity.
  return cdr::Fingerprint::from_time_sorted(std::move(members),
                                            std::move(samples));
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloRequest& req) {
  std::vector<std::uint8_t> out;
  put_u32(out, kProtocolVersion);
  put_string(out, req.source_path);
  put_u64(out, req.expected_fingerprints);
  put_u32(out, req.glove.k);
  put_f64(out, req.glove.limits.phi_max_sigma_m);
  put_f64(out, req.glove.limits.phi_max_tau_min);
  put_f64(out, req.glove.limits.w_sigma);
  put_f64(out, req.glove.limits.w_tau);
  put_u8(out, req.glove.suppression.has_value() ? 1 : 0);
  if (req.glove.suppression.has_value()) {
    put_f64(out, req.glove.suppression->max_spatial_extent_m);
    put_f64(out, req.glove.suppression->max_temporal_extent_min);
  }
  put_u8(out, req.glove.reshape ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(req.glove.leftover_policy));
  return out;
}

HelloRequest decode_hello(const std::vector<std::uint8_t>& payload) {
  Cursor in{payload};
  const std::uint32_t version = in.u32();
  if (version != kProtocolVersion) {
    throw std::runtime_error{
        "exec protocol version mismatch (coordinator speaks v" +
        std::to_string(version) + ", worker speaks v" +
        std::to_string(kProtocolVersion) + ")"};
  }
  HelloRequest req;
  req.source_path = in.str();
  req.expected_fingerprints = in.u64();
  req.glove.k = in.u32();
  req.glove.limits.phi_max_sigma_m = in.f64();
  req.glove.limits.phi_max_tau_min = in.f64();
  req.glove.limits.w_sigma = in.f64();
  req.glove.limits.w_tau = in.f64();
  if (in.u8() != 0) {
    core::SuppressionThresholds suppression;
    suppression.max_spatial_extent_m = in.f64();
    suppression.max_temporal_extent_min = in.f64();
    req.glove.suppression = suppression;
  }
  req.glove.reshape = in.u8() != 0;
  const std::uint8_t policy = in.u8();
  if (policy > static_cast<std::uint8_t>(core::LeftoverPolicy::kSuppress)) {
    throw std::runtime_error{"exec hello carries an unknown leftover policy"};
  }
  req.glove.leftover_policy = static_cast<core::LeftoverPolicy>(policy);
  in.done();
  return req;
}

std::vector<std::uint8_t> encode_run_shard(const RunShardRequest& req) {
  std::vector<std::uint8_t> out;
  put_u64(out, req.shard);
  put_u32(out, static_cast<std::uint32_t>(req.member_ids.size()));
  for (const std::uint32_t id : req.member_ids) put_u32(out, id);
  return out;
}

RunShardRequest decode_run_shard(const std::vector<std::uint8_t>& payload) {
  Cursor in{payload};
  RunShardRequest req;
  req.shard = in.u64();
  const std::uint32_t count = in.u32();
  req.member_ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) req.member_ids.push_back(in.u32());
  in.done();
  return req;
}

std::vector<std::uint8_t> encode_shard_done(const ShardDoneReply& reply) {
  std::vector<std::uint8_t> out;
  put_u64(out, reply.shard);
  put_u64(out, reply.merges);
  put_u64(out, reply.deleted_samples);
  put_u64(out, reply.discarded_fingerprints);
  put_u64(out, reply.stretch_evaluations);
  put_f64(out, reply.init_seconds);
  put_f64(out, reply.merge_seconds);
  put_f64(out, reply.total_seconds);
  put_u32(out, static_cast<std::uint32_t>(reply.groups.size()));
  for (const cdr::Fingerprint& group : reply.groups) {
    put_fingerprint(out, group);
  }
  put_u32(out, static_cast<std::uint32_t>(reply.counter_deltas.size()));
  for (const auto& [name, value] : reply.counter_deltas) {
    put_string(out, name);
    put_u64(out, value);
  }
  return out;
}

ShardDoneReply decode_shard_done(const std::vector<std::uint8_t>& payload) {
  Cursor in{payload};
  ShardDoneReply reply;
  reply.shard = in.u64();
  reply.merges = in.u64();
  reply.deleted_samples = in.u64();
  reply.discarded_fingerprints = in.u64();
  reply.stretch_evaluations = in.u64();
  reply.init_seconds = in.f64();
  reply.merge_seconds = in.f64();
  reply.total_seconds = in.f64();
  const std::uint32_t group_count = in.u32();
  reply.groups.reserve(group_count);
  for (std::uint32_t i = 0; i < group_count; ++i) {
    reply.groups.push_back(get_fingerprint(in));
  }
  const std::uint32_t delta_count = in.u32();
  reply.counter_deltas.reserve(delta_count);
  for (std::uint32_t i = 0; i < delta_count; ++i) {
    std::string name = in.str();
    const std::uint64_t value = in.u64();
    reply.counter_deltas.emplace_back(std::move(name), value);
  }
  in.done();
  return reply;
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
  std::vector<std::uint8_t> out;
  put_string(out, message);
  return out;
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  Cursor in{payload};
  std::string message = in.str();
  in.done();
  return message;
}

#if defined(GLOVE_EXEC_HAVE_POSIX_IO)

namespace {

[[noreturn]] void throw_io_error(const char* what) {
  throw std::runtime_error{
      std::string{what} + ": " +
      std::error_code(errno, std::generic_category()).message()};
}

/// send(MSG_NOSIGNAL) so a peer that died mid-conversation surfaces as
/// EPIPE (→ typed error) instead of a process-killing SIGPIPE; plain
/// write() is the fallback for non-socket fds (pipes in tests).
void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
#if defined(MSG_NOSIGNAL)
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + written, size - written);
    }
#else
    const ssize_t n = ::write(fd, data + written, size - written);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io_error("exec frame write failed");
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Returns false only on EOF before the first byte; a short read mid-way
/// is a truncated frame and throws.
bool read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io_error("exec frame read failed");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error{"exec frame truncated mid-read (peer died?)"};
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, FrameType type,
                 const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error{"exec frame payload exceeds the 1 GiB cap"};
  }
  std::vector<std::uint8_t> header;
  header.reserve(5);
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  put_u8(header, static_cast<std::uint8_t>(type));
  write_all(fd, header.data(), header.size());
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, Frame& out) {
  std::uint8_t header[5];
  if (!read_exact(fd, header, sizeof header)) return false;
  std::uint32_t length = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    length |= static_cast<std::uint32_t>(header[shift / 8]) << shift;
  }
  if (length > kMaxFramePayload) {
    throw std::runtime_error{"exec frame length prefix exceeds the 1 GiB cap"};
  }
  const std::uint8_t type = header[4];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kShutdown)) {
    throw std::runtime_error{"exec frame carries an unknown type byte"};
  }
  out.type = static_cast<FrameType>(type);
  out.payload.resize(length);
  if (length > 0 && !read_exact(fd, out.payload.data(), length)) {
    throw std::runtime_error{"exec frame truncated mid-read (peer died?)"};
  }
  return true;
}

#else  // !GLOVE_EXEC_HAVE_POSIX_IO

void write_frame(int, FrameType, const std::vector<std::uint8_t>&) {
  throw std::runtime_error{"exec framed io requires a POSIX platform"};
}

bool read_frame(int, Frame&) {
  throw std::runtime_error{"exec framed io requires a POSIX platform"};
}

#endif  // GLOVE_EXEC_HAVE_POSIX_IO

}  // namespace glove::shard::exec
