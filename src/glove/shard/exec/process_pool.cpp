#include "glove/shard/exec/process_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "glove/obs/metrics.hpp"
#include "glove/util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#define GLOVE_EXEC_HAVE_PROCESS_POOL 1
#endif

namespace glove::shard::exec {

namespace fs = std::filesystem;

std::string resolve_worker_binary(const std::string& configured) {
  if (!configured.empty()) {
    if (fs::exists(configured)) return configured;
    throw std::invalid_argument{"configured shard worker binary not found: " +
                                configured};
  }
  if (const char* env = std::getenv("GLOVE_SHARD_WORKER_BIN");
      env != nullptr && *env != '\0') {
    if (fs::exists(env)) return env;
    throw std::invalid_argument{
        std::string{"GLOVE_SHARD_WORKER_BIN points at a missing file: "} +
        env};
  }
  // Build-tree discovery relative to the running executable: binaries in
  // build/examples, build/tests, build/bench and the worker's own
  // directory all resolve without configuration.
  std::error_code ec;
  const fs::path exe = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path dir = exe.parent_path();
    const fs::path candidates[] = {
        dir / "glove_shard_worker",
        dir / ".." / "tools" / "shard_worker" / "glove_shard_worker",
        dir / ".." / ".." / "tools" / "shard_worker" / "glove_shard_worker",
        dir / "tools" / "shard_worker" / "glove_shard_worker",
    };
    for (const fs::path& candidate : candidates) {
      if (fs::exists(candidate)) return candidate.lexically_normal().string();
    }
  }
  throw std::invalid_argument{
      "cannot locate the glove_shard_worker binary; set "
      "GLOVE_SHARD_WORKER_BIN or the sharded worker_binary config"};
}

#if defined(GLOVE_EXEC_HAVE_PROCESS_POOL)

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{
      what + ": " + std::error_code(errno, std::generic_category()).message()};
}

std::size_t resolve_worker_count(const ShardConfig& config,
                                 std::size_t shard_count) {
  std::size_t requested = config.exec_workers;
  if (requested == 0) requested = util::ThreadPool::shared().size();
  return std::min(std::max<std::size_t>(requested, 1),
                  std::max<std::size_t>(shard_count, 1));
}

}  // namespace

ProcessPoolExecutor::ProcessPoolExecutor(const ShardConfig& config,
                                         std::string source_path,
                                         std::uint64_t total_fingerprints,
                                         std::size_t shard_count)
    : worker_binary_{resolve_worker_binary(config.worker_binary)} {
  hello_.source_path = std::move(source_path);
  hello_.expected_fingerprints = total_fingerprints;
  hello_.glove = config.glove;

  static const obs::Counter c_spawned = obs::counter("exec.workers_spawned");
  const std::size_t count = resolve_worker_count(config, shard_count);
  workers_.resize(count);
  try {
    for (std::size_t i = 0; i < count; ++i) spawn_worker(i);
    // Handshake after all spawns so a version or source mismatch names
    // the first worker that rejected it.
    const std::vector<std::uint8_t> hello = encode_hello(hello_);
    for (std::size_t i = 0; i < count; ++i) {
      write_frame(workers_[i].fd, FrameType::kHello, hello);
    }
    for (std::size_t i = 0; i < count; ++i) {
      Frame frame;
      if (!read_frame(workers_[i].fd, frame)) {
        fail_worker(i, "exited during the hello handshake");
      }
      if (frame.type == FrameType::kError) {
        fail_worker(i, "rejected the hello: " + decode_error(frame.payload));
      }
      if (frame.type != FrameType::kHelloAck) {
        fail_worker(i, "answered the hello with an unexpected frame");
      }
      workers_[i].stats.worker = i;
      c_spawned.add();
    }
  } catch (...) {
    shutdown();
    throw;
  }
}

ProcessPoolExecutor::~ProcessPoolExecutor() { shutdown(); }

void ProcessPoolExecutor::spawn_worker(std::size_t index) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw_errno("socketpair for shard worker " + std::to_string(index));
  }
  const fs::path stderr_path =
      fs::temp_directory_path() /
      ("glove_shard_worker-" + std::to_string(::getpid()) + "-" +
       std::to_string(index) + ".stderr");
  const int stderr_fd = ::open(stderr_path.c_str(),
                               O_CREAT | O_WRONLY | O_TRUNC, 0600);
  if (stderr_fd < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw_errno("open stderr spill file " + stderr_path.string());
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    ::close(stderr_fd);
    throw_errno("fork shard worker " + std::to_string(index));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls until exec.  Drop every fd the
    // worker must not inherit — the coordinator ends of sibling sockets
    // would otherwise keep peers alive past their death.
    ::dup2(stderr_fd, 2);
    ::close(stderr_fd);
    ::close(sv[0]);
    for (const Worker& other : workers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    char fd_arg[32];
    std::snprintf(fd_arg, sizeof fd_arg, "--socket-fd=%d", sv[1]);
    ::execl(worker_binary_.c_str(), "glove_shard_worker", fd_arg,
            static_cast<char*>(nullptr));
    ::dprintf(2, "exec %s failed: errno %d\n", worker_binary_.c_str(), errno);
    ::_exit(127);
  }
  ::close(sv[1]);
  ::close(stderr_fd);
  workers_[index].fd = sv[0];
  workers_[index].pid = pid;
  workers_[index].stderr_path = stderr_path.string();
}

void ProcessPoolExecutor::send_job(std::size_t worker, const ShardJob& job) {
  RunShardRequest request;
  request.shard = job.shard;
  request.member_ids = *job.member_ids;
  write_frame(workers_[worker].fd, FrameType::kRunShard,
              encode_run_shard(request));
}

std::string ProcessPoolExecutor::stderr_tail(std::size_t worker) const {
  std::ifstream in{workers_[worker].stderr_path, std::ios::binary};
  if (!in) return {};
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  constexpr std::streamoff kTailBytes = 2048;
  in.seekg(size > kTailBytes ? size - kTailBytes : 0);
  std::string tail((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r')) {
    tail.pop_back();
  }
  return tail;
}

void ProcessPoolExecutor::fail_worker(std::size_t worker,
                                      const std::string& what) {
  Worker& w = workers_[worker];
  std::string message = "shard worker " + std::to_string(worker) + " (pid " +
                        std::to_string(w.pid) + ") " + what;
  if (w.pid > 0) {
    int status = 0;
    ::kill(static_cast<pid_t>(w.pid), SIGKILL);
    ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
    w.pid = -1;
  }
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  if (const std::string tail = stderr_tail(worker); !tail.empty()) {
    message += "; stderr tail: " + tail;
  }
  // The remaining workers are torn down by shutdown() when this executor
  // unwinds — no orphan ever outlives the run.
  throw std::runtime_error{message};
}

std::vector<ShardResult> ProcessPoolExecutor::run_batch(
    std::vector<ShardJob> jobs, const ShardResultFn& on_result,
    const util::RunHooks& hooks) {
  // Mirrors the in-process executor's deterministic plane counters so the
  // run report's "obs" section stays executor-independent, plus the
  // dispatch accounting specific to this backend.
  static const obs::Counter c_shards = obs::counter("stream.shards_run");
  static const obs::Histogram h_shard_members =
      obs::histogram("stream.shard.members");
  static const obs::Counter c_jobs = obs::counter("exec.jobs_dispatched");

  std::vector<ShardResult> results(jobs.size());
  std::vector<WorkerQueue> queues(workers_.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    // Static round-robin across the whole run: per-worker job counts in
    // the report are reproducible, independent of scheduling noise.
    queues[next_worker_].jobs.push_back(j);
    next_worker_ = (next_worker_ + 1) % workers_.size();
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (queues[w].jobs.empty()) continue;
    send_job(w, jobs[queues[w].jobs.front()]);
    queues[w].in_flight = true;
    c_jobs.add();
  }

  std::size_t remaining = jobs.size();
  bool cancel_signalled = false;
  while (remaining > 0) {
    if (hooks.cancelled() && !cancel_signalled) {
      // Workers poll their cancellation flag inside the GLOVE loops; the
      // in-flight jobs come back as kError("operation cancelled").
      for (const Worker& w : workers_) {
        if (w.pid > 0) ::kill(static_cast<pid_t>(w.pid), SIGUSR1);
      }
      cancel_signalled = true;
    }
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_worker;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!queues[w].in_flight) continue;
      fds.push_back(pollfd{workers_[w].fd, POLLIN, 0});
      fd_worker.push_back(w);
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll on shard worker sockets");
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t w = fd_worker[i];
      WorkerQueue& queue = queues[w];
      Frame frame;
      bool alive = false;
      try {
        alive = read_frame(workers_[w].fd, frame);
      } catch (const std::exception& e) {
        fail_worker(w, std::string{"connection broke: "} + e.what());
      }
      if (!alive) fail_worker(w, "exited mid-run");
      if (frame.type == FrameType::kError) {
        const std::string message = decode_error(frame.payload);
        if (hooks.cancelled()) throw util::CancelledError{};
        fail_worker(w, "reported an error: " + message);
      }
      if (frame.type != FrameType::kShardDone) {
        fail_worker(w, "sent an unexpected frame type");
      }

      const std::size_t j = queue.jobs[queue.next];
      const ShardJob& job = jobs[j];
      ShardDoneReply reply = decode_shard_done(frame.payload);
      if (reply.shard != job.shard) {
        fail_worker(w, "answered for shard " + std::to_string(reply.shard) +
                           " while running shard " +
                           std::to_string(job.shard));
      }
      const std::size_t members = job.member_ids->size();
      c_shards.add();
      h_shard_members.observe(members);
      // Fold the worker's counter increments (the core.heap.* and
      // source-side counters that ticked in its address space) into this
      // process's registry: the engine's before/after delta then reports
      // the same totals an in-process run would.
      for (const auto& [name, value] : reply.counter_deltas) {
        if (!obs::valid_metric_name(name)) {
          fail_worker(w, "returned an invalid obs counter name");
        }
        obs::counter(name).add(value);
      }

      ShardResult& out = results[j];
      out.timing.shard = job.shard;
      out.timing.input_fingerprints = members;
      out.timing.init_seconds = reply.init_seconds;
      out.timing.merge_seconds = reply.merge_seconds;
      out.timing.total_seconds = reply.total_seconds;
      out.timing.output_groups = reply.groups.size();
      out.stats.merges = reply.merges;
      out.stats.deleted_samples = reply.deleted_samples;
      out.stats.discarded_fingerprints = reply.discarded_fingerprints;
      out.stats.stretch_evaluations = reply.stretch_evaluations;
      out.stats.init_seconds = reply.init_seconds;
      out.stats.merge_seconds = reply.merge_seconds;
      out.groups = std::move(reply.groups);

      Worker& worker = workers_[w];
      worker.stats.jobs += 1;
      worker.stats.fingerprints += members;
      worker.stats.groups += out.groups.size();
      worker.stats.busy_seconds += reply.total_seconds;

      on_result(out);
      queue.next += 1;
      queue.in_flight = false;
      remaining -= 1;
      if (queue.next < queue.jobs.size()) {
        send_job(w, jobs[queue.jobs[queue.next]]);
        queue.in_flight = true;
        c_jobs.add();
      }
    }
  }
  hooks.throw_if_cancelled();
  return results;
}

std::vector<ExecWorkerStats> ProcessPoolExecutor::worker_stats() const {
  std::vector<ExecWorkerStats> stats;
  stats.reserve(workers_.size());
  for (const Worker& w : workers_) stats.push_back(w.stats);
  return stats;
}

std::vector<long> ProcessPoolExecutor::worker_pids() const {
  std::vector<long> pids;
  pids.reserve(workers_.size());
  for (const Worker& w : workers_) pids.push_back(w.pid);
  return pids;
}

void ProcessPoolExecutor::shutdown() noexcept {
  for (Worker& w : workers_) {
    if (w.fd < 0) continue;
    try {
      write_frame(w.fd, FrameType::kShutdown, {});
    } catch (...) {
      // Already dead; reaped below.
    }
    ::close(w.fd);
    w.fd = -1;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (Worker& w : workers_) {
    if (w.pid <= 0) continue;
    int status = 0;
    for (;;) {
      const pid_t reaped =
          ::waitpid(static_cast<pid_t>(w.pid), &status, WNOHANG);
      if (reaped != 0) break;  // exited (or already gone)
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(static_cast<pid_t>(w.pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    w.pid = -1;
  }
  for (Worker& w : workers_) {
    if (w.stderr_path.empty()) continue;
    std::error_code ec;
    fs::remove(w.stderr_path, ec);
    w.stderr_path.clear();
  }
}

#else  // !GLOVE_EXEC_HAVE_PROCESS_POOL

ProcessPoolExecutor::ProcessPoolExecutor(const ShardConfig&, std::string,
                                         std::uint64_t, std::size_t) {
  throw std::invalid_argument{
      "the process shard executor requires a POSIX platform"};
}

ProcessPoolExecutor::~ProcessPoolExecutor() = default;

std::vector<ShardResult> ProcessPoolExecutor::run_batch(std::vector<ShardJob>,
                                                        const ShardResultFn&,
                                                        const util::RunHooks&) {
  throw std::invalid_argument{
      "the process shard executor requires a POSIX platform"};
}

std::vector<ExecWorkerStats> ProcessPoolExecutor::worker_stats() const {
  return {};
}

std::vector<long> ProcessPoolExecutor::worker_pids() const { return {}; }

void ProcessPoolExecutor::spawn_worker(std::size_t) {}
void ProcessPoolExecutor::send_job(std::size_t, const ShardJob&) {}
void ProcessPoolExecutor::fail_worker(std::size_t, const std::string& what) {
  throw std::runtime_error{what};
}
std::string ProcessPoolExecutor::stderr_tail(std::size_t) const { return {}; }
void ProcessPoolExecutor::shutdown() noexcept {}

#endif  // GLOVE_EXEC_HAVE_PROCESS_POOL

}  // namespace glove::shard::exec
