#include "glove/shard/exec/inprocess.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "glove/cdr/dataset.hpp"
#include "glove/core/scalability.hpp"
#include "glove/obs/metrics.hpp"
#include "glove/obs/span.hpp"
#include "glove/util/parallel.hpp"

namespace glove::shard::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

InProcessExecutor::InProcessExecutor(const ShardConfig& config,
                                     std::size_t shard_count)
    : glove_{config.glove},
      scheduler_{[&] {
        std::size_t requested = config.workers;
        if (requested == 0) requested = util::ThreadPool::shared().size();
        return std::min(std::max<std::size_t>(requested, 1),
                        std::max<std::size_t>(shard_count, 1));
      }()} {}

std::vector<ShardResult> InProcessExecutor::run_batch(
    std::vector<ShardJob> jobs, const ShardResultFn& on_result,
    const util::RunHooks& hooks) {
  // Same deterministic plane counters the pre-seam batch loop kept (the
  // totals surface in the run report's "obs" section).
  static const obs::Counter c_shards = obs::counter("stream.shards_run");
  static const obs::Histogram h_shard_members =
      obs::histogram("stream.shard.members");

  std::vector<ShardResult> results(jobs.size());
  util::RunHooks inner;
  inner.cancel = hooks.cancel;
  util::parallel_for(
      scheduler_, jobs.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          hooks.throw_if_cancelled();
          ShardJob& job = jobs[j];
          ShardResult& out = results[j];
          const std::size_t members = job.inputs.size();
          out.timing.shard = job.shard;
          out.timing.input_fingerprints = members;
          if (job.inputs.empty()) continue;
          GLOVE_SPAN_NAMED(shard_span, "stream.shard");
          shard_span.arg("shard", job.shard);
          shard_span.arg("members", members);
          c_shards.add();
          h_shard_members.observe(members);
          const auto start = Clock::now();
          core::GloveResult run = core::anonymize_pruned(
              cdr::FingerprintDataset{std::move(job.inputs)}, glove_, inner);
          out.timing.init_seconds = run.stats.init_seconds;
          out.timing.merge_seconds = run.stats.merge_seconds;
          out.timing.total_seconds = seconds_since(start);
          out.timing.output_groups = run.anonymized.size();
          shard_span.arg("groups", run.anonymized.size());
          out.groups = std::move(run.anonymized.mutable_fingerprints());
          out.stats = run.stats;
          on_result(out);
        }
      },
      /*min_chunk=*/1);
  return results;
}

}  // namespace glove::shard::exec
