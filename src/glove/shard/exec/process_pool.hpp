// The multi-process ShardExecutor: a coordinator that forks long-lived
// glove_shard_worker daemons, speaks the exec/proto framed protocol over
// AF_UNIX socketpairs, and folds per-worker results and obs counter
// deltas back deterministically.  Workers re-read their shard slices from
// the shared source file, so the coordinator never ships fingerprints —
// only dataset indices out and finalized groups back.

#ifndef GLOVE_SHARD_EXEC_PROCESS_POOL_HPP
#define GLOVE_SHARD_EXEC_PROCESS_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "glove/shard/exec/executor.hpp"
#include "glove/shard/exec/proto.hpp"

namespace glove::shard::exec {

/// Resolves the glove_shard_worker binary: `configured` when non-empty,
/// else $GLOVE_SHARD_WORKER_BIN, else well-known build-tree locations
/// relative to the running executable.  Throws std::invalid_argument when
/// nothing resolves to an existing file.
[[nodiscard]] std::string resolve_worker_binary(const std::string& configured);

class ProcessPoolExecutor final : public ShardExecutor {
 public:
  /// Spawns the worker daemons and completes the hello handshake; throws
  /// on any spawn or handshake failure (POSIX-only: other platforms throw
  /// std::invalid_argument immediately).
  ProcessPoolExecutor(const ShardConfig& config, std::string source_path,
                      std::uint64_t total_fingerprints,
                      std::size_t shard_count);
  ~ProcessPoolExecutor() override;

  ProcessPoolExecutor(const ProcessPoolExecutor&) = delete;
  ProcessPoolExecutor& operator=(const ProcessPoolExecutor&) = delete;

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "process";
  }
  [[nodiscard]] std::size_t workers() const noexcept override {
    return workers_.size();
  }
  [[nodiscard]] bool reads_source() const noexcept override { return true; }

  std::vector<ShardResult> run_batch(std::vector<ShardJob> jobs,
                                     const ShardResultFn& on_result,
                                     const util::RunHooks& hooks) override;

  [[nodiscard]] std::vector<ExecWorkerStats> worker_stats() const override;

  /// Worker process ids, for fault-injection tests.
  [[nodiscard]] std::vector<long> worker_pids() const;

 private:
  struct Worker {
    int fd = -1;
    long pid = -1;
    std::string stderr_path;
    ExecWorkerStats stats;
  };

  /// Jobs a run_batch round-robined onto one worker; at most one is in
  /// flight per worker so a blocked reply write can never deadlock
  /// against a blocked request write.
  struct WorkerQueue {
    std::vector<std::size_t> jobs;
    std::size_t next = 0;
    bool in_flight = false;
  };

  void spawn_worker(std::size_t index);
  void send_job(std::size_t worker, const ShardJob& job);
  [[noreturn]] void fail_worker(std::size_t worker, const std::string& what);
  [[nodiscard]] std::string stderr_tail(std::size_t worker) const;
  void shutdown() noexcept;

  std::string worker_binary_;
  HelloRequest hello_;
  std::vector<Worker> workers_;
  std::size_t next_worker_ = 0;
};

}  // namespace glove::shard::exec

#endif  // GLOVE_SHARD_EXEC_PROCESS_POOL_HPP
