#include "glove/shard/exec/executor.hpp"

#include <stdexcept>

#include "glove/shard/exec/inprocess.hpp"
#include "glove/shard/exec/process_pool.hpp"

namespace glove::shard::exec {

std::string_view executor_kind_name(ExecutorKind kind) noexcept {
  switch (kind) {
    case ExecutorKind::kInProcess:
      return "inprocess";
    case ExecutorKind::kProcess:
      return "process";
  }
  return "unknown";
}

std::unique_ptr<ShardExecutor> make_shard_executor(
    const ShardConfig& config, const std::optional<std::string>& source_path,
    std::uint64_t total_fingerprints, std::size_t shard_count) {
  switch (config.executor) {
    case ExecutorKind::kInProcess:
      return std::make_unique<InProcessExecutor>(config, shard_count);
    case ExecutorKind::kProcess:
      if (!source_path.has_value()) {
        throw std::invalid_argument{
            "--executor=process requires a file-backed dataset source (csv "
            "or glovebin): workers re-read their shard slices from the "
            "shared file, which an in-memory source does not have"};
      }
      return std::make_unique<ProcessPoolExecutor>(
          config, *source_path, total_fingerprints, shard_count);
  }
  throw std::invalid_argument{"unknown shard executor kind"};
}

}  // namespace glove::shard::exec
