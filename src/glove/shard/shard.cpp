#include "glove/shard/shard.hpp"

#include <string>
#include <utility>

#include "glove/shard/stream.hpp"

namespace glove::shard {

std::string sharded_output_name(std::string_view base, std::uint32_t k) {
  return std::string{base} + "-sharded-k" + std::to_string(k);
}

ShardedResult anonymize_sharded(const cdr::FingerprintDataset& data,
                                const ShardConfig& config,
                                const util::RunHooks& hooks) {
  // One pipeline, two front doors: wrap the in-memory dataset in a
  // rewindable stream and collect the emitted groups.  The streaming core
  // is the source of truth; this wrapper only restores the dataset-shaped
  // result (including its name) the legacy callers expect.
  DatasetStream stream{data};
  std::vector<cdr::Fingerprint> groups;
  StreamShardedResult streamed = anonymize_sharded_stream(
      stream, config,
      [&](cdr::Fingerprint&& fp) { groups.push_back(std::move(fp)); }, hooks);

  ShardedResult result;
  result.anonymized = cdr::FingerprintDataset{
      std::move(groups), sharded_output_name(data.name(), config.glove.k)};
  result.stats = streamed.stats;
  result.shard_timings = std::move(streamed.shard_timings);
  result.exec_kind = std::move(streamed.exec_kind);
  result.exec_workers = streamed.exec_workers;
  result.exec_worker_stats = std::move(streamed.exec_worker_stats);
  return result;
}

}  // namespace glove::shard
