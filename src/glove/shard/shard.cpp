#include "glove/shard/shard.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace glove::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ShardedResult anonymize_sharded(const cdr::FingerprintDataset& data,
                                const ShardConfig& config,
                                const util::RunHooks& hooks) {
  if (config.glove.k < 2) {
    throw std::invalid_argument{"GLOVE requires k >= 2"};
  }
  if (data.size() < config.glove.k) {
    throw std::invalid_argument{
        "dataset smaller than the target anonymity level k"};
  }
  if (config.tile_size_m <= 0.0) {
    throw std::invalid_argument{"sharded.tile_size_m must be positive"};
  }
  if (config.halo_m < 0.0) {
    throw std::invalid_argument{"sharded.halo_m must be non-negative"};
  }
  if (config.max_shard_users < config.glove.k) {
    throw std::invalid_argument{"sharded.max_shard_users must be at least k"};
  }

  ShardedResult result;
  result.stats.glove.input_users = data.total_users();
  result.stats.glove.input_samples = data.total_samples();

  // --- Tile and plan (serial, cheap: O(n log n)).
  const auto plan_start = Clock::now();
  const Tiling tiling = build_tiling(data, config.tile_size_m);
  const ShardPlan plan = ShardPlanner{config}.plan(tiling);
  result.stats.tiles = plan.tiles;
  result.stats.shards = plan.shards.size();
  result.stats.plan_seconds = seconds_since(plan_start);
  hooks.throw_if_cancelled();

  // --- Run every shard (parallel; deterministic concatenation).
  ShardRunOutcome run = run_shards(data, tiling, plan, config, hooks);
  result.stats.glove.accumulate_costs(run.stats);
  result.stats.deferred_fingerprints = run.leftovers.size();
  result.shard_timings = std::move(run.timings);

  // --- Reconcile cross-shard leftovers.
  hooks.throw_if_cancelled();
  const ReconcileStats reconcile = reconcile_leftovers(
      std::move(run.leftovers), run.anonymized, config, hooks);
  result.stats.glove.accumulate_costs(reconcile.glove);
  result.stats.reconciled_groups = reconcile.reconciled_groups;
  result.stats.absorbed_leftovers = reconcile.absorbed;
  result.stats.reconcile_seconds = reconcile.seconds;

  result.anonymized = cdr::FingerprintDataset{
      std::move(run.anonymized),
      data.name() + "-sharded-k" + std::to_string(config.glove.k)};
  result.stats.glove.output_groups = result.anonymized.size();
  result.stats.glove.output_samples = result.anonymized.total_samples();
  hooks.report(data.size() + 1, data.size() + 1);
  return result;
}

}  // namespace glove::shard
