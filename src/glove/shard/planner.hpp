// ShardPlanner: packs Morton-ordered tiles into load-balanced shards.
//
// Invariants of a plan (for any dataset with >= k fingerprints):
//   * every fingerprint belongs to exactly one shard;
//   * every shard holds at least k fingerprints (so per-shard GLOVE can
//     run), built from whole tiles so the border test stays tile-local;
//   * shards respect the max_shard_users budget except when forced over it
//     by the >= k floor or by a single oversized tile.

#ifndef GLOVE_SHARD_PLANNER_HPP
#define GLOVE_SHARD_PLANNER_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "glove/shard/config.hpp"
#include "glove/shard/tiling.hpp"

namespace glove::shard {

/// One planned shard: the fingerprints it anonymizes (dataset indices, in
/// tile-Morton-then-index order) and the tiles it owns.
struct PlannedShard {
  std::vector<std::uint32_t> members;
  std::vector<geo::GridCell> cells;
};

struct ShardPlan {
  std::vector<PlannedShard> shards;
  /// Owning shard of every occupied cell (the runner's border test).
  std::unordered_map<geo::GridCell, std::size_t> shard_of_cell;
  std::size_t tiles = 0;
};

class ShardPlanner {
 public:
  explicit ShardPlanner(const ShardConfig& config) : config_{config} {}

  /// Deterministic for a given tiling and configuration.  Requires the
  /// tiling to hold at least config.glove.k fingerprints.
  [[nodiscard]] ShardPlan plan(const Tiling& tiling) const;

 private:
  ShardConfig config_;
};

}  // namespace glove::shard

#endif  // GLOVE_SHARD_PLANNER_HPP
