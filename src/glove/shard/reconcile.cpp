#include "glove/shard/reconcile.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "glove/core/merge.hpp"
#include "glove/util/parallel.hpp"

namespace glove::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Merges one sub-k leftover into the minimum-stretch group of
/// `anonymized`, pruning the scan with the cached group bounds (exactly
/// the lazy-lower-bound trick of `anonymize_pruned`, applied to the
/// absorb scan).  Candidates pop from a min-heap in ascending
/// (lower bound, group) order — the same visitation order a full sort
/// would give, but only the prefix up to the first bound >= the current
/// best true stretch is ever ordered, so the per-leftover cost is the
/// O(G) heap build plus O(log G) per evaluated candidate instead of a
/// full O(G log G) sort.
void absorb_into_nearest(cdr::Fingerprint leftover,
                         std::vector<cdr::Fingerprint>& anonymized,
                         std::vector<core::FingerprintBounds>& group_bounds,
                         const ShardConfig& config, ReconcileStats& stats) {
  const core::FingerprintBounds bounds = core::fingerprint_bounds(leftover);
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(anonymized.size());
  for (std::size_t g = 0; g < anonymized.size(); ++g) {
    order.emplace_back(core::stretch_lower_bound(bounds, group_bounds[g],
                                                 config.glove.limits),
                       g);
  }
  std::make_heap(order.begin(), order.end(), std::greater<>{});

  std::size_t best_g = order.front().second;
  double best = std::numeric_limits<double>::infinity();
  while (!order.empty()) {
    std::pop_heap(order.begin(), order.end(), std::greater<>{});
    const auto [lb, g] = order.back();
    order.pop_back();
    if (lb >= best) break;  // ascending bounds: no later candidate can win
    const double d = core::fingerprint_stretch(leftover, anonymized[g],
                                               config.glove.limits);
    ++stats.glove.stretch_evaluations;
    if (d < best) {
      best = d;
      best_g = g;
    }
  }

  core::MergeOptions options;
  options.limits = config.glove.limits;
  options.reshape = config.glove.reshape;
  options.suppression = config.glove.suppression;
  core::MergeStats merge_stats;
  anonymized[best_g] = core::merge_fingerprints(leftover, anonymized[best_g],
                                                options, &merge_stats);
  group_bounds[best_g] = core::fingerprint_bounds(anonymized[best_g]);
  stats.glove.deleted_samples += merge_stats.suppressed_original_samples;
  ++stats.glove.merges;
  ++stats.absorbed;
}

}  // namespace

ReconcilePlan plan_reconcile(std::span<const core::FingerprintBounds> bounds,
                             std::span<const std::uint32_t> group_sizes,
                             const ShardConfig& config) {
  if (bounds.size() != group_sizes.size()) {
    throw std::invalid_argument{
        "plan_reconcile: bounds and group_sizes must align"};
  }
  ReconcilePlan plan;

  // Split into pass-throughs and locality keys, both in leftover order.
  // Positions ascend within the sub-k subsequence, so breaking sort ties
  // by position reproduces anonymize_chunked's (morton, dataset-index)
  // ordering over the sub-k dataset exactly.
  struct Key {
    std::uint64_t morton;
    std::uint32_t position;
  };
  std::vector<Key> keys;
  for (std::uint32_t i = 0; i < group_sizes.size(); ++i) {
    if (group_sizes[i] >= config.glove.k) {
      plan.passthrough.push_back(i);
    } else {
      keys.push_back(Key{core::locality_sort_key(bounds[i]), i});
    }
  }
  plan.subk_count = keys.size();

  if (keys.size() < config.glove.k) {
    // Not enough sub-k leftovers for a GLOVE run of their own: the
    // leftover-policy tail, still in leftover order.
    plan.tail.reserve(keys.size());
    for (const Key& key : keys) plan.tail.push_back(key.position);
    return plan;
  }

  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.morton != b.morton) return a.morton < b.morton;
    return a.position < b.position;
  });

  const std::size_t chunk_size =
      std::max<std::size_t>(config.max_shard_users, config.glove.k);
  std::size_t begin = 0;
  while (begin < keys.size()) {
    std::size_t end = std::min(begin + chunk_size, keys.size());
    // Never leave a tail smaller than k: extend the last chunk instead.
    if (keys.size() - end < config.glove.k && end < keys.size()) {
      end = keys.size();
    }
    std::vector<std::uint32_t> chunk;
    chunk.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      chunk.push_back(keys[i].position);
    }
    plan.chunks.push_back(std::move(chunk));
    begin = end;
  }
  return plan;
}

void count_suppressed_leftover(const cdr::Fingerprint& leftover,
                               ReconcileStats& stats) {
  stats.glove.discarded_fingerprints += leftover.group_size();
  stats.glove.deleted_samples += leftover.total_contributors();
}

void reconcile_chunk(std::vector<cdr::Fingerprint> members,
                     const ShardConfig& config, ReconcileStats& stats,
                     const std::function<void(cdr::Fingerprint&&)>& emit,
                     const util::RunHooks& hooks) {
  core::GloveResult part = core::anonymize_pruned(
      cdr::FingerprintDataset{std::move(members)}, config.glove, hooks);
  stats.glove.accumulate_costs(part.stats);
  // Dataset-shape fields sum across chunks (the chunks partition the
  // sub-k set, so the totals equal one anonymize_chunked run over it).
  stats.glove.input_users += part.stats.input_users;
  stats.glove.input_samples += part.stats.input_samples;
  stats.glove.output_groups += part.stats.output_groups;
  stats.glove.output_samples += part.stats.output_samples;
  stats.reconciled_groups += part.anonymized.size();
  for (cdr::Fingerprint& fp : part.anonymized.mutable_fingerprints()) {
    emit(std::move(fp));
  }
}

ReconcileStats reconcile_leftovers(std::vector<cdr::Fingerprint> leftovers,
                                   std::vector<cdr::Fingerprint>& anonymized,
                                   const ShardConfig& config,
                                   const util::RunHooks& hooks) {
  ReconcileStats stats;
  const auto start = Clock::now();

  std::vector<core::FingerprintBounds> bounds(leftovers.size());
  std::vector<std::uint32_t> group_sizes(leftovers.size());
  util::parallel_for(
      leftovers.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          bounds[i] = core::fingerprint_bounds(leftovers[i]);
          group_sizes[i] = leftovers[i].group_size();
        }
      },
      /*min_chunk=*/64);
  const ReconcilePlan plan = plan_reconcile(bounds, group_sizes, config);

  const auto total = static_cast<std::uint64_t>(leftovers.size());
  std::uint64_t done = 0;

  // Deferred groups already hiding >= k users (possible when the input is
  // a re-anonymization) need no further work.
  for (const std::uint32_t position : plan.passthrough) {
    anonymized.push_back(std::move(leftovers[position]));
  }
  if (!plan.passthrough.empty()) {
    done += plan.passthrough.size();
    hooks.report(done, total);
  }

  // Enough deferred fingerprints to anonymize among themselves: GLOVE
  // over locality-sorted chunks so far-apart border strips do not blow
  // the pair matrix up, with pruned (exact) per-chunk initialization.
  // Border fingerprints from adjacent tiles sort next to each other here,
  // restoring the cross-tile candidate pairs.
  for (const std::vector<std::uint32_t>& chunk : plan.chunks) {
    hooks.throw_if_cancelled();
    std::vector<cdr::Fingerprint> members;
    members.reserve(chunk.size());
    for (const std::uint32_t position : chunk) {
      members.push_back(std::move(leftovers[position]));
    }
    reconcile_chunk(
        std::move(members), config, stats,
        [&](cdr::Fingerprint&& fp) { anonymized.push_back(std::move(fp)); },
        util::subrange_hooks(hooks, done, chunk.size(), total));
    done += chunk.size();
    hooks.report(done, total);
  }

  // Fewer than k deferred fingerprints: the configured leftover policy
  // decides, mirroring the core greedy loop's tail handling.
  if (!plan.tail.empty()) {
    switch (config.glove.leftover_policy) {
      case core::LeftoverPolicy::kMergeIntoNearest: {
        if (anonymized.empty()) {
          // Unreachable for validated inputs: an empty shard output means
          // every fingerprint was deferred, i.e. subk_count >= k.
          throw std::logic_error{"no shard output to absorb leftovers into"};
        }
        std::vector<core::FingerprintBounds> group_bounds(anonymized.size());
        util::parallel_for(
            anonymized.size(),
            [&](std::size_t begin, std::size_t end) {
              for (std::size_t g = begin; g < end; ++g) {
                group_bounds[g] = core::fingerprint_bounds(anonymized[g]);
              }
            },
            /*min_chunk=*/64);
        for (const std::uint32_t position : plan.tail) {
          hooks.throw_if_cancelled();
          absorb_into_nearest(std::move(leftovers[position]), anonymized,
                              group_bounds, config, stats);
          hooks.report(++done, total);
        }
        break;
      }
      case core::LeftoverPolicy::kSuppress: {
        for (const std::uint32_t position : plan.tail) {
          count_suppressed_leftover(leftovers[position], stats);
          hooks.report(++done, total);
        }
        break;
      }
    }
  }

  stats.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return stats;
}

}  // namespace glove::shard
