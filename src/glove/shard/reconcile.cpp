#include "glove/shard/reconcile.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "glove/core/merge.hpp"
#include "glove/core/scalability.hpp"
#include "glove/util/parallel.hpp"

namespace glove::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Merges one sub-k leftover into the minimum-stretch group of
/// `anonymized`, pruning the scan with the cached group bounds (exactly
/// the lazy-lower-bound trick of `anonymize_pruned`, applied to the
/// absorb scan).
void absorb_into_nearest(cdr::Fingerprint leftover,
                         std::vector<cdr::Fingerprint>& anonymized,
                         std::vector<core::FingerprintBounds>& group_bounds,
                         const ShardConfig& config, ReconcileStats& stats) {
  const core::FingerprintBounds bounds = core::fingerprint_bounds(leftover);
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(anonymized.size());
  for (std::size_t g = 0; g < anonymized.size(); ++g) {
    order.emplace_back(core::stretch_lower_bound(bounds, group_bounds[g],
                                                 config.glove.limits),
                       g);
  }
  std::sort(order.begin(), order.end());

  std::size_t best_g = order.front().second;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [lb, g] : order) {
    if (lb >= best) break;  // sorted: no later candidate can win
    const double d = core::fingerprint_stretch(leftover, anonymized[g],
                                               config.glove.limits);
    ++stats.glove.stretch_evaluations;
    if (d < best) {
      best = d;
      best_g = g;
    }
  }

  core::MergeOptions options;
  options.limits = config.glove.limits;
  options.reshape = config.glove.reshape;
  options.suppression = config.glove.suppression;
  core::MergeStats merge_stats;
  anonymized[best_g] = core::merge_fingerprints(leftover, anonymized[best_g],
                                                options, &merge_stats);
  group_bounds[best_g] = core::fingerprint_bounds(anonymized[best_g]);
  stats.glove.deleted_samples += merge_stats.suppressed_original_samples;
  ++stats.glove.merges;
  ++stats.absorbed;
}

}  // namespace

ReconcileStats reconcile_leftovers(std::vector<cdr::Fingerprint> leftovers,
                                   std::vector<cdr::Fingerprint>& anonymized,
                                   const ShardConfig& config,
                                   const util::RunHooks& hooks) {
  ReconcileStats stats;
  const auto start = Clock::now();
  const std::uint32_t k = config.glove.k;

  // Deferred groups already hiding >= k users (possible when the input is
  // a re-anonymization) need no further work.
  std::vector<cdr::Fingerprint> subk;
  for (cdr::Fingerprint& fp : leftovers) {
    if (fp.group_size() >= k) {
      anonymized.push_back(std::move(fp));
    } else {
      subk.push_back(std::move(fp));
    }
  }

  if (subk.size() >= k) {
    // Enough deferred fingerprints to anonymize among themselves: run
    // GLOVE over locality-sorted chunks so far-apart border strips do not
    // blow the pair matrix up, with pruned (exact) per-chunk
    // initialization.  Border fingerprints from adjacent tiles sort next
    // to each other here, restoring the cross-tile candidate pairs.
    core::ChunkedConfig chunked;
    chunked.glove = config.glove;
    chunked.chunk_size =
        std::max<std::size_t>(config.max_shard_users, config.glove.k);
    chunked.pruned = true;
    util::RunHooks inner;
    inner.cancel = hooks.cancel;
    core::GloveResult result = core::anonymize_chunked(
        cdr::FingerprintDataset{std::move(subk)}, chunked, inner);
    stats.glove = result.stats;
    stats.reconciled_groups = result.anonymized.size();
    for (cdr::Fingerprint& fp : result.anonymized.mutable_fingerprints()) {
      anonymized.push_back(std::move(fp));
    }
  } else if (!subk.empty()) {
    // Fewer than k deferred fingerprints: the configured leftover policy
    // decides, mirroring the core greedy loop's tail handling.
    switch (config.glove.leftover_policy) {
      case core::LeftoverPolicy::kMergeIntoNearest: {
        if (anonymized.empty()) {
          // Unreachable for validated inputs: an empty shard output means
          // every fingerprint was deferred, i.e. subk.size() >= k.
          throw std::logic_error{"no shard output to absorb leftovers into"};
        }
        std::vector<core::FingerprintBounds> group_bounds(anonymized.size());
        util::parallel_for(
            anonymized.size(),
            [&](std::size_t begin, std::size_t end) {
              for (std::size_t g = begin; g < end; ++g) {
                group_bounds[g] = core::fingerprint_bounds(anonymized[g]);
              }
            },
            /*min_chunk=*/64);
        for (cdr::Fingerprint& fp : subk) {
          hooks.throw_if_cancelled();
          absorb_into_nearest(std::move(fp), anonymized, group_bounds,
                              config, stats);
        }
        break;
      }
      case core::LeftoverPolicy::kSuppress: {
        for (const cdr::Fingerprint& fp : subk) {
          stats.glove.discarded_fingerprints += fp.group_size();
          stats.glove.deleted_samples += fp.total_contributors();
        }
        break;
      }
    }
  }

  stats.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return stats;
}

}  // namespace glove::shard
