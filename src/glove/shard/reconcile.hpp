// Cross-shard reconciliation: the deterministic final pass that makes the
// sharded output k-anonymous as a whole.
//
// Its input is every fingerprint the runner deferred (border fingerprints
// under BorderPolicy::kHalo plus whole shards whose kept set fell below
// k).  Groups already at or above k pass straight through; the sub-k rest
// is anonymized together over locality-sorted chunks (so cross-tile
// candidate pairs — the reason the fingerprints were deferred — are merge
// candidates again).  A remainder smaller than k falls back to the
// configured leftover policy: absorbed into the nearest finalized group,
// or suppressed.

#ifndef GLOVE_SHARD_RECONCILE_HPP
#define GLOVE_SHARD_RECONCILE_HPP

#include <cstddef>
#include <vector>

#include "glove/cdr/fingerprint.hpp"
#include "glove/shard/config.hpp"
#include "glove/util/hooks.hpp"

namespace glove::shard {

struct ReconcileStats {
  /// Groups produced by the reconciliation GLOVE run.
  std::size_t reconciled_groups = 0;
  /// Leftovers merged into an existing shard-output group.
  std::size_t absorbed = 0;
  /// Inner GLOVE counters of the reconciliation run.
  core::GloveStats glove;
  double seconds = 0.0;
};

/// Reconciles `leftovers` against the shard outputs in `anonymized`
/// (modified in place: reconciled groups are appended, absorbing groups
/// are replaced).  Deterministic: leftovers keep their (shard, member)
/// order and absorption scans groups in stable order with strict-minimum
/// tie-breaking.
[[nodiscard]] ReconcileStats reconcile_leftovers(
    std::vector<cdr::Fingerprint> leftovers,
    std::vector<cdr::Fingerprint>& anonymized, const ShardConfig& config,
    const util::RunHooks& hooks);

}  // namespace glove::shard

#endif  // GLOVE_SHARD_RECONCILE_HPP
