// Cross-shard reconciliation: the deterministic final pass that makes the
// sharded output k-anonymous as a whole.
//
// Its input is every fingerprint the runner deferred (border fingerprints
// under BorderPolicy::kHalo plus whole shards whose kept set fell below
// k).  Groups already at or above k pass straight through; the sub-k rest
// is anonymized together over locality-sorted chunks (so cross-tile
// candidate pairs — the reason the fingerprints were deferred — are merge
// candidates again).  A remainder smaller than k falls back to the
// configured leftover policy: absorbed into the nearest finalized group,
// or suppressed.
//
// Two call shapes expose the same algorithm:
//
//   * reconcile_leftovers — the monolithic form over materialized
//     leftovers (the in-memory wrapper and the rare buffered-absorb tail
//     of a streaming run);
//   * plan_reconcile + reconcile_chunk — the chunk-resumable form the
//     streaming pipeline drives: the schedule is computed from
//     per-leftover bounding geometry and group sizes alone (both already
//     resident after the pass-1 scan), then each GLOVE chunk is
//     materialized by its own rewound pass and fed through
//     reconcile_chunk.  Chunk membership, member order and per-chunk
//     execution are exactly anonymize_chunked's, so the two shapes emit
//     identical bytes.

#ifndef GLOVE_SHARD_RECONCILE_HPP
#define GLOVE_SHARD_RECONCILE_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "glove/cdr/fingerprint.hpp"
#include "glove/core/scalability.hpp"
#include "glove/shard/config.hpp"
#include "glove/util/hooks.hpp"

namespace glove::shard {

struct ReconcileStats {
  /// Groups produced by the reconciliation GLOVE run.
  std::size_t reconciled_groups = 0;
  /// Leftovers merged into an existing shard-output group.
  std::size_t absorbed = 0;
  /// Inner GLOVE counters of the reconciliation run.
  core::GloveStats glove;
  double seconds = 0.0;
};

/// The reconciliation schedule, derived from per-leftover bounding
/// geometry and group sizes alone — never the samples.  Every entry is a
/// position into the leftover sequence (its (shard, member) order).
/// Output order across the whole phase: `passthrough` first, then each
/// chunk's GLOVE output in chunk order, then the `tail` policy result.
struct ReconcilePlan {
  /// Leftovers already hiding >= k users (possible when the input is a
  /// re-anonymization): passed through unchanged, in leftover order.
  std::vector<std::uint32_t> passthrough;
  /// When at least k sub-k leftovers exist: the sub-k positions,
  /// locality-sorted by core::locality_sort_key (ties broken by leftover
  /// order — exactly anonymize_chunked's key) and partitioned into GLOVE
  /// chunks of max(max_shard_users, k) members, never leaving a tail
  /// smaller than k.
  std::vector<std::vector<std::uint32_t>> chunks;
  /// When fewer than k sub-k leftovers exist: their positions in leftover
  /// order, handled by the configured leftover policy (absorb into the
  /// nearest finalized group, or suppress).  Empty whenever `chunks` is
  /// non-empty.
  std::vector<std::uint32_t> tail;
  /// Total sub-k leftovers (the chunk members, or the tail).
  std::size_t subk_count = 0;
};

/// Plans the reconciliation from pass-1 residue.  `bounds[i]` and
/// `group_sizes[i]` describe the i-th deferred leftover; the spans must
/// have equal length (std::invalid_argument otherwise).  Deterministic in
/// its inputs and configuration.
[[nodiscard]] ReconcilePlan plan_reconcile(
    std::span<const core::FingerprintBounds> bounds,
    std::span<const std::uint32_t> group_sizes, const ShardConfig& config);

/// Runs the reconciliation GLOVE over one planned chunk.  `members` must
/// hold the chunk's fingerprints in planned order; finalized groups are
/// handed to `emit` in output order and the inner counters (including the
/// chunk's input/output dataset shape) accumulate into `stats`.  Driving
/// every chunk of a plan through this reproduces anonymize_chunked over
/// the whole sub-k set byte for byte — each chunk is an independent
/// pruned-GLOVE run.  `hooks` forward into the inner run (progress in the
/// inner run's own units; adapt before calling when a different scale is
/// reported upstream).
void reconcile_chunk(std::vector<cdr::Fingerprint> members,
                     const ShardConfig& config, ReconcileStats& stats,
                     const std::function<void(cdr::Fingerprint&&)>& emit,
                     const util::RunHooks& hooks);

/// Counts one suppressed sub-k leftover into `stats`: its hidden users as
/// discarded, its original samples (summed contributors) as deleted — the
/// single deletion definition every suppression path shares.  Used by the
/// monolithic tail below and by the streaming pipeline's tail unit.
void count_suppressed_leftover(const cdr::Fingerprint& leftover,
                               ReconcileStats& stats);

/// Reconciles `leftovers` against the shard outputs in `anonymized`
/// (modified in place: reconciled groups are appended, absorbing groups
/// are replaced).  Deterministic: leftovers keep their (shard, member)
/// order and absorption scans groups in stable order with strict-minimum
/// tie-breaking.  Progress is reported in leftovers consumed out of
/// `leftovers.size()` (fractional within a running GLOVE chunk);
/// cancellation is polled between chunks, inside each chunk's loops and
/// between absorbs.
[[nodiscard]] ReconcileStats reconcile_leftovers(
    std::vector<cdr::Fingerprint> leftovers,
    std::vector<cdr::Fingerprint>& anonymized, const ShardConfig& config,
    const util::RunHooks& hooks);

}  // namespace glove::shard

#endif  // GLOVE_SHARD_RECONCILE_HPP
