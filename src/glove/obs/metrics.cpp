#include "glove/obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <charconv>
#include <map>
#include <mutex>
#include <stdexcept>

namespace glove::obs {
namespace {

/// One thread's slice of every counter and histogram.  Updates are relaxed
/// atomic stores from the owning thread; `snapshot_metrics` reads them from
/// another thread, which is exactly the race relaxed atomics make benign
/// (a snapshot may miss in-flight increments, never tear).
struct ThreadShard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms * kHistogramBuckets>
      hist_counts{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_sums{};
};

/// Plain (mutex-guarded) totals folded in from threads that have exited.
struct RetiredTotals {
  std::array<std::uint64_t, kMaxCounters> counters{};
  std::array<std::uint64_t, kMaxHistograms * kHistogramBuckets> hist_counts{};
  std::array<std::uint64_t, kMaxHistograms> hist_sums{};
};

class Registry {
 public:
  std::uint32_t register_name(std::vector<std::string>& names,
                              std::size_t capacity, std::string_view name,
                              const char* kind) {
    if (!valid_metric_name(name)) {
      throw std::invalid_argument{std::string{"obs: invalid "} + kind +
                                  " name \"" + std::string{name} +
                                  "\" (want [a-z0-9_.]+)"};
    }
    const std::lock_guard lock{mutex_};
    const auto it = std::find(names.begin(), names.end(), name);
    if (it != names.end()) {
      return static_cast<std::uint32_t>(it - names.begin());
    }
    if (names.size() >= capacity) {
      throw std::length_error{std::string{"obs: "} + kind +
                              " capacity exceeded (" + std::string{name} +
                              ")"};
    }
    names.emplace_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
  }

  std::uint32_t register_counter(std::string_view name) {
    return register_name(counter_names_, kMaxCounters, name, "counter");
  }
  std::uint32_t register_gauge(std::string_view name) {
    return register_name(gauge_names_, kMaxGauges, name, "gauge");
  }
  std::uint32_t register_histogram(std::string_view name) {
    return register_name(histogram_names_, kMaxHistograms, name, "histogram");
  }

  void attach(ThreadShard* shard) {
    const std::lock_guard lock{mutex_};
    live_.push_back(shard);
  }

  /// Folds an exiting thread's shard into the retired totals so its
  /// contribution survives the thread (pool teardown, joined workers).
  void detach(ThreadShard* shard) {
    const std::lock_guard lock{mutex_};
    live_.erase(std::remove(live_.begin(), live_.end(), shard), live_.end());
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      retired_.counters[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxHistograms * kHistogramBuckets; ++i) {
      retired_.hist_counts[i] +=
          shard->hist_counts[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      retired_.hist_sums[i] +=
          shard->hist_sums[i].load(std::memory_order_relaxed);
    }
  }

  void set_gauge(std::uint32_t id, double value) noexcept {
    gauges_[id].store(value, std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() {
    const std::lock_guard lock{mutex_};
    MetricsSnapshot snap;
    snap.counters.reserve(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      std::uint64_t total = retired_.counters[i];
      for (const ThreadShard* shard : live_) {
        total += shard->counters[i].load(std::memory_order_relaxed);
      }
      snap.counters.emplace_back(counter_names_[i], total);
    }
    snap.gauges.reserve(gauge_names_.size());
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      snap.gauges.emplace_back(gauge_names_[i],
                               gauges_[i].load(std::memory_order_relaxed));
    }
    snap.histograms.reserve(histogram_names_.size());
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      HistogramSnapshot hist;
      hist.name = histogram_names_[i];
      hist.sum = retired_.hist_sums[i];
      for (const ThreadShard* shard : live_) {
        hist.sum += shard->hist_sums[i].load(std::memory_order_relaxed);
      }
      hist.buckets.assign(kHistogramBuckets, 0);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        const std::size_t slot = i * kHistogramBuckets + b;
        std::uint64_t n = retired_.hist_counts[slot];
        for (const ThreadShard* shard : live_) {
          n += shard->hist_counts[slot].load(std::memory_order_relaxed);
        }
        hist.buckets[b] = n;
        hist.count += n;
      }
      while (!hist.buckets.empty() && hist.buckets.back() == 0) {
        hist.buckets.pop_back();
      }
      snap.histograms.push_back(std::move(hist));
    }
    const auto by_name = [](const auto& a, const auto& b) {
      return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
                return a.name < b.name;
              });
    return snap;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<ThreadShard*> live_;
  RetiredTotals retired_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
};

/// Leaky singleton: thread_local shard destructors run at thread exit,
/// possibly after static destruction, so the registry must outlive them.
Registry& registry() {
  static Registry* instance = new Registry;
  return *instance;
}

/// RAII hook tying a thread's shard lifetime to the registry.
struct ShardHandle {
  ThreadShard shard;
  ShardHandle() { registry().attach(&shard); }
  ~ShardHandle() { registry().detach(&shard); }
  ShardHandle(const ShardHandle&) = delete;
  ShardHandle& operator=(const ShardHandle&) = delete;
};

ThreadShard& local_shard() {
  thread_local ShardHandle handle;
  return handle.shard;
}

std::size_t bucket_index(std::uint64_t value) noexcept {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

}  // namespace

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

void Counter::add(std::uint64_t delta) const noexcept {
  local_shard().counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::set(double value) const noexcept {
  registry().set_gauge(id_, value);
}

void Histogram::observe(std::uint64_t value) const noexcept {
  ThreadShard& shard = local_shard();
  shard.hist_counts[id_ * kHistogramBuckets + bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  shard.hist_sums[id_].fetch_add(value, std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  return Counter{registry().register_counter(name)};
}

Gauge gauge(std::string_view name) {
  return Gauge{registry().register_gauge(name)};
}

Histogram histogram(std::string_view name) {
  return Histogram{registry().register_histogram(name)};
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

MetricsSnapshot snapshot_metrics() { return registry().snapshot(); }

std::string render_metrics_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += "counter ";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    char buffer[32];
    const std::to_chars_result result =
        std::to_chars(buffer, buffer + sizeof buffer, value);
    out += "gauge ";
    out += name;
    out += ' ';
    out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
    out += '\n';
  }
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    out += "histogram ";
    out += hist.name;
    out += " count=";
    out += std::to_string(hist.count);
    out += " sum=";
    out += std::to_string(hist.sum);
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> counter_delta(
    const MetricsSnapshot& before, const MetricsSnapshot& after) {
  std::vector<std::pair<std::string, std::uint64_t>> delta;
  for (const auto& [name, value] : after.counters) {
    const std::uint64_t prior = before.counter_value(name);
    if (value > prior) delta.emplace_back(name, value - prior);
  }
  return delta;
}

}  // namespace glove::obs
