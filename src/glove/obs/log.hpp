// Rate-limited structured stderr logger for long-running pipeline runs.
//
// Lines are `ts level phase key=value ...`:
//
//   12.042 INFO stream.batch batch=3 shards=8 users=3960
//
// Logging is off by default; `--verbose` on the CLI turns it on.  A
// token-bucket cap (kMaxLogLinesPerSecond) keeps per-shard heartbeats from
// flooding CI logs: over-budget lines are counted and reported as
// `suppressed=N` on the next emitted line.  Output goes to stderr only, so
// anonymized output and run reports stay byte-identical with logging on.

#ifndef GLOVE_OBS_LOG_HPP
#define GLOVE_OBS_LOG_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace glove::obs {

/// Lines per second admitted by the rate limiter (per whole process).
inline constexpr int kMaxLogLinesPerSecond = 50;

enum class LogLevel { kInfo, kWarn };

void set_log_verbose(bool on) noexcept;
[[nodiscard]] bool log_verbose() noexcept;

/// Emits one line when verbose logging is on and the rate limiter admits
/// it.  `phase` follows the span/metric naming convention ([a-z0-9_.]+);
/// `message` is the pre-formatted key=value tail.
void log_line(LogLevel level, const char* phase, std::string_view message);

inline void log_info(const char* phase, std::string_view message) {
  log_line(LogLevel::kInfo, phase, message);
}

inline void log_warn(const char* phase, std::string_view message) {
  log_line(LogLevel::kWarn, phase, message);
}

/// Emits a final `suppressed=N` marker line (bypassing the rate limiter)
/// when lines were dropped since the last emitted one, then resets the
/// count.  Call at shutdown/drain: the limiter normally reports drops on
/// the *next* admitted line, which never comes for the last burst before
/// exit.  No-op when verbose logging is off or nothing was suppressed.
void flush_suppressed_log();

/// Formats one `key=value` pair (helper for building message tails).
[[nodiscard]] std::string log_kv(std::string_view key, std::uint64_t value);

}  // namespace glove::obs

#endif  // GLOVE_OBS_LOG_HPP
