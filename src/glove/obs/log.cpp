#include "glove/obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace glove::obs {
namespace {

std::atomic<bool> g_verbose{false};

using Clock = std::chrono::steady_clock;

/// Token-bucket state, all guarded by one mutex: logging is rare compared
/// to the work being logged, and interleaved half-lines from concurrent
/// writers would defeat the structured format anyway.
struct LimiterState {
  std::mutex mutex;
  Clock::time_point t0{};
  bool started = false;
  Clock::time_point window_start{};
  int lines_in_window = 0;
  std::uint64_t suppressed = 0;
};

LimiterState& limiter() {
  static LimiterState* instance = new LimiterState;
  return *instance;
}

const char* level_tag(LogLevel level) noexcept {
  return level == LogLevel::kWarn ? "WARN" : "INFO";
}

}  // namespace

void set_log_verbose(bool on) noexcept {
  g_verbose.store(on, std::memory_order_relaxed);
}

bool log_verbose() noexcept {
  return g_verbose.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const char* phase, std::string_view message) {
  if (!log_verbose()) return;
  LimiterState& state = limiter();
  const std::lock_guard lock{state.mutex};
  const Clock::time_point now = Clock::now();
  if (!state.started) {
    state.started = true;
    state.t0 = now;
    state.window_start = now;
  }
  if (now - state.window_start >= std::chrono::seconds{1}) {
    state.window_start = now;
    state.lines_in_window = 0;
  }
  if (state.lines_in_window >= kMaxLogLinesPerSecond) {
    ++state.suppressed;
    return;
  }
  ++state.lines_in_window;
  const double ts =
      std::chrono::duration<double>(now - state.t0).count();
  if (state.suppressed > 0) {
    std::fprintf(stderr, "%.3f %s %s %.*s suppressed=%llu\n", ts,
                 level_tag(level), phase, static_cast<int>(message.size()),
                 message.data(),
                 static_cast<unsigned long long>(state.suppressed));
    state.suppressed = 0;
  } else {
    std::fprintf(stderr, "%.3f %s %s %.*s\n", ts, level_tag(level), phase,
                 static_cast<int>(message.size()), message.data());
  }
}

void flush_suppressed_log() {
  if (!log_verbose()) return;
  LimiterState& state = limiter();
  const std::lock_guard lock{state.mutex};
  if (state.suppressed == 0) return;
  const Clock::time_point now = Clock::now();
  const double ts = state.started
                        ? std::chrono::duration<double>(now - state.t0).count()
                        : 0.0;
  // Deliberately outside the token budget: this is the one line whose
  // whole job is making drops visible, so it must never be dropped.
  std::fprintf(stderr, "%.3f %s %s suppressed=%llu\n", ts,
               level_tag(LogLevel::kWarn), "log.flush",
               static_cast<unsigned long long>(state.suppressed));
  state.suppressed = 0;
}

std::string log_kv(std::string_view key, std::uint64_t value) {
  std::string out{key};
  out += '=';
  out += std::to_string(value);
  return out;
}

}  // namespace glove::obs
