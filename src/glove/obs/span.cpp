#include "glove/obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "glove/stats/json.hpp"

namespace glove::obs {
namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t ts_ns;
  char phase;  // 'B' or 'E'
  std::uint8_t arg_count;
  std::array<std::pair<const char*, std::uint64_t>, kMaxSpanArgs> args;
};

std::atomic<bool> g_enabled{false};

/// Per-thread event buffer.  The owning thread appends; the exporting
/// thread drains.  Each append takes the buffer's own mutex — uncontended
/// in steady state (the exporter only touches it at start/stop), and spans
/// are coarse (per pass / shard / chunk), so the lock is not a hot cost.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

class Recorder {
 public:
  void attach(ThreadBuffer* buffer) {
    const std::lock_guard lock{mutex_};
    buffer->tid = next_tid_++;
    live_.push_back(buffer);
  }

  /// Preserves an exiting thread's events (worker pools may tear down
  /// before export).
  void detach(ThreadBuffer* buffer) {
    const std::lock_guard lock{mutex_};
    live_.erase(std::remove(live_.begin(), live_.end(), buffer), live_.end());
    const std::lock_guard buffer_lock{buffer->mutex};
    retired_.emplace_back(buffer->tid, std::move(buffer->events));
  }

  void start() {
    const std::lock_guard lock{mutex_};
    retired_.clear();
    for (ThreadBuffer* buffer : live_) {
      const std::lock_guard buffer_lock{buffer->mutex};
      buffer->events.clear();
    }
    t0_ = std::chrono::steady_clock::now();
    g_enabled.store(true, std::memory_order_release);
  }

  std::string stop_and_render() {
    g_enabled.store(false, std::memory_order_release);
    const std::lock_guard lock{mutex_};
    std::vector<std::pair<std::uint32_t, std::vector<TraceEvent>>> streams;
    streams.swap(retired_);
    for (ThreadBuffer* buffer : live_) {
      const std::lock_guard buffer_lock{buffer->mutex};
      streams.emplace_back(buffer->tid, std::move(buffer->events));
      buffer->events.clear();
    }
    return render(streams);
  }

  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

 private:
  static std::string render(
      std::vector<std::pair<std::uint32_t, std::vector<TraceEvent>>>&
          streams) {
    // Stable tid order keeps the document layout reproducible for a given
    // set of streams (timestamps still vary run to run, by design).
    std::sort(streams.begin(), streams.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    stats::Json events = stats::Json::array();
    for (auto& [tid, stream] : streams) {
      // Spans open at the stop cut contributed a 'B' with no matching 'E'
      // (and a start mid-span can leave an orphan 'E'); match begins and
      // ends with a stack and drop the unmatched ones so every exported
      // stream balances.
      std::vector<char> keep(stream.size(), 1);
      std::vector<std::size_t> open;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        if (stream[i].phase == 'B') {
          open.push_back(i);
        } else if (open.empty()) {
          keep[i] = 0;
        } else {
          open.pop_back();
        }
      }
      for (const std::size_t i : open) keep[i] = 0;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        if (!keep[i]) continue;
        const TraceEvent& event = stream[i];
        stats::Json entry = stats::Json::object();
        entry.set("name", event.name);
        entry.set("cat", "glove");
        entry.set("ph", std::string(1, event.phase));
        entry.set("ts", static_cast<double>(event.ts_ns) / 1000.0);
        entry.set("pid", 1);
        entry.set("tid", static_cast<std::uint64_t>(tid));
        if (event.arg_count > 0) {
          stats::Json args = stats::Json::object();
          for (std::uint8_t a = 0; a < event.arg_count; ++a) {
            args.set(event.args[a].first, event.args[a].second);
          }
          entry.set("args", std::move(args));
        }
        events.push(std::move(entry));
      }
    }
    stats::Json doc = stats::Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    return doc.dump(0) + "\n";
  }

  std::mutex mutex_;
  std::vector<ThreadBuffer*> live_;
  std::vector<std::pair<std::uint32_t, std::vector<TraceEvent>>> retired_;
  std::uint32_t next_tid_ = 1;
  std::chrono::steady_clock::time_point t0_{};
};

/// Leaky singleton for the same reason as the metrics registry: thread
/// buffers detach at thread exit, which may outrun static destruction.
Recorder& recorder() {
  static Recorder* instance = new Recorder;
  return *instance;
}

struct BufferHandle {
  ThreadBuffer buffer;
  BufferHandle() { recorder().attach(&buffer); }
  ~BufferHandle() { recorder().detach(&buffer); }
  BufferHandle(const BufferHandle&) = delete;
  BufferHandle& operator=(const BufferHandle&) = delete;
};

ThreadBuffer& local_buffer() {
  thread_local BufferHandle handle;
  return handle.buffer;
}

void record(const char* name, char phase, std::uint8_t arg_count,
            const std::array<std::pair<const char*, std::uint64_t>,
                             kMaxSpanArgs>& args) {
  TraceEvent event;
  event.name = name;
  event.ts_ns = recorder().now_ns();
  event.phase = phase;
  event.arg_count = arg_count;
  event.args = args;
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard lock{buffer.mutex};
  buffer.events.push_back(event);
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_enabled.load(std::memory_order_acquire);
}

void start_tracing() { recorder().start(); }

std::string stop_tracing_and_render() { return recorder().stop_and_render(); }

Span::Span(const char* name) noexcept
    : name_{name}, armed_{tracing_enabled()} {
  if (armed_) record(name_, 'B', 0, {});
}

Span::~Span() {
  // Re-check enabled so spans straddling a stop cut do not append an end
  // event after their stream was exported.
  if (armed_ && tracing_enabled()) record(name_, 'E', arg_count_, args_);
}

void Span::arg(const char* key, std::uint64_t value) noexcept {
  if (!armed_ || arg_count_ >= kMaxSpanArgs) return;
  args_[arg_count_] = {key, value};
  ++arg_count_;
}

}  // namespace glove::obs
