// RAII span tracing with Chrome trace-event JSON export.
//
// Spans record nested begin/end events per thread into thread-local
// buffers; `GLOVE_SPAN("phase.name")` costs one atomic load when tracing
// is off (the default), so instrumentation can stay in hot paths
// permanently.  `start_tracing()` / `stop_tracing_and_render()` bracket a
// run; the rendered document loads directly in Chrome's about:tracing /
// Perfetto viewer and is validated by tools/check_trace.py.
//
// Span names follow the same [a-z0-9_.]+ convention as metrics and must be
// string literals (their storage must outlive the trace; glove_lint's
// obs-naming rule checks the literal sites).  Because end events are
// emitted by destructors, every thread's event stream is strictly nested —
// the validator checks balance, Chrome renders proper flame stacks.

#ifndef GLOVE_OBS_SPAN_HPP
#define GLOVE_OBS_SPAN_HPP

#include <array>
#include <cstdint>
#include <string>
#include <utility>

namespace glove::obs {

/// Max key/value pairs attachable to one span (shown in the viewer's
/// argument pane).  Extra `arg` calls are dropped, not an error.
inline constexpr std::size_t kMaxSpanArgs = 4;

/// True while a trace is being recorded.  Single relaxed atomic load.
[[nodiscard]] bool tracing_enabled() noexcept;

/// Clears any previous trace and starts recording (timestamps restart at
/// zero).  Call before the work to be traced; one trace at a time.
void start_tracing();

/// Stops recording and renders every buffered event as a Chrome
/// trace-event JSON document ({"traceEvents": [...]}).  Spans still open
/// on other threads are dropped cleanly (their end would land after the
/// cut), keeping the exported stream balanced.
[[nodiscard]] std::string stop_tracing_and_render();

/// RAII scope: records a begin event at construction and the matching end
/// event (carrying any attached args) at destruction.  No-op when tracing
/// was off at construction.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches `key`=`value` to the span's end event.  `key` must be a
  /// string literal (stored by pointer).
  void arg(const char* key, std::uint64_t value) noexcept;

 private:
  const char* name_;
  bool armed_;
  std::uint8_t arg_count_ = 0;
  std::array<std::pair<const char*, std::uint64_t>, kMaxSpanArgs> args_{};
};

}  // namespace glove::obs

#define GLOVE_OBS_CAT2(a, b) a##b
#define GLOVE_OBS_CAT(a, b) GLOVE_OBS_CAT2(a, b)

/// Anonymous span covering the enclosing scope.
#define GLOVE_SPAN(name) \
  ::glove::obs::Span GLOVE_OBS_CAT(glove_span_, __LINE__) { name }

/// Named span, for attaching args: GLOVE_SPAN_NAMED(span, "x"); span.arg(...)
#define GLOVE_SPAN_NAMED(var, name) \
  ::glove::obs::Span var { name }

#endif  // GLOVE_OBS_SPAN_HPP
