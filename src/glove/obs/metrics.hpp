// Thread-safe metrics registry: counters, gauges, and log-scale histograms.
//
// Hot-path updates go to per-thread shards (relaxed atomics, no locks), so
// shard workers can count events without contention; `snapshot()` folds the
// shards into one deterministic, name-sorted view.  Metric handles are
// registered once (idempotent by name) and are cheap value types, so the
// idiom is a function-local static:
//
//   static const obs::Counter c_rows = obs::counter("source.csv.rows_read");
//   c_rows.add(batch.size());
//
// Only *deterministic* quantities (counts, bytes, passes) may flow into the
// run report via counters; wall-clock durations belong in histograms and
// spans, which stay trace-side so goldens never see timing jitter.
//
// Names must match [a-z0-9_.]+ (enforced here at registration and by the
// glove_lint obs-naming rule at the literal site).

#ifndef GLOVE_OBS_METRICS_HPP
#define GLOVE_OBS_METRICS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace glove::obs {

/// Capacity limits for the fixed per-thread shard arrays.  Registration
/// beyond a limit throws std::length_error: limits are sized ~4x above
/// current usage, so hitting one means a leak of dynamically generated
/// metric names, not a tuning problem.
inline constexpr std::size_t kMaxCounters = 160;
inline constexpr std::size_t kMaxGauges = 32;
inline constexpr std::size_t kMaxHistograms = 32;

/// Histogram buckets are fixed log2 scale: bucket 0 counts value 0 and
/// bucket i counts values with bit_width i, i.e. [2^(i-1), 2^i).  The top
/// bucket absorbs everything wider.
inline constexpr std::size_t kHistogramBuckets = 48;

/// Monotonic event counter.  Copyable handle; `add` touches only the
/// calling thread's shard.
class Counter {
 public:
  void add(std::uint64_t delta = 1) const noexcept;

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t id) noexcept : id_{id} {}
  std::uint32_t id_;
};

/// Last-write-wins instantaneous value (e.g. queue depth, heap size).
/// Writes are rare, so gauges are plain process-global atomics.
class Gauge {
 public:
  void set(double value) const noexcept;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::uint32_t id) noexcept : id_{id} {}
  std::uint32_t id_;
};

/// Log-scale distribution (typically nanosecond durations or byte sizes).
class Histogram {
 public:
  void observe(std::uint64_t value) const noexcept;

 private:
  friend Histogram histogram(std::string_view name);
  explicit Histogram(std::uint32_t id) noexcept : id_{id} {}
  std::uint32_t id_;
};

/// Registers (or looks up) a metric by name.  Thread-safe and idempotent:
/// the same name always yields the same slot.  Throws std::invalid_argument
/// on a name outside [a-z0-9_.]+ and std::length_error past capacity.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name);

/// True when `name` is non-empty and matches [a-z0-9_.]+ — the project
/// naming convention for spans and metrics.
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// bucket[i] per the fixed log2 scale above; trailing zeros trimmed.
  std::vector<std::uint64_t> buckets;
};

/// Point-in-time fold of every thread's shard (plus totals retired by
/// exited threads).  All vectors are sorted by name, so two snapshots of
/// the same state render identically.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of counter `name`, or 0 when never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Deterministic plain-text rendering of a snapshot — one line per metric
/// in the snapshot's (name-sorted) order:
///
///   counter serve.events_ingested 1200
///   gauge serve.queue_depth 0
///   histogram source.read_ns count=12 sum=34567
///
/// Gauges use shortest-round-trip doubles (std::to_chars), so two
/// snapshots of the same state render byte-identically.  This is the
/// admin-socket `metrics` reply of glove-serve.
[[nodiscard]] std::string render_metrics_text(const MetricsSnapshot& snapshot);

/// Counter increments between two snapshots (`before` taken first), sorted
/// by name with zero-delta entries dropped.  This is what a single run
/// contributes, independent of earlier runs in the same process.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
counter_delta(const MetricsSnapshot& before, const MetricsSnapshot& after);

}  // namespace glove::obs

#endif  // GLOVE_OBS_METRICS_HPP
