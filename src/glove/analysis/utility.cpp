#include "glove/analysis/utility.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "glove/stats/stats.hpp"

namespace glove::analysis {

namespace {

constexpr double kMinutesPerDay = 1440.0;
constexpr double kNightStart = 22.0 * 60.0;
constexpr double kNightEnd = 6.0 * 60.0;

/// Overlap (minutes) between [t, t+dt) and the nightly 22:00-06:00 window,
/// accumulated over the days the interval spans.
double night_overlap_min(double t, double dt) {
  double overlap = 0.0;
  double remaining = dt;
  double cursor = t;
  // Cap the scan at 14 days of interval length; longer samples are treated
  // as covering all nights uniformly.
  if (dt >= 14.0 * kMinutesPerDay) return dt * (8.0 / 24.0);
  while (remaining > 0.0) {
    const double day_start =
        std::floor(cursor / kMinutesPerDay) * kMinutesPerDay;
    const double in_day = cursor - day_start;
    const double until_day_end = kMinutesPerDay - in_day;
    const double chunk = std::min(remaining, until_day_end);
    // Night portions of this day: [0, 06:00) and [22:00, 24:00).
    const double lo = in_day;
    const double hi = in_day + chunk;
    overlap += std::max(0.0, std::min(hi, kNightEnd) - lo);
    overlap += std::max(0.0, hi - std::max(lo, kNightStart));
    cursor += chunk;
    remaining -= chunk;
  }
  return overlap;
}

/// Iterates the tiles covered by a sample's rectangle (capped), invoking
/// `fn(cell, share)` with shares summing to 1.
template <typename Fn>
void spread_over_tiles(const cdr::Sample& s, const geo::Grid& grid,
                       const Fn& fn) {
  const geo::GridCell lo = grid.cell_of({s.sigma.x, s.sigma.y});
  // Use the rectangle's interior end so an extent flush with a tile edge
  // does not bleed into the next tile.
  const double eps = grid.cell_size_m() * 1e-9;
  const geo::GridCell hi = grid.cell_of(
      {std::max(s.sigma.x, s.sigma.x_end() - eps),
       std::max(s.sigma.y, s.sigma.y_end() - eps)});
  const std::int64_t nx = static_cast<std::int64_t>(hi.ix) - lo.ix + 1;
  const std::int64_t ny = static_cast<std::int64_t>(hi.iy) - lo.iy + 1;
  constexpr std::int64_t kMaxTiles = 64;  // cap for enormous samples
  if (nx * ny > kMaxTiles) {
    // Too coarse to attribute: drop onto the centre tile.
    fn(grid.cell_of({s.sigma.x + s.sigma.dx / 2, s.sigma.y + s.sigma.dy / 2}),
       1.0);
    return;
  }
  const double share = 1.0 / static_cast<double>(nx * ny);
  for (std::int32_t ix = lo.ix; ix <= hi.ix; ++ix) {
    for (std::int32_t iy = lo.iy; iy <= hi.iy; ++iy) {
      fn(geo::GridCell{ix, iy}, share);
    }
  }
}

}  // namespace

std::unordered_map<cdr::UserId, geo::PlanarPoint> HomeDetection::detect(
    const cdr::FingerprintDataset& data) const {
  const geo::Grid grid{tile_m};
  std::unordered_map<cdr::UserId, geo::PlanarPoint> homes;
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    std::unordered_map<geo::GridCell, double> weight;
    for (const cdr::Sample& s : fp.samples()) {
      const double night = night_overlap_min(s.tau.t, std::max(s.tau.dt, 1.0));
      if (night <= 0.0) continue;
      // Weight by the *fraction* of the sample that is nightly, so heavily
      // time-generalized samples do not dominate.
      const double w = night / std::max(s.tau.dt, 1.0);
      spread_over_tiles(s, grid, [&](geo::GridCell cell, double share) {
        weight[cell] += w * share;
      });
    }
    if (weight.empty()) continue;
    geo::GridCell best{};
    double best_weight = -1.0;
    // Hash-order iteration is fine here: the argmax carries a full
    // (weight, ix, iy) tie-break, so every traversal order elects the
    // same cell.
    for (const auto& [cell, w] : weight) {
      if (w > best_weight ||
          (w == best_weight && (cell.ix < best.ix ||
                                (cell.ix == best.ix && cell.iy < best.iy)))) {
        best_weight = w;
        best = cell;
      }
    }
    const geo::PlanarPoint center = grid.cell_center(best);
    for (const cdr::UserId user : fp.members()) homes[user] = center;
  }
  return homes;
}

HomeUtilityReport compare_homes(const cdr::FingerprintDataset& original,
                                const cdr::FingerprintDataset& published,
                                double tile_m) {
  const HomeDetection detector{tile_m};
  const auto truth = detector.detect(original);
  const auto estimate = detector.detect(published);

  HomeUtilityReport report;
  std::vector<double> displacements;
  std::size_t same = 0;
  // Walk users in id order, not hash order: the displacement vector
  // feeds a mean whose floating-point sum depends on accumulation
  // order, and the report must be bit-stable across libstdc++ builds.
  std::vector<cdr::UserId> users;
  users.reserve(truth.size());
  for (const auto& [user, true_home] : truth) users.push_back(user);
  std::sort(users.begin(), users.end());
  for (const cdr::UserId user : users) {
    const auto it = estimate.find(user);
    if (it == estimate.end()) continue;
    const double d = geo::planar_distance_m(truth.at(user), it->second);
    displacements.push_back(d);
    if (d < tile_m / 2.0) ++same;
  }
  report.users_compared = displacements.size();
  if (!displacements.empty()) {
    report.same_tile_fraction =
        static_cast<double>(same) / static_cast<double>(displacements.size());
    report.median_displacement_m = stats::quantile(displacements, 0.5);
    report.mean_displacement_m = stats::summarize(displacements).mean;
  }
  return report;
}

std::unordered_map<geo::GridCell, double> population_density(
    const cdr::FingerprintDataset& data, double tile_m) {
  const geo::Grid grid{tile_m};
  std::unordered_map<geo::GridCell, double> density;
  double total = 0.0;
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    const auto users = static_cast<double>(fp.group_size());
    for (const cdr::Sample& s : fp.samples()) {
      spread_over_tiles(s, grid, [&](geo::GridCell cell, double share) {
        density[cell] += users * share;
      });
      total += users;
    }
  }
  if (total > 0.0) {
    // Element-wise transform: each mass is scaled independently, so
    // hash-order traversal cannot change any value.
    for (auto& [cell, mass] : density) mass /= total;
  }
  return density;
}

namespace {

/// Snapshot of a density map in canonical (ix, iy) cell order, so
/// floating-point accumulations over it are independent of hash order.
std::vector<std::pair<geo::GridCell, double>> sorted_cells(
    const std::unordered_map<geo::GridCell, double>& density) {
  std::vector<std::pair<geo::GridCell, double>> cells{density.begin(),
                                                      density.end()};
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    if (a.first.ix != b.first.ix) return a.first.ix < b.first.ix;
    return a.first.iy < b.first.iy;
  });
  return cells;
}

}  // namespace

double density_distance(const std::unordered_map<geo::GridCell, double>& a,
                        const std::unordered_map<geo::GridCell, double>& b) {
  double distance = 0.0;
  for (const auto& [cell, mass] : sorted_cells(a)) {
    const auto it = b.find(cell);
    distance += std::abs(mass - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [cell, mass] : sorted_cells(b)) {
    if (!a.contains(cell)) distance += mass;
  }
  return distance / 2.0;  // total variation
}

std::array<double, 24> hourly_profile(const cdr::FingerprintDataset& data) {
  std::array<double, 24> profile{};
  double total = 0.0;
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    const auto users = static_cast<double>(fp.group_size());
    for (const cdr::Sample& s : fp.samples()) {
      const double dt = std::max(s.tau.dt, 1.0);
      // Spread the sample's unit mass over the hours its interval covers.
      double cursor = s.tau.t;
      double remaining = dt;
      while (remaining > 0.0) {
        const double hour_start = std::floor(cursor / 60.0) * 60.0;
        const double chunk = std::min(remaining, hour_start + 60.0 - cursor);
        const auto hour = static_cast<std::size_t>(
            std::fmod(std::floor(cursor / 60.0), 24.0));
        profile[hour] += users * chunk / dt;
        cursor += chunk;
        remaining -= chunk;
      }
      total += users;
    }
  }
  if (total > 0.0) {
    for (double& share : profile) share /= total;
  }
  return profile;
}

double profile_distance(const std::array<double, 24>& a,
                        const std::array<double, 24>& b) {
  double distance = 0.0;
  for (std::size_t h = 0; h < 24; ++h) distance += std::abs(a[h] - b[h]);
  return distance / 2.0;
}

}  // namespace glove::analysis
