#include "glove/analysis/anonymizability.hpp"

#include <algorithm>
#include <limits>

#include "glove/stats/stats.hpp"
#include "glove/util/parallel.hpp"

namespace glove::analysis {

std::vector<UserStretchProfile> stretch_profiles(
    const cdr::FingerprintDataset& data,
    const std::vector<core::KGapEntry>& kgaps,
    const core::StretchLimits& limits) {
  std::vector<UserStretchProfile> profiles(data.size());
  util::parallel_for(
      data.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t a = begin; a < end; ++a) {
          UserStretchProfile& profile = profiles[a];
          // Disaggregates one direction of eq. 10: each sample of `outer`
          // matched to the cheapest sample of `inner`.
          const auto collect = [&](const cdr::Fingerprint& outer,
                                   const cdr::Fingerprint& inner) {
            for (const cdr::Sample& so : outer.samples()) {
              core::SampleStretch best{};
              double best_total = std::numeric_limits<double>::infinity();
              for (const cdr::Sample& si : inner.samples()) {
                const core::SampleStretch d = core::sample_stretch(
                    so, outer.group_size(), si, inner.group_size(), limits);
                if (d.total() < best_total) {
                  best_total = d.total();
                  best = d;
                }
              }
              profile.total.push_back(best.total());
              profile.spatial.push_back(best.spatial);
              profile.temporal.push_back(best.temporal);
            }
          };
          for (const std::size_t b : kgaps[a].neighbors) {
            const cdr::Fingerprint& fa = data[a];
            const cdr::Fingerprint& fb = data[b];
            if (fa.empty() || fb.empty()) continue;
            if (fa.size() > fb.size()) {
              collect(fa, fb);
            } else if (fb.size() > fa.size()) {
              collect(fb, fa);
            } else {
              // Tied lengths: eq. 10 averages both directions; collecting
              // the raw efforts of both passes keeps the profile mean equal
              // to the fingerprint stretch effort (both have m entries).
              collect(fa, fb);
              collect(fb, fa);
            }
          }
        }
      },
      /*min_chunk=*/1);
  return profiles;
}

TailAnalysis analyze_tails(const std::vector<UserStretchProfile>& profiles) {
  TailAnalysis analysis;
  analysis.twi_total.reserve(profiles.size());
  analysis.twi_spatial.reserve(profiles.size());
  analysis.twi_temporal.reserve(profiles.size());
  analysis.temporal_share.reserve(profiles.size());
  for (const UserStretchProfile& p : profiles) {
    if (p.total.empty()) continue;
    analysis.twi_total.push_back(stats::tail_weight_index(p.total));
    analysis.twi_spatial.push_back(stats::tail_weight_index(p.spatial));
    analysis.twi_temporal.push_back(stats::tail_weight_index(p.temporal));
    double spatial_sum = 0.0;
    double temporal_sum = 0.0;
    for (const double v : p.spatial) spatial_sum += v;
    for (const double v : p.temporal) temporal_sum += v;
    const double total = spatial_sum + temporal_sum;
    analysis.temporal_share.push_back(total > 0.0 ? temporal_sum / total
                                                  : 0.0);
  }
  return analysis;
}

}  // namespace glove::analysis
