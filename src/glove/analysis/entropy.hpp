// Mobility-regularity metrics from the human-mobility literature (Song et
// al., Science 2010), used to validate that the synthetic CDR substrate
// behaves like the real traces the paper studied: visitation frequencies
// are Zipf-like, entropies sit well below the random baseline, and
// inter-event times are bursty.

#ifndef GLOVE_ANALYSIS_ENTROPY_HPP
#define GLOVE_ANALYSIS_ENTROPY_HPP

#include <vector>

#include "glove/cdr/fingerprint.hpp"

namespace glove::analysis {

/// Random entropy: log2 of the number of distinct locations (tiles of
/// `tile_m`) the user visited — the entropy of a user who visits each of
/// its locations equally often.
[[nodiscard]] double random_entropy_bits(const cdr::Fingerprint& fp,
                                         double tile_m = 1'000.0);

/// Temporal-uncorrelated entropy: Shannon entropy of the user's location
/// visitation frequencies.  Always <= random entropy; the gap measures the
/// preferential-return regularity real CDR exhibits.
[[nodiscard]] double location_entropy_bits(const cdr::Fingerprint& fp,
                                           double tile_m = 1'000.0);

/// Sorted (descending) visitation frequencies of the user's tiles; the
/// first entry is the home share (typically dominant in CDR).
[[nodiscard]] std::vector<double> visit_frequencies(const cdr::Fingerprint& fp,
                                                    double tile_m = 1'000.0);

/// Inter-event times (minutes) between consecutive samples of the
/// fingerprint.  Real CDR is bursty: the distribution is heavy-tailed
/// relative to an exponential with the same mean.
[[nodiscard]] std::vector<double> inter_event_times_min(
    const cdr::Fingerprint& fp);

}  // namespace glove::analysis

#endif  // GLOVE_ANALYSIS_ENTROPY_HPP
