// Dataset descriptors: the per-dataset summary quantities quoted in Sec. 3
// and Sec. 7.3 (population, fingerprint lengths, radius of gyration),
// used to validate that the synthetic substrates match the real traces'
// statistical profile and to annotate experiment output.

#ifndef GLOVE_ANALYSIS_DESCRIPTORS_HPP
#define GLOVE_ANALYSIS_DESCRIPTORS_HPP

#include <cstdint>

#include "glove/cdr/dataset.hpp"

namespace glove::analysis {

/// Radius of gyration of a fingerprint (metres): RMS distance of sample
/// rectangle centres from their centroid.  The paper reports medians of
/// 1.8-2 km on the D4D data (Sec. 7.3).
[[nodiscard]] double radius_of_gyration_m(const cdr::Fingerprint& fp);

/// Aggregate dataset description.
struct DatasetDescriptor {
  std::size_t fingerprints = 0;
  std::uint64_t users = 0;
  std::uint64_t samples = 0;
  double mean_fingerprint_length = 0.0;
  double median_fingerprint_length = 0.0;
  double samples_per_user_per_day = 0.0;
  double timespan_days = 0.0;
  double median_radius_of_gyration_m = 0.0;
  double mean_radius_of_gyration_m = 0.0;
};

[[nodiscard]] DatasetDescriptor describe(const cdr::FingerprintDataset& data);

}  // namespace glove::analysis

#endif  // GLOVE_ANALYSIS_DESCRIPTORS_HPP
