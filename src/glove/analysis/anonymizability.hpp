// The Sec. 5 anonymizability analysis: disaggregates each user's k-gap into
// per-sample stretch efforts, separates spatial and temporal components
// (the sets S_a^k and T_a^k of Sec. 5.3), and derives the Tail Weight Index
// and temporal-share statistics behind Fig. 5.

#ifndef GLOVE_ANALYSIS_ANONYMIZABILITY_HPP
#define GLOVE_ANALYSIS_ANONYMIZABILITY_HPP

#include <cstdint>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/core/kgap.hpp"
#include "glove/core/stretch.hpp"

namespace glove::analysis {

/// The disaggregated stretch efforts of one user towards its k-1 nearest
/// fingerprints: one entry per (sample of the longer fingerprint, nearest
/// neighbour) matched pair, as produced by eq. 10.
struct UserStretchProfile {
  std::vector<double> total;     ///< delta values (eq. 1)
  std::vector<double> spatial;   ///< w_sigma * phi_sigma components
  std::vector<double> temporal;  ///< w_tau * phi_tau components
};

/// Computes the stretch profile of every user given the k-gap neighbour
/// sets (from core::k_gaps).  Parallel over users; deterministic.
[[nodiscard]] std::vector<UserStretchProfile> stretch_profiles(
    const cdr::FingerprintDataset& data,
    const std::vector<core::KGapEntry>& kgaps,
    const core::StretchLimits& limits = {});

/// The Fig. 5 aggregates across users.
struct TailAnalysis {
  /// Per-user TWI of the delta / spatial / temporal distributions (Fig. 5a).
  std::vector<double> twi_total;
  std::vector<double> twi_spatial;
  std::vector<double> twi_temporal;
  /// Per-user temporal share of the total stretch effort,
  /// sum(T_a^k) / (sum(S_a^k) + sum(T_a^k)) in [0, 1] (Fig. 5b).
  std::vector<double> temporal_share;
};

[[nodiscard]] TailAnalysis analyze_tails(
    const std::vector<UserStretchProfile>& profiles);

}  // namespace glove::analysis

#endif  // GLOVE_ANALYSIS_ANONYMIZABILITY_HPP
