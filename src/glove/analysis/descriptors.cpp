#include "glove/analysis/descriptors.hpp"

#include <cmath>

#include "glove/stats/stats.hpp"

namespace glove::analysis {

double radius_of_gyration_m(const cdr::Fingerprint& fp) {
  if (fp.empty()) return 0.0;
  double cx = 0.0;
  double cy = 0.0;
  for (const cdr::Sample& s : fp.samples()) {
    cx += s.sigma.x + s.sigma.dx / 2;
    cy += s.sigma.y + s.sigma.dy / 2;
  }
  const auto n = static_cast<double>(fp.size());
  cx /= n;
  cy /= n;
  double ss = 0.0;
  for (const cdr::Sample& s : fp.samples()) {
    const double dx = s.sigma.x + s.sigma.dx / 2 - cx;
    const double dy = s.sigma.y + s.sigma.dy / 2 - cy;
    ss += dx * dx + dy * dy;
  }
  return std::sqrt(ss / n);
}

DatasetDescriptor describe(const cdr::FingerprintDataset& data) {
  DatasetDescriptor d;
  d.fingerprints = data.size();
  d.users = data.total_users();
  d.samples = data.total_samples();
  d.mean_fingerprint_length = data.mean_fingerprint_length();
  if (data.empty()) return d;

  std::vector<double> lengths;
  std::vector<double> rgyr;
  lengths.reserve(data.size());
  rgyr.reserve(data.size());
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    lengths.push_back(static_cast<double>(fp.size()));
    rgyr.push_back(radius_of_gyration_m(fp));
  }
  d.median_fingerprint_length = stats::quantile(lengths, 0.5);
  d.median_radius_of_gyration_m = stats::quantile(rgyr, 0.5);
  d.mean_radius_of_gyration_m = stats::summarize(rgyr).mean;

  const auto span = data.time_span();
  d.timespan_days = (span.end_min - span.begin_min) / 1440.0;
  if (d.timespan_days > 0.0 && d.users > 0) {
    d.samples_per_user_per_day = static_cast<double>(d.samples) /
                                 static_cast<double>(d.users) /
                                 d.timespan_days;
  }
  return d;
}

}  // namespace glove::analysis
