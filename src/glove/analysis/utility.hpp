// Data-utility metrics: does the anonymized dataset still support the
// analyses the paper argues k-anonymized data is good for (Sec. 2.4) —
// routine-behaviour studies (home detection) and aggregate statistics
// (population distributions)?
//
// Each metric compares a published (possibly anonymized) dataset against
// the original ground truth.

#ifndef GLOVE_ANALYSIS_UTILITY_HPP
#define GLOVE_ANALYSIS_UTILITY_HPP

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "glove/cdr/dataset.hpp"
#include "glove/geo/geo.hpp"

namespace glove::analysis {

/// Home-detection: estimates each user's home as the modal night-time
/// (22:00-06:00) tile of its published record, at granularity `tile_m`.
/// Samples wider than a tile spread fractional weight over the tiles they
/// cover (capped for efficiency); time-generalized samples count by their
/// night-hour overlap.
struct HomeDetection {
  double tile_m = 1'000.0;

  /// Per-user estimated home tile centre; users with no usable samples are
  /// skipped (absent from the map).
  [[nodiscard]] std::unordered_map<cdr::UserId, geo::PlanarPoint> detect(
      const cdr::FingerprintDataset& data) const;
};

/// Home-preservation report: how far the homes detected on the published
/// data are from those detected on the original data.
struct HomeUtilityReport {
  std::size_t users_compared = 0;
  /// Fraction of users whose detected home tile is unchanged.
  double same_tile_fraction = 0.0;
  /// Median/mean displacement of the detected home (metres).
  double median_displacement_m = 0.0;
  double mean_displacement_m = 0.0;
};

[[nodiscard]] HomeUtilityReport compare_homes(
    const cdr::FingerprintDataset& original,
    const cdr::FingerprintDataset& published, double tile_m = 1'000.0);

/// Spatial population distribution: per-tile share of user-weighted
/// samples.  Wide samples spread uniformly over the tiles they cover.
[[nodiscard]] std::unordered_map<geo::GridCell, double> population_density(
    const cdr::FingerprintDataset& data, double tile_m);

/// Total-variation-style distance between two spatial distributions:
/// 0 = identical, 1 = disjoint.  The paper's aggregate-statistics utility
/// criterion: small values mean land-use / population studies survive
/// anonymization.
[[nodiscard]] double density_distance(
    const std::unordered_map<geo::GridCell, double>& a,
    const std::unordered_map<geo::GridCell, double>& b);

/// Hourly activity profile (24 shares summing to 1) of a dataset,
/// spreading time-generalized samples over the hours they cover.
[[nodiscard]] std::array<double, 24> hourly_profile(
    const cdr::FingerprintDataset& data);

/// Total-variation distance between two hourly profiles.
[[nodiscard]] double profile_distance(const std::array<double, 24>& a,
                                      const std::array<double, 24>& b);

}  // namespace glove::analysis

#endif  // GLOVE_ANALYSIS_UTILITY_HPP
