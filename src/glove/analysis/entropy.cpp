#include "glove/analysis/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "glove/geo/geo.hpp"

namespace glove::analysis {

namespace {

/// Per-tile visit counts in canonical (ix, iy) order.  The unordered map
/// is only an O(1) accumulator; returning a sorted vector keeps every
/// downstream floating-point accumulation independent of hash order, so
/// entropy figures are bit-stable across libstdc++ versions.
std::vector<std::pair<geo::GridCell, std::size_t>> tile_counts(
    const cdr::Fingerprint& fp, double tile_m) {
  const geo::Grid grid{tile_m};
  std::unordered_map<geo::GridCell, std::size_t> counts;
  for (const cdr::Sample& s : fp.samples()) {
    ++counts[grid.cell_of(
        {s.sigma.x + s.sigma.dx / 2, s.sigma.y + s.sigma.dy / 2})];
  }
  std::vector<std::pair<geo::GridCell, std::size_t>> sorted{counts.begin(),
                                                            counts.end()};
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.first.ix != b.first.ix) return a.first.ix < b.first.ix;
              return a.first.iy < b.first.iy;
            });
  return sorted;
}

}  // namespace

double random_entropy_bits(const cdr::Fingerprint& fp, double tile_m) {
  const auto counts = tile_counts(fp, tile_m);
  if (counts.empty()) return 0.0;
  return std::log2(static_cast<double>(counts.size()));
}

double location_entropy_bits(const cdr::Fingerprint& fp, double tile_m) {
  const auto counts = tile_counts(fp, tile_m);
  if (counts.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [cell, count] : counts) {
    total += static_cast<double>(count);
  }
  double entropy = 0.0;
  for (const auto& [cell, count] : counts) {
    const double p = static_cast<double>(count) / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

std::vector<double> visit_frequencies(const cdr::Fingerprint& fp,
                                      double tile_m) {
  const auto counts = tile_counts(fp, tile_m);
  double total = 0.0;
  for (const auto& [cell, count] : counts) {
    total += static_cast<double>(count);
  }
  std::vector<double> frequencies;
  frequencies.reserve(counts.size());
  for (const auto& [cell, count] : counts) {
    frequencies.push_back(static_cast<double>(count) / total);
  }
  std::sort(frequencies.begin(), frequencies.end(), std::greater<>{});
  return frequencies;
}

std::vector<double> inter_event_times_min(const cdr::Fingerprint& fp) {
  std::vector<double> gaps;
  if (fp.size() < 2) return gaps;
  gaps.reserve(fp.size() - 1);
  const auto samples = fp.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    gaps.push_back(samples[i].tau.t - samples[i - 1].tau.t);
  }
  return gaps;
}

}  // namespace glove::analysis
