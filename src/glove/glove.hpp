// Umbrella header: the whole public API of the GLOVE library.
//
// Include granular headers ("glove/core/glove.hpp", ...) in code that
// cares about compile times; include this one for exploratory use.

#ifndef GLOVE_GLOVE_HPP
#define GLOVE_GLOVE_HPP

#include "glove/analysis/anonymizability.hpp"
#include "glove/analysis/descriptors.hpp"
#include "glove/analysis/entropy.hpp"
#include "glove/analysis/utility.hpp"
#include "glove/api/anonymizer.hpp"
#include "glove/api/cli.hpp"
#include "glove/api/config.hpp"
#include "glove/api/engine.hpp"
#include "glove/api/error.hpp"
#include "glove/api/report.hpp"
#include "glove/api/sink.hpp"
#include "glove/api/source.hpp"
#include "glove/attack/linkage.hpp"
#include "glove/baseline/w4m.hpp"
#include "glove/cdr/builder.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/cdr/fingerprint.hpp"
#include "glove/cdr/io.hpp"
#include "glove/cdr/sample.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/generalize.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/incremental.hpp"
#include "glove/core/kgap.hpp"
#include "glove/core/merge.hpp"
#include "glove/core/partial.hpp"
#include "glove/core/scalability.hpp"
#include "glove/core/stretch.hpp"
#include "glove/geo/geo.hpp"
#include "glove/stats/json.hpp"
#include "glove/stats/stats.hpp"
#include "glove/stats/table.hpp"
#include "glove/synth/generator.hpp"
#include "glove/synth/network.hpp"
#include "glove/util/csv.hpp"
#include "glove/util/flags.hpp"
#include "glove/util/hooks.hpp"
#include "glove/util/mem.hpp"
#include "glove/util/parallel.hpp"
#include "glove/util/rng.hpp"
#include "glove/util/thread_pool.hpp"

#endif  // GLOVE_GLOVE_HPP
