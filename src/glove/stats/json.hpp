// Minimal ordered JSON document builder used to serialize run reports and
// bench manifests.  Objects preserve insertion order so emitted documents
// are stable and diff-friendly (golden tests lock the exact bytes).
//
// Only what the library needs to *emit*: null, bool, integers, doubles,
// strings, arrays, objects.  No parsing.

#ifndef GLOVE_STATS_JSON_HPP
#define GLOVE_STATS_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace glove::stats {

/// One JSON value.  Build objects/arrays via the static factories, then
/// chain `set`/`push`.
class Json {
 public:
  Json() : value_{nullptr} {}
  Json(bool value) : value_{value} {}
  Json(double value) : value_{value} {}
  Json(std::int64_t value) : value_{value} {}
  Json(std::uint64_t value) : value_{value} {}
  Json(std::uint32_t value) : value_{std::uint64_t{value}} {}
  Json(int value) : value_{static_cast<std::int64_t>(value)} {}
  Json(std::string value) : value_{std::move(value)} {}
  Json(std::string_view value) : value_{std::string{value}} {}
  Json(const char* value) : value_{std::string{value}} {}

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Adds/overwrites `key` on an object (throws std::logic_error when this
  /// value is not an object).  Insertion order is preserved.
  Json& set(std::string key, Json value);

  /// Appends to an array (throws std::logic_error otherwise).
  Json& push(Json value);

  /// Renders the document.  `indent` = spaces per nesting level; 0 emits
  /// a single line.  Doubles are printed with shortest round-trip-ish
  /// "%.10g" formatting; non-finite doubles render as null.
  [[nodiscard]] std::string dump(int indent = 2) const;

 private:
  struct Object;
  struct Array;
  using Value = std::variant<std::nullptr_t, bool, double, std::int64_t,
                             std::uint64_t, std::string,
                             std::vector<std::pair<std::string, Json>>,
                             std::vector<Json>>;

  void write(std::string& out, int indent, int depth) const;

  Value value_;
};

/// Escapes a string for embedding in a JSON document (adds no quotes).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace glove::stats

#endif  // GLOVE_STATS_JSON_HPP
