#include "glove/stats/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace glove::stats {

namespace {

using ObjectItems = std::vector<std::pair<std::string, Json>>;
using ArrayItems = std::vector<Json>;

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out += buffer;
  // Keep integral doubles visibly floating-point so the document schema
  // does not flip between int and float depending on the value.
  if (out.find_first_of(".eE", out.size() - std::strlen(buffer)) ==
      std::string::npos) {
    out += ".0";
  }
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json Json::object() {
  Json j;
  j.value_ = ObjectItems{};
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = ArrayItems{};
  return j;
}

Json& Json::set(std::string key, Json value) {
  auto* items = std::get_if<ObjectItems>(&value_);
  if (items == nullptr) {
    throw std::logic_error{"Json::set on a non-object value"};
  }
  for (auto& [existing, v] : *items) {
    if (existing == key) {
      v = std::move(value);
      return *this;
    }
  }
  items->emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  auto* items = std::get_if<ArrayItems>(&value_);
  if (items == nullptr) {
    throw std::logic_error{"Json::push on a non-array value"};
  }
  items->push_back(std::move(value));
  return *this;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* newline = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    append_double(out, *d);
  } else if (const auto* signed_int = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*signed_int);
  } else if (const auto* unsigned_int = std::get_if<std::uint64_t>(&value_)) {
    out += std::to_string(*unsigned_int);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += json_escape(*s);
    out += '"';
  } else if (const auto* obj = std::get_if<ObjectItems>(&value_)) {
    if (obj->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += newline;
    for (std::size_t i = 0; i < obj->size(); ++i) {
      out += pad;
      out += '"';
      out += json_escape((*obj)[i].first);
      out += "\": ";
      (*obj)[i].second.write(out, indent, depth + 1);
      if (i + 1 < obj->size()) out += ',';
      out += newline;
    }
    out += close_pad;
    out += '}';
  } else if (const auto* arr = std::get_if<ArrayItems>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += newline;
    for (std::size_t i = 0; i < arr->size(); ++i) {
      out += pad;
      (*arr)[i].write(out, indent, depth + 1);
      if (i + 1 < arr->size()) out += ',';
      out += newline;
    }
    out += close_pad;
    out += ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace glove::stats
