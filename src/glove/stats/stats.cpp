#include "glove/stats/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace glove::stats {

double quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument{"quantile of empty sample"};
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument{"quantile p outside [0, 1]"};
  }
  if (sorted.size() == 1) return sorted.front();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double quantile(std::span<const double> values, double p) {
  std::vector<double> sorted{values.begin(), values.end()};
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, p);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted{values.begin(), values.end()};
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.median = quantile_sorted(sorted, 0.5);
  s.q25 = quantile_sorted(sorted, 0.25);
  s.q75 = quantile_sorted(sorted, 0.75);
  double ss = 0.0;
  for (const double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(ss / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> values)
    : EmpiricalCdf{std::move(values), {}} {}

EmpiricalCdf::EmpiricalCdf(std::vector<double> values,
                           std::vector<double> weights) {
  if (!weights.empty() && weights.size() != values.size()) {
    throw std::invalid_argument{"CDF weights/values size mismatch"};
  }
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  values_.reserve(values.size());
  cumulative_weight_.reserve(values.size());
  double running = 0.0;
  for (const std::size_t idx : order) {
    const double w = weights.empty() ? 1.0 : weights[idx];
    if (!(w > 0.0)) {
      throw std::invalid_argument{"CDF weights must be positive"};
    }
    running += w;
    values_.push_back(values[idx]);
    cumulative_weight_.push_back(running);
  }
  total_weight_ = running;
}

double EmpiricalCdf::at(double x) const {
  if (values_.empty()) return 0.0;
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(it - values_.begin()) - 1;
  return cumulative_weight_[idx] / total_weight_;
}

double EmpiricalCdf::inverse(double p) const {
  if (values_.empty()) {
    throw std::invalid_argument{"inverse CDF of empty sample"};
  }
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument{"inverse CDF p outside (0, 1]"};
  }
  const double target = p * total_weight_;
  const auto it = std::lower_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), target);
  if (it == cumulative_weight_.end()) return values_.back();
  return values_[static_cast<std::size_t>(it - cumulative_weight_.begin())];
}

std::vector<double> EmpiricalCdf::sample_at(
    std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back(at(x));
  return out;
}

double tail_weight_index_sorted(std::span<const double> sorted) {
  if (sorted.size() < 2) return 0.0;
  const double q50 = quantile_sorted(sorted, 0.50);
  const double q75 = quantile_sorted(sorted, 0.75);
  const double q99 = quantile_sorted(sorted, 0.99);
  const double spread = q75 - q50;
  if (!(spread > 0.0)) return 0.0;
  return ((q99 - q50) / spread) / kTwiGaussianRatio;
}

double tail_weight_index(std::span<const double> values) {
  std::vector<double> sorted{values.begin(), values.end()};
  std::sort(sorted.begin(), sorted.end());
  return tail_weight_index_sorted(sorted);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  if (!(lo > 0.0) || !(hi > 0.0)) {
    throw std::invalid_argument{"logspace endpoints must be positive"};
  }
  std::vector<double> out = linspace(std::log(lo), std::log(hi), n);
  for (double& v : out) v = std::exp(v);
  if (!out.empty()) out.back() = hi;
  return out;
}

}  // namespace glove::stats
