#include "glove/stats/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace glove::stats {

TextTable::TextTable(std::string title) : title_{std::move(title)} {}

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  const auto absorb = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  out << '\n' << title_ << '\n';
  out << std::string(title_.size(), '=') << '\n';

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out << "  ";
      out << cells[i];
      if (i + 1 < cells.size()) {
        out << std::string(widths[i] - cells[i].size(), ' ');
      }
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i != 0 ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double value, int digits) {
  if (!std::isfinite(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s.empty() ? "0" : s;
}

std::string fmt_pct(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

}  // namespace glove::stats
