// Statistical utilities behind the paper's analysis plots: empirical
// (optionally weighted) CDFs, quantiles, summary statistics and the Tail
// Weight Index used in Sec. 5.3 to diagnose heavy-tailed per-sample stretch
// distributions.

#ifndef GLOVE_STATS_STATS_HPP
#define GLOVE_STATS_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace glove::stats {

/// Quantile of a sample via linear interpolation between order statistics
/// (type-7 estimator, the numpy/R default).  `p` in [0, 1].
/// Throws std::invalid_argument on an empty sample or p outside [0, 1].
[[nodiscard]] double quantile(std::span<const double> values, double p);

/// Quantile of an already-sorted sample (ascending); avoids re-sorting in
/// hot loops such as per-fingerprint TWI computation.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double p);

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// Empirical cumulative distribution function.  Supports weighted samples
/// (e.g. one merged fingerprint published for n users counts n times).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Unweighted sample.
  explicit EmpiricalCdf(std::vector<double> values);

  /// Weighted sample; `weights[i]` is the multiplicity of `values[i]`.
  /// Weights must be positive; sizes must match.
  EmpiricalCdf(std::vector<double> values, std::vector<double> weights);

  /// P[X <= x].
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF (smallest x with CDF(x) >= p), p in (0, 1].
  [[nodiscard]] double inverse(double p) const;

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Sorted support values (ascending) and matching cumulative weights.
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Samples the CDF at each x in `xs`, returning P[X <= x].
  [[nodiscard]] std::vector<double> sample_at(
      std::span<const double> xs) const;

 private:
  std::vector<double> values_;             // ascending
  std::vector<double> cumulative_weight_;  // parallel to values_
  double total_weight_ = 0.0;
};

/// Tail Weight Index (Hoaglin, Mosteller, Tukey, 1983): the ratio between
/// the upper-tail quantile spread of the sample and that of a Gaussian.
///
///   TWI(X) = [(Q_{0.99} - Q_{0.5}) / (Q_{0.75} - Q_{0.5})] / 3.4486
///
/// where 3.4486 = z_{0.99} / z_{0.75} is the Gaussian reference.  A normal
/// distribution scores 1; Exp(1) scores about 1.63; a Pareto with shape 1
/// about 14 — matching the calibration points the paper quotes (footnote 5).
/// Returns 0 for degenerate samples (inter-quantile spread of zero).
[[nodiscard]] double tail_weight_index(std::span<const double> values);

/// TWI on a pre-sorted (ascending) sample.
[[nodiscard]] double tail_weight_index_sorted(std::span<const double> sorted);

/// Gaussian reference ratio used by the TWI normalization.
inline constexpr double kTwiGaussianRatio = 3.4486;

/// Evenly spaced grid of `n` points over [lo, hi], inclusive of endpoints.
/// Used by bench harnesses to sample CDFs on the paper's plot axes.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t n);

/// Logarithmically spaced grid of `n` points over [lo, hi] (lo, hi > 0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi,
                                           std::size_t n);

}  // namespace glove::stats

#endif  // GLOVE_STATS_STATS_HPP
