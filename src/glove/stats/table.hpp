// Fixed-width text table printer used by the bench harnesses to emit the
// paper's tables and figure series in a stable, diff-friendly format.

#ifndef GLOVE_STATS_TABLE_HPP
#define GLOVE_STATS_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace glove::stats {

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  /// `title` is printed above the table, underlined.
  explicit TextTable(std::string title);

  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row.
  void row(std::vector<std::string> cells);

  /// Renders the table to `out`.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming noise.
[[nodiscard]] std::string fmt(double value, int digits = 3);

/// Formats a fraction as a percentage string, e.g. 0.127 -> "12.7%".
[[nodiscard]] std::string fmt_pct(double fraction, int digits = 1);

}  // namespace glove::stats

#endif  // GLOVE_STATS_TABLE_HPP
