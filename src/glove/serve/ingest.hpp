// EventIngestor: the serve pipeline's producer thread.
//
// Tails the configured CDR stream through cdr::CdrEventTailReader and
// pushes events into the bounded EventQueue (blocking on a full queue —
// backpressure reaches the file reader, never an unbounded buffer).  In
// follow mode it polls for appended bytes until stopped; in batch mode it
// stops by itself at end of file.  Either way it closes the queue on the
// way out, which is the consumer's end-of-stream signal.

#ifndef GLOVE_SERVE_INGEST_HPP
#define GLOVE_SERVE_INGEST_HPP

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "glove/serve/config.hpp"
#include "glove/serve/queue.hpp"

namespace glove::serve {

class EventIngestor {
 public:
  /// `config` and `queue` must outlive the ingestor.
  EventIngestor(const ServeConfig& config, EventQueue& queue);

  /// Joins the reader thread if still running (after request_stop).
  ~EventIngestor();

  EventIngestor(const EventIngestor&) = delete;
  EventIngestor& operator=(const EventIngestor&) = delete;

  /// Spawns the reader thread.  Call once.
  void start();

  /// Asks the reader to stop after its current poll (drain path), and
  /// closes the queue so a push blocked on backpressure wakes instead of
  /// deadlocking the drain (already-queued events stay poppable).
  /// Thread-safe and idempotent.
  void request_stop();

  /// Waits for the reader thread to finish (it closes the queue first).
  void join();

  /// Events pushed into the queue so far.
  [[nodiscard]] std::uint64_t events_read() const;

  /// Non-empty when the reader died on an error (malformed row, or a
  /// batch-mode input that never appeared).  Stable after join().
  [[nodiscard]] std::string error() const;

 private:
  void run();
  /// Sleeps the poll interval, waking early on request_stop.  Returns
  /// false when a stop was requested.
  bool sleep_poll_interval();

  const ServeConfig* config_;
  EventQueue* queue_;
  std::thread thread_;

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::uint64_t events_read_ = 0;
  std::string error_;
};

}  // namespace glove::serve

#endif  // GLOVE_SERVE_INGEST_HPP
