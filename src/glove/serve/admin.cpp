#include "glove/serve/admin.hpp"

#include <cstring>
#include <stdexcept>
#include <string_view>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define GLOVE_SERVE_HAVE_AF_UNIX 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define GLOVE_SERVE_HAVE_AF_UNIX 0
#endif

#include "glove/obs/metrics.hpp"

namespace glove::serve {

#if GLOVE_SERVE_HAVE_AF_UNIX

namespace {

/// Writes all of `data`, retrying partial writes.  Best effort: a client
/// that hangs up mid-reply is its own problem.
void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

/// Reads one newline-terminated command (at most 256 bytes), waiting up
/// to 2 s — enough for any local client, short enough that a stuck one
/// cannot wedge the admin thread for long.
std::string read_command(int fd) {
  std::string line;
  char c = 0;
  while (line.size() < 256) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2'000) <= 0) break;
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) break;
    if (c == '\n') break;
    line.push_back(c);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

AdminServer::~AdminServer() { stop(); }

void AdminServer::start(const std::string& path, AdminHooks hooks) {
  path_ = path;
  hooks_ = std::move(hooks);
  sockaddr_un addr{};
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error{"admin socket path too long: " + path_};
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error{"admin socket: socket() failed"};
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error{"admin socket: cannot bind " + path_};
  }
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error{"admin socket: pipe() failed"};
  }
  thread_ = std::thread{[this] { serve_loop(); }};
}

void AdminServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (stop_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void AdminServer::handle_connection(int client_fd) {
  static const obs::Counter c_requests =
      obs::counter("serve.admin_requests");
  c_requests.add();
  const std::string command = read_command(client_fd);
  if (command == "health") {
    const std::string status =
        hooks_.health ? hooks_.health() : std::string{"ok"};
    write_all(client_fd, status + "\n");
  } else if (command == "metrics") {
    write_all(client_fd, hooks_.metrics ? hooks_.metrics() : "");
  } else if (command == "drain") {
    if (hooks_.drain) hooks_.drain();
    write_all(client_fd, "draining\n");
  } else {
    write_all(client_fd, "err unknown command: " + command + "\n");
  }
}

void AdminServer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  const char wake = 'x';
  write_all(wake_fds_[1], std::string_view{&wake, 1});
  thread_.join();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(path_.c_str());
}

#else  // !GLOVE_SERVE_HAVE_AF_UNIX

AdminServer::~AdminServer() { stop(); }

void AdminServer::start(const std::string& path, AdminHooks hooks) {
  (void)hooks;
  throw std::runtime_error{
      "admin socket unsupported on this platform (no AF_UNIX): " + path};
}

void AdminServer::stop() {}

#endif  // GLOVE_SERVE_HAVE_AF_UNIX

}  // namespace glove::serve
