// AF_UNIX admin surface for glove-serve: a dependency-free line protocol
// for operators and the CI smoke gate.
//
// One command per connection, newline-terminated; the reply is written
// and the connection closed:
//
//   health   -> one status line (the daemon's health_line)
//   metrics  -> obs::render_metrics_text of a fresh snapshot
//   drain    -> requests a graceful drain, replies "draining"
//
// Unknown commands get "err unknown command: <cmd>".  The server is one
// accept thread handling connections sequentially — the protocol is a few
// bytes per exchange and the socket is local, so concurrency would buy
// nothing but locking.

#ifndef GLOVE_SERVE_ADMIN_HPP
#define GLOVE_SERVE_ADMIN_HPP

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace glove::serve {

/// Callbacks the protocol dispatches to.  All three are invoked on the
/// admin thread and must be thread-safe against the daemon loop.
struct AdminHooks {
  std::function<std::string()> health;   ///< one line, no trailing newline
  std::function<std::string()> metrics;  ///< newline-terminated block
  std::function<void()> drain;
};

class AdminServer {
 public:
  AdminServer() = default;
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds a listening AF_UNIX socket at `path` (an existing socket file
  /// is unlinked first) and spawns the accept thread.  Throws
  /// std::runtime_error when the socket cannot be created or bound, and
  /// on platforms without AF_UNIX support.
  void start(const std::string& path, AdminHooks hooks);

  /// Stops the accept thread, closes the socket, and removes the socket
  /// file.  Idempotent; called by the destructor.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  std::string path_;
  AdminHooks hooks_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  int wake_fds_[2] = {-1, -1};  ///< self-pipe to interrupt poll()
};

}  // namespace glove::serve

#endif  // GLOVE_SERVE_ADMIN_HPP
