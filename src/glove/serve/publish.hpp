// Epoch/snapshot publication for the serve pipeline.
//
// The publisher owns the daemon's anonymization state: the set of events
// still waiting for their user's first publication, the current released
// dataset, and the sorted ids it covers.  Each closed window folds into
// that state and (when possible) publishes one epoch:
//
//   epoch 1    the configured batch strategy over every pending user's
//              fingerprint — deferred while fewer than k users are
//              pending, since no k-anonymous release exists yet;
//   epoch N+1  the `incremental` strategy (core::anonymize_update) with
//              epoch N as the published base, so released groups only
//              ever gain members — never shrink, never split.
//
// Events from already-published users are counted and dropped: their
// group's generalized fingerprint is immutable once released (republishing
// a changed fingerprint for the same group would hand an adaptive
// adversary a fresh release to intersect).  Snapshots and per-epoch run
// reports are written to `.tmp` paths and atomically renamed, so a
// consumer polling the output directory never reads a torn file.

#ifndef GLOVE_SERVE_PUBLISH_HPP
#define GLOVE_SERVE_PUBLISH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "glove/api/engine.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/serve/config.hpp"
#include "glove/serve/window.hpp"

namespace glove::serve {

/// Outcome of feeding one closed window to the publisher.
struct EpochResult {
  /// 1-based number of the published epoch; 0 when nothing published.
  std::uint64_t epoch = 0;
  /// False when the window published nothing: no pending newcomers, or
  /// still fewer than k users before the first epoch (deferred).
  bool published = false;
  std::string snapshot_path;
  std::string report_path;
  std::uint64_t newcomers = 0;       ///< users first published this epoch
  std::uint64_t total_groups = 0;    ///< groups in the release after
  std::uint64_t total_users = 0;     ///< users covered by the release
};

class SnapshotPublisher {
 public:
  /// `config` and `engine` must outlive the publisher.  Throws
  /// std::invalid_argument on an unknown snapshot format.
  SnapshotPublisher(const ServeConfig& config, const api::Engine& engine);

  /// Folds one closed window into pending state and publishes the next
  /// epoch when newcomers are ready.  Throws std::runtime_error when the
  /// engine rejects the run or a snapshot/report write fails.
  EpochResult publish_window(const ClosedWindow& window);

  /// The current released dataset (empty before the first epoch).
  [[nodiscard]] const cdr::FingerprintDataset& published() const noexcept {
    return published_;
  }

  [[nodiscard]] std::uint64_t epochs_published() const noexcept {
    return epoch_;
  }

  /// Events buffered for users not yet covered by any release.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return pending_.size();
  }

 private:
  [[nodiscard]] bool is_published_user(cdr::UserId user) const;
  void write_snapshot(EpochResult& result);
  void write_report(api::RunReport report, const ClosedWindow& window,
                    EpochResult& result);

  const ServeConfig* config_;
  const api::Engine* engine_;
  std::vector<cdr::CdrEvent> pending_;
  std::vector<cdr::UserId> published_ids_;  ///< sorted
  cdr::FingerprintDataset published_;
  std::uint64_t epoch_ = 0;
};

}  // namespace glove::serve

#endif  // GLOVE_SERVE_PUBLISH_HPP
