#include "glove/serve/queue.hpp"

#include <algorithm>
#include <chrono>

#include "glove/obs/metrics.hpp"

namespace glove::serve {

namespace {

const obs::Gauge& depth_gauge() {
  static const obs::Gauge gauge = obs::gauge("serve.queue_depth");
  return gauge;
}

}  // namespace

EventQueue::EventQueue(std::size_t capacity)
    : capacity_{std::max<std::size_t>(capacity, 1)} {}

void EventQueue::update_depth_gauge(std::size_t depth) const {
  depth_gauge().set(static_cast<double>(depth));
}

bool EventQueue::push(const cdr::CdrEvent& event) {
  static const obs::Counter c_blocked =
      obs::counter("serve.queue_block_waits");
  std::unique_lock lock{mutex_};
  if (!closed_ && events_.size() >= capacity_) {
    ++block_waits_;
    c_blocked.add();
    not_full_.wait(lock,
                   [&] { return closed_ || events_.size() < capacity_; });
  }
  if (closed_) return false;
  events_.push_back(event);
  update_depth_gauge(events_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::size_t EventQueue::pop_batch(std::vector<cdr::CdrEvent>& out,
                                  std::size_t max, int timeout_ms) {
  std::unique_lock lock{mutex_};
  not_empty_.wait_for(lock, std::chrono::milliseconds{timeout_ms},
                      [&] { return closed_ || !events_.empty(); });
  const std::size_t n = std::min(max, events_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(events_.front());
    events_.pop_front();
  }
  update_depth_gauge(events_.size());
  lock.unlock();
  if (n > 0) not_full_.notify_all();
  return n;
}

void EventQueue::close() {
  {
    const std::lock_guard lock{mutex_};
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool EventQueue::drained() const {
  const std::lock_guard lock{mutex_};
  return closed_ && events_.empty();
}

bool EventQueue::closed() const {
  const std::lock_guard lock{mutex_};
  return closed_;
}

std::size_t EventQueue::depth() const {
  const std::lock_guard lock{mutex_};
  return events_.size();
}

std::uint64_t EventQueue::block_waits() const {
  const std::lock_guard lock{mutex_};
  return block_waits_;
}

}  // namespace glove::serve
