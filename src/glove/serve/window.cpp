#include "glove/serve/window.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "glove/obs/metrics.hpp"

namespace glove::serve {

WindowAccumulator::WindowAccumulator(double window_min)
    : window_min_{window_min} {
  if (!(window_min > 0.0)) {
    throw std::invalid_argument{"window length must be positive"};
  }
}

void WindowAccumulator::add(const cdr::CdrEvent& event) {
  static const obs::Counter c_late = obs::counter("serve.events_late");
  if (!started_) {
    started_ = true;
    window_begin_ = std::floor(event.time_min / window_min_) * window_min_;
    watermark_ = event.time_min;
  } else {
    if (event.time_min < window_begin_) c_late.add();
    if (event.time_min > watermark_) watermark_ = event.time_min;
  }
  buffer_.push_back(event);
}

bool WindowAccumulator::window_ready() const noexcept {
  return started_ && watermark_ >= window_begin_ + window_min_;
}

ClosedWindow WindowAccumulator::close_window() {
  static const obs::Counter c_closed = obs::counter("serve.windows_closed");
  ClosedWindow closed;
  closed.bounds = WindowBounds{window_begin_, window_begin_ + window_min_};
  // Split by event time, preserving arrival order in both halves: the
  // kept remainder must replay in the same order it arrived or a later
  // window's fingerprints would depend on when earlier windows closed.
  std::vector<cdr::CdrEvent> kept;
  for (const cdr::CdrEvent& event : buffer_) {
    if (event.time_min < closed.bounds.end_min) {
      closed.events.push_back(event);
    } else {
      kept.push_back(event);
    }
  }
  buffer_ = std::move(kept);
  window_begin_ += window_min_;
  c_closed.add();
  return closed;
}

ClosedWindow WindowAccumulator::close_final() {
  ClosedWindow closed;
  closed.bounds = WindowBounds{window_begin_, started_ ? watermark_ : 0.0};
  closed.events = std::move(buffer_);
  buffer_.clear();
  return closed;
}

}  // namespace glove::serve
