#include "glove/serve/ingest.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>

#include "glove/cdr/io.hpp"
#include "glove/obs/log.hpp"
#include "glove/obs/metrics.hpp"
#include "glove/obs/span.hpp"

namespace glove::serve {

EventIngestor::EventIngestor(const ServeConfig& config, EventQueue& queue)
    : config_{&config}, queue_{&queue} {}

EventIngestor::~EventIngestor() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void EventIngestor::start() {
  thread_ = std::thread{[this] { run(); }};
}

void EventIngestor::request_stop() {
  {
    const std::lock_guard lock{mutex_};
    stop_ = true;
  }
  stop_cv_.notify_all();
  queue_->close();
}

void EventIngestor::join() {
  if (thread_.joinable()) thread_.join();
}

std::uint64_t EventIngestor::events_read() const {
  const std::lock_guard lock{mutex_};
  return events_read_;
}

std::string EventIngestor::error() const {
  const std::lock_guard lock{mutex_};
  return error_;
}

bool EventIngestor::sleep_poll_interval() {
  std::unique_lock lock{mutex_};
  stop_cv_.wait_for(lock,
                    std::chrono::milliseconds{config_->poll_interval_ms},
                    [&] { return stop_; });
  return !stop_;
}

void EventIngestor::run() {
  GLOVE_SPAN("serve.ingest");
  static const obs::Counter c_ingested =
      obs::counter("serve.events_ingested");
  cdr::CdrEventTailReader reader{config_->input_path};
  cdr::CdrEvent event;
  try {
    for (;;) {
      bool got = false;
      while ((got = reader.poll(event))) {
        if (!queue_->push(event)) break;  // queue closed under us
        c_ingested.add();
        const std::lock_guard lock{mutex_};
        ++events_read_;
      }
      if (got) break;  // push failed: the consumer is gone
      {
        const std::lock_guard lock{mutex_};
        if (stop_) break;
      }
      if (!config_->follow) {
        if (reader.opened()) break;  // batch mode: consumed to EOF
        throw std::runtime_error{"cannot open for reading: " +
                                 config_->input_path};
      }
      if (!sleep_poll_interval()) break;
    }
  } catch (const std::exception& e) {
    {
      const std::lock_guard lock{mutex_};
      error_ = e.what();
    }
    obs::log_warn("serve.ingest.failed", "rows=" +
                  std::to_string(reader.rows_read()));
  }
  // End-of-stream either way: wake the consumer so it can drain what
  // arrived and publish the final snapshot.
  queue_->close();
}

}  // namespace glove::serve
