// Bounded FIFO event queue between the ingest thread and the daemon's
// window/publish loop.
//
// Backpressure is block-the-reader: push() blocks while the queue is
// full, so a slow publish phase throttles the tail reader instead of
// growing an unbounded buffer.  The queue is strictly FIFO, which is what
// makes the whole service deterministic — event order at the consumer
// equals file order regardless of capacity or timing, so snapshot bytes
// cannot depend on the queue depth.

#ifndef GLOVE_SERVE_QUEUE_HPP
#define GLOVE_SERVE_QUEUE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "glove/cdr/builder.hpp"

namespace glove::serve {

class EventQueue {
 public:
  /// `capacity` is clamped up to 1 (a zero-capacity queue could never
  /// move an event).
  explicit EventQueue(std::size_t capacity);

  /// Enqueues one event, blocking while the queue is full.  Returns false
  /// (dropping the event) when the queue was closed — the producer's
  /// signal to stop reading.
  bool push(const cdr::CdrEvent& event);

  /// Appends up to `max` events to `out` in FIFO order, blocking until at
  /// least one event is available, the queue closes, or `timeout_ms`
  /// elapses.  Returns the number appended; 0 means "timed out" or
  /// "closed and drained" — distinguish with closed().
  std::size_t pop_batch(std::vector<cdr::CdrEvent>& out, std::size_t max,
                        int timeout_ms);

  /// Marks the queue closed: pending events stay poppable, further
  /// push() calls fail, and all waiters wake.  Idempotent.
  void close();

  /// True once close() was called AND every event has been popped.
  [[nodiscard]] bool drained() const;

  /// True once close() was called.
  [[nodiscard]] bool closed() const;

  /// Current number of queued events.
  [[nodiscard]] std::size_t depth() const;

  /// Times a push() had to block on a full queue (backpressure events).
  [[nodiscard]] std::uint64_t block_waits() const;

 private:
  void update_depth_gauge(std::size_t depth) const;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<cdr::CdrEvent> events_;
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t block_waits_ = 0;
};

}  // namespace glove::serve

#endif  // GLOVE_SERVE_QUEUE_HPP
