#include "glove/serve/daemon.hpp"

#include <csignal>
#include <exception>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "glove/obs/log.hpp"
#include "glove/obs/metrics.hpp"
#include "glove/obs/span.hpp"
#include "glove/serve/admin.hpp"
#include "glove/serve/ingest.hpp"
#include "glove/serve/publish.hpp"
#include "glove/serve/window.hpp"

namespace glove::serve {

namespace {

/// Target of the installed SIGTERM/SIGINT handlers.  A single atomic
/// pointer: signals are process-global, so so is this.
std::atomic<ServeDaemon*> g_signal_daemon{nullptr};

void drain_signal_handler(int) {
  if (ServeDaemon* daemon =
          g_signal_daemon.load(std::memory_order_relaxed)) {
    daemon->request_drain();  // one relaxed atomic store — signal-safe
  }
}

/// Events folded per consumer wakeup; bounds the latency of noticing a
/// drain request without costing per-event locking.
constexpr std::size_t kConsumeBatch = 4'096;

/// Queue-poll timeout: the ceiling on drain-notice latency while idle.
constexpr int kPopTimeoutMs = 100;

}  // namespace

ServeDaemon::ServeDaemon(ServeConfig config)
    : config_{std::move(config)}, queue_{config_.queue_capacity} {}

std::string ServeDaemon::health_line() const {
  using std::to_string;
  return "ok epochs=" +
         to_string(epochs_published_.load(std::memory_order_relaxed)) +
         " windows=" +
         to_string(windows_closed_.load(std::memory_order_relaxed)) +
         " events=" +
         to_string(events_folded_.load(std::memory_order_relaxed)) +
         " queue=" + to_string(queue_.depth()) +
         " draining=" + (drain_requested() ? "1" : "0");
}

ServeSummary ServeDaemon::run() {
  try {
    return run_pipeline();
  } catch (const std::exception& e) {
    ServeSummary summary;
    summary.exit_code = 1;
    summary.error = e.what();
    return summary;
  }
}

ServeSummary ServeDaemon::run_pipeline() {
  GLOVE_SPAN("serve.run");
  ServeSummary summary;
  if (config_.input_path.empty()) {
    throw std::invalid_argument{"serve: input path must be set"};
  }
  std::filesystem::create_directories(config_.out_dir);

  WindowAccumulator window{config_.window_min};
  SnapshotPublisher publisher{config_, engine_};
  EventIngestor ingestor{config_, queue_};
  AdminServer admin;
  if (!config_.admin_socket.empty()) {
    AdminHooks hooks;
    hooks.health = [this] { return health_line(); };
    hooks.metrics = [] {
      return obs::render_metrics_text(obs::snapshot_metrics());
    };
    hooks.drain = [this] { request_drain(); };
    admin.start(config_.admin_socket, std::move(hooks));
  }
  ingestor.start();

  const auto publish = [&](const ClosedWindow& closed) {
    const EpochResult result = publisher.publish_window(closed);
    if (result.published) {
      epochs_published_.store(result.epoch, std::memory_order_relaxed);
      summary.last_snapshot_path = result.snapshot_path;
      obs::log_info("serve.epoch",
                    obs::log_kv("epoch", result.epoch) + ' ' +
                        obs::log_kv("newcomers", result.newcomers) + ' ' +
                        obs::log_kv("groups", result.total_groups));
    }
  };

  std::vector<cdr::CdrEvent> batch;
  bool ingest_stopped = false;
  for (;;) {
    if (drain_requested() && !ingest_stopped) {
      ingestor.request_stop();
      ingest_stopped = true;
    }
    batch.clear();
    const std::size_t n = queue_.pop_batch(batch, kConsumeBatch,
                                           kPopTimeoutMs);
    if (n == 0) {
      if (queue_.drained()) break;
      continue;  // timed out: re-check the drain flag
    }
    for (const cdr::CdrEvent& event : batch) window.add(event);
    events_folded_.fetch_add(n, std::memory_order_relaxed);
    while (window.window_ready()) {
      const ClosedWindow closed = window.close_window();
      windows_closed_.fetch_add(1, std::memory_order_relaxed);
      publish(closed);
    }
  }

  // Drain: everything still buffered forms the last (partial) window.
  // Publish also when the window is empty but users are pending — e.g.
  // epoch-0 deferrals that never reached k get their final chance here.
  const ClosedWindow final_window = window.close_final();
  if (!final_window.events.empty() || publisher.pending_events() > 0) {
    publish(final_window);
  }

  ingestor.join();
  admin.stop();
  obs::flush_suppressed_log();

  summary.events_ingested = ingestor.events_read();
  summary.windows_closed = windows_closed_.load(std::memory_order_relaxed);
  summary.epochs_published = publisher.epochs_published();
  if (!ingestor.error().empty()) {
    summary.exit_code = 1;
    summary.error = "ingest: " + ingestor.error();
  }
  return summary;
}

void install_drain_signal_handlers(ServeDaemon& daemon) {
  g_signal_daemon.store(&daemon, std::memory_order_relaxed);
  std::signal(SIGTERM, drain_signal_handler);
  std::signal(SIGINT, drain_signal_handler);
}

}  // namespace glove::serve
