// glove-serve configuration: the continuous-ingestion service mode.
//
// A ServeDaemon tails a raw CDR event stream (CSV rows
// "user,time_min,lat,lon", the cdr::CdrEventReader format), folds events
// into per-user fingerprints on fixed event-time windows, and publishes a
// fresh k-anonymized snapshot per closed window.  The first published
// epoch runs the configured batch strategy; every later epoch runs the
// `incremental` strategy over the previous release, so published groups
// never shrink or split across snapshots (the cross-release linkage
// guarantee of core::anonymize_update).

#ifndef GLOVE_SERVE_CONFIG_HPP
#define GLOVE_SERVE_CONFIG_HPP

#include <cstddef>
#include <string>

#include "glove/api/config.hpp"
#include "glove/cdr/builder.hpp"

namespace glove::serve {

struct ServeConfig {
  /// CDR event stream to tail.  In follow mode the file may not exist yet
  /// and may end in a partial row; both are retried on the next poll.
  std::string input_path;

  /// Keep polling for appended events after reaching end of file (live
  /// tail; ends only on drain).  When false the daemon drains by itself
  /// at end of file — the batch/test spelling of the same pipeline.
  bool follow = false;

  /// Tail poll interval while waiting for new events, milliseconds.
  int poll_interval_ms = 200;

  /// Bounded ingest queue capacity, in events.  When the window/publish
  /// side falls behind, the tail reader blocks on a full queue instead of
  /// buffering without bound — backpressure is the only overload policy.
  std::size_t queue_capacity = 65'536;

  /// Event-time window length, minutes.  A window closes — and a snapshot
  /// epoch publishes — once the stream's watermark (max event time seen)
  /// reaches the window's end.
  double window_min = 1'440.0;

  /// Fingerprint construction for each window's events (projection
  /// origin, spatial grid, temporal rounding).  Must stay fixed for the
  /// daemon's lifetime: published fingerprints are never rebuilt.
  cdr::BuilderConfig builder;

  /// Anonymization configuration.  `run.strategy` anonymizes the first
  /// published epoch; later epochs always run `incremental` with the
  /// previous release as the published base.  `run.incremental.published`
  /// is managed by the publisher and must be left null here.
  api::RunConfig run;

  /// Snapshot output directory (created if missing).  Epoch N publishes
  /// `snapshot-NNNNNN.<ext>` and `report-NNNNNN.json`, each written to a
  /// `.tmp` path and atomically renamed, so a consumer polling the
  /// directory never observes a torn file.
  std::string out_dir = "serve-out";

  /// Snapshot dataset format: "csv" or "glovebin".
  std::string snapshot_format = "csv";

  /// Dataset name stem; epoch N's snapshot is named "<stem>-epoch-N".
  std::string dataset_name = "serve";

  /// AF_UNIX admin socket path speaking the line protocol
  /// (health / metrics / drain); empty disables the admin surface.
  std::string admin_socket;
};

}  // namespace glove::serve

#endif  // GLOVE_SERVE_CONFIG_HPP
