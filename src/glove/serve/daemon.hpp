// ServeDaemon: the glove-serve run loop.
//
// Wires the pieces together — EventIngestor (producer thread) -> bounded
// EventQueue -> WindowAccumulator -> SnapshotPublisher — plus the
// optional AF_UNIX admin surface, and owns the graceful-drain state
// machine: a drain request (admin `drain` command, SIGTERM/SIGINT via
// install_drain_signal_handlers, or plain end-of-file in batch mode)
// stops the tail reader, drains the queue, closes the final partial
// window, publishes a last snapshot when new users are pending, and
// returns with exit code 0.
//
// Determinism: the queue is FIFO and the single consumer folds events in
// arrival (= file) order, windows close on event-time watermarks, and
// every strategy in the registry is byte-stable across worker counts —
// so for a fixed event stream the published snapshot bytes are identical
// across queue capacities, poll timings, and worker counts.

#ifndef GLOVE_SERVE_DAEMON_HPP
#define GLOVE_SERVE_DAEMON_HPP

#include <atomic>
#include <cstdint>
#include <string>

#include "glove/api/engine.hpp"
#include "glove/serve/config.hpp"
#include "glove/serve/queue.hpp"

namespace glove::serve {

/// What a completed (or failed) daemon run amounts to.
struct ServeSummary {
  int exit_code = 0;  ///< 0 on clean drain, 1 on error
  std::string error;  ///< non-empty when exit_code != 0
  std::uint64_t events_ingested = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t epochs_published = 0;
  std::string last_snapshot_path;  ///< "" when nothing was published
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeConfig config);

  /// Runs ingest -> window -> publish until the stream ends or a drain is
  /// requested.  Call once.  Configuration and I/O errors come back in
  /// the summary (exit_code 1), not as exceptions.
  ServeSummary run();

  /// Requests a graceful drain.  Async-signal-safe (one relaxed atomic
  /// store) and callable from any thread; the run loop notices within
  /// its queue-poll timeout.
  void request_drain() noexcept {
    drain_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool drain_requested() const noexcept {
    return drain_.load(std::memory_order_relaxed);
  }

  /// One-line status for the admin `health` command.  Thread-safe.
  [[nodiscard]] std::string health_line() const;

 private:
  ServeSummary run_pipeline();

  ServeConfig config_;
  api::Engine engine_;
  EventQueue queue_;
  std::atomic<bool> drain_{false};
  std::atomic<std::uint64_t> windows_closed_{0};
  std::atomic<std::uint64_t> epochs_published_{0};
  std::atomic<std::uint64_t> events_folded_{0};
};

/// Installs SIGTERM/SIGINT handlers that request a graceful drain of
/// `daemon` (which must outlive the process's use of the handlers).  The
/// handler body is one atomic store — async-signal-safe.  Installing for
/// a second daemon retargets the handlers.
void install_drain_signal_handlers(ServeDaemon& daemon);

}  // namespace glove::serve

#endif  // GLOVE_SERVE_DAEMON_HPP
