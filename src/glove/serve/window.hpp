// Event-time windowing for the serve pipeline.
//
// Windows are fixed-length, aligned to multiples of the window length
// (the first event picks the containing window), and close on the
// *watermark* — the maximum event time seen — not on wall clock, so a
// replayed file and a live tail of the same bytes close the same windows
// in the same order and the published snapshots match byte for byte.
// Late events (older than the current window's start) are counted and
// still folded into the next closing window: the publisher decides what
// to do with already-published users, not the accumulator.

#ifndef GLOVE_SERVE_WINDOW_HPP
#define GLOVE_SERVE_WINDOW_HPP

#include <vector>

#include "glove/cdr/builder.hpp"

namespace glove::serve {

/// Half-open event-time bounds [begin_min, end_min) of a window.
struct WindowBounds {
  double begin_min = 0.0;
  double end_min = 0.0;
};

/// One closed window: its bounds and the buffered events that belong to
/// it (event time < end_min), in arrival order.
struct ClosedWindow {
  WindowBounds bounds;
  std::vector<cdr::CdrEvent> events;
};

class WindowAccumulator {
 public:
  /// `window_min` must be positive; throws std::invalid_argument.
  explicit WindowAccumulator(double window_min);

  /// Buffers one event and advances the watermark.
  void add(const cdr::CdrEvent& event);

  /// True when the watermark has reached the current window's end, i.e.
  /// close_window() would produce a complete window.
  [[nodiscard]] bool window_ready() const noexcept;

  /// Closes the current window: returns its bounds plus every buffered
  /// event with time < end (arrival order preserved), then advances to
  /// the next window.  A gap in event time yields empty closed windows —
  /// the publisher skips those.  Precondition: window_ready().
  [[nodiscard]] ClosedWindow close_window();

  /// Drain path: returns everything still buffered as a final partial
  /// window [begin, watermark].  Empty events when nothing is buffered.
  [[nodiscard]] ClosedWindow close_final();

  /// True once at least one event was ever added.
  [[nodiscard]] bool started() const noexcept { return started_; }

  /// Max event time seen so far (meaningful once started()).
  [[nodiscard]] double watermark() const noexcept { return watermark_; }

  /// Events currently buffered.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return buffer_.size();
  }

 private:
  double window_min_;
  double window_begin_ = 0.0;
  double watermark_ = 0.0;
  bool started_ = false;
  std::vector<cdr::CdrEvent> buffer_;
};

}  // namespace glove::serve

#endif  // GLOVE_SERVE_WINDOW_HPP
