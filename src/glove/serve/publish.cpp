#include "glove/serve/publish.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "glove/api/sink.hpp"
#include "glove/cdr/builder.hpp"
#include "glove/obs/metrics.hpp"
#include "glove/obs/span.hpp"

namespace glove::serve {

namespace {

/// Fixed-width epoch tag, so lexicographic directory order equals epoch
/// order for any realistic daemon lifetime.
std::string epoch_tag(std::uint64_t epoch) {
  std::string digits = std::to_string(epoch);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return digits;
}

}  // namespace

SnapshotPublisher::SnapshotPublisher(const ServeConfig& config,
                                     const api::Engine& engine)
    : config_{&config}, engine_{&engine} {
  if (config.snapshot_format != "csv" && config.snapshot_format != "glovebin") {
    throw std::invalid_argument{"unknown snapshot format: " +
                                config.snapshot_format};
  }
  if (config.run.incremental.published != nullptr) {
    throw std::invalid_argument{
        "serve manages the incremental published base; leave "
        "run.incremental.published null"};
  }
}

bool SnapshotPublisher::is_published_user(cdr::UserId user) const {
  return std::binary_search(published_ids_.begin(), published_ids_.end(),
                            user);
}

EpochResult SnapshotPublisher::publish_window(const ClosedWindow& window) {
  GLOVE_SPAN("serve.publish");
  static const obs::Counter c_dropped =
      obs::counter("serve.events_dropped_published");
  static const obs::Counter c_deferred =
      obs::counter("serve.windows_deferred");
  static const obs::Counter c_published =
      obs::counter("serve.snapshots_published");
  static const obs::Gauge g_users = obs::gauge("serve.published_users");
  static const obs::Gauge g_groups = obs::gauge("serve.published_groups");

  EpochResult result;
  for (const cdr::CdrEvent& event : window.events) {
    if (is_published_user(event.user)) {
      // The user's group is already released with an immutable
      // generalized fingerprint; folding fresh events into it would
      // republish a changed release for the same group.
      c_dropped.add();
    } else {
      pending_.push_back(event);
    }
  }
  if (pending_.empty()) return result;

  cdr::FingerprintDataset candidates =
      cdr::build_fingerprints(pending_, config_->builder);
  api::RunConfig run = config_->run;
  if (epoch_ == 0) {
    // No release exists yet: the first epoch needs a full batch pass, and
    // that pass can only be k-anonymous once k users are pending.
    if (candidates.size() < run.k) {
      c_deferred.add();
      return result;
    }
  } else {
    run.strategy = std::string{api::kStrategyIncremental};
    run.incremental.published = &published_;
  }
  candidates.set_name(config_->dataset_name + "-epoch-" +
                      std::to_string(epoch_ + 1) + "-input");

  api::Result<api::RunReport> outcome = engine_->run(candidates, run);
  if (!outcome.ok()) {
    throw std::runtime_error{
        "serve: epoch " + std::to_string(epoch_ + 1) +
        " anonymization failed [" +
        std::string{api::to_string(outcome.error().code)} +
        "]: " + outcome.error().message};
  }
  api::RunReport report = std::move(outcome).value();

  ++epoch_;
  result.epoch = epoch_;
  result.published = true;
  result.newcomers = candidates.size();
  published_ = std::move(report.anonymized);
  report.anonymized = cdr::FingerprintDataset{};
  published_.set_name(config_->dataset_name + "-epoch-" +
                      std::to_string(epoch_));
  for (const cdr::Fingerprint& fp : candidates.fingerprints()) {
    published_ids_.push_back(fp.members().front());
  }
  std::sort(published_ids_.begin(), published_ids_.end());
  pending_.clear();
  result.total_groups = published_.size();
  result.total_users = published_ids_.size();
  g_users.set(static_cast<double>(result.total_users));
  g_groups.set(static_cast<double>(result.total_groups));

  write_snapshot(result);
  write_report(std::move(report), window, result);
  c_published.add();
  return result;
}

void SnapshotPublisher::write_snapshot(EpochResult& result) {
  GLOVE_SPAN("serve.publish.snapshot");
  const std::string ext =
      config_->snapshot_format == "glovebin" ? ".glovebin" : ".csv";
  const std::string file =
      config_->out_dir + "/snapshot-" + epoch_tag(epoch_) + ext;
  // Publish via temp-then-rename: the rename is atomic on POSIX, so a
  // consumer polling out_dir sees either no file or a complete snapshot.
  const std::string tmp = file + ".tmp";
  {
    const std::unique_ptr<api::DatasetSink> sink =
        api::make_dataset_sink(tmp, config_->snapshot_format);
    sink->begin(published_.name());
    for (const cdr::Fingerprint& fp : published_.fingerprints()) {
      sink->write(fp);
    }
    sink->finish();
  }
  std::filesystem::rename(tmp, file);
  result.snapshot_path = file;
}

void SnapshotPublisher::write_report(api::RunReport report,
                                     const ClosedWindow& window,
                                     EpochResult& result) {
  api::set_metric(report, "epoch", static_cast<double>(epoch_));
  api::set_metric(report, "window_begin_min", window.bounds.begin_min);
  api::set_metric(report, "window_end_min", window.bounds.end_min);
  api::set_metric(report, "new_users", static_cast<double>(result.newcomers));
  api::set_metric(report, "published_users_total",
                  static_cast<double>(result.total_users));
  api::set_metric(report, "published_groups_total",
                  static_cast<double>(result.total_groups));
  const std::string file =
      config_->out_dir + "/report-" + epoch_tag(epoch_) + ".json";
  // The temp name keeps the ".json" suffix (write_report_file picks its
  // format by extension) but a dotted prefix, so it stays invisible to
  // "report-*.json" globs until the rename.
  const std::string tmp =
      config_->out_dir + "/.tmp-report-" + epoch_tag(epoch_) + ".json";
  api::write_report_file(tmp, report);
  std::filesystem::rename(tmp, file);
  result.report_path = file;
}

}  // namespace glove::serve
