// Synthetic radio-access network: antenna sites clustered around cities
// plus rural scatter, mimicking the antenna layout of the D4D datasets
// (this library's substitute for the proprietary Orange traces; DESIGN.md
// documents the substitution).

#ifndef GLOVE_SYNTH_NETWORK_HPP
#define GLOVE_SYNTH_NETWORK_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "glove/geo/geo.hpp"

namespace glove::synth {

/// An urban cluster of antennas.
struct City {
  geo::PlanarPoint center;
  double radius_m = 10'000.0;  ///< antenna scatter (one std deviation)
  double weight = 1.0;         ///< share of population anchored here
};

/// Antenna network generator parameters.
struct NetworkConfig {
  std::size_t antennas = 1'000;
  /// Side of the square region, metres (Ivory Coast/Senegal scale:
  /// several hundred kilometres).
  double region_size_m = 600'000.0;
  std::size_t cities = 10;
  /// Fraction of antennas placed inside cities (vs rural scatter).
  double urban_fraction = 0.7;
  /// Zipf exponent of city weights (city 1 dominates, like Abidjan/Dakar).
  double city_zipf_exponent = 1.0;
  std::uint64_t seed = 42;
};

/// A generated antenna network over a planar region.
class AntennaNetwork {
 public:
  explicit AntennaNetwork(const NetworkConfig& config);

  [[nodiscard]] std::span<const geo::PlanarPoint> antennas() const noexcept {
    return antennas_;
  }
  [[nodiscard]] std::span<const City> cities() const noexcept {
    return cities_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return antennas_.size(); }
  [[nodiscard]] const geo::PlanarPoint& antenna(std::size_t i) const {
    return antennas_[i];
  }

  /// The dominant city (largest weight) — the geofence anchor for the
  /// citywide subsets of Tab. 2.
  [[nodiscard]] const City& main_city() const;

  /// Antennas within `radius_m` (Chebyshev) of a point; used for
  /// exploration jumps.  Returns indices sorted by distance.
  [[nodiscard]] std::vector<std::size_t> antennas_near(
      geo::PlanarPoint p, double radius_m) const;

  /// Index of the antenna nearest to `p`.
  [[nodiscard]] std::size_t nearest_antenna(geo::PlanarPoint p) const;

  /// Samples a home antenna: city chosen proportionally to weight (with a
  /// rural remainder), then an antenna near that city.
  template <typename Rng>
  [[nodiscard]] std::size_t sample_home(Rng& rng) const {
    const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    double acc = 0.0;
    for (std::size_t c = 0; c < cities_.size(); ++c) {
      acc += cities_[c].weight;
      if (u < acc) {
        const auto& members = city_antennas_[c];
        if (!members.empty()) {
          return members[rng() % members.size()];
        }
        break;
      }
    }
    return rng() % antennas_.size();
  }

 private:
  std::vector<geo::PlanarPoint> antennas_;
  std::vector<City> cities_;
  std::vector<std::vector<std::size_t>> city_antennas_;
};

}  // namespace glove::synth

#endif  // GLOVE_SYNTH_NETWORK_HPP
