#include "glove/synth/network.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "glove/util/rng.hpp"

namespace glove::synth {

namespace {

/// Standard normal via Box-Muller (no std::normal_distribution: its state
/// is implementation-defined, which would break cross-platform determinism).
double normal(util::Xoshiro256& rng) {
  const double u1 = std::max(util::uniform01(rng), 1e-12);
  const double u2 = util::uniform01(rng);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

AntennaNetwork::AntennaNetwork(const NetworkConfig& config) {
  if (config.antennas == 0) {
    throw std::invalid_argument{"network needs at least one antenna"};
  }
  if (config.cities == 0) {
    throw std::invalid_argument{"network needs at least one city"};
  }
  if (config.urban_fraction < 0.0 || config.urban_fraction > 1.0) {
    throw std::invalid_argument{"urban_fraction outside [0, 1]"};
  }
  util::Xoshiro256 rng{config.seed};

  // --- Cities: random centres (kept away from the border), Zipf weights.
  const double margin = config.region_size_m * 0.1;
  cities_.reserve(config.cities);
  double weight_total = 0.0;
  for (std::size_t c = 0; c < config.cities; ++c) {
    City city;
    city.center.x_m =
        util::uniform(rng, margin, config.region_size_m - margin);
    city.center.y_m =
        util::uniform(rng, margin, config.region_size_m - margin);
    // Radius shrinks with rank: the capital sprawls, minor towns are tight.
    city.radius_m = 12'000.0 / std::sqrt(static_cast<double>(c) + 1.0) +
                    2'000.0;
    city.weight =
        1.0 / std::pow(static_cast<double>(c) + 1.0, config.city_zipf_exponent);
    weight_total += city.weight;
    cities_.push_back(city);
  }
  // Normalize weights to sum to the urban fraction; the remainder of the
  // population anchors at rural antennas.
  for (City& city : cities_) {
    city.weight = city.weight / weight_total * config.urban_fraction;
  }

  // --- Antennas: urban share scattered around cities (weight-proportional),
  // rest uniform over the region.
  antennas_.reserve(config.antennas);
  city_antennas_.resize(cities_.size());
  const auto urban_antennas = static_cast<std::size_t>(
      std::round(static_cast<double>(config.antennas) *
                 config.urban_fraction));
  for (std::size_t i = 0; i < urban_antennas; ++i) {
    // Pick a city proportionally to its (already urban-scaled) weight.
    const double u = util::uniform01(rng) * config.urban_fraction;
    double acc = 0.0;
    std::size_t chosen = 0;
    for (std::size_t c = 0; c < cities_.size(); ++c) {
      acc += cities_[c].weight;
      if (u < acc) {
        chosen = c;
        break;
      }
      chosen = c;
    }
    const City& city = cities_[chosen];
    geo::PlanarPoint p{city.center.x_m + normal(rng) * city.radius_m,
                       city.center.y_m + normal(rng) * city.radius_m};
    p.x_m = std::clamp(p.x_m, 0.0, config.region_size_m);
    p.y_m = std::clamp(p.y_m, 0.0, config.region_size_m);
    city_antennas_[chosen].push_back(antennas_.size());
    antennas_.push_back(p);
  }
  while (antennas_.size() < config.antennas) {
    antennas_.push_back(
        geo::PlanarPoint{util::uniform(rng, 0.0, config.region_size_m),
                         util::uniform(rng, 0.0, config.region_size_m)});
  }

  // A city without any assigned antenna falls back to its nearest antenna
  // so sample_home never dereferences an empty list.
  for (std::size_t c = 0; c < cities_.size(); ++c) {
    if (city_antennas_[c].empty()) {
      city_antennas_[c].push_back(nearest_antenna(cities_[c].center));
    }
  }
}

const City& AntennaNetwork::main_city() const {
  const auto it = std::max_element(
      cities_.begin(), cities_.end(),
      [](const City& a, const City& b) { return a.weight < b.weight; });
  return *it;
}

std::vector<std::size_t> AntennaNetwork::antennas_near(
    geo::PlanarPoint p, double radius_m) const {
  std::vector<std::pair<double, std::size_t>> hits;
  for (std::size_t i = 0; i < antennas_.size(); ++i) {
    const double d = geo::planar_distance_m(antennas_[i], p);
    if (d <= radius_m) hits.emplace_back(d, i);
  }
  std::sort(hits.begin(), hits.end());
  std::vector<std::size_t> out;
  out.reserve(hits.size());
  for (const auto& [d, i] : hits) out.push_back(i);
  return out;
}

std::size_t AntennaNetwork::nearest_antenna(geo::PlanarPoint p) const {
  std::size_t best = 0;
  double best_d = geo::planar_distance_m(antennas_[0], p);
  for (std::size_t i = 1; i < antennas_.size(); ++i) {
    const double d = geo::planar_distance_m(antennas_[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace glove::synth
