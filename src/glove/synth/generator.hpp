// Synthetic CDR generation: Exploration-and-Preferential-Return mobility
// (Song et al., Nature Physics 2010) over a clustered antenna network, with
// an inhomogeneous-Poisson call process modulated by a diurnal/weekly
// profile and heterogeneous per-user rates.
//
// This substrate substitutes the proprietary D4D Ivory Coast and Senegal
// traces (see DESIGN.md): it reproduces the statistical properties the
// paper's analysis rests on — sparse and bursty temporal sampling, strong
// spatial locality (median radius of gyration ~2 km), heavy-tailed
// inter-event times and per-user heterogeneity.

#ifndef GLOVE_SYNTH_GENERATOR_HPP
#define GLOVE_SYNTH_GENERATOR_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "glove/cdr/builder.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/synth/network.hpp"

namespace glove::synth {

/// Exploration-and-Preferential-Return mobility parameters.
///
/// Defaults are tuned so the generated population reproduces the locality
/// statistics the paper reports for the D4D traces (Sec. 7.3): median
/// radius of gyration around 2 km with a heavy tail of travellers
/// (mean ~10 km).  That locality is load-bearing for the reproduction —
/// it is what keeps the *spatial* side of anonymization cheap (Sec. 5.3).
struct MobilityConfig {
  /// Exploration probability is rho * S^-gamma, with S the number of
  /// distinct locations visited so far (Song et al. form).
  double rho = 0.35;
  double gamma = 0.21;
  /// Stay durations are lognormal (minutes): exp(mu) is the median stay.
  double stay_logmean = 5.6;  ///< exp(5.6) ~ 270 min
  double stay_logsd = 0.9;
  /// Exploration jump lengths follow a truncated Pareto: mostly sub-km
  /// hops with a power-law tail of long trips.
  double jump_min_m = 600.0;
  double jump_exponent = 2.0;
  double jump_max_m = 150'000.0;
  /// Probability that a relocation happening at night returns home.
  double night_home_prob = 0.9;
  /// Every user gets a second anchor ("work") drawn within this distance
  /// of home; commuting between the two anchors dominates weekday
  /// daytime and produces the ~2 km median radius of gyration of real CDR.
  double work_radius_m = 6'000.0;
};

/// Call/traffic activity parameters.
struct ActivityConfig {
  /// Per-user daily event rate: lognormal with this median...
  double median_events_per_day = 10.0;
  double events_logsd = 0.9;
  /// ...and clamped below at this floor (models the d4d-sen selection of
  /// users active >75% of the period; 0 disables).
  double min_events_per_day = 0.0;
  /// Weekend activity multiplier.
  double weekend_factor = 0.9;
  /// Each user draws an inactive-day probability uniformly from
  /// [0, max_inactive_day_prob]: on an inactive day the user generates no
  /// events at all.  Real CDR exhibits such day-scale silent gaps (phones
  /// off, out of coverage, no traffic) — they are what makes trajectory
  /// time-alignment so costly for perturbation-based anonymizers (Tab. 2).
  double max_inactive_day_prob = 0.0;
};

/// Full synthetic dataset configuration.
struct SynthConfig {
  std::string name = "synth";
  std::size_t users = 1'000;
  double days = 14.0;
  NetworkConfig network;
  MobilityConfig mobility;
  ActivityConfig activity;
  /// Geographic anchor of the region centre, used when exporting events as
  /// lat/lon CDR (inverse Lambert projection).
  geo::LatLon region_anchor{6.82, -5.28};
  std::uint64_t seed = 7;
};

/// Hourly activity profile (relative weights, normalized internally):
/// quiet nights, business-hours plateau, evening peak.
[[nodiscard]] const std::array<double, 24>& diurnal_profile() noexcept;

/// Generates the raw planar CDR events of all users, sorted by user then
/// time.  Deterministic in `config.seed`.
[[nodiscard]] std::vector<cdr::PlanarEvent> generate_events(
    const SynthConfig& config);

/// Generates events and assembles them into a fingerprint dataset at the
/// paper's original granularity (100 m, 1 min).
[[nodiscard]] cdr::FingerprintDataset generate_dataset(
    const SynthConfig& config);

/// Converts planar events to geographic CDR events by inverting the
/// Lambert projection anchored at `config.region_anchor` (region centre).
[[nodiscard]] std::vector<cdr::CdrEvent> to_latlon_events(
    const std::vector<cdr::PlanarEvent>& events, const SynthConfig& config);

/// Preset mirroring the d4d-civ dataset (Sec. 3): Ivory-Coast-scale region,
/// Abidjan-dominated city mix, modest activity floor.  `users` scales the
/// population (paper: 82,000 after screening).
[[nodiscard]] SynthConfig civ_like(std::size_t users, std::uint64_t seed = 11);

/// Preset mirroring the d4d-sen dataset (Sec. 3): Senegal-scale region,
/// Dakar-dominated mix, high activity floor (the released data only keeps
/// users active >75% of the period; paper: 320,000 users).
[[nodiscard]] SynthConfig sen_like(std::size_t users, std::uint64_t seed = 13);

}  // namespace glove::synth

#endif  // GLOVE_SYNTH_GENERATOR_HPP
