#include "glove/synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "glove/util/rng.hpp"

namespace glove::synth {

namespace {

constexpr double kMinutesPerDay = 1440.0;

double normal(util::Xoshiro256& rng) {
  const double u1 = std::max(util::uniform01(rng), 1e-12);
  const double u2 = util::uniform01(rng);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double lognormal(util::Xoshiro256& rng, double logmean, double logsd) {
  return std::exp(logmean + logsd * normal(rng));
}

/// Truncated Pareto jump length in [min_m, max_m].
double pareto_jump(util::Xoshiro256& rng, const MobilityConfig& m) {
  const double alpha = m.jump_exponent - 1.0;  // P(D > d) ~ d^-(beta-1)
  const double u = std::max(util::uniform01(rng), 1e-12);
  const double d = m.jump_min_m * std::pow(u, -1.0 / std::max(alpha, 0.05));
  return std::min(d, m.jump_max_m);
}

/// Small-lambda Poisson sampler (Knuth).
std::size_t poisson(util::Xoshiro256& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 60.0) {
    // Normal approximation for large rates.
    const double n = lambda + std::sqrt(lambda) * normal(rng);
    return n > 0.0 ? static_cast<std::size_t>(std::llround(n)) : 0;
  }
  const double limit = std::exp(-lambda);
  std::size_t k = 0;
  double product = util::uniform01(rng);
  while (product > limit) {
    ++k;
    product *= util::uniform01(rng);
  }
  return k;
}

bool is_night(double minute_of_day) {
  return minute_of_day < 6.0 * 60.0 || minute_of_day >= 22.0 * 60.0;
}

bool is_weekend(double time_min) {
  // Epoch starts on a Monday: days 5 and 6 of each week are the weekend.
  const auto day = static_cast<long long>(time_min / kMinutesPerDay);
  return day % 7 >= 5;
}

/// A user's movement timeline: stepwise-constant antenna over time.
struct Timeline {
  std::vector<double> start_min;        // ascending
  std::vector<std::size_t> antenna;     // parallel to start_min

  [[nodiscard]] std::size_t at(double t) const {
    const auto it =
        std::upper_bound(start_min.begin(), start_min.end(), t);
    const auto idx = static_cast<std::size_t>(it - start_min.begin());
    return antenna[idx == 0 ? 0 : idx - 1];
  }
};

/// Builds one user's EPR trajectory over the whole period.
Timeline build_timeline(util::Xoshiro256& rng, const AntennaNetwork& network,
                        const SynthConfig& config, std::size_t home) {
  Timeline timeline;
  const double horizon = config.days * kMinutesPerDay;
  const MobilityConfig& m = config.mobility;

  // Every user commutes between a home and a "work" anchor near it: the
  // canonical CDR pattern, and what yields the ~2 km median radius of
  // gyration of the D4D traces.  Visit counts drive preferential return;
  // home and work are seeded with extra mass so they dominate.
  std::size_t work = home;
  {
    const auto nearby =
        network.antennas_near(network.antenna(home), m.work_radius_m);
    if (nearby.size() > 1) {
      // Skip index 0 (home itself, at distance 0).
      work = nearby[1 + util::uniform_index(rng, nearby.size() - 1)];
    }
  }
  std::vector<std::size_t> visited{home};
  std::vector<double> visit_weight{5.0};
  if (work != home) {
    visited.push_back(work);
    visit_weight.push_back(3.0);
  }

  std::size_t current = home;
  double now = 0.0;
  timeline.start_min.push_back(0.0);
  timeline.antenna.push_back(current);

  while (now < horizon) {
    const double stay =
        std::clamp(lognormal(rng, m.stay_logmean, m.stay_logsd), 20.0,
                   16.0 * 60.0);
    now += stay;
    if (now >= horizon) break;

    std::size_t next = current;
    const double minute_of_day = std::fmod(now, kMinutesPerDay);
    if (is_night(minute_of_day) && util::uniform01(rng) < m.night_home_prob) {
      next = home;
    } else {
      const double s = static_cast<double>(visited.size());
      const double p_explore = m.rho * std::pow(s, -m.gamma);
      if (util::uniform01(rng) < p_explore) {
        // Exploration: jump a Pareto-distributed distance and land on an
        // antenna near the ring at that distance.
        const double d = pareto_jump(rng, m);
        const auto candidates =
            network.antennas_near(network.antenna(current), 1.5 * d);
        if (!candidates.empty()) {
          // Prefer candidates in the outer half of the disc (annulus-ish).
          const std::size_t lo = candidates.size() / 2;
          const std::size_t span = candidates.size() - lo;
          next = candidates[lo + util::uniform_index(rng, span)];
        }
      } else {
        // Preferential return: known location, probability ~ visit weight.
        double total = 0.0;
        for (const double w : visit_weight) total += w;
        double u = util::uniform01(rng) * total;
        next = visited.back();
        for (std::size_t i = 0; i < visited.size(); ++i) {
          u -= visit_weight[i];
          if (u <= 0.0) {
            next = visited[i];
            break;
          }
        }
      }
    }

    if (next != current) {
      current = next;
      timeline.start_min.push_back(now);
      timeline.antenna.push_back(current);
    }
    const auto it = std::find(visited.begin(), visited.end(), current);
    if (it == visited.end()) {
      visited.push_back(current);
      visit_weight.push_back(1.0);
    } else {
      visit_weight[static_cast<std::size_t>(it - visited.begin())] += 1.0;
    }
  }
  return timeline;
}

/// Inverse-CDF sampler over the diurnal profile: returns a minute-of-day.
class DiurnalSampler {
 public:
  DiurnalSampler() {
    const auto& profile = diurnal_profile();
    double acc = 0.0;
    for (std::size_t h = 0; h < profile.size(); ++h) {
      acc += profile[h];
      cumulative_[h] = acc;
    }
    for (double& c : cumulative_) c /= acc;
  }

  [[nodiscard]] double sample(util::Xoshiro256& rng) const {
    const double u = util::uniform01(rng);
    std::size_t hour = 0;
    while (hour < 23 && cumulative_[hour] < u) ++hour;
    const double lo = hour == 0 ? 0.0 : cumulative_[hour - 1];
    const double hi = cumulative_[hour];
    const double frac = hi > lo ? (u - lo) / (hi - lo) : 0.5;
    return (static_cast<double>(hour) + frac) * 60.0;
  }

 private:
  std::array<double, 24> cumulative_{};
};

}  // namespace

const std::array<double, 24>& diurnal_profile() noexcept {
  // Relative call intensity per hour of day, shaped after published CDR
  // studies: deep night trough, morning ramp, business plateau, evening
  // peak, late-evening decay.
  static const std::array<double, 24> profile{
      0.20, 0.12, 0.08, 0.06, 0.07, 0.12, 0.30, 0.60,  // 00-07
      0.90, 1.05, 1.10, 1.15, 1.25, 1.15, 1.10, 1.10,  // 08-15
      1.20, 1.35, 1.50, 1.45, 1.25, 0.95, 0.60, 0.35}; // 16-23
  return profile;
}

std::vector<cdr::PlanarEvent> generate_events(const SynthConfig& config) {
  if (config.users == 0) {
    throw std::invalid_argument{"synthetic dataset needs users > 0"};
  }
  if (!(config.days > 0.0)) {
    throw std::invalid_argument{"synthetic dataset needs days > 0"};
  }
  const AntennaNetwork network{config.network};
  const DiurnalSampler diurnal;
  const util::Xoshiro256 root{config.seed};

  std::vector<cdr::PlanarEvent> events;
  events.reserve(config.users *
                 static_cast<std::size_t>(
                     config.activity.median_events_per_day * config.days));

  for (std::size_t u = 0; u < config.users; ++u) {
    util::Xoshiro256 rng = root.fork(u);
    const std::size_t home = network.sample_home(rng);
    const Timeline timeline = build_timeline(rng, network, config, home);

    // Per-user daily rate: lognormal heterogeneity with optional floor,
    // plus a per-user probability of fully silent days.
    const double rate = std::max(
        lognormal(rng, std::log(config.activity.median_events_per_day),
                  config.activity.events_logsd),
        config.activity.min_events_per_day);
    const double inactive_prob =
        util::uniform01(rng) * config.activity.max_inactive_day_prob;

    const auto whole_days = static_cast<std::size_t>(std::ceil(config.days));
    for (std::size_t day = 0; day < whole_days; ++day) {
      if (util::uniform01(rng) < inactive_prob) continue;
      const double day_start = static_cast<double>(day) * kMinutesPerDay;
      const double factor =
          is_weekend(day_start) ? config.activity.weekend_factor : 1.0;
      const std::size_t count = poisson(rng, rate * factor);
      for (std::size_t e = 0; e < count; ++e) {
        const double t = day_start + diurnal.sample(rng);
        if (t >= config.days * kMinutesPerDay) continue;
        const std::size_t antenna = timeline.at(t);
        events.push_back(cdr::PlanarEvent{
            static_cast<cdr::UserId>(u), t, network.antenna(antenna)});
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const cdr::PlanarEvent& a, const cdr::PlanarEvent& b) {
              if (a.user != b.user) return a.user < b.user;
              return a.time_min < b.time_min;
            });
  return events;
}

cdr::FingerprintDataset generate_dataset(const SynthConfig& config) {
  const std::vector<cdr::PlanarEvent> events = generate_events(config);
  cdr::BuilderConfig builder;
  builder.grid_cell_m = 100.0;
  builder.time_step_min = 1.0;
  cdr::FingerprintDataset data = cdr::build_fingerprints(events, builder);
  data.set_name(config.name);
  return data;
}

std::vector<cdr::CdrEvent> to_latlon_events(
    const std::vector<cdr::PlanarEvent>& events, const SynthConfig& config) {
  const geo::LambertAzimuthalEqualArea projection{config.region_anchor};
  const double half = config.network.region_size_m / 2.0;
  std::vector<cdr::CdrEvent> out;
  out.reserve(events.size());
  for (const cdr::PlanarEvent& ev : events) {
    const geo::PlanarPoint centred{ev.position.x_m - half,
                                   ev.position.y_m - half};
    out.push_back(
        cdr::CdrEvent{ev.user, ev.time_min, projection.inverse(centred)});
  }
  return out;
}

namespace {

/// Scales network geometry with the requested population so that the
/// *density* statistics of the full-size datasets are preserved on
/// laptop-scale runs: the D4D traces pack ~60-70 users per antenna, which
/// is what makes nearest-neighbour fingerprints spatially co-located and
/// leaves time as the hard dimension (Sec. 5.3).  Keeping the full 550 km
/// region with only hundreds of users would instead isolate every user in
/// space and invert the paper's findings (see DESIGN.md, substitutions).
void scale_network_to_population(NetworkConfig& network, std::size_t users,
                                 std::size_t ref_users,
                                 std::size_t ref_antennas,
                                 double ref_region_m) {
  const double scale =
      static_cast<double>(users) / static_cast<double>(ref_users);
  const auto antennas = static_cast<std::size_t>(
      std::clamp(static_cast<double>(users) / 40.0, 30.0,
                 static_cast<double>(ref_antennas)));
  network.antennas = antennas;
  network.region_size_m =
      ref_region_m * std::clamp(std::sqrt(scale), 0.22, 1.0);
}

}  // namespace

SynthConfig civ_like(std::size_t users, std::uint64_t seed) {
  SynthConfig config;
  config.name = "civ-like";
  config.users = users;
  config.days = 14.0;
  config.network.cities = 10;
  config.network.urban_fraction = 0.70;
  config.network.city_zipf_exponent = 1.1;
  config.network.seed = seed * 2654435761ULL + 1;
  scale_network_to_population(config.network, users, /*ref_users=*/82'000,
                              /*ref_antennas=*/1'200,
                              /*ref_region_m=*/550'000.0);
  // Tab. 2 implies ~15.4 samples/user/day on d4d-civ (17.7M samples, 82k
  // users, 14 days); lognormal heterogeneity around a median of 14.
  config.activity.median_events_per_day = 14.0;
  config.activity.events_logsd = 0.8;
  config.activity.min_events_per_day = 1.5;  // d4d-civ screening keeps
                                             // users with >= 1 sample/day
  config.activity.max_inactive_day_prob = 0.45;  // raw CDR: silent days
  config.region_anchor = geo::LatLon{6.82, -5.28};  // Yamoussoukro
  config.seed = seed;
  return config;
}

SynthConfig sen_like(std::size_t users, std::uint64_t seed) {
  SynthConfig config;
  config.name = "sen-like";
  config.users = users;
  config.days = 14.0;
  config.network.cities = 12;
  config.network.urban_fraction = 0.75;
  config.network.city_zipf_exponent = 1.2;
  config.network.seed = seed * 0x9e3779b97f4a7c15ULL + 3;
  scale_network_to_population(config.network, users, /*ref_users=*/320'000,
                              /*ref_antennas=*/1'600,
                              /*ref_region_m=*/500'000.0);
  // Tab. 2 implies ~6.6 samples/user/day on d4d-sen (29.7M samples, 320k
  // users, 14 days): lighter per-day activity than civ, but with a high
  // floor (the release only keeps users active > 75% of the period).
  config.activity.median_events_per_day = 7.0;
  config.activity.events_logsd = 0.6;
  config.activity.min_events_per_day = 4.0;
  config.activity.max_inactive_day_prob = 0.2;  // active >75% of period
  config.region_anchor = geo::LatLon{14.69, -17.44};  // Dakar
  config.seed = seed;
  return config;
}

}  // namespace glove::synth
