#include "json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace glove::lint {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_{text} {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"json parse error at byte " +
                             std::to_string(pos_) + ": " + what};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Pass \uXXXX through untranslated; the lint inputs are ASCII.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      while (true) {
        std::string key = parse_string();
        expect(':');
        value.object.emplace(std::move(key), parse_value());
        const char sep = peek();
        if (sep == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      while (true) {
        value.array.push_back(parse_value());
        const char sep = peek();
        if (sep == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (consume_literal("null")) return value;
    // Number.
    {
      char* end = nullptr;
      value.kind = JsonValue::Kind::kNumber;
      value.number = std::strtod(text_.c_str() + pos_, &end);
      if (end == text_.c_str() + pos_) fail("unexpected character");
      pos_ = static_cast<std::size_t>(end - text_.c_str());
      return value;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser{text}.parse(); }

}  // namespace glove::lint
