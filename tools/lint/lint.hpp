// glove_lint: project-invariant static analysis for the GLOVE tree.
//
// The repo's load-bearing guarantee is byte-identical output across
// strategies, worker counts, budgets, and dataset formats.  These rules
// enforce, at the source level, the conventions that guarantee rests on:
//
//   unordered-iteration  Iterating an unordered container in the layers
//                        that feed output or report emission
//                        (src/glove/{api,shard,cdr,serve,stats}) ties
//                        results to libstdc++ hash order.  Prove a site
//                        order-insensitive and annotate it, or fix it.
//   raw-rng              rand()/srand(), std::random_device, time-seeded
//                        engines, and pointer-value ordering are hidden
//                        nondeterminism.  All randomness flows through
//                        util/rng.hpp's seeded generators.
//   throw-context        Every throw under src/glove/cdr/ carries the
//                        offending file path (the PR 4-6 convention), so
//                        io errors from deep inside a streaming run stay
//                        actionable.
//   schema-drift         The run-report key set emitted by report.cpp
//                        must match the blessed schema file; any key
//                        change requires a glove.run_report.vN bump and
//                        a re-bless (see schema.hpp).
//   obs-naming           Span/metric name literals (GLOVE_SPAN,
//                        GLOVE_SPAN_NAMED, obs::counter/gauge/histogram)
//                        must be lowercase dotted words ([a-z0-9_.]+)
//                        and unique within a translation unit, so every
//                        trace or report line maps to one source site.
//
// Escape hatch: a comment containing the marker (the project name, a
// hyphen, "lint", then a colon) followed by an allow-clause — the word
// "allow", an open paren, the rule name, a comma, a mandatory reason,
// and a close paren — on the finding's line, the line above, or any line
// of the offending statement.  See tools/lint/README.md for examples;
// the spelling is paraphrased here so the lint does not read its own
// documentation as an annotation.
//
// The analysis is a tokenizer pass (comments/strings/raw strings handled,
// template arguments matched structurally), which keeps the tool
// dependency-free and fast.  When built with GLOVE_LINT_WITH_LIBCLANG and
// libclang headers are present, an AST cross-check pass refines
// unordered-iteration findings (see clang_engine.cpp).

#ifndef GLOVE_TOOLS_LINT_LINT_HPP
#define GLOVE_TOOLS_LINT_LINT_HPP

#include <string>
#include <vector>

namespace glove::lint {

enum class TokKind {
  kIdentifier,
  kNumber,
  kString,
  kChar,
  kPunct,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct Comment {
  std::string text;
  int line = 0;  // line the comment starts on
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes C++ source: skips preprocessor directives (with continuation
/// lines), decodes ordinary and raw string literals, and collects comments
/// separately so annotations stay visible to the rules.
LexResult lex(const std::string& source);

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One parsed allow-annotation (see the escape-hatch note above).
struct Annotation {
  std::string rule;
  std::string reason;
  int line = 0;      // line the annotation's comment starts on
  int end_line = 0;  // line the annotation's comment ends on
};

/// Extracts annotations from comments.  Malformed annotations (missing
/// reason, unknown spelling) are reported as `bad-annotation` findings.
std::vector<Annotation> parse_annotations(const std::vector<Comment>& comments,
                                          const std::string& file,
                                          std::vector<Finding>& findings);

struct FileClass {
  bool emission_layer = false;  // src/glove/{api,shard,cdr,serve,stats}
  bool cdr_layer = false;       // src/glove/cdr
  bool rng_exempt = false;      // util/rng.hpp
};

/// Classifies a repo-relative path for rule applicability.
FileClass classify_path(const std::string& relative_path);

/// Type aliases that resolve to unordered containers, collected in a
/// global pre-pass so `AntennaTable table;` is seen as unordered even
/// in another translation unit.
struct AliasTable {
  std::vector<std::string> unordered_aliases;

  [[nodiscard]] bool is_unordered_name(const std::string& name) const;
  void collect(const LexResult& lexed);
};

/// Runs every token-level rule over one lexed file.  `relative_path` is
/// used for classification and reporting.
std::vector<Finding> lint_tokens(const LexResult& lexed,
                                 const std::string& relative_path,
                                 const AliasTable& aliases);

/// Convenience: read, lex, and lint one file on disk.  `relative_path`
/// controls rule applicability; `disk_path` is where the bytes live.
std::vector<Finding> lint_file(const std::string& disk_path,
                               const std::string& relative_path,
                               const AliasTable& aliases);

/// Reads a whole file; throws std::runtime_error (with the path) on
/// failure.
std::string read_file(const std::string& path);

}  // namespace glove::lint

#endif  // GLOVE_TOOLS_LINT_LINT_HPP
