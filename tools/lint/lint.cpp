#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace glove::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot open for reading: " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw std::runtime_error{"failed reading: " + path};
  return buffer.str();
}

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring continuations.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back({src.substr(i, j - i), start_line});
      advance(j - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      const std::size_t end = (j + 1 < n) ? j + 2 : n;
      out.comments.push_back({src.substr(i, end - i), start_line});
      advance(end - i);
      continue;
    }
    // Raw string literal, with optional encoding prefix.  Must be checked
    // before identifiers so R"(...)" content (which may contain quotes and
    // comment markers) is consumed verbatim.
    if ((i == 0 || !ident_char(src[i - 1]))) {
      static const char* kRawPrefixes[] = {"R\"", "u8R\"", "uR\"", "UR\"",
                                           "LR\""};
      std::size_t prefix_len = 0;
      for (const char* p : kRawPrefixes) {
        const std::size_t len = std::char_traits<char>::length(p);
        if (src.compare(i, len, p) == 0) {
          prefix_len = len;
          break;
        }
      }
      if (prefix_len != 0) {
        std::size_t q = i + prefix_len;
        std::string delim;
        while (q < n && src[q] != '(') delim += src[q++];
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = src.find(closer, q);
        const std::size_t end =
            close == std::string::npos ? n : close + closer.size();
        const int start_line = line;
        out.tokens.push_back(
            {TokKind::kString, src.substr(i, end - i), start_line});
        advance(end - i);
        continue;
      }
    }
    // Ordinary string / char literal.  Encoding prefixes (u8, L, ...) lex
    // as a separate identifier token just before the literal, which is
    // harmless for every rule here.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      const std::size_t end = (j < n) ? j + 1 : n;
      const int start_line = line;
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            src.substr(i, end - i), start_line});
      advance(end - i);
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({TokKind::kIdentifier, src.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Number (we only need to not confuse it with anything else).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Punctuation: longest useful multi-char tokens first.
    {
      static const char* kMulti[] = {"::", "->", "<<=", ">>=", "<=>", "<<",
                                     ">>", "<=", ">=", "==", "!=", "&&",
                                     "||", "+=", "-=", "*=", "/=", "..."};
      std::string text{c};
      for (const char* m : kMulti) {
        const std::size_t len = std::char_traits<char>::length(m);
        if (src.compare(i, len, m) == 0) {
          text.assign(m, len);
          break;
        }
      }
      out.tokens.push_back({TokKind::kPunct, text, line});
      advance(text.size());
    }
  }
  return out;
}

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kRules{
      "unordered-iteration", "raw-rng", "throw-context", "schema-drift",
      "obs-naming"};
  return kRules;
}

}  // namespace

std::vector<Annotation> parse_annotations(const std::vector<Comment>& comments,
                                          const std::string& file,
                                          std::vector<Finding>& findings) {
  // Annotations routinely wrap at the 80-column limit, which the lexer
  // sees as several consecutive `//` comments.  Merge runs of adjacent
  // line comments into one logical block (joined with spaces, `//`
  // markers stripped) so a wrapped allow(...) parses whole.
  std::vector<Comment> merged;
  for (const Comment& comment : comments) {
    const bool line_comment = comment.text.rfind("//", 0) == 0;
    std::string body = line_comment ? comment.text.substr(2) : comment.text;
    if (line_comment && !merged.empty() &&
        merged.back().text.rfind("//", 0) == 0) {
      const int prev_end =
          merged.back().line +
          static_cast<int>(std::count(merged.back().text.begin(),
                                      merged.back().text.end(), '\n'));
      if (comment.line == prev_end + 1) {
        merged.back().text += "\n" + body;
        continue;
      }
    }
    merged.push_back(comment);
  }

  std::vector<Annotation> annotations;
  for (const Comment& comment : merged) {
    std::size_t pos = 0;
    while ((pos = comment.text.find("glove-lint:", pos)) !=
           std::string::npos) {
      pos += std::char_traits<char>::length("glove-lint:");
      const std::size_t allow = comment.text.find("allow(", pos);
      if (allow == std::string::npos) {
        findings.push_back({file, comment.line, "bad-annotation",
                            "glove-lint marker without allow(<rule>, "
                            "<reason>)"});
        break;
      }
      const std::size_t open = allow + std::char_traits<char>::length("allow(");
      // Balance parentheses so reasons may themselves contain parens.
      std::size_t close = std::string::npos;
      std::size_t comma = std::string::npos;
      int depth = 1;
      for (std::size_t k = open; k < comment.text.size(); ++k) {
        const char ch = comment.text[k];
        if (ch == '(') {
          ++depth;
        } else if (ch == ')') {
          if (--depth == 0) {
            close = k;
            break;
          }
        } else if (ch == ',' && depth == 1 &&
                   comma == std::string::npos) {
          comma = k;
        }
      }
      if (close == std::string::npos || comma == std::string::npos) {
        findings.push_back({file, comment.line, "bad-annotation",
                            "allow() needs both a rule and a reason: "
                            "allow(<rule>, <reason>)"});
        break;
      }
      Annotation a;
      a.rule = trim(comment.text.substr(open, comma - open));
      a.reason = trim(comment.text.substr(comma + 1, close - comma - 1));
      a.line = comment.line;
      a.end_line =
          comment.line +
          static_cast<int>(std::count(comment.text.begin(),
                                      comment.text.end(), '\n'));
      if (known_rules().count(a.rule) == 0) {
        findings.push_back({file, comment.line, "bad-annotation",
                            "allow() names unknown rule '" + a.rule + "'"});
      } else if (a.reason.empty()) {
        findings.push_back({file, comment.line, "bad-annotation",
                            "allow(" + a.rule +
                                ") needs a non-empty reason"});
      } else {
        annotations.push_back(std::move(a));
      }
      pos = close == std::string::npos ? comment.text.size() : close;
    }
  }
  return annotations;
}

FileClass classify_path(const std::string& path) {
  FileClass cls;
  const auto under = [&](const char* prefix) {
    return path.rfind(prefix, 0) == 0;
  };
  cls.emission_layer = under("src/glove/api/") || under("src/glove/shard/") ||
                       under("src/glove/cdr/") || under("src/glove/serve/") ||
                       under("src/glove/stats/") ||
                       // The shard-worker daemon emits the same wire bytes
                       // and obs deltas the coordinator folds into reports.
                       under("tools/shard_worker/");
  cls.cdr_layer = under("src/glove/cdr/");
  cls.rng_exempt = path == "src/glove/util/rng.hpp";
  return cls;
}

bool AliasTable::is_unordered_name(const std::string& name) const {
  if (name == "unordered_map" || name == "unordered_set" ||
      name == "unordered_multimap" || name == "unordered_multiset") {
    return true;
  }
  return std::find(unordered_aliases.begin(), unordered_aliases.end(), name) !=
         unordered_aliases.end();
}

void AliasTable::collect(const LexResult& lexed) {
  const std::vector<Token>& toks = lexed.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    // using Alias = ... unordered_xxx ... ;
    if (toks[i].kind == TokKind::kIdentifier && toks[i].text == "using" &&
        toks[i + 1].kind == TokKind::kIdentifier &&
        toks[i + 2].text == "=") {
      for (std::size_t j = i + 3;
           j < toks.size() && toks[j].text != ";"; ++j) {
        if (toks[j].kind == TokKind::kIdentifier &&
            is_unordered_name(toks[j].text)) {
          unordered_aliases.push_back(toks[i + 1].text);
          break;
        }
      }
    }
    // typedef ... unordered_xxx ... Alias ;
    if (toks[i].kind == TokKind::kIdentifier && toks[i].text == "typedef") {
      bool unordered = false;
      std::size_t j = i + 1;
      for (; j < toks.size() && toks[j].text != ";"; ++j) {
        if (toks[j].kind == TokKind::kIdentifier &&
            is_unordered_name(toks[j].text)) {
          unordered = true;
        }
      }
      if (unordered && j > i + 1 && toks[j - 1].kind == TokKind::kIdentifier) {
        unordered_aliases.push_back(toks[j - 1].text);
      }
    }
  }
}

namespace {

/// Index of the token after a balanced `<...>` template argument list
/// starting at `open` (which must point at `<`).  Treats `>>` as two
/// closers, which is correct inside template argument lists.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t open) {
  int depth = 0;
  std::size_t i = open;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t == ";" || t == "{") {
      break;  // malformed; bail out
    }
    ++i;
  }
  return i;
}

struct UnorderedDecls {
  std::set<std::string> variables;  // names declared with an unordered type
  std::set<std::string> functions;  // names returning an unordered type
};

UnorderedDecls collect_unordered_decls(const std::vector<Token>& toks,
                                       const AliasTable& aliases) {
  UnorderedDecls decls;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        !aliases.is_unordered_name(toks[i].text)) {
      continue;
    }
    // Skip the alias-definition spelling itself (`using X = unordered...`).
    if (i >= 2 && toks[i - 1].text == "=" &&
        i >= 3 && toks[i - 3].text == "using") {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      j = skip_template_args(toks, j);
    }
    // Skip cv/ref/pointer decorations between type and declarator.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const" || toks[j].text == "&&")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdentifier) continue;
    const std::string& name = toks[j].text;
    const std::string& next = j + 1 < toks.size() ? toks[j + 1].text : "";
    if (next == "(") {
      decls.functions.insert(name);
    } else {
      // Parameter, member, or local: `;`, `{`, `=`, `,`, `)` all mean the
      // declarator just ended.
      decls.variables.insert(name);
    }
  }
  return decls;
}

bool is_suppressed(const std::vector<Annotation>& annotations,
                   const std::string& rule, int first_line, int last_line) {
  // An annotation applies when its comment touches the statement: it ends
  // on the line above (or within) the statement, and starts no later than
  // the statement's last line.
  return std::any_of(annotations.begin(), annotations.end(),
                     [&](const Annotation& a) {
                       return a.rule == rule &&
                              a.end_line >= first_line - 1 &&
                              a.line <= last_line;
                     });
}

void check_unordered_iteration(const std::vector<Token>& toks,
                               const std::string& file,
                               const UnorderedDecls& decls,
                               const std::vector<Annotation>& annotations,
                               std::vector<Finding>& findings) {
  const auto is_unordered_expr_token = [&](const Token& t) {
    return t.kind == TokKind::kIdentifier &&
           (decls.variables.count(t.text) != 0 ||
            decls.functions.count(t.text) != 0);
  };

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // Range-for: for ( init? decl : range-expr )
    if (toks[i].kind == TokKind::kIdentifier && toks[i].text == "for" &&
        toks[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
        if (t == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (is_unordered_expr_token(toks[j])) {
          if (!is_suppressed(annotations, "unordered-iteration",
                             toks[i].line, toks[close].line)) {
            findings.push_back(
                {file, toks[i].line, "unordered-iteration",
                 "range-for over unordered container '" + toks[j].text +
                     "' in an emission layer: iteration order is hash "
                     "order; sort first, or annotate with a proof of "
                     "order-insensitivity"});
          }
          break;
        }
      }
      continue;
    }
    // Iterator access: <unordered>.begin() / .cbegin().  `.end()` alone is
    // not flagged — `it != m.end()` after a find() is a lookup, and any
    // real traversal needs a begin.
    if (toks[i].text == "." && i + 1 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdentifier &&
        (toks[i + 1].text == "begin" || toks[i + 1].text == "cbegin") &&
        i >= 1 && is_unordered_expr_token(toks[i - 1])) {
      if (!is_suppressed(annotations, "unordered-iteration",
                         toks[i - 1].line, toks[i + 1].line)) {
        findings.push_back(
            {file, toks[i].line, "unordered-iteration",
             "iterator over unordered container '" + toks[i - 1].text +
                 "' in an emission layer: iteration order is hash order"});
      }
    }
  }
}

void check_raw_rng(const std::vector<Token>& toks, const std::string& file,
                   const std::vector<Annotation>& annotations,
                   std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    const std::string& next = i + 1 < toks.size() ? toks[i + 1].text : "";
    const auto flag = [&](const std::string& message) {
      if (!is_suppressed(annotations, "raw-rng", toks[i].line,
                         toks[i].line)) {
        findings.push_back({file, toks[i].line, "raw-rng", message});
      }
    };
    if ((t == "rand" || t == "srand") && next == "(") {
      flag("'" + t +
           "' is process-global and unseeded per run; draw from "
           "util/rng.hpp instead");
    } else if (t == "random_device") {
      flag("std::random_device is nondeterministic; derive seeds via "
           "util/rng.hpp (SplitMix64) instead");
    } else if (t == "time" && next == "(" && i + 2 < toks.size() &&
               (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL" ||
                toks[i + 2].text == "0")) {
      flag("time(...) as an entropy source makes runs unreproducible; "
           "thread an explicit seed through util/rng.hpp");
    } else if (t == "reinterpret_cast" && next == "<" && i + 2 < toks.size() &&
               (toks[i + 2].text == "uintptr_t" ||
                toks[i + 2].text == "intptr_t" ||
                (toks[i + 2].text == "std" && i + 4 < toks.size() &&
                 (toks[i + 4].text == "uintptr_t" ||
                  toks[i + 4].text == "intptr_t")))) {
      flag("pointer-value ordering is allocation-order dependent; key on "
           "stable ids instead");
    }
  }
}

void check_throw_context(const std::vector<Token>& toks,
                         const std::string& file,
                         const std::vector<Annotation>& annotations,
                         std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier || toks[i].text != "throw") {
      continue;
    }
    if (i + 1 < toks.size() && toks[i + 1].text == ";") continue;  // rethrow
    bool has_context = false;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == ";" && depth <= 0) break;
      if (toks[j].kind == TokKind::kIdentifier &&
          (t == "path" || t == "path_" || t == "context" ||
           t == "context_")) {
        has_context = true;
      }
    }
    const int last_line = j < toks.size() ? toks[j].line : toks[i].line;
    if (!has_context &&
        !is_suppressed(annotations, "throw-context", toks[i].line,
                       last_line)) {
      findings.push_back(
          {file, toks[i].line, "throw-context",
           "throw under src/glove/cdr/ without file-path context: include "
           "the offending path (or a path-prefixed context string) in the "
           "message, or annotate why none applies"});
    }
    i = j;
  }
}

void check_obs_naming(const std::vector<Token>& toks, const std::string& file,
                      const std::vector<Annotation>& annotations,
                      std::vector<Finding>& findings) {
  const auto conforming = [](const std::string& name) {
    if (name.empty()) return false;
    return std::all_of(name.begin(), name.end(), [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
             c == '.';
    });
  };
  // Registration sites: GLOVE_SPAN("n"), GLOVE_SPAN_NAMED(var, "n"), and
  // obs::counter/gauge/histogram("n").  Non-literal name expressions are
  // out of scope — the convention is about the literals a trace or report
  // reader greps for.
  std::map<std::string, int> seen;  // name -> line of first registration
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    std::size_t literal = 0;  // token index of the name literal; 0 = none
    if (t == "GLOVE_SPAN" && i + 2 < toks.size() && toks[i + 1].text == "(" &&
        toks[i + 2].kind == TokKind::kString) {
      literal = i + 2;
    } else if (t == "GLOVE_SPAN_NAMED" && i + 4 < toks.size() &&
               toks[i + 1].text == "(" &&
               toks[i + 2].kind == TokKind::kIdentifier &&
               toks[i + 3].text == "," &&
               toks[i + 4].kind == TokKind::kString) {
      literal = i + 4;
    } else if ((t == "counter" || t == "gauge" || t == "histogram") &&
               i >= 2 && toks[i - 1].text == "::" &&
               toks[i - 2].text == "obs" && i + 2 < toks.size() &&
               toks[i + 1].text == "(" &&
               toks[i + 2].kind == TokKind::kString) {
      literal = i + 2;
    }
    if (literal == 0) continue;
    const std::string& raw = toks[literal].text;  // quotes included
    const std::string name =
        raw.size() >= 2 ? raw.substr(1, raw.size() - 2) : "";
    const int line = toks[i].line;
    const int last_line = toks[literal].line;
    if (!conforming(name)) {
      if (!is_suppressed(annotations, "obs-naming", line, last_line)) {
        findings.push_back(
            {file, line, "obs-naming",
             "span/metric name " + raw +
                 " violates the obs naming convention: lowercase dotted "
                 "words matching [a-z0-9_.]+"});
      }
      continue;
    }
    const auto [it, inserted] = seen.emplace(name, line);
    if (!inserted &&
        !is_suppressed(annotations, "obs-naming", line, last_line)) {
      findings.push_back(
          {file, line, "obs-naming",
           "span/metric name \"" + name + "\" already registered at line " +
               std::to_string(it->second) +
               ": obs names are unique per translation unit so a trace or "
               "report line maps to one site"});
    }
  }
}

}  // namespace

std::vector<Finding> lint_tokens(const LexResult& lexed,
                                 const std::string& relative_path,
                                 const AliasTable& aliases) {
  std::vector<Finding> findings;
  const FileClass cls = classify_path(relative_path);
  const std::vector<Annotation> annotations =
      parse_annotations(lexed.comments, relative_path, findings);

  if (cls.emission_layer) {
    const UnorderedDecls decls =
        collect_unordered_decls(lexed.tokens, aliases);
    check_unordered_iteration(lexed.tokens, relative_path, decls, annotations,
                              findings);
  }
  if (!cls.rng_exempt) {
    check_raw_rng(lexed.tokens, relative_path, annotations, findings);
  }
  if (cls.cdr_layer) {
    check_throw_context(lexed.tokens, relative_path, annotations, findings);
  }
  check_obs_naming(lexed.tokens, relative_path, annotations, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& disk_path,
                               const std::string& relative_path,
                               const AliasTable& aliases) {
  return lint_tokens(lex(read_file(disk_path)), relative_path, aliases);
}

}  // namespace glove::lint
