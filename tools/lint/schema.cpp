#include "schema.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "json.hpp"

namespace glove::lint {

namespace {

/// Decodes an ordinary C++ string literal token (quotes stripped, common
/// escapes resolved).  Raw strings are not used for report keys.
std::string literal_value(const std::string& token) {
  std::string out;
  std::size_t i = 0;
  const std::size_t n = token.size();
  if (i < n && token[i] == '"') ++i;
  while (i < n && !(token[i] == '"' && i + 1 == n)) {
    if (token[i] == '\\' && i + 1 < n) {
      const char esc = token[i + 1];
      switch (esc) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        default: out += esc; break;
      }
      i += 2;
      continue;
    }
    out += token[i++];
  }
  return out;
}

}  // namespace

ReportSchema extract_schema(const std::string& report_source) {
  const LexResult lexed = lex(report_source);
  const std::vector<Token>& toks = lexed.tokens;
  ReportSchema schema;
  std::set<std::string> keys;

  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    // `.set("key", ...)`: the first argument names an emitted key.
    if (toks[i].kind == TokKind::kIdentifier && toks[i].text == "set" &&
        toks[i + 1].text == "(" && toks[i + 2].kind == TokKind::kString) {
      keys.insert(literal_value(toks[i + 2].text));
    }
    // The schema version literal can appear anywhere (it is the value of
    // the "schema" key).
    if (toks[i].kind == TokKind::kString) {
      const std::string value = literal_value(toks[i].text);
      if (value.rfind("glove.run_report.", 0) == 0) {
        if (!schema.version.empty() && schema.version != value) {
          throw std::runtime_error{
              "report source names two schema versions: " + schema.version +
              " and " + value};
        }
        schema.version = value;
      }
    }
    // The CSV header: adjacent string literals inside report_csv_header().
    if (toks[i].kind == TokKind::kIdentifier &&
        toks[i].text == "report_csv_header" && toks[i + 1].text == "(") {
      for (std::size_t j = i + 1; j < toks.size() && toks[j].text != "}";
           ++j) {
        if (toks[j].kind == TokKind::kString) {
          schema.csv_header += literal_value(toks[j].text);
        }
      }
    }
  }
  schema.keys.assign(keys.begin(), keys.end());
  if (schema.version.empty()) {
    throw std::runtime_error{
        "report source carries no glove.run_report.vN version literal"};
  }
  return schema;
}

ReportSchema load_schema(const std::string& path) {
  const JsonValue doc = parse_json(read_file(path));
  if (doc.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error{path + ": schema file must be a JSON object"};
  }
  ReportSchema schema;
  const JsonValue* version = doc.find("schema_version");
  const JsonValue* keys = doc.find("keys");
  const JsonValue* header = doc.find("csv_header");
  if (version == nullptr || version->kind != JsonValue::Kind::kString ||
      keys == nullptr || keys->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error{
        path + ": schema file needs string `schema_version` and array "
               "`keys`"};
  }
  schema.version = version->string;
  for (const JsonValue& key : keys->array) {
    if (key.kind != JsonValue::Kind::kString) {
      throw std::runtime_error{path + ": `keys` must hold strings"};
    }
    schema.keys.push_back(key.string);
  }
  std::sort(schema.keys.begin(), schema.keys.end());
  schema.keys.erase(std::unique(schema.keys.begin(), schema.keys.end()),
                    schema.keys.end());
  if (header != nullptr && header->kind == JsonValue::Kind::kString) {
    schema.csv_header = header->string;
  }
  return schema;
}

std::string schema_to_json(const ReportSchema& schema) {
  std::string out = "{\n";
  out += "  \"schema_version\": \"" + schema.version + "\",\n";
  out += "  \"csv_header\": \"" + schema.csv_header + "\",\n";
  out += "  \"keys\": [\n";
  for (std::size_t i = 0; i < schema.keys.size(); ++i) {
    out += "    \"" + schema.keys[i] + "\"";
    out += i + 1 < schema.keys.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void check_schema_drift(const ReportSchema& emitted,
                        const ReportSchema& blessed,
                        const std::string& report_path,
                        const std::string& schema_path,
                        std::vector<Finding>& findings) {
  std::vector<std::string> added;
  std::vector<std::string> removed;
  std::set_difference(emitted.keys.begin(), emitted.keys.end(),
                      blessed.keys.begin(), blessed.keys.end(),
                      std::back_inserter(added));
  std::set_difference(blessed.keys.begin(), blessed.keys.end(),
                      emitted.keys.begin(), emitted.keys.end(),
                      std::back_inserter(removed));
  const bool keys_drifted =
      !added.empty() || !removed.empty() ||
      emitted.csv_header != blessed.csv_header;

  const auto describe = [&]() {
    std::string what;
    for (const std::string& key : added) what += " +" + key;
    for (const std::string& key : removed) what += " -" + key;
    if (emitted.csv_header != blessed.csv_header) what += " ~csv_header";
    return what;
  };

  if (keys_drifted && emitted.version == blessed.version) {
    findings.push_back(
        {report_path, 0, "schema-drift",
         "run-report keys changed without a schema version bump (" +
             emitted.version + "):" + describe() +
             " — bump glove.run_report.vN in report.cpp, re-bless with "
             "`glove_lint --update-schema`, and re-bless the JSON goldens"});
  } else if (emitted.version != blessed.version) {
    findings.push_back(
        {schema_path, 0, "schema-drift",
         "report.cpp emits " + emitted.version + " but the blessed schema "
         "records " + blessed.version +
             " — re-bless with `glove_lint --update-schema`" +
             (keys_drifted ? " (key drift:" + describe() + ")" : "")});
  }
}

}  // namespace glove::lint
