#include "clang_engine.hpp"

#include <algorithm>

#if defined(GLOVE_LINT_HAVE_LIBCLANG)
#include <clang-c/Index.h>
#endif

namespace glove::lint {

#if defined(GLOVE_LINT_HAVE_LIBCLANG)

namespace {

struct VisitState {
  const std::string* relative_path;
  const std::vector<Annotation>* annotations;
  std::vector<Finding>* findings;
};

std::string spelling(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c != nullptr ? c : "";
  clang_disposeString(s);
  return out;
}

bool unordered_type(CXType type) {
  // Strip references and sugar so `const std::unordered_map<K, V>&` and
  // alias spellings both resolve to the underlying container.
  if (type.kind == CXType_LValueReference ||
      type.kind == CXType_RValueReference) {
    type = clang_getPointeeType(type);
  }
  const std::string name = spelling(clang_getTypeSpelling(
      clang_getCanonicalType(type)));
  return name.find("unordered_map<") != std::string::npos ||
         name.find("unordered_set<") != std::string::npos ||
         name.find("unordered_multimap<") != std::string::npos ||
         name.find("unordered_multiset<") != std::string::npos;
}

CXChildVisitResult range_init_visitor(CXCursor cursor, CXCursor /*parent*/,
                                      CXClientData data) {
  auto* state = static_cast<VisitState*>(data);
  if (clang_getCursorKind(cursor) == CXCursor_CXXForRangeStmt) {
    // The range initializer is the last expression child of the for-range
    // statement's variable declaration; checking the statement's own
    // extent keeps this robust across clang versions.
    CXSourceLocation loc = clang_getCursorLocation(cursor);
    unsigned line = 0;
    clang_getSpellingLocation(loc, nullptr, &line, nullptr, nullptr);

    struct Inner {
      bool unordered = false;
    } inner;
    clang_visitChildren(
        cursor,
        [](CXCursor child, CXCursor, CXClientData inner_data)
            -> CXChildVisitResult {
          auto* flag = static_cast<Inner*>(inner_data);
          if (clang_getCursorKind(child) == CXCursor_VarDecl ||
              clang_isExpression(clang_getCursorKind(child)) != 0) {
            if (unordered_type(clang_getCursorType(child))) {
              flag->unordered = true;
              return CXChildVisit_Break;
            }
          }
          return CXChildVisit_Continue;
        },
        &inner);
    if (inner.unordered) {
      const int first = static_cast<int>(line);
      const bool suppressed = std::any_of(
          state->annotations->begin(), state->annotations->end(),
          [&](const Annotation& a) {
            return a.rule == "unordered-iteration" && a.line >= first - 1 &&
                   a.line <= first + 2;
          });
      if (!suppressed) {
        state->findings->push_back(
            {*state->relative_path, first, "unordered-iteration",
             "range-for over an unordered container type (AST engine): "
             "iteration order is hash order"});
      }
    }
  }
  return CXChildVisit_Recurse;
}

}  // namespace

bool ast_available() { return true; }

void ast_check_unordered_iteration(const std::string& disk_path,
                                   const std::string& relative_path,
                                   const std::vector<std::string>& args,
                                   const std::vector<Annotation>& annotations,
                                   std::vector<Finding>& findings) {
  CXIndex index = clang_createIndex(/*excludeDeclarationsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) argv.push_back(a.c_str());
  CXTranslationUnit tu = nullptr;
  const CXErrorCode rc = clang_parseTranslationUnit2(
      index, disk_path.c_str(), argv.data(), static_cast<int>(argv.size()),
      nullptr, 0, CXTranslationUnit_None, &tu);
  if (rc == CXError_Success && tu != nullptr) {
    VisitState state{&relative_path, &annotations, &findings};
    clang_visitChildren(clang_getTranslationUnitCursor(tu),
                        range_init_visitor, &state);
  }
  if (tu != nullptr) clang_disposeTranslationUnit(tu);
  clang_disposeIndex(index);
}

#else  // !GLOVE_LINT_HAVE_LIBCLANG

bool ast_available() { return false; }

void ast_check_unordered_iteration(const std::string& /*disk_path*/,
                                   const std::string& /*relative_path*/,
                                   const std::vector<std::string>& /*args*/,
                                   const std::vector<Annotation>& /*anns*/,
                                   std::vector<Finding>& /*findings*/) {}

#endif  // GLOVE_LINT_HAVE_LIBCLANG

}  // namespace glove::lint
