// schema-drift rule: the run-report surface emitted by report.cpp is a
// public contract (tools/check_streaming_report.py, bench baselines, and
// downstream dashboards parse it).  The emitted key set and the
// `glove.run_report.vN` version string are extracted from report.cpp and
// diffed against the blessed tools/lint/report_schema.vN.json:
//
//   keys changed, version unchanged  ->  FAIL: bump the schema version
//   version changed, bless stale     ->  FAIL: re-bless with
//                                        `glove_lint --update-schema`
//   both match                       ->  pass
//
// The blessed file stores the keys as a flat sorted array of the string
// literals passed to stats::Json `.set("...")` plus the CSV header, so a
// rename shows up as one removal + one addition.  Free-form key families
// (the `metrics` object, which strategies extend at runtime) are emitted
// through a variable and therefore intentionally invisible here.

#ifndef GLOVE_TOOLS_LINT_SCHEMA_HPP
#define GLOVE_TOOLS_LINT_SCHEMA_HPP

#include <string>
#include <vector>

#include "lint.hpp"

namespace glove::lint {

struct ReportSchema {
  std::string version;             // e.g. "glove.run_report.v5"
  std::vector<std::string> keys;   // sorted, unique
  std::string csv_header;          // report_csv_header() literal
};

/// Extracts the emitted schema from report.cpp source text.
ReportSchema extract_schema(const std::string& report_source);

/// Loads a blessed schema file; throws std::runtime_error (with the path)
/// on malformed input.
ReportSchema load_schema(const std::string& path);

/// Serializes a schema into the blessed-file JSON spelling.
std::string schema_to_json(const ReportSchema& schema);

/// Diffs emitted-vs-blessed and appends findings (empty = in sync).
/// `report_path` and `schema_path` are only used in messages.
void check_schema_drift(const ReportSchema& emitted,
                        const ReportSchema& blessed,
                        const std::string& report_path,
                        const std::string& schema_path,
                        std::vector<Finding>& findings);

}  // namespace glove::lint

#endif  // GLOVE_TOOLS_LINT_SCHEMA_HPP
