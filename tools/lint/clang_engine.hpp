// Optional libclang AST cross-check for the unordered-iteration rule.
//
// The tokenizer engine reasons about names; the AST engine reasons about
// types, so it also catches iteration over an unordered container reached
// through `auto`, a reference returned from a helper, or a nested member.
// It is compiled in only when CMake is configured with
// -DGLOVE_LINT_WITH_LIBCLANG=ON and clang-c/Index.h is found; every
// runner without libclang silently uses the tokenizer-only configuration
// (ast_available() == false), which is the supported baseline.

#ifndef GLOVE_TOOLS_LINT_CLANG_ENGINE_HPP
#define GLOVE_TOOLS_LINT_CLANG_ENGINE_HPP

#include <string>
#include <vector>

#include "lint.hpp"

namespace glove::lint {

/// True when this binary was built against libclang.
bool ast_available();

/// Parses `disk_path` (with `args` as compiler arguments, typically from
/// compile_commands.json) and appends unordered-iteration findings for
/// range-fors whose range expression has an unordered container type.
/// Findings are reported against `relative_path`; annotation suppression
/// is applied by the caller via `annotations`.
void ast_check_unordered_iteration(const std::string& disk_path,
                                   const std::string& relative_path,
                                   const std::vector<std::string>& args,
                                   const std::vector<Annotation>& annotations,
                                   std::vector<Finding>& findings);

}  // namespace glove::lint

#endif  // GLOVE_TOOLS_LINT_CLANG_ENGINE_HPP
