// Minimal JSON reader for glove_lint's two inputs: the CMake-exported
// compile_commands.json (array of objects with string values) and the
// blessed report-schema file.  Not a general-purpose parser: numbers are
// kept as doubles, and no effort is made to preserve object key order
// (the schema file stores keys as a sorted array precisely so order
// never matters).

#ifndef GLOVE_TOOLS_LINT_JSON_HPP
#define GLOVE_TOOLS_LINT_JSON_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace glove::lint {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parses a complete JSON document; throws std::runtime_error with a byte
/// offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace glove::lint

#endif  // GLOVE_TOOLS_LINT_JSON_HPP
