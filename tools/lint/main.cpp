// glove_lint driver.
//
// Usage:
//   glove_lint [--root <repo-root>] [--compile-commands <json>]
//              [--schema <blessed.json>] [--report <report.cpp>]
//              [--no-schema] [--update-schema] [--verbose] [files...]
//
// With no explicit files, lints every .cpp/.hpp under src/, tools/,
// bench/, and examples/ (union of a directory walk and the translation
// units named by compile_commands.json, so generated or out-of-tree TUs
// are covered too).  Exit status: 0 clean, 1 findings, 2 usage/io error.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "clang_engine.hpp"
#include "json.hpp"
#include "lint.hpp"
#include "schema.hpp"

namespace fs = std::filesystem;
using glove::lint::AliasTable;
using glove::lint::Finding;
using glove::lint::JsonValue;
using glove::lint::ReportSchema;

namespace {

struct Options {
  std::string root = ".";
  std::string compile_commands;
  std::string schema_path;
  std::string report_path;
  bool run_schema_check = true;
  bool update_schema = false;
  bool verbose = false;
  std::vector<std::string> files;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--compile-commands JSON] [--schema JSON]\n"
               "       [--report REPORT_CPP] [--no-schema] "
               "[--update-schema]\n"
               "       [--verbose] [files...]\n";
  return 2;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Normalizes `path` to a root-relative, forward-slash spelling; returns
/// an empty string for paths outside the root.
std::string relative_to_root(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path canonical = fs::weakly_canonical(path, ec);
  const fs::path canonical_root = fs::weakly_canonical(root, ec);
  const fs::path rel = canonical.lexically_relative(canonical_root);
  if (rel.empty() || rel.native().rfind("..", 0) == 0) return "";
  return rel.generic_string();
}

/// The directories the lint rules sweep.  tests/ is deliberately out:
/// fixtures under tests/lint/ must be able to hold known-bad code.
bool in_linted_tree(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 || rel.rfind("tools/", 0) == 0 ||
         rel.rfind("bench/", 0) == 0 || rel.rfind("examples/", 0) == 0;
}

std::vector<std::string> discover_files(const Options& opt) {
  std::set<std::string> files;
  const fs::path root{opt.root};
  for (const char* dir : {"src", "tools", "bench", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        const std::string rel = relative_to_root(entry.path(), root);
        if (!rel.empty()) files.insert(rel);
      }
    }
  }
  if (!opt.compile_commands.empty()) {
    const JsonValue doc =
        glove::lint::parse_json(glove::lint::read_file(opt.compile_commands));
    for (const JsonValue& entry : doc.array) {
      const JsonValue* file = entry.find("file");
      if (file == nullptr || file->kind != JsonValue::Kind::kString) continue;
      const std::string rel = relative_to_root(file->string, root);
      if (!rel.empty() && in_linted_tree(rel) && lintable(rel)) {
        files.insert(rel);
      }
    }
  }
  return {files.begin(), files.end()};
}

/// Picks the highest-versioned tools/lint/report_schema.v*.json.
std::string default_schema_path(const fs::path& root) {
  const fs::path dir = root / "tools" / "lint";
  std::string best;
  long best_version = -1;
  if (!fs::exists(dir)) return best;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("report_schema.v", 0) != 0) continue;
    const std::size_t dot = name.find(".json");
    if (dot == std::string::npos) continue;
    const std::string digits =
        name.substr(std::char_traits<char>::length("report_schema.v"),
                    dot - std::char_traits<char>::length("report_schema.v"));
    const long version = std::atol(digits.c_str());
    if (version > best_version) {
      best_version = version;
      best = entry.path().string();
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = value();
    } else if (arg == "--compile-commands") {
      opt.compile_commands = value();
    } else if (arg == "--schema") {
      opt.schema_path = value();
    } else if (arg == "--report") {
      opt.report_path = value();
    } else if (arg == "--no-schema") {
      opt.run_schema_check = false;
    } else if (arg == "--update-schema") {
      opt.update_schema = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    } else {
      opt.files.push_back(arg);
    }
  }

  try {
    const fs::path root{opt.root};
    if (opt.report_path.empty()) {
      opt.report_path = (root / "src/glove/api/report.cpp").string();
    }
    if (opt.schema_path.empty()) opt.schema_path = default_schema_path(root);

    // --update-schema re-blesses and exits.
    if (opt.update_schema) {
      const ReportSchema emitted = glove::lint::extract_schema(
          glove::lint::read_file(opt.report_path));
      const std::string version_tag =
          emitted.version.substr(emitted.version.rfind('.') + 1);
      const fs::path target =
          root / "tools" / "lint" /
          ("report_schema." + version_tag + ".json");
      std::ofstream out{target};
      out << glove::lint::schema_to_json(emitted);
      if (!out) {
        std::cerr << "failed writing " << target.string() << "\n";
        return 2;
      }
      std::cout << "blessed " << target.string() << " ("
                << emitted.keys.size() << " keys, " << emitted.version
                << ")\n";
      return 0;
    }

    std::vector<std::string> files = opt.files;
    if (files.empty()) files = discover_files(opt);

    // Pass 1: project-wide unordered-container aliases, so an alias
    // declared in one header is recognised at use sites everywhere.
    AliasTable aliases;
    std::vector<std::pair<std::string, glove::lint::LexResult>> lexed;
    lexed.reserve(files.size());
    for (const std::string& file : files) {
      const fs::path disk = fs::path(file).is_absolute()
                                ? fs::path(file)
                                : root / file;
      std::string rel = relative_to_root(disk, root);
      if (rel.empty()) rel = file;
      lexed.emplace_back(rel, glove::lint::lex(glove::lint::read_file(
                                  disk.string())));
      aliases.collect(lexed.back().second);
    }

    // Pass 2: rules.
    std::vector<Finding> findings;
    for (const auto& [rel, lex_result] : lexed) {
      std::vector<Finding> file_findings =
          glove::lint::lint_tokens(lex_result, rel, aliases);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      if (opt.verbose) {
        std::cerr << "linted " << rel << " (" << file_findings.size()
                  << " findings)\n";
      }
    }

    // Optional AST cross-check: type-level certainty for emission-layer
    // TUs, using the exact compiler arguments CMake recorded.
    if (glove::lint::ast_available() && !opt.compile_commands.empty()) {
      const JsonValue doc = glove::lint::parse_json(
          glove::lint::read_file(opt.compile_commands));
      for (const JsonValue& entry : doc.array) {
        const JsonValue* file = entry.find("file");
        if (file == nullptr || file->kind != JsonValue::Kind::kString) {
          continue;
        }
        const std::string rel = relative_to_root(file->string, root);
        if (rel.empty() || !glove::lint::classify_path(rel).emission_layer) {
          continue;
        }
        std::vector<std::string> args;
        if (const JsonValue* list = entry.find("arguments");
            list != nullptr && list->kind == JsonValue::Kind::kArray) {
          for (std::size_t k = 1; k < list->array.size(); ++k) {
            args.push_back(list->array[k].string);
          }
        } else if (const JsonValue* cmd = entry.find("command");
                   cmd != nullptr &&
                   cmd->kind == JsonValue::Kind::kString) {
          // Whitespace split is adequate for CMake-generated commands.
          std::istringstream split{cmd->string};
          std::string word;
          split >> word;  // drop the compiler itself
          while (split >> word) args.push_back(word);
        }
        std::vector<Finding> ast_findings;
        const glove::lint::LexResult file_lex =
            glove::lint::lex(glove::lint::read_file(file->string));
        const std::vector<glove::lint::Annotation> annotations =
            glove::lint::parse_annotations(file_lex.comments, rel,
                                           ast_findings);
        glove::lint::ast_check_unordered_iteration(
            file->string, rel, args, annotations, ast_findings);
        // Only add AST findings the tokenizer did not already report for
        // the same line.
        for (Finding& f : ast_findings) {
          const bool duplicate = std::any_of(
              findings.begin(), findings.end(), [&](const Finding& g) {
                return g.file == f.file && g.line == f.line &&
                       g.rule == f.rule;
              });
          if (!duplicate) findings.push_back(std::move(f));
        }
      }
    }

    // Schema drift.
    if (opt.run_schema_check) {
      if (opt.schema_path.empty()) {
        std::cerr << "no blessed schema file found under tools/lint/ "
                     "(pass --schema or --no-schema)\n";
        return 2;
      }
      const ReportSchema emitted = glove::lint::extract_schema(
          glove::lint::read_file(opt.report_path));
      const ReportSchema blessed = glove::lint::load_schema(opt.schema_path);
      glove::lint::check_schema_drift(emitted, blessed, opt.report_path,
                                      opt.schema_path, findings);
    }

    for (const Finding& f : findings) {
      std::cerr << f.file << ":" << f.line << ": error: [" << f.rule << "] "
                << f.message << "\n";
    }
    if (findings.empty()) {
      std::cout << "glove_lint: " << lexed.size() << " files clean\n";
      return 0;
    }
    std::cerr << "glove_lint: " << findings.size() << " finding(s) in "
              << lexed.size() << " files\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "glove_lint: " << e.what() << "\n";
    return 2;
  }
}
