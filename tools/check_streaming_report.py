#!/usr/bin/env python3
"""Verify a streaming run report proves out-of-core behavior.

Reads the JSON run report written by `anonymize_csv --report=...` for a
file-to-file (CsvFileSource -> CsvFileSink) run and asserts:

  * the data plane really was file-to-file (io.source/io.sink);
  * the source was streamed in multiple passes (planning scan + shard
    batches), each covering the full dataset;
  * the process's peak resident set stayed below the given fraction of
    the dataset's *materialized* size — the memory a collect-first run
    pays just to hold the samples (56 bytes each: 6 doubles + the
    contributors counter, before any container overhead), i.e. a strict
    lower bound on the in-memory representation.

Used by the CI "streaming under capped address space" step together with
a ulimit -v cap; this script checks the report half of the claim.

Usage:
  python3 tools/check_streaming_report.py REPORT.json [--max-rss-fraction 0.5]

Exit codes: 0 ok, 1 claim violated, 2 usage error.
"""

import argparse
import json
import sys

BYTES_PER_SAMPLE = 56  # sigma (4 doubles) + tau (2 doubles) + contributors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--max-rss-fraction", type=float, default=0.5,
                        help="allowed peak RSS as a fraction of the "
                             "materialized dataset floor (default 0.5)")
    args = parser.parse_args()

    try:
        doc = json.loads(open(args.report).read())
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    io = doc.get("io", {})
    counters = doc.get("counters", {})
    failures = []

    if io.get("source") != "csv-file" or io.get("sink") != "csv-file":
        failures.append(f"run was not file-to-file: source={io.get('source')}"
                        f" sink={io.get('sink')}")

    passes = io.get("pass_fingerprints", [])
    if len(passes) < 3:
        failures.append(f"expected a planning pass plus >= 2 batch passes, "
                        f"got {len(passes)}: {passes}")
    if passes and len(set(passes)) != 1:
        failures.append(f"passes streamed different fingerprint counts "
                        f"(source changed mid-run?): {passes}")

    samples = counters.get("input_samples", 0)
    floor = samples * BYTES_PER_SAMPLE
    peak = io.get("peak_rss_bytes", 0)
    if samples == 0:
        failures.append("report holds no input_samples")
    if peak == 0:
        failures.append("report holds no peak_rss_bytes")
    ceiling = int(floor * args.max_rss_fraction)
    print(f"passes over the source: {len(passes)} x "
          f"{passes[0] if passes else 0} fingerprints")
    print(f"materialized floor: {samples:,} samples -> {floor / 2**20:.1f} "
          f"MiB; peak rss {peak / 2**20:.1f} MiB "
          f"(ceiling {ceiling / 2**20:.1f} MiB)")
    if peak >= ceiling:
        failures.append(
            f"peak rss {peak:,} B not below {args.max_rss_fraction:.0%} of "
            f"the materialized dataset floor {floor:,} B — the run did not "
            "stay out-of-core")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: streaming run stayed out-of-core")
    return 0


if __name__ == "__main__":
    sys.exit(main())
