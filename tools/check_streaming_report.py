#!/usr/bin/env python3
"""Verify a streaming run report proves out-of-core behavior.

Reads the JSON run report written by `anonymize_csv --report=...` for a
file-to-file (CsvFileSource -> CsvFileSink) run and asserts:

  * the data plane really was file-to-file (io.source/io.sink);
  * the source was streamed in multiple passes (planning scan + shard
    batches + halo-reconcile chunk passes), each covering the full
    dataset;
  * the reconciliation itself streamed: the report counts at least
    --min-reconcile-passes rewound reconcile passes (set 0 for
    --border=none runs, which defer nothing), and they are a strict
    subset of the total passes (a planning scan and at least one shard
    batch always precede them);
  * the process's peak resident set stayed below the given fraction of
    the dataset's *materialized* size — the memory a collect-first run
    pays just to hold the samples (56 bytes each: 6 doubles + the
    contributors counter, before any container overhead), i.e. a strict
    lower bound on the in-memory representation.

Used by the CI "streaming under capped address space" step together with
a ulimit -v cap; this script checks the report half of the claim.

With --indexed the report must come from a glovebin-input run
(GlovebinSource -> CsvFileSink) and additionally prove the block-seek
fast path: the planning pass decoded no payload blocks (io.pass_blocks[0]
== 0, it reads the footer index instead), every rewound pass decoded
strictly fewer blocks than the file holds, and the cumulative
blocks_read/bytes_mapped accounting is consistent.  Rewound passes of an
indexed source fetch only the fingerprints they need, so the
full-dataset-per-pass check is replaced by planning-pass-is-largest.

Usage:
  python3 tools/check_streaming_report.py REPORT.json [--max-rss-fraction 0.5]
  python3 tools/check_streaming_report.py REPORT.json --indexed

Exit codes: 0 ok, 1 claim violated, 2 usage error.
"""

import argparse
import json
import sys

BYTES_PER_SAMPLE = 56  # sigma (4 doubles) + tau (2 doubles) + contributors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--max-rss-fraction", type=float, default=0.5,
                        help="allowed peak RSS as a fraction of the "
                             "materialized dataset floor (default 0.5)")
    parser.add_argument("--min-reconcile-passes", type=int, default=1,
                        help="required halo-reconcile chunk passes "
                             "(default 1; use 0 for --border=none runs)")
    parser.add_argument("--indexed", action="store_true",
                        help="expect a glovebin-input run and verify the "
                             "block-seek fast path (pass_blocks/"
                             "blocks_read/bytes_mapped)")
    args = parser.parse_args()

    try:
        doc = json.loads(open(args.report).read())
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    io = doc.get("io", {})
    counters = doc.get("counters", {})
    failures = []

    expected_source = "glovebin-file" if args.indexed else "csv-file"
    if io.get("source") != expected_source or io.get("sink") != "csv-file":
        failures.append(f"run was not {expected_source} -> csv-file: "
                        f"source={io.get('source')} sink={io.get('sink')}")

    passes = io.get("pass_fingerprints", [])
    if len(passes) < 3:
        failures.append(f"expected a planning pass plus >= 2 batch passes, "
                        f"got {len(passes)}: {passes}")
    if passes and min(passes) <= 0:
        failures.append(f"a pass streamed no fingerprints: {passes}")
    if args.indexed:
        # Rewound passes fetch subsets, so only the planning pass covers
        # the full dataset — it must dominate.
        if passes and passes[0] != max(passes):
            failures.append(f"planning pass is not the largest (the source "
                            f"did not report subset fetches?): {passes}")
    elif passes and len(set(passes)) != 1:
        failures.append(f"passes streamed different fingerprint counts "
                        f"(source changed mid-run?): {passes}")

    if args.indexed:
        pass_blocks = io.get("pass_blocks", [])
        file_blocks = int(io.get("file_blocks", 0))
        blocks_read = int(io.get("blocks_read", 0))
        bytes_mapped = int(io.get("bytes_mapped", 0))
        if file_blocks <= 0:
            failures.append("report holds no file_blocks")
        if bytes_mapped <= 0:
            failures.append("report holds no bytes_mapped")
        if len(pass_blocks) != len(passes):
            failures.append(f"pass_blocks {pass_blocks} does not line up "
                            f"with {len(passes)} passes")
        if pass_blocks and pass_blocks[0] != 0:
            failures.append(f"planning pass decoded {pass_blocks[0]} blocks "
                            "— it should be served from the footer index "
                            "alone")
        for i, blocks in enumerate(pass_blocks[1:], start=1):
            if not 0 < blocks < file_blocks:
                failures.append(
                    f"rewound pass {i} decoded {blocks} of {file_blocks} "
                    "blocks — the block-seek fast path must read a strict, "
                    "non-empty subset of the file")
        if blocks_read != sum(pass_blocks):
            failures.append(f"blocks_read={blocks_read} != "
                            f"sum(pass_blocks)={sum(pass_blocks)}")
        print(f"block seeks: {file_blocks} blocks in file; per pass "
              f"{pass_blocks} ({bytes_mapped / 2**20:.1f} MiB mapped)")

    metrics = doc.get("metrics", {})
    reconcile_passes = int(metrics.get("reconcile_passes", 0))
    if reconcile_passes < args.min_reconcile_passes:
        failures.append(
            f"expected >= {args.min_reconcile_passes} halo-reconcile chunk "
            f"passes, report counts {reconcile_passes} — the bordered "
            "reconciliation did not stream")
    # Planning scan + >= 1 shard batch always precede the reconcile
    # passes, so they must account for strictly fewer than len - 2.
    if reconcile_passes > max(0, len(passes) - 2):
        failures.append(
            f"reconcile_passes={reconcile_passes} does not leave room for "
            f"the planning scan and a shard batch in {len(passes)} passes")

    samples = counters.get("input_samples", 0)
    floor = samples * BYTES_PER_SAMPLE
    peak = io.get("peak_rss_bytes", 0)
    if samples == 0:
        failures.append("report holds no input_samples")
    if peak == 0:
        failures.append("report holds no peak_rss_bytes")
    ceiling = int(floor * args.max_rss_fraction)
    print(f"passes over the source: {len(passes)} x "
          f"{passes[0] if passes else 0} fingerprints "
          f"({reconcile_passes} reconcile)")
    print(f"materialized floor: {samples:,} samples -> {floor / 2**20:.1f} "
          f"MiB; peak rss {peak / 2**20:.1f} MiB "
          f"(ceiling {ceiling / 2**20:.1f} MiB)")
    if peak >= ceiling:
        failures.append(
            f"peak rss {peak:,} B not below {args.max_rss_fraction:.0%} of "
            f"the materialized dataset floor {floor:,} B — the run did not "
            "stay out-of-core")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: streaming run stayed out-of-core")
    return 0


if __name__ == "__main__":
    sys.exit(main())
