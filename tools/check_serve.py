#!/usr/bin/env python3
"""CI smoke gate for glove-serve, the continuous-ingestion daemon.

Drives the whole service surface the way an operator would:

  1. generates a deterministic synthetic CDR event stream
     (example_gen_cdr_stream) and writes only its head to the watched
     file;
  2. starts glove-serve in --follow mode with an AF_UNIX admin socket
     and the sharded first-epoch strategy;
  3. appends the remaining events in two chunks, driving at least two
     event-time window closes while the daemon is live;
  4. exercises the admin line protocol: `health` must answer "ok ...",
     `metrics` must render the serve.* registry, an unknown command
     must error;
  5. sends `drain` and requires a clean exit 0;
  6. then validates every published artifact:
       * snapshots appear in epoch order with no .tmp residue,
       * every snapshot group hides >= k users (k-anonymity),
       * epoch N+1's groups are supersets of epoch N's groups — the
         published release never shrinks or splits a group,
       * each epoch has a parseable report-NNNNNN.json whose epoch
         metric matches its file name.

Usage:
  python3 tools/check_serve.py --build-dir build

Exit codes: 0 ok, 1 claim violated or daemon misbehaved, 2 usage error.
"""

import argparse
import json
import pathlib
import socket
import subprocess
import sys
import tempfile
import time

K = 2
WINDOW_MIN = 1440.0


def fail(message: str) -> int:
    print(f"check_serve: FAIL: {message}", file=sys.stderr)
    return 1


def admin(sock_path: str, command: str, timeout: float = 5.0) -> str:
    """One admin round-trip: connect, send, read until EOF."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
        client.settimeout(timeout)
        client.connect(sock_path)
        client.sendall(command.encode() + b"\n")
        chunks = []
        while True:
            data = client.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks).decode()


def try_admin(sock_path: str, command: str):
    """admin(), but None instead of raising while the daemon is busy."""
    try:
        return admin(sock_path, command)
    except OSError:
        return None


def wait_for(predicate, what: str, timeout_s: float = 30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(0.05)
    raise TimeoutError(f"timed out waiting for {what}")


def parse_snapshot(path: pathlib.Path):
    """Reads a snapshot CSV as {frozenset(member_ids): row_count}."""
    groups = {}
    for line in path.read_text().splitlines():
        if not line or line.startswith("#"):
            continue
        members = frozenset(int(u) for u in line.split(",")[0].split("+"))
        groups[members] = groups.get(members, 0) + 1
    return groups


def check_artifacts(out_dir: pathlib.Path) -> int:
    leftovers = list(out_dir.glob("*.tmp")) + list(out_dir.glob(".tmp-*"))
    if leftovers:
        return fail(f"temp-file residue after publish: {leftovers}")

    snapshots = sorted(out_dir.glob("snapshot-*.csv"))
    reports = sorted(out_dir.glob("report-*.json"))
    if len(snapshots) < 2:
        return fail(f"expected >= 2 snapshot epochs, found {snapshots}")
    if len(reports) != len(snapshots):
        return fail(f"{len(snapshots)} snapshots but {len(reports)} reports")

    previous = None
    for epoch, path in enumerate(snapshots, start=1):
        groups = parse_snapshot(path)
        for members in groups:
            if len(members) < K:
                return fail(
                    f"{path.name}: group {sorted(members)} hides fewer "
                    f"than k={K} users")
        if previous is not None:
            # Every earlier group must survive inside exactly one group.
            for old in previous:
                containing = [g for g in groups if old <= g]
                if len(containing) != 1:
                    return fail(
                        f"{path.name}: epoch {epoch - 1} group "
                        f"{sorted(old)} is covered by {len(containing)} "
                        f"groups (must be exactly 1: groups never split)")
        previous = groups

    for epoch, path in enumerate(reports, start=1):
        with open(path) as handle:
            report = json.load(handle)
        metrics = report.get("metrics", {})
        if metrics.get("epoch") != epoch:
            return fail(
                f"{path.name}: epoch metric {metrics.get('epoch')!r} does "
                f"not match file position {epoch}")

    print(f"check_serve: OK: {len(snapshots)} epochs, "
          f"{len(previous)} groups in the final release; group-stability "
          f"and k-anonymity hold")
    return 0


def run(build_dir: pathlib.Path) -> int:
    gen = build_dir / "examples" / "example_gen_cdr_stream"
    serve = build_dir / "tools" / "serve" / "glove_serve"
    for binary in (gen, serve):
        if not binary.exists():
            return fail(f"missing binary {binary}; build the tree first")

    with tempfile.TemporaryDirectory(prefix="glove-serve-smoke-") as tmp:
        work = pathlib.Path(tmp)
        full = work / "full.csv"
        subprocess.run(
            [str(gen), f"--output={full}", "--users=120", "--days=3",
             "--seed=11"],
            check=True, stdout=subprocess.DEVNULL)
        rows = full.read_text().splitlines(keepends=True)
        # Split at ~40% / ~80% of the stream: the head seeds the watched
        # file, the two appends drive window closes while live.
        cut1, cut2 = int(len(rows) * 0.4), int(len(rows) * 0.8)

        live = work / "events.csv"
        out_dir = work / "out"
        sock = work / "admin.sock"
        live.write_text("".join(rows[:cut1]))

        daemon = subprocess.Popen(
            [str(serve), f"--input={live}", f"--out-dir={out_dir}",
             "--follow", "--poll-ms=50", f"--window-min={WINDOW_MIN}",
             f"--admin-socket={sock}", "--strategy=sharded", f"--k={K}"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            # The socket file appears at bind(); listen() follows within
            # the same call, but poll through ECONNREFUSED just in case.
            wait_for(sock.exists, "admin socket")
            health = wait_for(
                lambda: try_admin(str(sock), "health"), "health reply")
            if not health.startswith("ok "):
                return fail(f"health answered {health!r}")

            def epochs_published() -> int:
                reply = try_admin(str(sock), "metrics")
                for line in (reply or "").splitlines():
                    if line.startswith("counter serve.snapshots_published "):
                        return int(line.split()[-1])
                return 0

            # Window 1 closes once the appended chunk moves the watermark
            # past day 1.
            with open(live, "a") as stream:
                stream.write("".join(rows[cut1:cut2]))
            wait_for(lambda: epochs_published() >= 1, "first epoch")

            with open(live, "a") as stream:
                stream.write("".join(rows[cut2:]))
            wait_for(lambda: epochs_published() >= 2, "second epoch")

            unknown = admin(str(sock), "bogus")
            if not unknown.startswith("err unknown command"):
                return fail(f"unknown command answered {unknown!r}")

            reply = admin(str(sock), "drain")
            if reply != "draining\n":
                return fail(f"drain answered {reply!r}")
            output, _ = daemon.communicate(timeout=60)
            if daemon.returncode != 0:
                return fail(f"daemon exited {daemon.returncode}:\n{output}")
            print(output.strip())
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        return check_artifacts(out_dir)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", type=pathlib.Path,
                        help="CMake build tree holding the binaries")
    args = parser.parse_args()
    try:
        return run(args.build_dir)
    except TimeoutError as error:
        return fail(str(error))
    except subprocess.CalledProcessError as error:
        return fail(f"subprocess failed: {error}")


if __name__ == "__main__":
    sys.exit(main())
