#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON written by `--trace-out`.

Reads the trace file produced by the obs span recorder and asserts:

  * the document is well-formed JSON with a `traceEvents` array and
    every event carries the fields Chrome's trace viewer requires
    (name, cat, ph, ts, pid, tid);
  * span names match the obs naming convention `[a-z0-9_.]+` and the
    category is always "glove";
  * begin/end events balance: replaying each thread's stream against a
    stack never pops an empty stack or mismatched name, and every
    thread's stack drains to empty (the exporter promises this by
    dropping unbalanced events, so a violation means a recorder bug);
  * within each thread timestamps are non-decreasing and every span's
    end is at or after its begin;
  * each `--require NAME` phase appears at least once (use it to pin
    the data-plane spans a streaming run must produce, e.g.
    stream.pass1.scan / stream.shard / stream.reconcile.chunk).

Used by the CI "streaming under capped address space" steps together
with check_streaming_report.py; this script checks the trace half.

Usage:
  python3 tools/check_trace.py TRACE.json [--require stream.shard ...]

Exit codes: 0 ok, 1 claim violated, 2 usage error.
"""

import argparse
import json
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9_.]+$")
REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


def fail(message: str) -> int:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="span name that must occur at least once "
                             "(repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        print(f"check_trace: cannot read {args.trace}: {error}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        return fail(f"not valid JSON: {error}")

    if not isinstance(document, dict):
        return fail("top-level value is not an object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing traceEvents array")

    stacks = {}      # tid -> [names of open spans]
    last_ts = {}     # tid -> most recent timestamp
    begin_ts = {}    # tid -> [ts of open spans]
    seen = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            return fail(f"{where} is not an object")
        for field in REQUIRED_FIELDS:
            if field not in event:
                return fail(f"{where} lacks required field '{field}'")
        name, phase, tid = event["name"], event["ph"], event["tid"]
        ts = event["ts"]
        if not isinstance(name, str) or not NAME_RE.match(name):
            return fail(f"{where} name {name!r} violates [a-z0-9_.]+")
        if event["cat"] != "glove":
            return fail(f"{where} category {event['cat']!r} != 'glove'")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{where} has invalid ts {ts!r}")
        if phase not in ("B", "E"):
            return fail(f"{where} has unsupported phase {phase!r}")
        if ts < last_ts.get(tid, 0.0):
            return fail(f"{where} goes back in time on tid {tid} "
                        f"({ts} < {last_ts[tid]})")
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])
        opened = begin_ts.setdefault(tid, [])
        if phase == "B":
            stack.append(name)
            opened.append(ts)
            seen.add(name)
        else:
            if not stack:
                return fail(f"{where} ends '{name}' with no open span "
                            f"on tid {tid}")
            if stack[-1] != name:
                return fail(f"{where} ends '{name}' but '{stack[-1]}' "
                            f"is open on tid {tid}")
            stack.pop()
            if ts < opened.pop():
                return fail(f"{where} '{name}' ends before it begins")

    for tid, stack in sorted(stacks.items()):
        if stack:
            return fail(f"tid {tid} leaves spans open: {stack}")

    missing = [name for name in args.require if name not in seen]
    if missing:
        return fail(f"required spans never occur: {missing} "
                    f"(saw {sorted(seen)})")

    spans = sum(1 for e in events if e["ph"] == "B")
    print(f"check_trace: OK: {spans} spans across "
          f"{len(stacks)} threads in {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
