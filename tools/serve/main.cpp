// glove-serve: continuous-ingestion daemon with windowed incremental
// re-anonymization (the service-mode face of the GLOVE pipeline).
//
//   ./build/tools/serve/glove_serve --input=events.csv --out-dir=out
//       [--follow] [--poll-ms=200] [--queue-capacity=65536]
//       [--window-min=1440] [--snapshot-format=csv|glovebin]
//       [--name=serve] [--admin-socket=/tmp/glove.sock]
//       [--origin-lat=6.82 --origin-lon=-5.28] [--grid-m=100]
//       [--time-step-min=1]
//       [--strategy=... --k=... and the other Engine run flags]
//       [--trace-out=trace.json] [--verbose]
//
// The daemon tails --input (a raw "user,time_min,lat,lon" CDR stream),
// folds events into per-user fingerprints on --window-min event-time
// windows, and publishes one k-anonymized snapshot per closed window
// under --out-dir (snapshot-NNNNNN.<ext> + report-NNNNNN.json, each
// atomically renamed into place).  The first epoch runs the configured
// --strategy; every later epoch runs the incremental strategy over the
// previous release, so published groups never shrink or split.
//
// With --follow the daemon keeps polling for appended events until it is
// drained — by SIGTERM/SIGINT or by the `drain` admin command — at which
// point it closes the open window, publishes a final snapshot and exits
// with status 0.  Without --follow it drains by itself at end of file.

#include <iostream>
#include <utility>

#include "glove/api/cli.hpp"
#include "glove/serve/config.hpp"
#include "glove/serve/daemon.hpp"

namespace {

glove::serve::ServeConfig config_from_flags(const glove::util::Flags& flags) {
  using namespace glove;
  serve::ServeConfig config;
  config.input_path = flags.get("input");
  config.follow = flags.get_bool("follow");
  config.poll_interval_ms = static_cast<int>(flags.get_int("poll-ms"));
  config.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-capacity"));
  config.window_min = flags.get_double("window-min");
  config.out_dir = flags.get("out-dir");
  config.snapshot_format = flags.get("snapshot-format");
  config.dataset_name = flags.get("name");
  config.admin_socket = flags.get("admin-socket");
  config.builder.projection_origin = geo::LatLon{
      flags.get_double("origin-lat"), flags.get_double("origin-lon")};
  config.builder.grid_cell_m = flags.get_double("grid-m");
  config.builder.time_step_min = flags.get_double("time-step-min");
  config.run = api::run_config_from_flags(flags);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glove;
  const Engine engine;
  util::Flags flags{
      "glove-serve: tail a CDR event stream and publish k-anonymized\n"
      "snapshots per event-time window; later epochs re-anonymize\n"
      "incrementally so published groups never shrink or split.\n"
      "usage: glove_serve --input=events.csv [flags]"};
  api::define_run_flags(flags, engine, api::kStrategySharded);
  api::define_observability_flags(flags);
  flags.define("input", "",
               "CDR event stream to tail (CSV rows user,time_min,lat,lon; "
               "required)");
  flags.define("follow", "false",
               "keep polling for appended events until drained "
               "(SIGTERM/SIGINT or the admin `drain` command); default "
               "drains at end of file");
  flags.define("poll-ms", "200", "tail poll interval, milliseconds");
  flags.define("queue-capacity", "65536",
               "bounded ingest queue capacity in events; a full queue "
               "blocks the tail reader (backpressure)");
  flags.define("window-min", "1440",
               "event-time window length in minutes; each closed window "
               "publishes one snapshot epoch");
  flags.define("out-dir", "serve-out",
               "snapshot/report output directory (created if missing)");
  flags.define_enum("snapshot-format", "csv", {"csv", "glovebin"},
                    "published snapshot dataset format");
  flags.define("name", "serve",
               "dataset name stem; epoch N publishes \"<stem>-epoch-N\"");
  flags.define("admin-socket", "",
               "AF_UNIX admin socket path (line protocol: health / "
               "metrics / drain); empty disables the admin surface");
  flags.define("origin-lat", "6.82", "projection origin latitude");
  flags.define("origin-lon", "-5.28", "projection origin longitude");
  flags.define("grid-m", "100", "spatial discretization step, metres");
  flags.define("time-step-min", "1",
               "temporal discretization step, minutes");
  int exit_code = 0;
  if (!api::parse_cli(flags, argc - 1, argv + 1, exit_code)) return exit_code;

  try {
    if (flags.get("input").empty()) {
      std::cerr << "error: --input is required\n";
      return 1;
    }
    if (!flags.get("report").empty()) {
      std::cerr << "error: glove-serve writes per-epoch reports under "
                   "--out-dir; --report is not used\n";
      return 1;
    }
    api::start_observability(flags);
    serve::ServeDaemon daemon{config_from_flags(flags)};
    serve::install_drain_signal_handlers(daemon);
    const serve::ServeSummary summary = daemon.run();
    api::finish_observability(flags, std::cout);
    if (summary.exit_code != 0) {
      std::cerr << "error: " << summary.error << '\n';
      return summary.exit_code;
    }
    std::cout << "drained: " << summary.events_ingested << " events, "
              << summary.windows_closed << " windows, "
              << summary.epochs_published << " epochs published";
    if (!summary.last_snapshot_path.empty()) {
      std::cout << "; last snapshot " << summary.last_snapshot_path;
    }
    std::cout << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
