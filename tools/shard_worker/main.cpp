// glove_shard_worker: the worker half of the process ShardExecutor.  A
// coordinator forks this daemon with a connected socketpair fd, sends one
// kHello naming the shared dataset file, and then streams kRunShard
// requests; the worker re-reads each shard slice through the regular
// streaming front door (CSV or glovebin, auto-detected), runs the exact
// in-process GLOVE pipeline on it, and replies with the finalized groups,
// cost stats, timing, and its obs counter deltas.  SIGUSR1 is the
// cancellation signal: the GLOVE loops poll it and the aborted job comes
// back as a kError("operation cancelled") reply.
//
// Fault injection (tests only): GLOVE_SHARD_WORKER_FAULT=crash-after-jobs=N
// makes the worker die with _exit(134) when job N+1 arrives, after noting
// the fact on stderr — exercising the coordinator's crash-tail reporting.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "glove/api/source.hpp"
#include "glove/cdr/dataset.hpp"
#include "glove/core/scalability.hpp"
#include "glove/obs/metrics.hpp"
#include "glove/shard/exec/proto.hpp"
#include "glove/util/hooks.hpp"

namespace {

using namespace glove;
namespace exec = glove::shard::exec;

using Clock = std::chrono::steady_clock;

/// Shared cancellation flag set from the SIGUSR1 handler (an atomic
/// store, which is async-signal-safe); every hook-aware loop polls it.
util::CancellationToken& cancel_token() {
  static util::CancellationToken token;
  return token;
}

extern "C" void on_sigusr1(int) { cancel_token().request_cancel(); }

/// Materializes the named slice of the source in id-list order — the
/// worker-side mirror of the coordinator's per-batch materialize pass.
/// Index-capable sources fetch exactly the blocks the slice needs; plain
/// streams are re-read whole, keeping only the slice.
std::vector<cdr::Fingerprint> materialize_slice(
    api::DatasetSource& source, const std::vector<std::uint32_t>& ids,
    std::uint64_t expected, const util::RunHooks& hooks) {
  std::unordered_map<std::uint32_t, std::uint32_t> slot_of_id;
  slot_of_id.reserve(ids.size());
  std::uint32_t next_slot = 0;
  for (const std::uint32_t id : ids) slot_of_id[id] = next_slot++;
  std::vector<cdr::Fingerprint> store(ids.size());
  if (source.fetch(slot_of_id, store).has_value()) return store;

  source.rewind();
  cdr::Fingerprint fp;
  std::uint64_t index = 0;
  while (source.next(fp)) {
    if ((index & 0x3FFu) == 0) hooks.throw_if_cancelled();
    if (index < expected) {
      const auto it = slot_of_id.find(static_cast<std::uint32_t>(index));
      if (it != slot_of_id.end()) store[it->second] = std::move(fp);
    }
    ++index;
    if (index > expected) break;
  }
  if (index != expected) {
    throw std::runtime_error{
        "worker re-read yielded a different number of fingerprints (got " +
        std::to_string(index) + (index > expected ? "+" : "") +
        ", coordinator planned " + std::to_string(expected) + ")"};
  }
  return store;
}

int worker_loop(int fd) {
  // Fault injection knob; see the file comment.
  std::optional<std::uint64_t> crash_after_jobs;
  if (const char* fault = std::getenv("GLOVE_SHARD_WORKER_FAULT");
      fault != nullptr && *fault != '\0') {
    constexpr const char* kPrefix = "crash-after-jobs=";
    if (std::strncmp(fault, kPrefix, std::strlen(kPrefix)) == 0) {
      crash_after_jobs = std::strtoull(fault + std::strlen(kPrefix),
                                       nullptr, 10);
    }
  }

  std::unique_ptr<api::DatasetSource> source;
  exec::HelloRequest hello;
  util::RunHooks hooks;
  hooks.cancel = cancel_token();
  std::uint64_t jobs_done = 0;

  exec::Frame frame;
  while (exec::read_frame(fd, frame)) {
    switch (frame.type) {
      case exec::FrameType::kHello: {
        try {
          hello = exec::decode_hello(frame.payload);
          source = api::open_dataset_source(hello.source_path);
          source->bind_cancel(hooks.cancel);
          exec::write_frame(fd, exec::FrameType::kHelloAck, {});
        } catch (const std::exception& e) {
          exec::write_frame(fd, exec::FrameType::kError,
                            exec::encode_error(e.what()));
          return 1;
        }
        break;
      }
      case exec::FrameType::kRunShard: {
        if (crash_after_jobs.has_value() && jobs_done >= *crash_after_jobs) {
          std::cerr << "fault injection: crashing instead of running job "
                    << (jobs_done + 1) << "\n";
          std::cerr.flush();
          std::_Exit(134);
        }
        try {
          if (source == nullptr) {
            throw std::runtime_error{"kRunShard before kHello"};
          }
          const exec::RunShardRequest request =
              exec::decode_run_shard(frame.payload);
          const auto start = Clock::now();
          const obs::MetricsSnapshot before = obs::snapshot_metrics();
          std::vector<cdr::Fingerprint> inputs = materialize_slice(
              *source, request.member_ids, hello.expected_fingerprints,
              hooks);
          core::GloveResult run = core::anonymize_pruned(
              cdr::FingerprintDataset{std::move(inputs)}, hello.glove, hooks);
          exec::ShardDoneReply reply;
          reply.shard = request.shard;
          reply.merges = run.stats.merges;
          reply.deleted_samples = run.stats.deleted_samples;
          reply.discarded_fingerprints = run.stats.discarded_fingerprints;
          reply.stretch_evaluations = run.stats.stretch_evaluations;
          reply.init_seconds = run.stats.init_seconds;
          reply.merge_seconds = run.stats.merge_seconds;
          reply.total_seconds =
              std::chrono::duration<double>(Clock::now() - start).count();
          reply.groups = std::move(run.anonymized.mutable_fingerprints());
          reply.counter_deltas =
              obs::counter_delta(before, obs::snapshot_metrics());
          exec::write_frame(fd, exec::FrameType::kShardDone,
                            exec::encode_shard_done(reply));
          ++jobs_done;
        } catch (const std::exception& e) {
          exec::write_frame(fd, exec::FrameType::kError,
                            exec::encode_error(e.what()));
        }
        break;
      }
      case exec::FrameType::kShutdown:
        return 0;
      default: {
        exec::write_frame(
            fd, exec::FrameType::kError,
            exec::encode_error("worker received an unexpected frame type"));
        return 1;
      }
    }
  }
  // EOF: the coordinator closed its end (normal teardown path).
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--socket-fd=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      fd = std::atoi(argv[i] + std::strlen(kFlag));
    }
  }
  if (fd < 0) {
    std::cerr << "usage: glove_shard_worker --socket-fd=N\n"
              << "(spawned by the process ShardExecutor, not by hand)\n";
    return 2;
  }
  std::signal(SIGUSR1, on_sigusr1);
  try {
    return worker_loop(fd);
  } catch (const std::exception& e) {
    std::cerr << "glove_shard_worker: " << e.what() << "\n";
    return 1;
  }
}
