#include "glove/util/flags.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

namespace glove::util {
namespace {

Flags make_flags() {
  Flags flags{"test program"};
  flags.define("users", "100", "number of users")
      .define("k", "2", "anonymity level")
      .define("verbose", "false", "chatty output")
      .define("name", "demo", "run name");
  return flags;
}

TEST(Flags, DefaultsApplyWithoutArgs) {
  Flags flags = make_flags();
  flags.parse(0, nullptr);
  EXPECT_EQ(flags.get_int("users"), 100);
  EXPECT_EQ(flags.get("name"), "demo");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(Flags, ParsesEqualsSyntax) {
  Flags flags = make_flags();
  const char* argv[] = {"--users=250", "--name=abc"};
  flags.parse(2, argv);
  EXPECT_EQ(flags.get_int("users"), 250);
  EXPECT_EQ(flags.get("name"), "abc");
}

TEST(Flags, ParsesSpaceSyntax) {
  Flags flags = make_flags();
  const char* argv[] = {"--users", "300"};
  flags.parse(2, argv);
  EXPECT_EQ(flags.get_int("users"), 300);
}

TEST(Flags, BooleanSwitchWithoutValue) {
  Flags flags = make_flags();
  const char* argv[] = {"--verbose"};
  flags.parse(1, argv);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags = make_flags();
  const char* argv[] = {"--bogus=1"};
  EXPECT_THROW(flags.parse(1, argv), std::invalid_argument);
}

TEST(Flags, CollectsPositionalArguments) {
  Flags flags = make_flags();
  const char* argv[] = {"input.csv", "--k=3", "output.csv"};
  flags.parse(3, argv);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
  EXPECT_EQ(flags.get_int("k"), 3);
}

TEST(Flags, HelpRequestDetected) {
  Flags flags = make_flags();
  const char* argv[] = {"--help"};
  flags.parse(1, argv);
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.usage().find("users"), std::string::npos);
}

TEST(Flags, GetDoubleParses) {
  Flags flags = make_flags();
  const char* argv[] = {"--users=2.5"};
  flags.parse(1, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("users"), 2.5);
}

TEST(EnvInt, FallsBackWhenUnset) {
  ::unsetenv("GLOVE_TEST_ENV_INT");
  EXPECT_EQ(env_int("GLOVE_TEST_ENV_INT", 17), 17);
}

TEST(EnvInt, ReadsValue) {
  ::setenv("GLOVE_TEST_ENV_INT", "55", 1);
  EXPECT_EQ(env_int("GLOVE_TEST_ENV_INT", 17), 55);
  ::unsetenv("GLOVE_TEST_ENV_INT");
}

TEST(EnvInt, FallsBackOnGarbage) {
  ::setenv("GLOVE_TEST_ENV_INT", "5x", 1);
  EXPECT_EQ(env_int("GLOVE_TEST_ENV_INT", 17), 17);
  ::unsetenv("GLOVE_TEST_ENV_INT");
}

TEST(EnvDouble, ReadsValueWithFallback) {
  ::setenv("GLOVE_TEST_ENV_DBL", "2.75", 1);
  EXPECT_DOUBLE_EQ(env_double("GLOVE_TEST_ENV_DBL", 1.0), 2.75);
  ::unsetenv("GLOVE_TEST_ENV_DBL");
  EXPECT_DOUBLE_EQ(env_double("GLOVE_TEST_ENV_DBL", 1.0), 1.0);
}

Flags make_enum_flags() {
  Flags flags{"enum test"};
  flags.define_enum("strategy", "full", {"full", "chunked", "w4m-baseline"},
                    "anonymization strategy");
  return flags;
}

TEST(EnumFlags, DefaultAppliesAndValidChoicesParse) {
  Flags flags = make_enum_flags();
  flags.parse(0, nullptr);
  EXPECT_EQ(flags.get("strategy"), "full");

  Flags chosen = make_enum_flags();
  const char* argv[] = {"--strategy=chunked"};
  chosen.parse(1, argv);
  EXPECT_EQ(chosen.get("strategy"), "chunked");

  Flags spaced = make_enum_flags();
  const char* argv2[] = {"--strategy", "w4m-baseline"};
  spaced.parse(2, argv2);
  EXPECT_EQ(spaced.get("strategy"), "w4m-baseline");
}

TEST(EnumFlags, RejectsUnknownChoiceListingValidOnes) {
  Flags flags = make_enum_flags();
  const char* argv[] = {"--strategy=sharded"};
  try {
    flags.parse(1, argv);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("sharded"), std::string::npos);
    EXPECT_NE(message.find("chunked"), std::string::npos);
  }
}

TEST(EnumFlags, RejectsDefaultOutsideChoices) {
  Flags flags{"bad default"};
  EXPECT_THROW(flags.define_enum("mode", "bogus", {"a", "b"}, "help"),
               std::invalid_argument);
}

TEST(EnumFlags, UsageListsChoices) {
  const Flags flags = make_enum_flags();
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("choices: full chunked w4m-baseline"),
            std::string::npos);
}

}  // namespace
}  // namespace glove::util
