#include "glove/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace glove::util {
namespace {

TEST(SplitMix64, IsDeterministicForSeed) {
  SplitMix64 a{123};
  SplitMix64 b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstOutputForZeroSeed) {
  // Reference value of the SplitMix64 algorithm with state 0.
  SplitMix64 rng{0};
  EXPECT_EQ(rng(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro256, IsDeterministicForSeed) {
  Xoshiro256 a{999};
  Xoshiro256 b{999};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, ForkYieldsIndependentStreams) {
  const Xoshiro256 root{7};
  Xoshiro256 s0 = root.fork(0);
  Xoshiro256 s1 = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0() == s1()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, ForkIsReproducible) {
  const Xoshiro256 root{7};
  Xoshiro256 a = root.fork(5);
  Xoshiro256 b = root.fork(5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Uniform01, StaysInUnitInterval) {
  Xoshiro256 rng{3};
  for (int i = 0; i < 10'000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanIsNearHalf) {
  Xoshiro256 rng{4};
  double sum = 0.0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) sum += uniform01(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Uniform, RespectsBounds) {
  Xoshiro256 rng{5};
  for (int i = 0; i < 1'000; ++i) {
    const double u = uniform(rng, -3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(UniformIndex, CoversTheRange) {
  Xoshiro256 rng{6};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t v = uniform_index(rng, 10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(UniformIndex, ZeroRangeReturnsZero) {
  Xoshiro256 rng{6};
  EXPECT_EQ(uniform_index(rng, 0), 0u);
}

}  // namespace
}  // namespace glove::util
