// Contention-focused coverage for ThreadPool + parallel_for: exception
// propagation under concurrent failures, zero/tiny counts, exact chunk
// boundaries, and nested/shared-pool use.  Designed to be meaningful under
// -fsanitize=thread (see README: GLOVE_SANITIZE=thread).

#include "glove/util/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "glove/util/thread_pool.hpp"

namespace glove::util {
namespace {

/// Spins until `done()` holds, failing (instead of hanging) after a
/// generous deadline so a lost-task regression surfaces as a test failure.
template <typename Pred>
::testing::AssertionResult wait_until(const Pred& done,
                                      std::chrono::seconds limit =
                                          std::chrono::seconds{30}) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return ::testing::AssertionFailure() << "condition not met in time";
    }
    std::this_thread::yield();
  }
  return ::testing::AssertionSuccess();
}

TEST(ParallelFor, ChunkBoundariesPartitionExactly) {
  // The chunking must produce a disjoint cover of [0, count) for counts
  // around every boundary: multiples of min_chunk, one off either side,
  // primes, and counts smaller than one chunk.
  ThreadPool pool{4};
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{255}, std::size_t{256}, std::size_t{257},
        std::size_t{1'021}, std::size_t{4'096}, std::size_t{10'000}}) {
    std::vector<std::atomic<int>> hits(count);
    std::mutex ranges_mutex;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    parallel_for(
        pool, count,
        [&](std::size_t begin, std::size_t end) {
          ASSERT_LT(begin, end);
          ASSERT_LE(end, count);
          {
            const std::lock_guard lock{ranges_mutex};
            ranges.emplace_back(begin, end);
          }
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        },
        /*min_chunk=*/16);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " index=" << i;
    }
    // Ranges must tile [0, count) without overlap.
    std::sort(ranges.begin(), ranges.end());
    std::size_t expected_begin = 0;
    for (const auto& [begin, end] : ranges) {
      ASSERT_EQ(begin, expected_begin) << "count=" << count;
      expected_begin = end;
    }
    ASSERT_EQ(expected_begin, count);
  }
}

TEST(ParallelFor, ZeroCountNeverInvokesBodyOrTouchesPool) {
  // A zero count must return immediately: no task submission, no body call.
  ThreadPool pool{2};
  std::atomic<int> calls{0};
  parallel_for(pool, 0,
               [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, PropagatesFirstExceptionWhenAllChunksThrow) {
  // Every chunk throws concurrently; exactly one exception must surface and
  // the pool must stay usable afterwards.
  ThreadPool pool{4};
  EXPECT_THROW(parallel_for(
                   pool, 10'000,
                   [](std::size_t begin, std::size_t) {
                     throw std::runtime_error{"chunk " + std::to_string(begin)};
                   },
                   /*min_chunk=*/16),
               std::runtime_error);

  std::atomic<std::size_t> visited{0};
  parallel_for(
      pool, 1'000,
      [&](std::size_t begin, std::size_t end) {
        visited.fetch_add(end - begin);
      },
      /*min_chunk=*/16);
  EXPECT_EQ(visited.load(), 1'000u);
}

TEST(ParallelFor, ExceptionDoesNotLoseSiblingChunkWork) {
  // Non-throwing chunks still run to completion even when one throws.
  ThreadPool pool{4};
  const std::size_t count = 8'192;
  std::vector<std::atomic<int>> hits(count);
  std::atomic<std::size_t> thrown_end{0};
  try {
    parallel_for(
        pool, count,
        [&](std::size_t begin, std::size_t end) {
          if (begin == 0) {
            thrown_end.store(end);
            throw std::logic_error{"first chunk"};
          }
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        },
        /*min_chunk=*/64);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error&) {
  }
  // parallel_for waits for *all* chunks before rethrowing, so everything
  // outside the throwing chunk has been visited exactly once.
  ASSERT_GT(thrown_end.load(), 0u);
  for (std::size_t i = thrown_end.load(); i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ManyConcurrentLoopsOnSharedPool) {
  // Several caller threads hammer one pool at once; per-loop accounting
  // must stay exact.  This is the contention case TSan cares about.
  ThreadPool pool{4};
  constexpr std::size_t kLoops = 8;
  constexpr std::size_t kCount = 20'000;
  std::vector<std::atomic<std::uint64_t>> sums(kLoops);
  std::vector<std::thread> callers;
  callers.reserve(kLoops);
  for (std::size_t loop = 0; loop < kLoops; ++loop) {
    callers.emplace_back([&, loop] {
      parallel_for(
          pool, kCount,
          [&](std::size_t begin, std::size_t end) {
            std::uint64_t local = 0;
            for (std::size_t i = begin; i < end; ++i) local += i;
            sums[loop].fetch_add(local, std::memory_order_relaxed);
          },
          /*min_chunk=*/128);
    });
  }
  for (auto& caller : callers) caller.join();
  constexpr std::uint64_t expected =
      static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2;
  for (std::size_t loop = 0; loop < kLoops; ++loop) {
    EXPECT_EQ(sums[loop].load(), expected) << "loop " << loop;
  }
}

TEST(ParallelFor, SingleWorkerPoolStillCompletes) {
  // workers == 1 exercises the inline/task boundary arithmetic.
  ThreadPool pool{1};
  std::vector<int> hits(3'000, 0);
  parallel_for(
      pool, hits.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      /*min_chunk=*/100);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3'000);
}

TEST(ThreadPool, SubmitFromWorkerDoesNotDeadlock) {
  // Tasks enqueuing further tasks is how nested parallelism lands on the
  // pool; the queue must accept them without self-deadlock.
  ThreadPool pool{2};
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      pool.submit([&] { done.fetch_add(1); });
      done.fetch_add(1);
    });
  }
  ASSERT_TRUE(wait_until([&] { return done.load() >= 100; }));
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ConcurrentSubmittersAllRun) {
  ThreadPool pool{3};
  constexpr int kThreads = 8;
  constexpr int kTasksPerThread = 500;
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksPerThread; ++i) {
        pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& s : submitters) s.join();
  ASSERT_TRUE(wait_until(
      [&] { return executed.load() >= kThreads * kTasksPerThread; }));
  EXPECT_EQ(executed.load(), kThreads * kTasksPerThread);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  // The destructor must run (not drop) already-queued work.
  std::atomic<int> executed{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { executed.fetch_add(1); });
    }
  }
  EXPECT_EQ(executed.load(), 200);
}

}  // namespace
}  // namespace glove::util
