#include "glove/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "glove/util/parallel.hpp"

namespace glove::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(10'000);
  parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroCount) {
  ThreadPool pool{2};
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallCountRunsInline) {
  ThreadPool pool{4};
  std::vector<int> hits(10, 0);
  parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelFor, ComputesSameResultAsSequential) {
  ThreadPool pool{8};
  std::vector<double> parallel_out(5'000);
  std::vector<double> sequential_out(5'000);
  const auto f = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  parallel_for(pool, parallel_out.size(),
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   parallel_out[i] = f(i);
                 }
               });
  for (std::size_t i = 0; i < sequential_out.size(); ++i) {
    sequential_out[i] = f(i);
  }
  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool{4};
  EXPECT_THROW(
      parallel_for(
          pool, 10'000,
          [&](std::size_t begin, std::size_t) {
            if (begin == 0) throw std::runtime_error{"boom"};
          },
          /*min_chunk=*/16),
      std::runtime_error);
}

}  // namespace
}  // namespace glove::util
