#include "glove/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace glove::util {
namespace {

TEST(SplitCsvLine, SplitsSimpleFields) {
  const auto fields = split_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLine, TrimsWhitespace) {
  const auto fields = split_csv_line(" 1 ,\t2 , 3\t");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "1");
  EXPECT_EQ(fields[1], "2");
  EXPECT_EQ(fields[2], "3");
}

TEST(SplitCsvLine, KeepsEmptyFields) {
  const auto fields = split_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLine, EmptyInputYieldsNoFields) {
  EXPECT_TRUE(split_csv_line("").empty());
}

TEST(SplitCsvLine, HonorsCustomSeparator) {
  const auto fields = split_csv_line("a;b;c", ';');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvReader, SkipsCommentsAndBlankLines) {
  std::istringstream in{"# header\n\n1,2\n  # another\n3,4\n"};
  CsvReader reader{in};
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[0], "1");
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[0], "3");
  EXPECT_FALSE(reader.next(fields));
  EXPECT_EQ(reader.rows_read(), 2u);
}

TEST(CsvReader, TracksLineNumbers) {
  std::istringstream in{"# c\n10,20\n30,40\n"};
  CsvReader reader{in};
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(reader.line_number(), 2u);
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(reader.line_number(), 3u);
}

TEST(CsvWriter, RoundTripsWithReader) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.comment("test");
  writer.row({"1", "2.5", "x"});
  writer.row({"4", "5", "y"});

  std::istringstream in{out.str()};
  CsvReader reader{in};
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "2.5");
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[2], "y");
  EXPECT_FALSE(reader.next(fields));
}

TEST(ParseDouble, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("3.25", "test"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3", "test"), -1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW((void)parse_double("abc", "ctx"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1.5x", "ctx"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("", "ctx"), std::invalid_argument);
}

TEST(ParseInt, ParsesValidIntegers) {
  EXPECT_EQ(parse_int("42", "test"), 42);
  EXPECT_EQ(parse_int("-7", "test"), -7);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_THROW((void)parse_int("4.2", "ctx"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("x", "ctx"), std::invalid_argument);
}

}  // namespace
}  // namespace glove::util
