// Fixture tests for the glove_lint token rules: each known-bad snippet in
// tests/lint/fixtures must fire its rule, and the clean control must stay
// silent.  The fixtures are .txt so the formatting and lint gates skip
// them; the *linted-as* path passed alongside controls rule applicability.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using glove::lint::AliasTable;
using glove::lint::Finding;

std::string fixture(const std::string& name) {
  return std::string{GLOVE_LINT_FIXTURE_DIR} + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& linted_as) {
  const AliasTable aliases;  // fixtures spell container types out
  return glove::lint::lint_file(fixture(name), linted_as, aliases);
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintFixtures, UnorderedIterationFiresInEmissionLayer) {
  const auto findings =
      lint_fixture("unordered_bad.txt", "src/glove/api/fixture.cpp");
  // One range-for over a map, one over a set, one explicit .begin() walk.
  EXPECT_EQ(count_rule(findings, "unordered-iteration"), 3u);
  EXPECT_EQ(count_rule(findings, "bad-annotation"), 0u);
}

TEST(LintFixtures, UnorderedIterationSilentOutsideEmissionLayer) {
  // The same code linted as analysis/ (not an emission layer) is not the
  // rule's business.
  const auto findings =
      lint_fixture("unordered_bad.txt", "src/glove/analysis/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iteration"), 0u);
}

TEST(LintFixtures, AnnotationSuppressesUnorderedIteration) {
  const auto findings =
      lint_fixture("unordered_annotated.txt", "src/glove/api/fixture.cpp");
  EXPECT_EQ(findings.size(), 0u)
      << (findings.empty() ? "" : findings.front().message);
}

TEST(LintFixtures, ThrowContextFiresUnderCdr) {
  const auto findings =
      lint_fixture("throw_bad.txt", "src/glove/cdr/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "throw-context"), 2u);
}

TEST(LintFixtures, ThrowContextScopedToCdrLayer) {
  // The same throws outside src/glove/cdr/ are fine: the convention is
  // specifically about io errors naming their file.
  const auto findings =
      lint_fixture("throw_bad.txt", "src/glove/core/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "throw-context"), 0u);
}

TEST(LintFixtures, RawRngFiresEverywhereButRngHeader) {
  const auto findings =
      lint_fixture("rng_bad.txt", "src/glove/synth/fixture.cpp");
  // srand, time-seed, random_device, rand, and two pointer-value casts.
  EXPECT_GE(count_rule(findings, "raw-rng"), 4u);
}

TEST(LintFixtures, RawRngExemptInRngHeader) {
  const auto findings =
      lint_fixture("rng_bad.txt", "src/glove/util/rng.hpp");
  EXPECT_EQ(count_rule(findings, "raw-rng"), 0u);
}

TEST(LintFixtures, MalformedAnnotationsAreFindings) {
  const auto findings =
      lint_fixture("bad_annotation.txt", "src/glove/api/fixture.cpp");
  // Unknown rule, missing reason, and blank reason.
  EXPECT_EQ(count_rule(findings, "bad-annotation"), 3u);
}

TEST(LintFixtures, ObsNamingFlagsBadAndDuplicateNames) {
  const auto findings =
      lint_fixture("obs_bad.txt", "src/glove/api/fixture.cpp");
  // Uppercase, space, hyphen, empty = 4 convention violations; one
  // duplicated span name and one duplicated counter name = 2 collisions.
  // The non-literal registration at the end must not be flagged.
  EXPECT_EQ(count_rule(findings, "obs-naming"), 6u);
}

TEST(LintFixtures, ObsNamingAppliesOutsideEmissionLayersToo) {
  // Unlike the determinism rules the naming convention is tree-wide:
  // bench and example binaries feed the same traces.
  const auto findings = lint_fixture("obs_bad.txt", "bench/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "obs-naming"), 6u);
}

TEST(LintFixtures, ObsNamingFiresOnServeLayerLiterals) {
  // The serve daemon's spans and counters feed the same traces and
  // reports; a bad literal under src/glove/serve/ must not slip through.
  const auto findings =
      lint_fixture("serve_obs_bad.txt", "src/glove/serve/fixture.cpp");
  // Uppercase span + spaced counter name + one duplicated span literal.
  EXPECT_EQ(count_rule(findings, "obs-naming"), 3u);
}

TEST(LintFixtures, UnorderedIterationFiresInServeLayer) {
  // serve/ is an emission layer: snapshot publication iterates state that
  // must stay deterministically ordered.
  const auto findings =
      lint_fixture("unordered_bad.txt", "src/glove/serve/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iteration"), 3u);
}

TEST(LintFixtures, UnorderedIterationFiresInShardExecLayer) {
  // shard/exec/ serializes shard jobs and merges worker replies; an
  // unordered walk there would scramble the wire bytes across runs.
  const auto findings =
      lint_fixture("unordered_bad.txt", "src/glove/shard/exec/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iteration"), 3u);
}

TEST(LintFixtures, UnorderedIterationFiresInShardWorkerTool) {
  // The worker daemon is an emission layer of its own: its replies are
  // the bytes the coordinator folds into the final output.
  const auto findings =
      lint_fixture("unordered_bad.txt", "tools/shard_worker/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iteration"), 3u);
}

TEST(LintFixtures, ObsNamingFiresInShardWorkerTool) {
  // Worker counter deltas travel back by name and land in the report's
  // "obs" section — a bad literal in the worker corrupts it identically.
  const auto findings =
      lint_fixture("obs_bad.txt", "tools/shard_worker/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "obs-naming"), 6u);
}

TEST(LintFixtures, ObsNamingSilentOnConformingNames) {
  const auto findings =
      lint_fixture("obs_clean.txt", "src/glove/shard/fixture.cpp");
  EXPECT_EQ(findings.size(), 0u)
      << (findings.empty() ? "" : findings.front().message);
}

TEST(LintFixtures, CleanControlIsSilent) {
  const auto findings = lint_fixture("clean.txt", "src/glove/cdr/fixture.cpp");
  EXPECT_EQ(findings.size(), 0u)
      << (findings.empty() ? "" : findings.front().message);
}

TEST(LintFixtures, FindingsCarryFileLineAndRule) {
  const auto findings =
      lint_fixture("throw_bad.txt", "src/glove/cdr/fixture.cpp");
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/glove/cdr/fixture.cpp");
    EXPECT_GT(f.line, 0);
    EXPECT_FALSE(f.message.empty());
  }
}

TEST(LintAliases, AliasOfUnorderedContainerIsTracked) {
  const std::string source =
      "#include <unordered_map>\n"
      "using Table = std::unordered_map<int, double>;\n"
      "double sum(const Table& t) {\n"
      "  double s = 0.0;\n"
      "  for (const auto& [k, v] : t) s += v;\n"
      "  return s;\n"
      "}\n";
  const auto lexed = glove::lint::lex(source);
  AliasTable aliases;
  aliases.collect(lexed);
  EXPECT_TRUE(aliases.is_unordered_name("Table"));
  const auto findings =
      glove::lint::lint_tokens(lexed, "src/glove/api/alias.cpp", aliases);
  EXPECT_EQ(count_rule(findings, "unordered-iteration"), 1u);
}

}  // namespace
