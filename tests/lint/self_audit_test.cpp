// Self-audit: the real tree must be glove_lint-clean, and the checked-in
// report_schema.vN.json must match what report.cpp actually emits.  This
// is the same invocation CI's lint job runs; keeping it in ctest means a
// drifted annotation or schema fails locally before a push.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "lint.hpp"
#include "schema.hpp"

namespace {

TEST(SelfAudit, TreeIsLintClean) {
  const std::string command =
      std::string{GLOVE_LINT_BINARY} + " --root " + GLOVE_SOURCE_DIR;
  const int status = std::system(command.c_str());
  EXPECT_EQ(status, 0) << "glove_lint reported findings; run `" << command
                       << "` for the list";
}

TEST(SelfAudit, BlessedSchemaMatchesReportCpp) {
  const std::string root{GLOVE_SOURCE_DIR};
  const auto emitted = glove::lint::extract_schema(
      glove::lint::read_file(root + "/src/glove/api/report.cpp"));
  const auto blessed = glove::lint::load_schema(
      root + "/tools/lint/report_schema.v7.json");
  std::vector<glove::lint::Finding> findings;
  glove::lint::check_schema_drift(emitted, blessed, "report.cpp",
                                  "report_schema.v7.json", findings);
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings.front().message);
}

}  // namespace
