// Schema-drift rule tests: adding, removing, or renaming a run-report key
// without bumping glove.run_report.vN must fail; a matching bless must
// pass; and the JSON round-trip through the blessed-file spelling must be
// lossless.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "schema.hpp"

namespace {

using glove::lint::check_schema_drift;
using glove::lint::extract_schema;
using glove::lint::Finding;
using glove::lint::ReportSchema;

// A miniature report.cpp: the extractor only cares about `.set("key"`,
// the glove.run_report.vN literal, and the report_csv_header() literal.
const char* kBaseReport = R"cpp(
#include "glove/stats/stats.hpp"

namespace glove::api {

stats::Json report_json(const RunReport& report) {
  return stats::Json::object()
      .set("schema", std::string{"glove.run_report.v5"})
      .set("dataset", report.dataset)
      .set("strategy", report.strategy)
      .set("k", static_cast<std::uint64_t>(report.k));
}

std::string report_csv_header() {
  return "dataset,strategy,k";
}

}  // namespace glove::api
)cpp";

std::string with_extra_key(const std::string& base) {
  const std::string anchor = ".set(\"k\",";
  const auto pos = base.find(anchor);
  return base.substr(0, pos) + ".set(\"surprise\", 1)\n      " +
         base.substr(pos);
}

std::vector<Finding> drift(const ReportSchema& emitted,
                           const ReportSchema& blessed) {
  std::vector<Finding> findings;
  check_schema_drift(emitted, blessed, "report.cpp", "schema.json", findings);
  return findings;
}

TEST(SchemaExtract, FindsKeysVersionAndCsvHeader) {
  const ReportSchema schema = extract_schema(kBaseReport);
  EXPECT_EQ(schema.version, "glove.run_report.v5");
  EXPECT_EQ(schema.csv_header, "dataset,strategy,k");
  const std::vector<std::string> expected{"dataset", "k", "schema",
                                          "strategy"};
  EXPECT_EQ(schema.keys, expected);
}

TEST(SchemaExtract, MissingVersionThrows) {
  EXPECT_THROW(extract_schema("int x = 0;"), std::runtime_error);
}

TEST(SchemaDrift, InSyncIsClean) {
  const ReportSchema schema = extract_schema(kBaseReport);
  EXPECT_TRUE(drift(schema, schema).empty());
}

TEST(SchemaDrift, AddedKeyWithoutBumpFails) {
  const ReportSchema blessed = extract_schema(kBaseReport);
  const ReportSchema emitted =
      extract_schema(with_extra_key(kBaseReport));
  const auto findings = drift(emitted, blessed);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "schema-drift");
  EXPECT_NE(findings[0].message.find("surprise"), std::string::npos);
  EXPECT_NE(findings[0].message.find("bump"), std::string::npos);
}

TEST(SchemaDrift, AddedKeyWithBumpStillNeedsRebless) {
  // Bumping the version without re-blessing the JSON must also fail —
  // but pointing at the bless step, not at the key diff.
  std::string bumped = with_extra_key(kBaseReport);
  const auto pos = bumped.find("glove.run_report.v5");
  bumped.replace(pos, std::string{"glove.run_report.v5"}.size(),
                 "glove.run_report.v6");
  const ReportSchema blessed = extract_schema(kBaseReport);
  const ReportSchema emitted = extract_schema(bumped);
  const auto findings = drift(emitted, blessed);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("--update-schema"), std::string::npos);
}

TEST(SchemaDrift, RemovedKeyWithoutBumpFails) {
  const ReportSchema blessed = extract_schema(with_extra_key(kBaseReport));
  const ReportSchema emitted = extract_schema(kBaseReport);
  EXPECT_EQ(drift(emitted, blessed).size(), 1u);
}

TEST(SchemaDrift, CsvHeaderChangeWithoutBumpFails) {
  const ReportSchema blessed = extract_schema(kBaseReport);
  ReportSchema emitted = blessed;
  emitted.csv_header = "dataset,strategy,k,extra";
  EXPECT_EQ(drift(emitted, blessed).size(), 1u);
}

TEST(SchemaJson, RoundTripsThroughBlessedSpelling) {
  const ReportSchema schema = extract_schema(kBaseReport);
  const std::string json = glove::lint::schema_to_json(schema);
  // Write-parse-compare through a temp file exercises load_schema's
  // validation too.
  const std::string path =
      testing::TempDir() + "/glove_lint_schema_roundtrip.json";
  {
    std::ofstream out{path};
    out << json;
  }
  const ReportSchema loaded = glove::lint::load_schema(path);
  EXPECT_EQ(loaded.version, schema.version);
  EXPECT_EQ(loaded.keys, schema.keys);
  EXPECT_EQ(loaded.csv_header, schema.csv_header);
}

}  // namespace
