// Spatial tiling: Morton ordering, anchor-to-cell assignment, and the
// per-fingerprint caches the planner and runner build on.

#include "glove/shard/tiling.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/fixtures.hpp"

namespace glove::shard {
namespace {

cdr::FingerprintDataset three_cluster_dataset() {
  // Three well-separated clusters of two users each; 1 km tiles put each
  // cluster in its own tile.
  std::vector<cdr::Fingerprint> fps;
  for (int c = 0; c < 3; ++c) {
    const double base = 10'000.0 * c;
    for (cdr::UserId u = 0; u < 2; ++u) {
      fps.emplace_back(static_cast<cdr::UserId>(2 * c) + u,
                       std::vector<cdr::Sample>{
                           test::cell(base, base, 10.0 + u),
                           test::cell(base + 200.0, base, 50.0 + u)});
    }
  }
  return cdr::FingerprintDataset{std::move(fps), "three-cluster"};
}

TEST(Tiling, MortonCodeIsMonotonePerAxis) {
  for (const std::int32_t base : {-5, 0, 7}) {
    EXPECT_LT(morton_code(geo::GridCell{base, 0}),
              morton_code(geo::GridCell{base + 1, 0}));
    EXPECT_LT(morton_code(geo::GridCell{0, base}),
              morton_code(geo::GridCell{0, base + 1}));
  }
  // Negative cells order before the origin on both axes.
  EXPECT_LT(morton_code(geo::GridCell{-1, -1}),
            morton_code(geo::GridCell{0, 0}));
}

TEST(Tiling, BucketsFingerprintsByBoundingBoxCentre) {
  const cdr::FingerprintDataset data = three_cluster_dataset();
  const Tiling tiling = build_tiling(data, 1'000.0);

  ASSERT_EQ(tiling.tiles.size(), 3u);
  ASSERT_EQ(tiling.bounds.size(), data.size());

  // Each tile holds exactly the cluster pair, in index order, and every
  // member's bounding-box centre falls inside its tile's cell.
  const geo::Grid grid{tiling.tile_size_m};
  std::size_t seen = 0;
  for (const Tile& tile : tiling.tiles) {
    ASSERT_EQ(tile.members.size(), 2u);
    EXPECT_EQ(tile.members[0] + 1, tile.members[1]);
    seen += tile.members.size();
    for (const std::uint32_t id : tile.members) {
      const core::FingerprintBounds& b = tiling.bounds[id];
      const geo::PlanarPoint anchor{b.box.x + b.box.dx / 2.0,
                                    b.box.y + b.box.dy / 2.0};
      EXPECT_EQ(grid.cell_of(anchor), tile.cell);
    }
  }
  EXPECT_EQ(seen, data.size());

  // Tiles come out in Morton order.
  for (std::size_t t = 1; t < tiling.tiles.size(); ++t) {
    EXPECT_LT(morton_code(tiling.tiles[t - 1].cell),
              morton_code(tiling.tiles[t].cell));
  }
}

TEST(Tiling, BoundsCoverEverySample) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(20);
  const Tiling tiling = build_tiling(data, 5'000.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const core::FingerprintBounds& b = tiling.bounds[i];
    for (const cdr::Sample& s : data[i].samples()) {
      EXPECT_GE(s.sigma.x, b.box.x);
      EXPECT_LE(s.sigma.x_end(), b.box.x_end() + 1e-9);
      EXPECT_GE(s.tau.t, b.interval.t);
      EXPECT_LE(s.tau.t_end(), b.interval.t_end() + 1e-9);
    }
  }
}

TEST(Tiling, RejectsNegativeTileSizeAndResolvesZeroAdaptively) {
  const cdr::FingerprintDataset data = test::paired_dataset();
  EXPECT_THROW((void)build_tiling(data, -5.0), std::invalid_argument);

  // 0 = adaptive: the tiling records the density-derived edge it used.
  const Tiling adaptive = build_tiling(data, 0.0, /*max_shard_users=*/16);
  EXPECT_GT(adaptive.tile_size_m, 0.0);
  std::size_t members = 0;
  for (const Tile& tile : adaptive.tiles) members += tile.members.size();
  EXPECT_EQ(members, data.size());
}

TEST(Tiling, AdaptiveTileSizeIsDeterministicAndTracksDensity) {
  const cdr::FingerprintDataset sparse = test::small_synth_dataset(30);
  const cdr::FingerprintDataset dense = test::small_synth_dataset(120);
  const Tiling a = build_tiling(sparse, 0.0, 64);
  const Tiling b = build_tiling(sparse, 0.0, 64);
  EXPECT_DOUBLE_EQ(a.tile_size_m, b.tile_size_m);
  // Same area, 4x the fingerprints: tiles shrink (or hit the clamp).
  const Tiling c = build_tiling(dense, 0.0, 64);
  EXPECT_LE(c.tile_size_m, a.tile_size_m);
  EXPECT_GE(c.tile_size_m, 1'000.0);
  EXPECT_LE(a.tile_size_m, 200'000.0);
}

}  // namespace
}  // namespace glove::shard
