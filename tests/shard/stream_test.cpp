// The sharded streaming core: a text-backed stream (parse-on-every-pass,
// like the file source) must reproduce the in-memory pipeline byte for
// byte, batching must not change the output, per-pass accounting must add
// up, and a stream that changes size between passes must be rejected.

#include "glove/shard/stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "glove/cdr/io.hpp"
#include "glove/shard/shard.hpp"

namespace glove::shard {
namespace {

ShardConfig small_config(std::uint32_t k = 2) {
  ShardConfig config;
  config.glove.k = k;
  config.tile_size_m = 5'000.0;
  config.max_shard_users = 16;
  config.halo_m = 500.0;
  return config;
}

/// Streams fingerprints out of serialized CSV text, re-parsing on every
/// pass — the unit-test stand-in for CsvFileSource.
class TextStream final : public FingerprintStream {
 public:
  explicit TextStream(std::string text) : text_{std::move(text)} { rewind(); }

  bool next(cdr::Fingerprint& fingerprint) override {
    return reader_->next(fingerprint);
  }
  void rewind() override {
    in_ = std::istringstream{text_};
    reader_.emplace(in_);
  }

 private:
  std::string text_;
  std::istringstream in_;
  std::optional<cdr::DatasetStreamReader> reader_;
};

std::vector<cdr::Fingerprint> run_stream(FingerprintStream& stream,
                                         const ShardConfig& config,
                                         StreamShardedResult* result_out) {
  std::vector<cdr::Fingerprint> groups;
  StreamShardedResult result = anonymize_sharded_stream(
      stream, config,
      [&](cdr::Fingerprint&& fp) { groups.push_back(std::move(fp)); });
  if (result_out != nullptr) *result_out = std::move(result);
  return groups;
}

TEST(ShardStream, TextBackedStreamMatchesInMemoryPipeline) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  std::ostringstream serialized;
  cdr::write_dataset_csv(serialized, data);

  const ShardConfig config = small_config();
  const ShardedResult reference = anonymize_sharded(data, config);

  TextStream stream{serialized.str()};
  StreamShardedResult streamed;
  std::vector<cdr::Fingerprint> groups =
      run_stream(stream, config, &streamed);

  EXPECT_EQ(test::dataset_to_csv(cdr::FingerprintDataset{std::move(groups)}),
            test::dataset_to_csv(cdr::FingerprintDataset{
                {reference.anonymized.fingerprints().begin(),
                 reference.anonymized.fingerprints().end()}}));
  EXPECT_EQ(streamed.stats.glove.output_groups,
            reference.stats.glove.output_groups);
  EXPECT_EQ(streamed.stats.deferred_fingerprints,
            reference.stats.deferred_fingerprints);
  EXPECT_EQ(streamed.stats.shards, reference.stats.shards);
}

TEST(ShardStream, BatchBoundariesDoNotChangeTheOutput) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);
  std::ostringstream serialized;
  cdr::write_dataset_csv(serialized, data);
  std::string reference;
  // workers drives the batch budget (max_shard_users x workers), so these
  // runs cover one-shard-per-pass up to several-shards-per-pass.
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ShardConfig config = small_config();
    config.workers = workers;
    TextStream stream{serialized.str()};
    StreamShardedResult result;
    std::vector<cdr::Fingerprint> groups = run_stream(stream, config, &result);
    const std::string csv =
        test::dataset_to_csv(cdr::FingerprintDataset{std::move(groups)});
    if (reference.empty()) {
      reference = csv;
    } else {
      EXPECT_EQ(csv, reference) << "workers=" << workers;
    }
    // Every pass reads the whole stream: one planning scan + >= 1 batch.
    ASSERT_GE(result.pass_fingerprints.size(), 2u) << "workers=" << workers;
    for (const std::uint64_t count : result.pass_fingerprints) {
      EXPECT_EQ(count, data.size());
    }
  }
}

TEST(ShardStream, SmallBudgetRunsManyPassesLargeBudgetFew) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);
  std::ostringstream serialized;
  cdr::write_dataset_csv(serialized, data);
  ShardConfig tight = small_config();
  tight.workers = 1;  // budget = max_shard_users
  TextStream stream_a{serialized.str()};
  StreamShardedResult tight_result;
  (void)run_stream(stream_a, tight, &tight_result);

  ShardConfig wide = small_config();
  wide.workers = 64;  // budget swallows the whole plan
  TextStream stream_b{serialized.str()};
  StreamShardedResult wide_result;
  (void)run_stream(stream_b, wide, &wide_result);

  EXPECT_GT(tight_result.pass_fingerprints.size(),
            wide_result.pass_fingerprints.size());
  // scan + one shard batch + one reconcile pass (deferred fingerprints
  // are materialized by the reconcile phase, not with the batches).
  EXPECT_EQ(wide_result.pass_fingerprints.size(),
            2u + wide_result.stats.reconcile_passes);
  EXPECT_LE(wide_result.stats.reconcile_passes, 1u);
}

TEST(ShardStream, MaterializedSourceSkipsRestreamingButMatchesOutput) {
  // An in-memory DatasetStream advertises its backing dataset, so the
  // pipeline reads by index: one reported (logical) pass, identical
  // bytes to the text-backed multi-pass run.
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  std::ostringstream serialized;
  cdr::write_dataset_csv(serialized, data);
  const ShardConfig config = small_config();

  DatasetStream memory_stream{data};
  StreamShardedResult memory_result;
  std::vector<cdr::Fingerprint> memory_groups =
      run_stream(memory_stream, config, &memory_result);
  EXPECT_EQ(memory_result.pass_fingerprints,
            (std::vector<std::uint64_t>{data.size()}));

  TextStream text_stream{serialized.str()};
  StreamShardedResult text_result;
  std::vector<cdr::Fingerprint> text_groups =
      run_stream(text_stream, config, &text_result);
  EXPECT_GE(text_result.pass_fingerprints.size(), 2u);
  EXPECT_EQ(
      test::dataset_to_csv(cdr::FingerprintDataset{std::move(memory_groups)}),
      test::dataset_to_csv(cdr::FingerprintDataset{std::move(text_groups)}));
}

TEST(ShardStream, AdaptiveTileSizeResolvesFromTheScanPass) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  ShardConfig config = small_config();
  config.tile_size_m = 0.0;  // adaptive
  DatasetStream stream{data};
  StreamShardedResult result;
  std::vector<cdr::Fingerprint> groups = run_stream(stream, config, &result);
  EXPECT_GE(result.stats.tile_size_m, 1'000.0);
  EXPECT_LE(result.stats.tile_size_m, 200'000.0);
  EXPECT_FALSE(groups.empty());

  // Explicitly configuring the resolved size reproduces the run exactly.
  ShardConfig pinned = small_config();
  pinned.tile_size_m = result.stats.tile_size_m;
  DatasetStream again{data};
  std::vector<cdr::Fingerprint> pinned_groups =
      run_stream(again, pinned, nullptr);
  EXPECT_EQ(test::dataset_to_csv(
                cdr::FingerprintDataset{std::move(pinned_groups)}),
            test::dataset_to_csv(cdr::FingerprintDataset{std::move(groups)}));
}

TEST(ShardStream, BorderedReconcileBudgetsAreByteIdenticalToInMemory) {
  // The streaming reconciliation (deferred leftovers materialized chunk
  // by chunk on rewound passes) must reproduce the in-memory pipeline —
  // and the blessed pre-refactor golden — for every reconcile budget and
  // worker count.  The budget only moves pass boundaries.
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  std::ostringstream serialized;
  cdr::write_dataset_csv(serialized, data);
  const ShardConfig config = small_config();

  const ShardedResult reference = anonymize_sharded(data, config);
  test::expect_matches_golden("sharded_synth60_k2.csv",
                              test::dataset_to_csv(reference.anonymized));
  // Streamed groups are compared name-stripped (the emitter yields bare
  // fingerprints; the Engine adds the dataset name at the sink).
  const std::string reference_csv = test::dataset_to_csv(
      cdr::FingerprintDataset{{reference.anonymized.fingerprints().begin(),
                               reference.anonymized.fingerprints().end()}});
  ASSERT_GT(reference.stats.deferred_fingerprints, 0u);

  for (const std::size_t budget :
       {std::size_t{1}, std::size_t{0},
        std::numeric_limits<std::size_t>::max()}) {
    for (const std::size_t workers : {1u, 4u}) {
      ShardConfig bordered = config;
      bordered.reconcile_chunk_users = budget;
      bordered.workers = workers;
      TextStream stream{serialized.str()};
      StreamShardedResult result;
      std::vector<cdr::Fingerprint> groups =
          run_stream(stream, bordered, &result);
      EXPECT_EQ(test::dataset_to_csv(
                    cdr::FingerprintDataset{std::move(groups)}),
                reference_csv)
          << "budget=" << budget << " workers=" << workers;
      EXPECT_EQ(result.stats.deferred_fingerprints,
                reference.stats.deferred_fingerprints);
      EXPECT_GE(result.stats.reconcile_passes, 1u);
    }
  }
}

TEST(ShardStream, ReconcilePassAccountingAddsUp) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  std::ostringstream serialized;
  cdr::write_dataset_csv(serialized, data);

  // A wide halo over small shards defers enough sub-k fingerprints for
  // several GLOVE chunks, so the budget really moves pass boundaries.
  ShardConfig base = small_config();
  base.max_shard_users = 8;
  base.halo_m = 2'000.0;

  // Tightest budget: every reconcile unit gets its own rewound pass.
  ShardConfig tight = base;
  tight.workers = 1;
  tight.reconcile_chunk_users = 1;
  TextStream stream{serialized.str()};
  StreamShardedResult tight_result;
  (void)run_stream(stream, tight, &tight_result);
  ASSERT_GE(tight_result.stats.reconcile_passes, 1u);
  // Planning scan + >= 1 shard batch + the reconcile passes, every pass
  // streaming the full dataset.
  EXPECT_GE(tight_result.pass_fingerprints.size(),
            2u + tight_result.stats.reconcile_passes);
  for (const std::uint64_t count : tight_result.pass_fingerprints) {
    EXPECT_EQ(count, data.size());
  }

  // Unbounded budget: the whole reconcile phase in one pass.
  ShardConfig wide = base;
  wide.workers = 1;
  wide.reconcile_chunk_users = std::numeric_limits<std::size_t>::max();
  TextStream wide_stream{serialized.str()};
  StreamShardedResult wide_result;
  (void)run_stream(wide_stream, wide, &wide_result);
  EXPECT_EQ(wide_result.stats.reconcile_passes, 1u);
  EXPECT_GT(tight_result.stats.reconcile_passes,
            wide_result.stats.reconcile_passes);

  // Materialized sources fetch leftovers by index: no rewound passes.
  DatasetStream memory_stream{data};
  StreamShardedResult memory_result;
  (void)run_stream(memory_stream, tight, &memory_result);
  EXPECT_EQ(memory_result.stats.reconcile_passes, 0u);
  EXPECT_EQ(memory_result.pass_fingerprints,
            (std::vector<std::uint64_t>{data.size()}));
}

TEST(ShardStream, ProgressCountsDeferredFingerprintsDuringReconcile) {
  // Progress must keep advancing through the reconcile phase: the last
  // report before the final tick covers all n fingerprints, kept and
  // deferred alike (deferred ones used to stall below n).
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  DatasetStream stream{data};
  util::RunHooks hooks;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reports;
  hooks.progress = [&](std::uint64_t done, std::uint64_t total) {
    reports.emplace_back(done, total);
  };
  StreamShardedResult result = anonymize_sharded_stream(
      stream, small_config(), [](cdr::Fingerprint&&) {}, hooks);
  ASSERT_GT(result.stats.deferred_fingerprints, 0u);
  ASSERT_FALSE(reports.empty());
  const std::uint64_t total = static_cast<std::uint64_t>(data.size()) + 1;
  EXPECT_EQ(reports.back().first, total);
  EXPECT_EQ(reports.back().second, total);
  // The second-to-last distinct value must already cover every
  // fingerprint — reconcile consumed the deferred ones.
  ASSERT_GE(reports.size(), 2u);
  EXPECT_EQ(reports[reports.size() - 2].first, data.size());
}

TEST(ShardStream, CancellationFiresMidReconcileChunk) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  std::ostringstream serialized;
  cdr::write_dataset_csv(serialized, data);
  ShardConfig config = small_config();
  config.workers = 1;
  config.reconcile_chunk_users = 1;  // one GLOVE chunk per rewound pass

  // Probe run: learn where the reconcile phase starts (progress counts
  // kept fingerprints first) and confirm a reconciliation GLOVE actually
  // runs, so the cancel below lands inside a chunk.
  TextStream probe{serialized.str()};
  StreamShardedResult full;
  (void)run_stream(probe, config, &full);
  ASSERT_GT(full.stats.reconciled_groups, 0u);
  const std::uint64_t kept =
      data.size() - full.stats.deferred_fingerprints;

  util::CancellationToken token;
  util::RunHooks hooks;
  hooks.cancel = token;
  hooks.progress = [&](std::uint64_t done, std::uint64_t) {
    if (done > kept) token.request_cancel();
  };
  TextStream stream{serialized.str()};
  EXPECT_THROW((void)anonymize_sharded_stream(
                   stream, config, [](cdr::Fingerprint&&) {}, hooks),
               util::CancelledError);
}

TEST(ShardStream, StreamThatShrinksBetweenPassesIsRejected) {
  /// Yields the dataset on the first pass, then one fingerprint fewer on
  /// every later pass — a file truncated mid-run.
  class ShrinkingStream final : public FingerprintStream {
   public:
    explicit ShrinkingStream(const cdr::FingerprintDataset& data)
        : data_{&data} {}
    bool next(cdr::Fingerprint& fingerprint) override {
      const std::size_t limit =
          passes_ == 0 ? data_->size() : data_->size() - 1;
      if (cursor_ >= limit) return false;
      fingerprint = (*data_)[cursor_++];
      return true;
    }
    void rewind() override {
      cursor_ = 0;
      ++passes_;
    }

   private:
    const cdr::FingerprintDataset* data_;
    std::size_t cursor_ = 0;
    std::size_t passes_ = 0;
  };

  const cdr::FingerprintDataset data = test::small_synth_dataset(40);
  ShrinkingStream stream{data};
  EXPECT_THROW((void)run_stream(stream, small_config(), nullptr),
               util::DatasetError);
}

TEST(ShardStream, EmptyAndSubKStreamsRaiseDatasetError) {
  const cdr::FingerprintDataset empty;
  DatasetStream empty_stream{empty};
  EXPECT_THROW((void)run_stream(empty_stream, small_config(), nullptr),
               util::DatasetError);

  const cdr::FingerprintDataset three = test::small_synth_dataset(3);
  ShardConfig demanding = small_config(100);
  demanding.max_shard_users = 128;  // keep the *config* itself valid
  DatasetStream short_stream{three};
  EXPECT_THROW((void)run_stream(short_stream, demanding, nullptr),
               util::DatasetError);
}

}  // namespace
}  // namespace glove::shard
