// ShardPlanner: every fingerprint lands in exactly one shard, shards
// respect the >= k floor and the max_shard_users budget (except where the
// floor or an oversized tile forces them over), and the cell-to-shard map
// covers every occupied tile.

#include "glove/shard/planner.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/fixtures.hpp"
#include "glove/shard/tiling.hpp"

namespace glove::shard {
namespace {

ShardConfig config_with(std::uint32_t k, std::size_t max_users,
                        double tile_m) {
  ShardConfig config;
  config.glove.k = k;
  config.max_shard_users = max_users;
  config.tile_size_m = tile_m;
  return config;
}

void expect_partition(const ShardPlan& plan, std::size_t dataset_size) {
  std::vector<bool> seen(dataset_size, false);
  for (const PlannedShard& shard : plan.shards) {
    for (const std::uint32_t id : shard.members) {
      ASSERT_LT(id, dataset_size);
      EXPECT_FALSE(seen[id]) << "fingerprint " << id << " in two shards";
      seen[id] = true;
    }
  }
  for (std::size_t i = 0; i < dataset_size; ++i) {
    EXPECT_TRUE(seen[i]) << "fingerprint " << i << " unassigned";
  }
}

TEST(ShardPlanner, PartitionsEveryFingerprintOnce) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  const ShardConfig config = config_with(2, 12, 10'000.0);
  const Tiling tiling = build_tiling(data, config.tile_size_m);
  const ShardPlan plan = ShardPlanner{config}.plan(tiling);

  EXPECT_GE(plan.shards.size(), 2u);
  expect_partition(plan, data.size());
  for (const PlannedShard& shard : plan.shards) {
    EXPECT_GE(shard.members.size(), config.glove.k);
  }
}

TEST(ShardPlanner, CellMapCoversEveryTile) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(40);
  const ShardConfig config = config_with(2, 10, 10'000.0);
  const Tiling tiling = build_tiling(data, config.tile_size_m);
  const ShardPlan plan = ShardPlanner{config}.plan(tiling);

  EXPECT_EQ(plan.tiles, tiling.tiles.size());
  EXPECT_EQ(plan.shard_of_cell.size(), tiling.tiles.size());
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    for (const geo::GridCell cell : plan.shards[s].cells) {
      const auto it = plan.shard_of_cell.find(cell);
      ASSERT_NE(it, plan.shard_of_cell.end());
      EXPECT_EQ(it->second, s);
    }
  }
}

TEST(ShardPlanner, RespectsBudgetUpToTheFloor) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);
  const ShardConfig config = config_with(2, 15, 5'000.0);
  const Tiling tiling = build_tiling(data, config.tile_size_m);
  const ShardPlan plan = ShardPlanner{config}.plan(tiling);

  // A shard may exceed the budget only by one tile (closing happens when
  // the *next* tile would overflow) or through the tail fold; it can
  // never reach twice the budget unless a single tile is oversized.
  std::size_t biggest_tile = 0;
  for (const Tile& tile : tiling.tiles) {
    biggest_tile = std::max(biggest_tile, tile.members.size());
  }
  for (const PlannedShard& shard : plan.shards) {
    EXPECT_LE(shard.members.size(),
              2 * config.max_shard_users + biggest_tile);
  }
}

TEST(ShardPlanner, OversizedTileBecomesItsOwnShard) {
  // Everyone in one 100 m cell: a single tile far over budget must stay
  // whole (one shard), not be split across shards.
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 30; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{
                            test::cell(50.0, 50.0, 10.0 + u)});
  }
  const cdr::FingerprintDataset data{std::move(fps), "dense"};
  const ShardConfig config = config_with(2, 8, 25'000.0);
  const Tiling tiling = build_tiling(data, config.tile_size_m);
  const ShardPlan plan = ShardPlanner{config}.plan(tiling);

  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].members.size(), 30u);
}

TEST(ShardPlanner, TailBelowKFoldsIntoPreviousShard) {
  // Two far-apart tiles: 6 users and 1 user, k = 2, budget 6.  The lone
  // tail cannot form a shard and folds back.
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 6; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{
                            test::cell(0.0, 0.0, 10.0 + u)});
  }
  fps.emplace_back(6u, std::vector<cdr::Sample>{
                           test::cell(200'000.0, 0.0, 10.0)});
  const cdr::FingerprintDataset data{std::move(fps), "tail"};
  const ShardConfig config = config_with(2, 6, 25'000.0);
  const Tiling tiling = build_tiling(data, config.tile_size_m);
  const ShardPlan plan = ShardPlanner{config}.plan(tiling);

  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].members.size(), 7u);
  EXPECT_EQ(plan.shards[0].cells.size(), 2u);
}

TEST(ShardPlanner, RejectsDatasetSmallerThanK) {
  const cdr::FingerprintDataset data = test::paired_dataset();  // 7 users
  const ShardConfig config = config_with(100, 200, 25'000.0);
  const Tiling tiling = build_tiling(data, config.tile_size_m);
  EXPECT_THROW((void)ShardPlanner{config}.plan(tiling),
               std::invalid_argument);
}

}  // namespace
}  // namespace glove::shard
