// The sharded backend's externally-visible guarantees: k-anonymity of the
// whole output, no user lost, byte-stable determinism across worker
// counts, bounded accuracy cost versus the single-matrix `full` run, and
// the Engine integration (validation, metrics, per-shard timing rows).

#include "glove/shard/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "glove/api/engine.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"

namespace glove::shard {
namespace {

/// Config that splits the ~50 km-wide synthetic population into several
/// small shards, so every phase (halo deferral, parallel shard runs,
/// reconciliation) is exercised.
ShardConfig small_shard_config(std::uint32_t k = 2) {
  ShardConfig config;
  config.glove.k = k;
  config.tile_size_m = 5'000.0;
  config.max_shard_users = 16;
  config.halo_m = 500.0;
  return config;
}

std::vector<cdr::UserId> sorted_members(const cdr::FingerprintDataset& data) {
  std::vector<cdr::UserId> users;
  for (const cdr::Fingerprint& fp : data.fingerprints()) {
    users.insert(users.end(), fp.members().begin(), fp.members().end());
  }
  std::sort(users.begin(), users.end());
  return users;
}

TEST(Sharded, OutputIsKAnonymousAndLosesNoUser) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  for (const std::uint32_t k : {2u, 3u, 5u}) {
    for (const BorderPolicy border : {BorderPolicy::kHalo,
                                      BorderPolicy::kNone}) {
      ShardConfig config = small_shard_config(k);
      config.border = border;
      const ShardedResult result = anonymize_sharded(data, config);
      EXPECT_TRUE(core::is_k_anonymous(result.anonymized, k))
          << "k=" << k << " border=" << static_cast<int>(border);
      EXPECT_EQ(sorted_members(result.anonymized), sorted_members(data))
          << "k=" << k;
      EXPECT_GE(result.stats.shards, 2u);
    }
  }
}

TEST(Sharded, MatchesGoldenDataset) {
  // Locks the sharded pipeline's exact output bytes across refactors: the
  // golden was blessed on the dedicated-pool backend (PR 3) and the
  // streaming rewrite must reproduce it byte for byte.
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  const ShardedResult result = anonymize_sharded(data, small_shard_config());
  test::expect_matches_golden("sharded_synth60_k2.csv",
                              test::dataset_to_csv(result.anonymized));
}

TEST(Sharded, ByteStableAcrossWorkerCounts) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);
  std::string reference;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ShardConfig config = small_shard_config();
    config.workers = workers;
    const ShardedResult result = anonymize_sharded(data, config);
    const std::string csv = test::dataset_to_csv(result.anonymized);
    if (reference.empty()) {
      reference = csv;
    } else {
      EXPECT_EQ(csv, reference) << "workers=" << workers;
    }
  }
}

TEST(Sharded, SuppressLeftoverPolicyIsHonoured) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(50);
  ShardConfig config = small_shard_config(3);
  config.glove.leftover_policy = core::LeftoverPolicy::kSuppress;
  const ShardedResult result = anonymize_sharded(data, config);
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 3));
  // Users either survive in a group or are counted as discarded.
  EXPECT_EQ(sorted_members(result.anonymized).size() +
                result.stats.glove.discarded_fingerprints,
            data.size());
}

/// Parity vs the single-matrix run: tiling confines merges to shards, so
/// the sharded output pays extra stretch for border users.  This test
/// documents the expected delta: the median published position/time
/// accuracy stays within a small factor of the `full` run's, and never
/// collapses (both datasets remain k-anonymous partitions of the same
/// users).  The factor below is intentionally loose — it is a regression
/// tripwire for gross quality loss (e.g. a broken border policy), not a
/// tight quality spec.
TEST(Sharded, AccuracyStaysWithinToleranceOfFull) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);

  core::GloveConfig full_config;
  full_config.k = 2;
  const core::GloveResult full = core::anonymize(data, full_config);
  const auto full_summary =
      core::summarize_accuracy(core::measure_accuracy(full.anonymized));

  ShardConfig config = small_shard_config(2);
  const ShardedResult sharded = anonymize_sharded(data, config);
  const auto sharded_summary =
      core::summarize_accuracy(core::measure_accuracy(sharded.anonymized));

  EXPECT_TRUE(core::is_k_anonymous(sharded.anonymized, 2));
  // Tiling cost: allow up to 3x the full run's median accuracy loss plus
  // one grid cell / one minute of slack for quantization noise.
  EXPECT_LE(sharded_summary.median_position_m,
            3.0 * full_summary.median_position_m + 100.0);
  EXPECT_LE(sharded_summary.median_time_min,
            3.0 * full_summary.median_time_min + 1.0);
}

TEST(Sharded, EngineRunProducesMetricsAndShardTimings) {
  const glove::Engine engine;
  api::RunConfig config;
  config.strategy = api::kStrategySharded;
  config.k = 2;
  config.sharded.tile_size_m = 5'000.0;
  config.sharded.max_shard_users = 16;
  const auto result = engine.run(test::small_synth_dataset(60), config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const api::RunReport& report = result.value();

  EXPECT_TRUE(core::is_k_anonymous(report.anonymized, 2));
  EXPECT_GE(api::find_metric(report, "shards"), 2.0);
  EXPECT_GE(api::find_metric(report, "tiles"),
            api::find_metric(report, "shards"));
  ASSERT_GE(report.shard_timings.size(), 2u);
  std::uint64_t covered = 0;
  for (const api::ShardTimingRow& row : report.shard_timings) {
    covered += row.input_fingerprints + row.deferred;
  }
  EXPECT_EQ(covered, report.counters.input_users);

  // The timing rows serialize under "shards" in the JSON report.
  const std::string json = api::to_json(report);
  EXPECT_NE(json.find("\"shards\": ["), std::string::npos);
  EXPECT_NE(json.find("\"input_fingerprints\""), std::string::npos);
}

TEST(Sharded, EngineValidatesConfig) {
  const glove::Engine engine;
  const cdr::FingerprintDataset data = test::small_synth_dataset(30);

  api::RunConfig bad_tile;
  bad_tile.strategy = api::kStrategySharded;
  bad_tile.sharded.tile_size_m = -5.0;
  EXPECT_EQ(engine.run(data, bad_tile).error().code,
            api::ErrorCode::kInvalidConfig);

  api::RunConfig bad_budget;
  bad_budget.strategy = api::kStrategySharded;
  bad_budget.k = 5;
  bad_budget.sharded.max_shard_users = 3;
  EXPECT_EQ(engine.run(data, bad_budget).error().code,
            api::ErrorCode::kInvalidConfig);

  api::RunConfig bad_halo;
  bad_halo.strategy = api::kStrategySharded;
  bad_halo.sharded.halo_m = -1.0;
  EXPECT_EQ(engine.run(data, bad_halo).error().code,
            api::ErrorCode::kInvalidConfig);

  // A wrapped negative (e.g. --shard-workers=-1 cast to size_t) must be
  // rejected before it drives thread creation.
  api::RunConfig bad_workers;
  bad_workers.strategy = api::kStrategySharded;
  bad_workers.sharded.workers = static_cast<std::size_t>(-1);
  EXPECT_EQ(engine.run(data, bad_workers).error().code,
            api::ErrorCode::kInvalidConfig);
}

TEST(Sharded, AdaptiveTileSizeIsUsedWhenConfiguredZero) {
  // tile_size_m == 0 derives the tile edge from the observed anchor
  // density during the planning pass; the resolved value is reported.
  const glove::Engine engine;
  api::RunConfig config;
  config.strategy = api::kStrategySharded;
  config.k = 2;
  config.sharded.tile_size_m = 0.0;
  config.sharded.max_shard_users = 16;
  const auto result = engine.run(test::small_synth_dataset(60), config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const double resolved = api::find_metric(result.value(), "tile_size_m");
  EXPECT_GE(resolved, 1'000.0);
  EXPECT_LE(resolved, 200'000.0);
  EXPECT_TRUE(core::is_k_anonymous(result.value().anonymized, 2));

  // Deterministic: the same input resolves to the same decomposition.
  const auto again = engine.run(test::small_synth_dataset(60), config);
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(api::find_metric(again.value(), "tile_size_m"), resolved);
  EXPECT_EQ(test::dataset_to_csv(again.value().anonymized),
            test::dataset_to_csv(result.value().anonymized));
}

TEST(Sharded, CancellationAbortsWithoutOutput) {
  const glove::Engine engine;
  api::RunConfig config;
  config.strategy = api::kStrategySharded;
  config.sharded.tile_size_m = 5'000.0;
  config.sharded.max_shard_users = 16;
  config.cancel = util::CancellationToken{};
  config.cancel->request_cancel();
  const auto result = engine.run(test::small_synth_dataset(40), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, api::ErrorCode::kCancelled);
}

}  // namespace
}  // namespace glove::shard
