// The chunk-resumable reconciliation: the schedule planned from bounding
// geometry and group sizes alone (the streaming pipeline's pass-1
// residue) must reproduce the monolithic reconcile_leftovers byte for
// byte, and the leftover-policy counters must keep the shared
// original-samples definition of deletion.

#include "glove/shard/reconcile.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "glove/core/glove.hpp"

namespace glove::shard {
namespace {

ShardConfig reconcile_config(std::uint32_t k = 2,
                             std::size_t max_shard_users = 4) {
  ShardConfig config;
  config.glove.k = k;
  config.max_shard_users = max_shard_users;
  return config;
}

/// A single-user fingerprint anchored at (x_km, y_km) km — far enough
/// apart per kilometre that the 1 km locality quantization orders anchors
/// exactly by their coordinates.
cdr::Fingerprint user_at(cdr::UserId id, double x_km, double y_km) {
  return cdr::Fingerprint{
      id, {test::cell(x_km * 1'000.0, y_km * 1'000.0, 10.0 * id)}};
}

std::vector<core::FingerprintBounds> bounds_of(
    const std::vector<cdr::Fingerprint>& fps) {
  std::vector<core::FingerprintBounds> bounds;
  bounds.reserve(fps.size());
  for (const cdr::Fingerprint& fp : fps) {
    bounds.push_back(core::fingerprint_bounds(fp));
  }
  return bounds;
}

std::vector<std::uint32_t> sizes_of(const std::vector<cdr::Fingerprint>& fps) {
  std::vector<std::uint32_t> sizes;
  sizes.reserve(fps.size());
  for (const cdr::Fingerprint& fp : fps) sizes.push_back(fp.group_size());
  return sizes;
}

TEST(ReconcilePlan, SplitsPassthroughAndLocalitySortedChunks) {
  // Leftovers in (shard, member) order: a >= k group first, then sub-k
  // singles placed so their locality order reverses their arrival order.
  std::vector<cdr::Fingerprint> leftovers;
  leftovers.push_back(cdr::Fingerprint{
      {100u, 101u}, {test::cell(0.0, 0.0, 0.0), test::cell(100.0, 0.0, 5.0)}});
  leftovers.push_back(user_at(0, 40.0, 0.0));
  leftovers.push_back(user_at(1, 30.0, 0.0));
  leftovers.push_back(user_at(2, 20.0, 0.0));
  leftovers.push_back(user_at(3, 10.0, 0.0));

  const ShardConfig config = reconcile_config(/*k=*/2, /*max_shard_users=*/2);
  const ReconcilePlan plan =
      plan_reconcile(bounds_of(leftovers), sizes_of(leftovers), config);

  EXPECT_EQ(plan.passthrough, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(plan.subk_count, 4u);
  EXPECT_TRUE(plan.tail.empty());
  // Morton order along one axis is coordinate order: positions 4, 3, 2, 1
  // (10, 20, 30, 40 km), split into chunks of max_shard_users = 2.
  ASSERT_EQ(plan.chunks.size(), 2u);
  EXPECT_EQ(plan.chunks[0], (std::vector<std::uint32_t>{4, 3}));
  EXPECT_EQ(plan.chunks[1], (std::vector<std::uint32_t>{2, 1}));
}

TEST(ReconcilePlan, NeverLeavesATailChunkSmallerThanK) {
  std::vector<cdr::Fingerprint> leftovers;
  for (cdr::UserId u = 0; u < 5; ++u) {
    leftovers.push_back(user_at(u, 10.0 * (u + 1), 0.0));
  }
  const ShardConfig config = reconcile_config(/*k=*/2, /*max_shard_users=*/4);
  const ReconcilePlan plan =
      plan_reconcile(bounds_of(leftovers), sizes_of(leftovers), config);
  // 5 sub-k members with chunk size 4: a naive split would leave a
  // 1-member tail < k, so the last chunk extends to hold all 5.
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].size(), 5u);
}

TEST(ReconcilePlan, FewerThanKSubKLeftoversBecomeTheTail) {
  std::vector<cdr::Fingerprint> leftovers;
  leftovers.push_back(user_at(0, 30.0, 0.0));
  leftovers.push_back(user_at(1, 10.0, 0.0));
  const ShardConfig config = reconcile_config(/*k=*/3);
  const ReconcilePlan plan =
      plan_reconcile(bounds_of(leftovers), sizes_of(leftovers), config);
  EXPECT_TRUE(plan.chunks.empty());
  // The tail keeps leftover order, not locality order.
  EXPECT_EQ(plan.tail, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(plan.subk_count, 2u);
}

TEST(ReconcilePlan, MisalignedSpansAreRejected) {
  std::vector<cdr::Fingerprint> leftovers{user_at(0, 1.0, 0.0)};
  const std::vector<std::uint32_t> sizes;  // wrong length
  EXPECT_THROW(
      (void)plan_reconcile(bounds_of(leftovers), sizes, reconcile_config()),
      std::invalid_argument);
}

TEST(Reconcile, ChunkResumableMatchesMonolithicByteForByte) {
  // Drive the plan chunk by chunk (the streaming pipeline's shape) and
  // compare against one monolithic reconcile_leftovers call over the
  // same leftovers.
  const cdr::FingerprintDataset data = test::small_synth_dataset(24);
  std::vector<cdr::Fingerprint> leftovers{data.fingerprints().begin(),
                                          data.fingerprints().end()};
  const ShardConfig config = reconcile_config(/*k=*/2, /*max_shard_users=*/5);

  std::vector<cdr::Fingerprint> monolithic;
  const ReconcileStats whole = reconcile_leftovers(
      {data.fingerprints().begin(), data.fingerprints().end()}, monolithic,
      config, {});

  const ReconcilePlan plan =
      plan_reconcile(bounds_of(leftovers), sizes_of(leftovers), config);
  ASSERT_GE(plan.chunks.size(), 2u);  // the resumable path really resumes
  std::vector<cdr::Fingerprint> resumable;
  ReconcileStats stats;
  for (const std::vector<std::uint32_t>& chunk : plan.chunks) {
    std::vector<cdr::Fingerprint> members;
    for (const std::uint32_t position : chunk) {
      members.push_back(std::move(leftovers[position]));
    }
    reconcile_chunk(
        std::move(members), config, stats,
        [&](cdr::Fingerprint&& fp) { resumable.push_back(std::move(fp)); },
        {});
  }

  EXPECT_EQ(test::dataset_to_csv(cdr::FingerprintDataset{std::move(resumable)}),
            test::dataset_to_csv(
                cdr::FingerprintDataset{std::move(monolithic)}));
  EXPECT_EQ(stats.reconciled_groups, whole.reconciled_groups);
  EXPECT_EQ(stats.glove.merges, whole.glove.merges);
  EXPECT_EQ(stats.glove.input_users, whole.glove.input_users);
  EXPECT_EQ(stats.glove.input_samples, whole.glove.input_samples);
  EXPECT_EQ(stats.glove.output_groups, whole.glove.output_groups);
  EXPECT_EQ(stats.glove.output_samples, whole.glove.output_samples);
  EXPECT_EQ(stats.glove.deleted_samples, whole.glove.deleted_samples);
}

TEST(Reconcile, SuppressedTailCountsOriginalSamplesDeleted) {
  // One sub-k leftover whose samples each represent two original samples
  // (a previously merged pair): suppression must count contributors, the
  // same definition the core greedy loop and the W4M trash bin use.
  std::vector<cdr::Sample> samples{test::cell(0.0, 0.0, 0.0),
                                   test::cell(100.0, 0.0, 5.0)};
  for (cdr::Sample& s : samples) s.contributors = 2;
  cdr::Fingerprint leftover{{7u}, std::move(samples)};
  const std::uint64_t original_samples = leftover.total_contributors();
  ASSERT_EQ(original_samples, 4u);

  std::vector<cdr::Fingerprint> leftovers;
  leftovers.push_back(std::move(leftover));
  std::vector<cdr::Fingerprint> anonymized;
  anonymized.push_back(cdr::Fingerprint{
      {1u, 2u}, {test::cell(0.0, 0.0, 0.0), test::cell(0.0, 100.0, 3.0)}});

  ShardConfig config = reconcile_config(/*k=*/2);
  config.glove.leftover_policy = core::LeftoverPolicy::kSuppress;
  const ReconcileStats stats =
      reconcile_leftovers(std::move(leftovers), anonymized, config, {});
  EXPECT_EQ(stats.glove.discarded_fingerprints, 1u);
  EXPECT_EQ(stats.glove.deleted_samples, original_samples);
  EXPECT_EQ(anonymized.size(), 1u);  // nothing appended
}

TEST(Reconcile, AbsorbTailMergesIntoNearestGroup) {
  std::vector<cdr::Fingerprint> leftovers;
  leftovers.push_back(user_at(9, 0.1, 0.0));
  std::vector<cdr::Fingerprint> anonymized;
  anonymized.push_back(cdr::Fingerprint{
      {1u, 2u}, {test::cell(0.0, 0.0, 0.0), test::cell(100.0, 0.0, 3.0)}});
  anonymized.push_back(cdr::Fingerprint{
      {3u, 4u},
      {test::cell(90'000.0, 0.0, 0.0), test::cell(90'100.0, 0.0, 3.0)}});

  const ShardConfig config = reconcile_config(/*k=*/2);
  const ReconcileStats stats =
      reconcile_leftovers(std::move(leftovers), anonymized, config, {});
  EXPECT_EQ(stats.absorbed, 1u);
  EXPECT_EQ(stats.glove.merges, 1u);
  ASSERT_EQ(anonymized.size(), 2u);
  // The co-located group (not the 90 km one) absorbed the leftover.
  EXPECT_EQ(anonymized[0].group_size(), 3u);
  EXPECT_EQ(anonymized[1].group_size(), 2u);
}

}  // namespace
}  // namespace glove::shard
