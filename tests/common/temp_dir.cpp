#include "common/temp_dir.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>

#include "glove/cdr/io.hpp"

namespace glove::test {

namespace {
std::filesystem::path unique_dir() {
  static std::atomic<unsigned> counter{0};
  const std::filesystem::path root{::testing::TempDir()};
  // Process id + counter keeps concurrently running suites apart.
  while (true) {
    std::filesystem::path candidate =
        root / ("glove_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)));
    if (std::filesystem::create_directories(candidate)) return candidate;
  }
}
}  // namespace

TempDir::TempDir() : path_{unique_dir()} {}

TempDir::~TempDir() {
  std::error_code ec;  // best effort: never throw from a destructor
  std::filesystem::remove_all(path_, ec);
}

std::string TempDir::file(std::string_view name) const {
  return (path_ / name).string();
}

cdr::FingerprintDataset dataset_file_roundtrip(
    const TempDir& dir, const cdr::FingerprintDataset& data,
    std::string_view name) {
  const std::string path = dir.file(name);
  cdr::write_dataset_file(path, data);
  return cdr::read_dataset_file(path);
}

}  // namespace glove::test
