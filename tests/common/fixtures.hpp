// Shared deterministic dataset builders for the GLOVE test suites.
//
// Most suites need the same three kinds of input: hand-placed samples at the
// original granularity (100 m, 1 min), small structured datasets with known
// optimal groupings, and seeded synthetic CDR populations.  Build them here
// once instead of re-rolling them per suite.

#ifndef GLOVE_TESTS_COMMON_FIXTURES_HPP
#define GLOVE_TESTS_COMMON_FIXTURES_HPP

#include <cstddef>
#include <cstdint>

#include "glove/cdr/dataset.hpp"
#include "glove/cdr/sample.hpp"

namespace glove::test {

/// Sample at the original granularity of Sec. 3: a 100 m x 100 m cell
/// entered at minute `t` with the 1-minute timestamp accuracy.
[[nodiscard]] cdr::Sample cell(double x, double y, double t);

/// Fully explicit sample: rectangle [x, x+dx] x [y, y+dy] over [t, t+dt].
[[nodiscard]] cdr::Sample box(double x, double dx, double y, double dy,
                              double t, double dt);

/// Seven users: three pairs of near-identical fingerprints at mutual
/// distance ~5 km / ~10 h, plus one far outlier (user 6).  The pairs are
/// each other's nearest neighbours, so a correct GLOVE run at k=2 merges
/// exactly {0,1}, {2,3}, {4,5} and attaches the outlier somewhere.
[[nodiscard]] cdr::FingerprintDataset paired_dataset();

/// Two fingerprints exercising every serialized field: a {1,2} group whose
/// second sample is generalized (multi-contributor, wide extents) and a
/// singleton user 7.  Named "io-test".
[[nodiscard]] cdr::FingerprintDataset grouped_io_dataset();

/// `users` single-user fingerprints with 1..`max_samples_per_user` samples
/// of uniformly random extents.  Deterministic in `seed`; exercises
/// serialization and metric code on unstructured values.  Ids start at
/// `first_user` — offset them when the dataset plays the newcomers of an
/// incremental update, which rejects ids colliding with the base release.
[[nodiscard]] cdr::FingerprintDataset random_dataset(
    std::size_t users, std::uint64_t seed,
    std::size_t max_samples_per_user = 6, cdr::UserId first_user = 0);

/// Small seeded synthetic population (civ-like preset) for end-to-end
/// tests: `users` users over `days` days at the original granularity.
[[nodiscard]] cdr::FingerprintDataset small_synth_dataset(
    std::size_t users = 60, double days = 3.0, std::uint64_t seed = 5);

}  // namespace glove::test

#endif  // GLOVE_TESTS_COMMON_FIXTURES_HPP
