// RAII scratch directory for tests doing real file I/O, plus CSV
// round-trip helpers built on it.

#ifndef GLOVE_TESTS_COMMON_TEMP_DIR_HPP
#define GLOVE_TESTS_COMMON_TEMP_DIR_HPP

#include <filesystem>
#include <string>
#include <string_view>

#include "glove/cdr/dataset.hpp"

namespace glove::test {

/// Creates a unique directory under the gtest temp root on construction and
/// removes it (recursively) on destruction, so suites never leak files or
/// collide when run in parallel under `ctest -j`.
class TempDir {
 public:
  TempDir();
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

  /// Absolute path of `name` inside the directory (the file need not exist).
  [[nodiscard]] std::string file(std::string_view name) const;

 private:
  std::filesystem::path path_;
};

/// Writes `data` to `name` inside `dir` with write_dataset_file and reads it
/// back, returning the reloaded dataset.
[[nodiscard]] cdr::FingerprintDataset dataset_file_roundtrip(
    const TempDir& dir, const cdr::FingerprintDataset& data,
    std::string_view name = "roundtrip.csv");

}  // namespace glove::test

#endif  // GLOVE_TESTS_COMMON_TEMP_DIR_HPP
