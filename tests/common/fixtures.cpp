#include "common/fixtures.hpp"

#include <utility>
#include <vector>

#include "glove/synth/generator.hpp"
#include "glove/util/rng.hpp"

namespace glove::test {

cdr::Sample cell(double x, double y, double t) {
  return box(x, 100.0, y, 100.0, t, 1.0);
}

cdr::Sample box(double x, double dx, double y, double dy, double t,
                double dt) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, dx, y, dy};
  s.tau = cdr::TemporalExtent{t, dt};
  return s;
}

cdr::FingerprintDataset paired_dataset() {
  std::vector<cdr::Fingerprint> fps;
  const auto add_pair = [&](cdr::UserId base, double ox, double ot) {
    fps.emplace_back(base,
                     std::vector<cdr::Sample>{cell(ox, 0, ot),
                                              cell(ox + 100, 0, ot + 300)});
    fps.emplace_back(base + 1,
                     std::vector<cdr::Sample>{cell(ox, 100, ot + 4),
                                              cell(ox + 200, 0, ot + 310)});
  };
  add_pair(0, 0.0, 0.0);
  add_pair(2, 5'000.0, 600.0);
  add_pair(4, 10'000.0, 1'200.0);
  fps.emplace_back(6u, std::vector<cdr::Sample>{cell(200'000, 200'000, 50)});
  return cdr::FingerprintDataset{std::move(fps), "paired"};
}

cdr::FingerprintDataset grouped_io_dataset() {
  const cdr::Sample s1 = box(100.0, 100.0, 200.0, 100.0, 10.0, 1.0);
  cdr::Sample s2 = box(0.0, 500.0, 0.0, 300.0, 50.0, 30.0);
  s2.contributors = 4;

  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(std::vector<cdr::UserId>{1u, 2u},
                   std::vector<cdr::Sample>{s1, s2});
  fps.emplace_back(7u, std::vector<cdr::Sample>{s1});
  return cdr::FingerprintDataset{std::move(fps), "io-test"};
}

cdr::FingerprintDataset random_dataset(std::size_t users, std::uint64_t seed,
                                       std::size_t max_samples_per_user,
                                       cdr::UserId first_user) {
  util::Xoshiro256 rng{seed};
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < users; ++u) {
    std::vector<cdr::Sample> samples;
    const std::size_t n = 1 + util::uniform_index(rng, max_samples_per_user);
    for (std::size_t i = 0; i < n; ++i) {
      cdr::Sample s;
      s.sigma = cdr::SpatialExtent{util::uniform(rng, -1e5, 1e5),
                                   util::uniform(rng, 1.0, 5e4),
                                   util::uniform(rng, -1e5, 1e5),
                                   util::uniform(rng, 1.0, 5e4)};
      s.tau = cdr::TemporalExtent{util::uniform(rng, 0.0, 2e4),
                                  util::uniform(rng, 1.0, 500.0)};
      s.contributors =
          1 + static_cast<std::uint32_t>(util::uniform_index(rng, 9));
      samples.push_back(s);
    }
    fps.emplace_back(first_user + u, std::move(samples));
  }
  return cdr::FingerprintDataset{std::move(fps), "random"};
}

cdr::FingerprintDataset small_synth_dataset(std::size_t users, double days,
                                            std::uint64_t seed) {
  synth::SynthConfig config = synth::civ_like(users, seed);
  config.days = days;
  return synth::generate_dataset(config);
}

}  // namespace glove::test
