#include "common/golden.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "glove/cdr/io.hpp"

#ifndef GLOVE_TEST_DATA_DIR
#error "GLOVE_TEST_DATA_DIR must be defined by the build"
#endif

namespace glove::test {

namespace {

bool update_golden_requested() {
  const char* flag = std::getenv("GLOVE_UPDATE_GOLDEN");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

/// First line where the two texts differ, 1-based; 0 when equal.
std::size_t first_diff_line(const std::string& a, const std::string& b,
                            std::string& line_a, std::string& line_b) {
  std::istringstream sa{a};
  std::istringstream sb{b};
  std::size_t line = 0;
  while (true) {
    const bool got_a = static_cast<bool>(std::getline(sa, line_a));
    const bool got_b = static_cast<bool>(std::getline(sb, line_b));
    ++line;
    if (!got_a && !got_b) return 0;
    if (got_a != got_b || line_a != line_b) return line;
  }
}

}  // namespace

std::string data_path(std::string_view name) {
  return std::string{GLOVE_TEST_DATA_DIR} + "/" + std::string{name};
}

std::string dataset_to_csv(const cdr::FingerprintDataset& data) {
  std::ostringstream out;
  cdr::write_dataset_csv(out, data);
  return out.str();
}

void expect_matches_golden(std::string_view name, const std::string& actual) {
  const std::string path = data_path(name);
  if (update_golden_requested()) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out << actual;
    return;
  }

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with GLOVE_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();

  // Byte-for-byte verdict; the line diff is only for the diagnostic (it
  // cannot see e.g. a missing trailing newline).
  std::string line_actual;
  std::string line_expected;
  const std::size_t line =
      first_diff_line(actual, expected, line_actual, line_expected);
  EXPECT_EQ(actual, expected)
      << "golden mismatch vs " << path
      << (line != 0 ? " at line " + std::to_string(line) : " (whitespace)")
      << "\n  expected: " << line_expected << "\n  actual:   " << line_actual
      << "\n(re-bless with GLOVE_UPDATE_GOLDEN=1 if the change is intended)";
}

void expect_datasets_near(const cdr::FingerprintDataset& actual,
                          const cdr::FingerprintDataset& expected,
                          double tolerance) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("fingerprint " + std::to_string(i));
    const cdr::Fingerprint& fa = actual[i];
    const cdr::Fingerprint& fe = expected[i];
    ASSERT_EQ(fa.size(), fe.size());
    EXPECT_TRUE(std::equal(fa.members().begin(), fa.members().end(),
                           fe.members().begin(), fe.members().end()));
    for (std::size_t j = 0; j < fe.size(); ++j) {
      SCOPED_TRACE("sample " + std::to_string(j));
      const cdr::Sample& sa = fa.samples()[j];
      const cdr::Sample& se = fe.samples()[j];
      EXPECT_NEAR(sa.sigma.x, se.sigma.x, tolerance);
      EXPECT_NEAR(sa.sigma.dx, se.sigma.dx, tolerance);
      EXPECT_NEAR(sa.sigma.y, se.sigma.y, tolerance);
      EXPECT_NEAR(sa.sigma.dy, se.sigma.dy, tolerance);
      EXPECT_NEAR(sa.tau.t, se.tau.t, tolerance);
      EXPECT_NEAR(sa.tau.dt, se.tau.dt, tolerance);
      EXPECT_EQ(sa.contributors, se.contributors);
    }
  }
}

}  // namespace glove::test
