// Golden-file utilities: compare produced text against a checked-in
// reference, and compare whole datasets structurally with tolerances.
//
// Golden files live in tests/data/ (absolute path baked in as
// GLOVE_TEST_DATA_DIR).  Run a test binary with GLOVE_UPDATE_GOLDEN=1 to
// rewrite the reference instead of failing — then review the diff.

#ifndef GLOVE_TESTS_COMMON_GOLDEN_HPP
#define GLOVE_TESTS_COMMON_GOLDEN_HPP

#include <string>
#include <string_view>

#include "glove/cdr/dataset.hpp"

namespace glove::test {

/// Absolute path of a file inside the checked-in tests/data/ directory.
[[nodiscard]] std::string data_path(std::string_view name);

/// Serializes a dataset with write_dataset_csv (the canonical text form
/// used by golden comparisons).
[[nodiscard]] std::string dataset_to_csv(const cdr::FingerprintDataset& data);

/// Non-fatally EXPECTs that `actual` matches the golden file `name` (under
/// tests/data/) byte for byte, reporting the first differing line.  With
/// GLOVE_UPDATE_GOLDEN=1 in the environment the file is (re)written and the
/// check passes.
void expect_matches_golden(std::string_view name, const std::string& actual);

/// Non-fatally EXPECTs that the two datasets have identical structure
/// (group membership, sample counts, contributors) and extents equal within
/// `tolerance` — the invariant behind every serialize/parse round-trip.
void expect_datasets_near(const cdr::FingerprintDataset& actual,
                          const cdr::FingerprintDataset& expected,
                          double tolerance = 1e-4);

}  // namespace glove::test

#endif  // GLOVE_TESTS_COMMON_GOLDEN_HPP
