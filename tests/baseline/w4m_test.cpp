#include "glove/baseline/w4m.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "glove/synth/generator.hpp"

namespace glove::baseline {
namespace {

cdr::Sample cell(double x, double y, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, y, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

cdr::Fingerprint line_user(cdr::UserId id, double offset_m,
                           double offset_min) {
  // A user moving east, one sample every ~2 hours.
  std::vector<cdr::Sample> samples;
  for (int i = 0; i < 6; ++i) {
    samples.push_back(
        cell(offset_m + i * 1'000.0, offset_m, offset_min + i * 120.0));
  }
  return cdr::Fingerprint{id, std::move(samples)};
}

cdr::FingerprintDataset parallel_users(std::size_t n, double spacing_m) {
  std::vector<cdr::Fingerprint> fps;
  for (std::size_t i = 0; i < n; ++i) {
    fps.push_back(line_user(static_cast<cdr::UserId>(i),
                            static_cast<double>(i) * spacing_m,
                            static_cast<double>(i) * 7.0));
  }
  return cdr::FingerprintDataset{std::move(fps), "parallel"};
}

TEST(LinearStDistance, ZeroForIdenticalTrajectories) {
  const cdr::Fingerprint a = line_user(0, 0.0, 0.0);
  EXPECT_NEAR(linear_st_distance(a, a), 0.0, 1e-9);
}

TEST(LinearStDistance, ProportionalToSpatialOffset) {
  const cdr::Fingerprint a = line_user(0, 0.0, 0.0);
  const cdr::Fingerprint near = line_user(1, 500.0, 0.0);
  const cdr::Fingerprint far = line_user(2, 5'000.0, 0.0);
  const double d_near = linear_st_distance(a, near);
  const double d_far = linear_st_distance(a, far);
  EXPECT_GT(d_far, d_near);
  // Parallel trajectories offset diagonally by d keep distance sqrt(2)*d.
  EXPECT_NEAR(d_near, 500.0 * std::sqrt(2.0), 50.0);
}

TEST(LinearStDistance, InfiniteWithoutCoexistence) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(0, 0, 100)}};
  const cdr::Fingerprint b{1u, {cell(0, 0, 500), cell(0, 0, 600)}};
  EXPECT_TRUE(std::isinf(linear_st_distance(a, b)));
}

TEST(LinearStDistance, PenalizesShortOverlap) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(0, 0, 1'000)}};
  const cdr::Fingerprint full{1u, {cell(500, 0, 0), cell(500, 0, 1'000)}};
  const cdr::Fingerprint partial{2u, {cell(500, 0, 900), cell(500, 0, 2'000)}};
  EXPECT_GT(linear_st_distance(a, partial), linear_st_distance(a, full));
}

TEST(W4M, EveryClusterHasAtLeastKMembers) {
  const W4MResult result = anonymize_w4m(parallel_users(11, 300.0), {});
  for (const auto& fp : result.anonymized.fingerprints()) {
    EXPECT_GE(fp.group_size(), 2u);
  }
}

TEST(W4M, HigherKGivesBiggerClusters) {
  W4MConfig config;
  config.k = 4;
  const W4MResult result = anonymize_w4m(parallel_users(12, 300.0), config);
  for (const auto& fp : result.anonymized.fingerprints()) {
    EXPECT_GE(fp.group_size(), 4u);
  }
}

TEST(W4M, PublishedSamplesCarryDeltaExtent) {
  W4MConfig config;
  config.delta_m = 2'000.0;
  const W4MResult result = anonymize_w4m(parallel_users(8, 300.0), config);
  for (const auto& fp : result.anonymized.fingerprints()) {
    for (const auto& s : fp.samples()) {
      EXPECT_DOUBLE_EQ(s.sigma.dx, 2'000.0);
      EXPECT_DOUBLE_EQ(s.sigma.dy, 2'000.0);
    }
  }
}

TEST(W4M, CreatesSyntheticSamplesOnMisalignedUsers) {
  // Members with fewer samples than the cluster pivot leave pivot slots
  // empty, forcing interpolation (fabricated points).
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 6; ++u) {
    std::vector<cdr::Sample> samples;
    const int count = (u % 2 == 0) ? 8 : 3;  // alternating dense/sparse
    for (int i = 0; i < count; ++i) {
      samples.push_back(cell(u * 200.0 + i * 1'000.0, u * 200.0,
                             i * 720.0 / count * 8.0 + u * 5.0));
    }
    fps.emplace_back(u, std::move(samples));
  }
  const W4MResult result =
      anonymize_w4m(cdr::FingerprintDataset{std::move(fps)}, {});
  EXPECT_GT(result.stats.created_samples, 0u);
}

TEST(W4M, NoCreationForPerfectlyAlignedUsers) {
  // Identical timestamps: every published slot matches an original sample.
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 4; ++u) {
    fps.push_back(line_user(u, u * 100.0, 0.0));  // same time offsets
  }
  const W4MResult result =
      anonymize_w4m(cdr::FingerprintDataset{std::move(fps)}, {});
  EXPECT_EQ(result.stats.created_samples, 0u);
  EXPECT_EQ(result.stats.deleted_samples, 0u);
}

TEST(W4M, TrashBinDiscardsOutliers) {
  // 9 clusterable users + 1 user on the other side of the country.
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 9; ++u) {
    fps.push_back(line_user(u, u * 150.0, u * 3.0));
  }
  fps.push_back(line_user(9, 400'000.0, 0.0));
  W4MConfig config;
  config.trash_fraction = 0.2;
  const W4MResult result =
      anonymize_w4m(cdr::FingerprintDataset{std::move(fps)}, config);
  EXPECT_GE(result.stats.discarded_fingerprints, 1u);
}

TEST(W4M, TrashedFingerprintCountsOriginalSamplesDeleted) {
  // Deletion accounting is in *original* samples (summed contributors),
  // the one definition shared with the GLOVE suppression paths — not raw
  // (possibly already-merged) sample counts.  The outlier here is a
  // previously merged pair whose samples each represent two originals; it
  // coexists with nobody, so its distance to every cluster is infinite
  // and it is deterministically discarded.
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 4; ++u) {
    fps.push_back(line_user(u, u * 150.0, u * 3.0));
  }
  cdr::Fingerprint outlier = line_user(9, 0.0, 100'000.0);
  std::vector<cdr::Sample> merged_samples{outlier.samples().begin(),
                                          outlier.samples().end()};
  for (cdr::Sample& s : merged_samples) s.contributors = 2;
  cdr::Fingerprint merged{{9u, 10u}, std::move(merged_samples)};
  const std::uint64_t original_samples = merged.total_contributors();
  ASSERT_EQ(original_samples, 2 * merged.size());
  fps.push_back(std::move(merged));

  const W4MResult result =
      anonymize_w4m(cdr::FingerprintDataset{std::move(fps)}, {});
  EXPECT_EQ(result.stats.discarded_fingerprints, 2u);  // the merged pair
  EXPECT_EQ(result.stats.deleted_samples, original_samples);
}

TEST(W4M, StatsErrorVectorsMatchMeans) {
  const W4MResult result = anonymize_w4m(parallel_users(8, 250.0), {});
  ASSERT_FALSE(result.stats.position_errors_m.empty());
  double sum = 0.0;
  for (const double e : result.stats.position_errors_m) sum += e;
  EXPECT_NEAR(
      sum / static_cast<double>(result.stats.position_errors_m.size()),
              result.stats.mean_position_error_m, 1e-9);
}

TEST(W4M, RejectsInvalidConfig) {
  const auto data = parallel_users(6, 100.0);
  W4MConfig config;
  config.k = 1;
  EXPECT_THROW((void)anonymize_w4m(data, config), std::invalid_argument);
  config = W4MConfig{};
  config.chunk_size = 1;
  EXPECT_THROW((void)anonymize_w4m(data, config), std::invalid_argument);
}

TEST(W4M, AllUsersAccountedFor) {
  const cdr::FingerprintDataset input = parallel_users(10, 300.0);
  const W4MResult result = anonymize_w4m(input, {});
  std::set<cdr::UserId> published;
  for (const auto& fp : result.anonymized.fingerprints()) {
    published.insert(fp.members().begin(), fp.members().end());
  }
  EXPECT_EQ(published.size() + result.stats.discarded_fingerprints,
            input.total_users());
}

TEST(W4M, WorseThanGloveOnSparseCdr) {
  // The Tab. 2 headline: on sparse heterogeneous CDR, W4M fabricates
  // samples (GLOVE never does) — the qualitative claim this reproduction
  // must uphold.
  synth::SynthConfig config = synth::civ_like(40, 19);
  config.days = 2.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const W4MResult w4m = anonymize_w4m(data, {});
  EXPECT_GT(w4m.stats.created_samples, 0u);
  EXPECT_GT(w4m.stats.mean_time_error_min, 1.0);
}

}  // namespace
}  // namespace glove::baseline
