#include "glove/serve/queue.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

namespace glove::serve {
namespace {

cdr::CdrEvent event(cdr::UserId user, double time_min) {
  return cdr::CdrEvent{user, time_min, geo::LatLon{6.8, -5.3}};
}

TEST(EventQueue, FifoOrderPreserved) {
  EventQueue queue{16};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.push(event(static_cast<cdr::UserId>(i), i)));
  }
  EXPECT_EQ(queue.depth(), 10u);
  std::vector<cdr::CdrEvent> out;
  EXPECT_EQ(queue.pop_batch(out, 100, /*timeout_ms=*/10), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].user,
              static_cast<cdr::UserId>(i));
  }
}

TEST(EventQueue, PopBatchRespectsMax) {
  EventQueue queue{16};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.push(event(static_cast<cdr::UserId>(i), i)));
  }
  std::vector<cdr::CdrEvent> out;
  EXPECT_EQ(queue.pop_batch(out, 3, 10), 3u);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(queue.depth(), 5u);
  // pop_batch appends — a reused buffer must not lose earlier events.
  EXPECT_EQ(queue.pop_batch(out, 100, 10), 5u);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(out.back().user, 7u);
}

TEST(EventQueue, BackpressureBlocksProducerUntilConsumed) {
  // Capacity 1: every push after the first must wait for a pop.  The
  // consumer drains on a second thread; all events arrive, in order.
  EventQueue queue{1};
  constexpr int kEvents = 200;
  std::vector<cdr::CdrEvent> received;
  std::thread consumer{[&] {
    std::vector<cdr::CdrEvent> batch;
    while (!queue.drained()) {
      batch.clear();
      if (queue.pop_batch(batch, 16, 50) == 0) continue;
      received.insert(received.end(), batch.begin(), batch.end());
    }
  }};
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(queue.push(event(static_cast<cdr::UserId>(i), i)));
  }
  queue.close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)].user,
              static_cast<cdr::UserId>(i));
  }
  // With capacity 1 and 200 events the producer must have hit a full
  // queue at least once (the consumer cannot outrun every push).
  EXPECT_GT(queue.block_waits(), 0u);
}

TEST(EventQueue, PushAfterCloseFails) {
  EventQueue queue{4};
  ASSERT_TRUE(queue.push(event(1, 0.0)));
  queue.close();
  EXPECT_FALSE(queue.push(event(2, 1.0)));
  EXPECT_TRUE(queue.closed());
  // The event queued before close stays poppable.
  std::vector<cdr::CdrEvent> out;
  EXPECT_EQ(queue.pop_batch(out, 10, 10), 1u);
  EXPECT_TRUE(queue.drained());
}

TEST(EventQueue, CloseWakesBlockedProducer) {
  EventQueue queue{1};
  ASSERT_TRUE(queue.push(event(1, 0.0)));
  bool push_result = true;
  std::thread producer{[&] { push_result = queue.push(event(2, 1.0)); }};
  // The producer is (or is about to be) blocked on the full queue; close
  // must wake it with a failure instead of deadlocking.
  queue.close();
  producer.join();
  EXPECT_FALSE(push_result);
}

TEST(EventQueue, PopTimesOutOnEmptyOpenQueue) {
  EventQueue queue{4};
  std::vector<cdr::CdrEvent> out;
  EXPECT_EQ(queue.pop_batch(out, 10, /*timeout_ms=*/1), 0u);
  EXPECT_FALSE(queue.drained());  // timed out, not drained
  queue.close();
  EXPECT_EQ(queue.pop_batch(out, 10, 1), 0u);
  EXPECT_TRUE(queue.drained());
}

TEST(EventQueue, ZeroCapacityClampsToOne) {
  EventQueue queue{0};
  ASSERT_TRUE(queue.push(event(1, 0.0)));  // would deadlock unclamped
  EXPECT_EQ(queue.depth(), 1u);
}

}  // namespace
}  // namespace glove::serve
