// End-to-end ServeDaemon coverage: the acceptance properties of service
// mode.  Snapshot bytes must be identical across ingest-queue depths and
// shard worker counts (the FIFO queue + watermark windows + byte-stable
// strategies argument), published groups must only ever widen across
// epochs, the admin socket must answer health/metrics/drain, and a
// malformed stream row must fail the run with file/line context.

#include "glove/serve/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/temp_dir.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/glove.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define GLOVE_TEST_HAVE_AF_UNIX 1
#endif

namespace glove::serve {
namespace {

/// Deterministic three-window stream: users 0..9 are active from t=0,
/// users 10..13 first appear in the second window and 20..21 in the
/// third, so every epoch after the first exercises the incremental path.
/// Users are placed in co-located pairs to keep merges cheap.
std::vector<cdr::CdrEvent> test_stream() {
  std::vector<cdr::CdrEvent> events;
  const auto at = [](cdr::UserId user, double time_min) {
    return cdr::CdrEvent{
        user, time_min,
        geo::LatLon{6.82 + 0.002 * static_cast<double>(user / 2), -5.28}};
  };
  for (int w = 0; w < 3; ++w) {
    const double base = 100.0 * w;
    for (cdr::UserId user = 0; user < 10; ++user) {
      events.push_back(at(user, base + 1.0 + static_cast<double>(user)));
      events.push_back(at(user, base + 50.0 + static_cast<double>(user)));
    }
    if (w >= 1) {
      for (cdr::UserId user = 10; user < 14; ++user) {
        events.push_back(at(user, base + 20.0 + static_cast<double>(user)));
      }
    }
    if (w >= 2) {
      for (cdr::UserId user = 20; user < 22; ++user) {
        events.push_back(at(user, base + 30.0 + static_cast<double>(user)));
      }
    }
  }
  return events;
}

ServeConfig base_config(const std::string& input, const std::string& out) {
  ServeConfig config;
  config.input_path = input;
  config.out_dir = out;
  config.window_min = 100.0;
  config.run.k = 2;
  config.run.strategy = std::string{api::kStrategySharded};
  config.builder.projection_origin = geo::LatLon{6.82, -5.28};
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> snapshot_files(const std::string& out_dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(out_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ServeDaemon, BatchRunPublishesKAnonymousEpochs) {
  const test::TempDir dir;
  const std::string input = dir.file("events.csv");
  cdr::write_cdr_file(input, test_stream());

  ServeDaemon daemon{base_config(input, dir.file("out"))};
  const ServeSummary summary = daemon.run();
  ASSERT_EQ(summary.exit_code, 0) << summary.error;
  EXPECT_EQ(summary.events_ingested, test_stream().size());
  EXPECT_EQ(summary.windows_closed, 2u);   // third window drains as final
  EXPECT_EQ(summary.epochs_published, 3u);  // one epoch per active window

  const std::vector<std::string> snapshots =
      snapshot_files(dir.file("out"));
  ASSERT_EQ(snapshots.size(), 3u);
  for (const std::string& path : snapshots) {
    EXPECT_TRUE(
        core::is_k_anonymous(cdr::read_dataset_file(path), 2u))
        << path;
  }
}

TEST(ServeDaemon, PublishedGroupsOnlyWidenAcrossEpochs) {
  const test::TempDir dir;
  const std::string input = dir.file("events.csv");
  cdr::write_cdr_file(input, test_stream());

  ServeDaemon daemon{base_config(input, dir.file("out"))};
  ASSERT_EQ(daemon.run().exit_code, 0);

  const std::vector<std::string> snapshots =
      snapshot_files(dir.file("out"));
  ASSERT_GE(snapshots.size(), 2u);
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    const cdr::FingerprintDataset before =
        cdr::read_dataset_file(snapshots[i - 1]);
    const cdr::FingerprintDataset after =
        cdr::read_dataset_file(snapshots[i]);
    for (const cdr::Fingerprint& old_group : before.fingerprints()) {
      const std::set<cdr::UserId> old_members{old_group.members().begin(),
                                              old_group.members().end()};
      bool found = false;
      for (const cdr::Fingerprint& new_group : after.fingerprints()) {
        const std::set<cdr::UserId> members{new_group.members().begin(),
                                            new_group.members().end()};
        if (std::includes(members.begin(), members.end(),
                          old_members.begin(), old_members.end())) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "epoch " << i << " split a group of epoch "
                         << i - 1;
    }
  }
}

TEST(ServeDaemon, SnapshotBytesStableAcrossQueueDepthsAndWorkers) {
  // The acceptance property: for a fixed event stream the published
  // bytes must not depend on ingest-queue capacity (timing) or shard
  // worker count (parallelism).
  const test::TempDir dir;
  const std::string input = dir.file("events.csv");
  cdr::write_cdr_file(input, test_stream());

  struct Variant {
    std::size_t queue_capacity;
    std::size_t workers;
  };
  const std::vector<Variant> variants{
      {1, 1}, {1, 4}, {65'536, 1}, {65'536, 4}};

  std::vector<std::vector<std::string>> all_bytes;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const std::string out = dir.file("out-" + std::to_string(v));
    ServeConfig config = base_config(input, out);
    config.queue_capacity = variants[v].queue_capacity;
    config.run.sharded.workers = variants[v].workers;
    ServeDaemon daemon{config};
    const ServeSummary summary = daemon.run();
    ASSERT_EQ(summary.exit_code, 0) << summary.error;
    std::vector<std::string> bytes;
    for (const std::string& path : snapshot_files(out)) {
      bytes.push_back(slurp(path));
    }
    ASSERT_FALSE(bytes.empty());
    all_bytes.push_back(std::move(bytes));
  }
  for (std::size_t v = 1; v < all_bytes.size(); ++v) {
    ASSERT_EQ(all_bytes[v].size(), all_bytes[0].size());
    for (std::size_t i = 0; i < all_bytes[0].size(); ++i) {
      EXPECT_EQ(all_bytes[v][i], all_bytes[0][i])
          << "snapshot " << i << " differs: queue="
          << variants[v].queue_capacity << " workers="
          << variants[v].workers;
    }
  }
}

TEST(ServeDaemon, MalformedRowFailsWithPathAndLine) {
  const test::TempDir dir;
  const std::string input = dir.file("broken.csv");
  std::ofstream{input} << "1,10,6.82,-5.28\n2,11,oops,-5.28\n";

  ServeDaemon daemon{base_config(input, dir.file("out"))};
  const ServeSummary summary = daemon.run();
  EXPECT_EQ(summary.exit_code, 1);
  EXPECT_NE(summary.error.find(input), std::string::npos) << summary.error;
  EXPECT_NE(summary.error.find("line 2"), std::string::npos)
      << summary.error;
}

TEST(ServeDaemon, MissingInputFailsInBatchMode) {
  const test::TempDir dir;
  ServeDaemon daemon{
      base_config(dir.file("never-written.csv"), dir.file("out"))};
  const ServeSummary summary = daemon.run();
  EXPECT_EQ(summary.exit_code, 1);
  EXPECT_NE(summary.error.find("cannot open"), std::string::npos)
      << summary.error;
}

#if defined(GLOVE_TEST_HAVE_AF_UNIX)

/// One admin round-trip: connect, send `command`, read until EOF.
std::string admin_request(const std::string& socket_path,
                          const std::string& command) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return "<socket failed>";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "<connect failed>";
  }
  const std::string line = command + "\n";
  (void)::write(fd, line.data(), line.size());
  std::string reply;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(ServeDaemon, AdminSocketAnswersHealthMetricsAndDrain) {
  const test::TempDir dir;
  const std::string input = dir.file("events.csv");
  cdr::write_cdr_file(input, test_stream());

  ServeConfig config = base_config(input, dir.file("out"));
  config.follow = true;  // never self-drains: only `drain` may end it
  config.poll_interval_ms = 10;
  config.admin_socket = dir.file("admin.sock");

  ServeDaemon daemon{config};
  ServeSummary summary;
  std::thread runner{[&] { summary = daemon.run(); }};

  // Wait for the socket to come up, then for ingest to finish the file.
  const std::string all_events =
      "events=" + std::to_string(test_stream().size());
  std::string health;
  for (int attempt = 0; attempt < 500; ++attempt) {
    health = admin_request(config.admin_socket, "health");
    if (health.rfind("ok ", 0) == 0 &&
        health.find(all_events) != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  ASSERT_EQ(health.rfind("ok ", 0), 0u) << health;

  const std::string metrics =
      admin_request(config.admin_socket, "metrics");
  EXPECT_NE(metrics.find("counter serve.events_ingested"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("gauge serve.queue_depth"), std::string::npos);

  EXPECT_EQ(admin_request(config.admin_socket, "bogus"),
            "err unknown command: bogus\n");

  EXPECT_EQ(admin_request(config.admin_socket, "drain"), "draining\n");
  runner.join();
  EXPECT_EQ(summary.exit_code, 0) << summary.error;
  EXPECT_EQ(summary.events_ingested, test_stream().size());
  EXPECT_GE(summary.epochs_published, 3u);
  // A drained daemon removed its socket file.
  EXPECT_FALSE(std::filesystem::exists(config.admin_socket));
}

TEST(ServeDaemon, FollowModeTailsAppendedEvents) {
  const test::TempDir dir;
  const std::string input = dir.file("events.csv");
  const std::vector<cdr::CdrEvent> events = test_stream();
  // Write only the first half; the daemon must pick up the rest live.
  {
    std::vector<cdr::CdrEvent> head{events.begin(),
                                    events.begin() + 20};
    cdr::write_cdr_file(input, head);
  }

  ServeConfig config = base_config(input, dir.file("out"));
  config.follow = true;
  config.poll_interval_ms = 10;
  config.admin_socket = dir.file("admin.sock");
  ServeDaemon daemon{config};
  ServeSummary summary;
  std::thread runner{[&] { summary = daemon.run(); }};

  for (int attempt = 0; attempt < 500; ++attempt) {
    const std::string health =
        admin_request(config.admin_socket, "health");
    if (health.find("events=20") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  // Append the tail the way a live probe would: to the same file.
  {
    std::ofstream out{input, std::ios::app};
    std::vector<cdr::CdrEvent> tail{events.begin() + 20, events.end()};
    cdr::write_cdr_csv(out, tail);
  }
  for (int attempt = 0; attempt < 500; ++attempt) {
    const std::string health =
        admin_request(config.admin_socket, "health");
    if (health.find("events=" + std::to_string(events.size())) !=
        std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  (void)admin_request(config.admin_socket, "drain");
  runner.join();
  ASSERT_EQ(summary.exit_code, 0) << summary.error;
  EXPECT_EQ(summary.events_ingested, events.size());

  // The tailed run must publish the same bytes as a batch replay.
  ServeConfig replay = base_config(input, dir.file("out-replay"));
  ServeDaemon replay_daemon{replay};
  ASSERT_EQ(replay_daemon.run().exit_code, 0);
  const std::vector<std::string> live = snapshot_files(dir.file("out"));
  const std::vector<std::string> batch =
      snapshot_files(dir.file("out-replay"));
  ASSERT_EQ(live.size(), batch.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(slurp(live[i]), slurp(batch[i])) << "snapshot " << i;
  }
}

#endif  // GLOVE_TEST_HAVE_AF_UNIX

}  // namespace
}  // namespace glove::serve
